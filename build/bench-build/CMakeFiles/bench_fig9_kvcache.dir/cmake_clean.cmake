file(REMOVE_RECURSE
  "../bench/bench_fig9_kvcache"
  "../bench/bench_fig9_kvcache.pdb"
  "CMakeFiles/bench_fig9_kvcache.dir/bench_fig9_kvcache.cpp.o"
  "CMakeFiles/bench_fig9_kvcache.dir/bench_fig9_kvcache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
