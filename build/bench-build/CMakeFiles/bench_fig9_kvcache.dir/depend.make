# Empty dependencies file for bench_fig9_kvcache.
# This may be replaced when dependencies are built.
