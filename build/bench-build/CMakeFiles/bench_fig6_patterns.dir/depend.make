# Empty dependencies file for bench_fig6_patterns.
# This may be replaced when dependencies are built.
