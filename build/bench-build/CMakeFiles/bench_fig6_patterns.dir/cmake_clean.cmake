file(REMOVE_RECURSE
  "../bench/bench_fig6_patterns"
  "../bench/bench_fig6_patterns.pdb"
  "CMakeFiles/bench_fig6_patterns.dir/bench_fig6_patterns.cpp.o"
  "CMakeFiles/bench_fig6_patterns.dir/bench_fig6_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
