file(REMOVE_RECURSE
  "../bench/bench_fig2_memory"
  "../bench/bench_fig2_memory.pdb"
  "CMakeFiles/bench_fig2_memory.dir/bench_fig2_memory.cpp.o"
  "CMakeFiles/bench_fig2_memory.dir/bench_fig2_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
