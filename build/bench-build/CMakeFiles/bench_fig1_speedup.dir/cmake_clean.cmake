file(REMOVE_RECURSE
  "../bench/bench_fig1_speedup"
  "../bench/bench_fig1_speedup.pdb"
  "CMakeFiles/bench_fig1_speedup.dir/bench_fig1_speedup.cpp.o"
  "CMakeFiles/bench_fig1_speedup.dir/bench_fig1_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
