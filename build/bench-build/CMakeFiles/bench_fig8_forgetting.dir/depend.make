# Empty dependencies file for bench_fig8_forgetting.
# This may be replaced when dependencies are built.
