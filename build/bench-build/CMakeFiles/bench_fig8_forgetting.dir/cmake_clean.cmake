file(REMOVE_RECURSE
  "../bench/bench_fig8_forgetting"
  "../bench/bench_fig8_forgetting.pdb"
  "CMakeFiles/bench_fig8_forgetting.dir/bench_fig8_forgetting.cpp.o"
  "CMakeFiles/bench_fig8_forgetting.dir/bench_fig8_forgetting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_forgetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
