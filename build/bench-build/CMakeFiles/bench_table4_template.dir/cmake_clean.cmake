file(REMOVE_RECURSE
  "../bench/bench_table4_template"
  "../bench/bench_table4_template.pdb"
  "CMakeFiles/bench_table4_template.dir/bench_table4_template.cpp.o"
  "CMakeFiles/bench_table4_template.dir/bench_table4_template.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
