# Empty dependencies file for bench_table4_template.
# This may be replaced when dependencies are built.
