# Empty dependencies file for bench_fig3_sensitivity.
# This may be replaced when dependencies are built.
