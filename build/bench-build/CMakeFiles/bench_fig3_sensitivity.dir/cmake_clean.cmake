file(REMOVE_RECURSE
  "../bench/bench_fig3_sensitivity"
  "../bench/bench_fig3_sensitivity.pdb"
  "CMakeFiles/bench_fig3_sensitivity.dir/bench_fig3_sensitivity.cpp.o"
  "CMakeFiles/bench_fig3_sensitivity.dir/bench_fig3_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
