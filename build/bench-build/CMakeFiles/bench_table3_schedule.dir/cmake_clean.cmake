file(REMOVE_RECURSE
  "../bench/bench_table3_schedule"
  "../bench/bench_table3_schedule.pdb"
  "CMakeFiles/bench_table3_schedule.dir/bench_table3_schedule.cpp.o"
  "CMakeFiles/bench_table3_schedule.dir/bench_table3_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
