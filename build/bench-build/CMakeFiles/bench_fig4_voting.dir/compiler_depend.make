# Empty compiler generated dependencies file for bench_fig4_voting.
# This may be replaced when dependencies are built.
