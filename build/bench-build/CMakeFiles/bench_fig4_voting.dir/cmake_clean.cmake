file(REMOVE_RECURSE
  "../bench/bench_fig4_voting"
  "../bench/bench_fig4_voting.pdb"
  "CMakeFiles/bench_fig4_voting.dir/bench_fig4_voting.cpp.o"
  "CMakeFiles/bench_fig4_voting.dir/bench_fig4_voting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
