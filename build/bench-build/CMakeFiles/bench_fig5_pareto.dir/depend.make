# Empty dependencies file for bench_fig5_pareto.
# This may be replaced when dependencies are built.
