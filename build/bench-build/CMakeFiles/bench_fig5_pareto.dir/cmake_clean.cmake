file(REMOVE_RECURSE
  "../bench/bench_fig5_pareto"
  "../bench/bench_fig5_pareto.pdb"
  "CMakeFiles/bench_fig5_pareto.dir/bench_fig5_pareto.cpp.o"
  "CMakeFiles/bench_fig5_pareto.dir/bench_fig5_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
