file(REMOVE_RECURSE
  "../bench/bench_table2_luc"
  "../bench/bench_table2_luc.pdb"
  "CMakeFiles/bench_table2_luc.dir/bench_table2_luc.cpp.o"
  "CMakeFiles/bench_table2_luc.dir/bench_table2_luc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_luc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
