file(REMOVE_RECURSE
  "../bench/bench_fig7_energy"
  "../bench/bench_fig7_energy.pdb"
  "CMakeFiles/bench_fig7_energy.dir/bench_fig7_energy.cpp.o"
  "CMakeFiles/bench_fig7_energy.dir/bench_fig7_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
