# Empty dependencies file for bench_table1_accuracy.
# This may be replaced when dependencies are built.
