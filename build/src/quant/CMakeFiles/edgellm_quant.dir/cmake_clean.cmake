file(REMOVE_RECURSE
  "CMakeFiles/edgellm_quant.dir/packed.cpp.o"
  "CMakeFiles/edgellm_quant.dir/packed.cpp.o.d"
  "CMakeFiles/edgellm_quant.dir/quant.cpp.o"
  "CMakeFiles/edgellm_quant.dir/quant.cpp.o.d"
  "libedgellm_quant.a"
  "libedgellm_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
