# Empty dependencies file for edgellm_quant.
# This may be replaced when dependencies are built.
