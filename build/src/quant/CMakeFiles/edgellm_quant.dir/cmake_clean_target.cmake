file(REMOVE_RECURSE
  "libedgellm_quant.a"
)
