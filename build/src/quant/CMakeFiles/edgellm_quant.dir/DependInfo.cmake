
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/packed.cpp" "src/quant/CMakeFiles/edgellm_quant.dir/packed.cpp.o" "gcc" "src/quant/CMakeFiles/edgellm_quant.dir/packed.cpp.o.d"
  "/root/repo/src/quant/quant.cpp" "src/quant/CMakeFiles/edgellm_quant.dir/quant.cpp.o" "gcc" "src/quant/CMakeFiles/edgellm_quant.dir/quant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
