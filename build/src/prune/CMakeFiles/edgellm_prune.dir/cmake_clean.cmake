file(REMOVE_RECURSE
  "CMakeFiles/edgellm_prune.dir/prune.cpp.o"
  "CMakeFiles/edgellm_prune.dir/prune.cpp.o.d"
  "CMakeFiles/edgellm_prune.dir/sparse.cpp.o"
  "CMakeFiles/edgellm_prune.dir/sparse.cpp.o.d"
  "libedgellm_prune.a"
  "libedgellm_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
