
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prune/prune.cpp" "src/prune/CMakeFiles/edgellm_prune.dir/prune.cpp.o" "gcc" "src/prune/CMakeFiles/edgellm_prune.dir/prune.cpp.o.d"
  "/root/repo/src/prune/sparse.cpp" "src/prune/CMakeFiles/edgellm_prune.dir/sparse.cpp.o" "gcc" "src/prune/CMakeFiles/edgellm_prune.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
