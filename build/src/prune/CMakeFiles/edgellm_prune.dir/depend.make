# Empty dependencies file for edgellm_prune.
# This may be replaced when dependencies are built.
