file(REMOVE_RECURSE
  "libedgellm_prune.a"
)
