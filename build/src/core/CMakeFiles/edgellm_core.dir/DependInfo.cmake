
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/luc.cpp" "src/core/CMakeFiles/edgellm_core.dir/luc.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/luc.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/edgellm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/edgellm_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/edgellm_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/snapshot.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/edgellm_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/tuner.cpp.o.d"
  "/root/repo/src/core/voting.cpp" "src/core/CMakeFiles/edgellm_core.dir/voting.cpp.o" "gcc" "src/core/CMakeFiles/edgellm_core.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/edgellm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/edgellm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/edgellm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/edgellm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/edgellm_prune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
