file(REMOVE_RECURSE
  "CMakeFiles/edgellm_core.dir/luc.cpp.o"
  "CMakeFiles/edgellm_core.dir/luc.cpp.o.d"
  "CMakeFiles/edgellm_core.dir/pipeline.cpp.o"
  "CMakeFiles/edgellm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/edgellm_core.dir/sensitivity.cpp.o"
  "CMakeFiles/edgellm_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/edgellm_core.dir/snapshot.cpp.o"
  "CMakeFiles/edgellm_core.dir/snapshot.cpp.o.d"
  "CMakeFiles/edgellm_core.dir/tuner.cpp.o"
  "CMakeFiles/edgellm_core.dir/tuner.cpp.o.d"
  "CMakeFiles/edgellm_core.dir/voting.cpp.o"
  "CMakeFiles/edgellm_core.dir/voting.cpp.o.d"
  "libedgellm_core.a"
  "libedgellm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
