file(REMOVE_RECURSE
  "libedgellm_core.a"
)
