# Empty dependencies file for edgellm_core.
# This may be replaced when dependencies are built.
