# Empty compiler generated dependencies file for edgellm_runtime.
# This may be replaced when dependencies are built.
