file(REMOVE_RECURSE
  "CMakeFiles/edgellm_runtime.dir/checkpointer.cpp.o"
  "CMakeFiles/edgellm_runtime.dir/checkpointer.cpp.o.d"
  "CMakeFiles/edgellm_runtime.dir/fault.cpp.o"
  "CMakeFiles/edgellm_runtime.dir/fault.cpp.o.d"
  "CMakeFiles/edgellm_runtime.dir/simulator.cpp.o"
  "CMakeFiles/edgellm_runtime.dir/simulator.cpp.o.d"
  "CMakeFiles/edgellm_runtime.dir/trace.cpp.o"
  "CMakeFiles/edgellm_runtime.dir/trace.cpp.o.d"
  "libedgellm_runtime.a"
  "libedgellm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
