file(REMOVE_RECURSE
  "libedgellm_runtime.a"
)
