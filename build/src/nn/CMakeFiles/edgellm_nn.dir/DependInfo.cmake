
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/block.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/block.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/block.cpp.o.d"
  "/root/repo/src/nn/decoder.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/decoder.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/decoder.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/lora.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/lora.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/lora.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/edgellm_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/edgellm_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/edgellm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/edgellm_prune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
