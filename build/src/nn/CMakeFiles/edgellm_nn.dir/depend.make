# Empty dependencies file for edgellm_nn.
# This may be replaced when dependencies are built.
