file(REMOVE_RECURSE
  "libedgellm_nn.a"
)
