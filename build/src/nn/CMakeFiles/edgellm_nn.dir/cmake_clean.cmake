file(REMOVE_RECURSE
  "CMakeFiles/edgellm_nn.dir/attention.cpp.o"
  "CMakeFiles/edgellm_nn.dir/attention.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/block.cpp.o"
  "CMakeFiles/edgellm_nn.dir/block.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/decoder.cpp.o"
  "CMakeFiles/edgellm_nn.dir/decoder.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/embedding.cpp.o"
  "CMakeFiles/edgellm_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/linear.cpp.o"
  "CMakeFiles/edgellm_nn.dir/linear.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/lora.cpp.o"
  "CMakeFiles/edgellm_nn.dir/lora.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/loss.cpp.o"
  "CMakeFiles/edgellm_nn.dir/loss.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/mlp.cpp.o"
  "CMakeFiles/edgellm_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/model.cpp.o"
  "CMakeFiles/edgellm_nn.dir/model.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/norm.cpp.o"
  "CMakeFiles/edgellm_nn.dir/norm.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/optim.cpp.o"
  "CMakeFiles/edgellm_nn.dir/optim.cpp.o.d"
  "CMakeFiles/edgellm_nn.dir/serialize.cpp.o"
  "CMakeFiles/edgellm_nn.dir/serialize.cpp.o.d"
  "libedgellm_nn.a"
  "libedgellm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
