file(REMOVE_RECURSE
  "libedgellm_hw.a"
)
