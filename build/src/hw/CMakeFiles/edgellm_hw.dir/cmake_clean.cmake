file(REMOVE_RECURSE
  "CMakeFiles/edgellm_hw.dir/anneal.cpp.o"
  "CMakeFiles/edgellm_hw.dir/anneal.cpp.o.d"
  "CMakeFiles/edgellm_hw.dir/device.cpp.o"
  "CMakeFiles/edgellm_hw.dir/device.cpp.o.d"
  "CMakeFiles/edgellm_hw.dir/schedule.cpp.o"
  "CMakeFiles/edgellm_hw.dir/schedule.cpp.o.d"
  "CMakeFiles/edgellm_hw.dir/search.cpp.o"
  "CMakeFiles/edgellm_hw.dir/search.cpp.o.d"
  "CMakeFiles/edgellm_hw.dir/workload.cpp.o"
  "CMakeFiles/edgellm_hw.dir/workload.cpp.o.d"
  "libedgellm_hw.a"
  "libedgellm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
