
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/anneal.cpp" "src/hw/CMakeFiles/edgellm_hw.dir/anneal.cpp.o" "gcc" "src/hw/CMakeFiles/edgellm_hw.dir/anneal.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/edgellm_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/edgellm_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/schedule.cpp" "src/hw/CMakeFiles/edgellm_hw.dir/schedule.cpp.o" "gcc" "src/hw/CMakeFiles/edgellm_hw.dir/schedule.cpp.o.d"
  "/root/repo/src/hw/search.cpp" "src/hw/CMakeFiles/edgellm_hw.dir/search.cpp.o" "gcc" "src/hw/CMakeFiles/edgellm_hw.dir/search.cpp.o.d"
  "/root/repo/src/hw/workload.cpp" "src/hw/CMakeFiles/edgellm_hw.dir/workload.cpp.o" "gcc" "src/hw/CMakeFiles/edgellm_hw.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/edgellm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/edgellm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/edgellm_prune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
