# Empty compiler generated dependencies file for edgellm_hw.
# This may be replaced when dependencies are built.
