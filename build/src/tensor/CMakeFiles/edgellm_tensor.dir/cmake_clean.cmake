file(REMOVE_RECURSE
  "CMakeFiles/edgellm_tensor.dir/ops.cpp.o"
  "CMakeFiles/edgellm_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/edgellm_tensor.dir/rng.cpp.o"
  "CMakeFiles/edgellm_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/edgellm_tensor.dir/tensor.cpp.o"
  "CMakeFiles/edgellm_tensor.dir/tensor.cpp.o.d"
  "libedgellm_tensor.a"
  "libedgellm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
