# Empty compiler generated dependencies file for edgellm_tensor.
# This may be replaced when dependencies are built.
