file(REMOVE_RECURSE
  "libedgellm_tensor.a"
)
