file(REMOVE_RECURSE
  "CMakeFiles/edgellm_data.dir/corpus.cpp.o"
  "CMakeFiles/edgellm_data.dir/corpus.cpp.o.d"
  "CMakeFiles/edgellm_data.dir/eval.cpp.o"
  "CMakeFiles/edgellm_data.dir/eval.cpp.o.d"
  "CMakeFiles/edgellm_data.dir/induction.cpp.o"
  "CMakeFiles/edgellm_data.dir/induction.cpp.o.d"
  "CMakeFiles/edgellm_data.dir/stats.cpp.o"
  "CMakeFiles/edgellm_data.dir/stats.cpp.o.d"
  "CMakeFiles/edgellm_data.dir/tasks.cpp.o"
  "CMakeFiles/edgellm_data.dir/tasks.cpp.o.d"
  "CMakeFiles/edgellm_data.dir/template_lang.cpp.o"
  "CMakeFiles/edgellm_data.dir/template_lang.cpp.o.d"
  "libedgellm_data.a"
  "libedgellm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
