# Empty dependencies file for edgellm_data.
# This may be replaced when dependencies are built.
