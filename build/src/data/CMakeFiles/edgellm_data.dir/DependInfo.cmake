
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/edgellm_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/eval.cpp" "src/data/CMakeFiles/edgellm_data.dir/eval.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/eval.cpp.o.d"
  "/root/repo/src/data/induction.cpp" "src/data/CMakeFiles/edgellm_data.dir/induction.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/induction.cpp.o.d"
  "/root/repo/src/data/stats.cpp" "src/data/CMakeFiles/edgellm_data.dir/stats.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/stats.cpp.o.d"
  "/root/repo/src/data/tasks.cpp" "src/data/CMakeFiles/edgellm_data.dir/tasks.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/tasks.cpp.o.d"
  "/root/repo/src/data/template_lang.cpp" "src/data/CMakeFiles/edgellm_data.dir/template_lang.cpp.o" "gcc" "src/data/CMakeFiles/edgellm_data.dir/template_lang.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/edgellm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/edgellm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/edgellm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/edgellm_prune.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
