file(REMOVE_RECURSE
  "libedgellm_data.a"
)
