file(REMOVE_RECURSE
  "CMakeFiles/kitchen_sink_test.dir/kitchen_sink_test.cpp.o"
  "CMakeFiles/kitchen_sink_test.dir/kitchen_sink_test.cpp.o.d"
  "kitchen_sink_test"
  "kitchen_sink_test.pdb"
  "kitchen_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kitchen_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
