# Empty compiler generated dependencies file for kitchen_sink_test.
# This may be replaced when dependencies are built.
