file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance_test.dir/fault_tolerance_test.cpp.o"
  "CMakeFiles/fault_tolerance_test.dir/fault_tolerance_test.cpp.o.d"
  "fault_tolerance_test"
  "fault_tolerance_test.pdb"
  "fault_tolerance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
