# Empty dependencies file for fault_tolerance_test.
# This may be replaced when dependencies are built.
