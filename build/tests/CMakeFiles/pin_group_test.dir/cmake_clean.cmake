file(REMOVE_RECURSE
  "CMakeFiles/pin_group_test.dir/pin_group_test.cpp.o"
  "CMakeFiles/pin_group_test.dir/pin_group_test.cpp.o.d"
  "pin_group_test"
  "pin_group_test.pdb"
  "pin_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pin_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
