# Empty compiler generated dependencies file for pin_group_test.
# This may be replaced when dependencies are built.
