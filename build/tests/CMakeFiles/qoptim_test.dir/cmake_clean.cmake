file(REMOVE_RECURSE
  "CMakeFiles/qoptim_test.dir/qoptim_test.cpp.o"
  "CMakeFiles/qoptim_test.dir/qoptim_test.cpp.o.d"
  "qoptim_test"
  "qoptim_test.pdb"
  "qoptim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoptim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
