# Empty dependencies file for qoptim_test.
# This may be replaced when dependencies are built.
