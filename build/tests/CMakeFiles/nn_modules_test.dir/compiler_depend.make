# Empty compiler generated dependencies file for nn_modules_test.
# This may be replaced when dependencies are built.
