file(REMOVE_RECURSE
  "CMakeFiles/nn_modules_test.dir/nn_modules_test.cpp.o"
  "CMakeFiles/nn_modules_test.dir/nn_modules_test.cpp.o.d"
  "nn_modules_test"
  "nn_modules_test.pdb"
  "nn_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
