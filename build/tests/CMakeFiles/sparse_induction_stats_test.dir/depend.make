# Empty dependencies file for sparse_induction_stats_test.
# This may be replaced when dependencies are built.
