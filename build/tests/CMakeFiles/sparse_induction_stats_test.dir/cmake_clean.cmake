file(REMOVE_RECURSE
  "CMakeFiles/sparse_induction_stats_test.dir/sparse_induction_stats_test.cpp.o"
  "CMakeFiles/sparse_induction_stats_test.dir/sparse_induction_stats_test.cpp.o.d"
  "sparse_induction_stats_test"
  "sparse_induction_stats_test.pdb"
  "sparse_induction_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_induction_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
