# Empty dependencies file for error_paths_test.
# This may be replaced when dependencies are built.
