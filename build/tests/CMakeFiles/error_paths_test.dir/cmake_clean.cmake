file(REMOVE_RECURSE
  "CMakeFiles/error_paths_test.dir/error_paths_test.cpp.o"
  "CMakeFiles/error_paths_test.dir/error_paths_test.cpp.o.d"
  "error_paths_test"
  "error_paths_test.pdb"
  "error_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
