# Empty compiler generated dependencies file for integration_matrix_test.
# This may be replaced when dependencies are built.
