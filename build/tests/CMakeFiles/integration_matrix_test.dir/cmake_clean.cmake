file(REMOVE_RECURSE
  "CMakeFiles/integration_matrix_test.dir/integration_matrix_test.cpp.o"
  "CMakeFiles/integration_matrix_test.dir/integration_matrix_test.cpp.o.d"
  "integration_matrix_test"
  "integration_matrix_test.pdb"
  "integration_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
