file(REMOVE_RECURSE
  "CMakeFiles/anneal_test.dir/anneal_test.cpp.o"
  "CMakeFiles/anneal_test.dir/anneal_test.cpp.o.d"
  "anneal_test"
  "anneal_test.pdb"
  "anneal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anneal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
