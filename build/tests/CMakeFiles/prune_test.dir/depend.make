# Empty dependencies file for prune_test.
# This may be replaced when dependencies are built.
