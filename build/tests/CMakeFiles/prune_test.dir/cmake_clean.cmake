file(REMOVE_RECURSE
  "CMakeFiles/prune_test.dir/prune_test.cpp.o"
  "CMakeFiles/prune_test.dir/prune_test.cpp.o.d"
  "prune_test"
  "prune_test.pdb"
  "prune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
