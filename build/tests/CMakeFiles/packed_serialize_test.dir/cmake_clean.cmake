file(REMOVE_RECURSE
  "CMakeFiles/packed_serialize_test.dir/packed_serialize_test.cpp.o"
  "CMakeFiles/packed_serialize_test.dir/packed_serialize_test.cpp.o.d"
  "packed_serialize_test"
  "packed_serialize_test.pdb"
  "packed_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
