# Empty compiler generated dependencies file for packed_serialize_test.
# This may be replaced when dependencies are built.
