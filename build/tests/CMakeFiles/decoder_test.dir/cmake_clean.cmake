file(REMOVE_RECURSE
  "CMakeFiles/decoder_test.dir/decoder_test.cpp.o"
  "CMakeFiles/decoder_test.dir/decoder_test.cpp.o.d"
  "decoder_test"
  "decoder_test.pdb"
  "decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
