# Empty compiler generated dependencies file for decoder_test.
# This may be replaced when dependencies are built.
