# Empty dependencies file for schedule_lr_test.
# This may be replaced when dependencies are built.
