file(REMOVE_RECURSE
  "CMakeFiles/schedule_lr_test.dir/schedule_lr_test.cpp.o"
  "CMakeFiles/schedule_lr_test.dir/schedule_lr_test.cpp.o.d"
  "schedule_lr_test"
  "schedule_lr_test.pdb"
  "schedule_lr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_lr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
