# Empty dependencies file for distill_test.
# This may be replaced when dependencies are built.
