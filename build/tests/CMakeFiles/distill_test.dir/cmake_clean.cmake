file(REMOVE_RECURSE
  "CMakeFiles/distill_test.dir/distill_test.cpp.o"
  "CMakeFiles/distill_test.dir/distill_test.cpp.o.d"
  "distill_test"
  "distill_test.pdb"
  "distill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
