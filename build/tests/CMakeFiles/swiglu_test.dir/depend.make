# Empty dependencies file for swiglu_test.
# This may be replaced when dependencies are built.
