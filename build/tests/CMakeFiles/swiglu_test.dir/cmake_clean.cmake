file(REMOVE_RECURSE
  "CMakeFiles/swiglu_test.dir/swiglu_test.cpp.o"
  "CMakeFiles/swiglu_test.dir/swiglu_test.cpp.o.d"
  "swiglu_test"
  "swiglu_test.pdb"
  "swiglu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swiglu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
