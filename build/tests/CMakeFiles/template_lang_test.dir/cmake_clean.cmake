file(REMOVE_RECURSE
  "CMakeFiles/template_lang_test.dir/template_lang_test.cpp.o"
  "CMakeFiles/template_lang_test.dir/template_lang_test.cpp.o.d"
  "template_lang_test"
  "template_lang_test.pdb"
  "template_lang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_lang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
