# Empty dependencies file for template_lang_test.
# This may be replaced when dependencies are built.
