# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/prune_test[1]_include.cmake")
include("/root/repo/build/tests/nn_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_modules_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/decoder_test[1]_include.cmake")
include("/root/repo/build/tests/qoptim_test[1]_include.cmake")
include("/root/repo/build/tests/packed_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_lr_test[1]_include.cmake")
include("/root/repo/build/tests/gqa_test[1]_include.cmake")
include("/root/repo/build/tests/template_lang_test[1]_include.cmake")
include("/root/repo/build/tests/distill_test[1]_include.cmake")
include("/root/repo/build/tests/anneal_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/swiglu_test[1]_include.cmake")
include("/root/repo/build/tests/kitchen_sink_test[1]_include.cmake")
include("/root/repo/build/tests/error_paths_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_induction_stats_test[1]_include.cmake")
include("/root/repo/build/tests/pin_group_test[1]_include.cmake")
include("/root/repo/build/tests/fault_tolerance_test[1]_include.cmake")
