add_test([=[PinGroups.ForwardAndDxShareResidency]=]  /root/repo/build/tests/pin_group_test [==[--gtest_filter=PinGroups.ForwardAndDxShareResidency]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PinGroups.ForwardAndDxShareResidency]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  pin_group_test_TESTS PinGroups.ForwardAndDxShareResidency)
