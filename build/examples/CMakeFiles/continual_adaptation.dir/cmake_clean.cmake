file(REMOVE_RECURSE
  "CMakeFiles/continual_adaptation.dir/continual_adaptation.cpp.o"
  "CMakeFiles/continual_adaptation.dir/continual_adaptation.cpp.o.d"
  "continual_adaptation"
  "continual_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
