# Empty dependencies file for continual_adaptation.
# This may be replaced when dependencies are built.
