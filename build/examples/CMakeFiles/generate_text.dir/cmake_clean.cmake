file(REMOVE_RECURSE
  "CMakeFiles/generate_text.dir/generate_text.cpp.o"
  "CMakeFiles/generate_text.dir/generate_text.cpp.o.d"
  "generate_text"
  "generate_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
