# Empty compiler generated dependencies file for generate_text.
# This may be replaced when dependencies are built.
