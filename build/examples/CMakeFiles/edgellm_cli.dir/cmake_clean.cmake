file(REMOVE_RECURSE
  "CMakeFiles/edgellm_cli.dir/edgellm_cli.cpp.o"
  "CMakeFiles/edgellm_cli.dir/edgellm_cli.cpp.o.d"
  "edgellm_cli"
  "edgellm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgellm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
