# Empty dependencies file for edgellm_cli.
# This may be replaced when dependencies are built.
