# Empty compiler generated dependencies file for schedule_explorer.
# This may be replaced when dependencies are built.
