# Empty dependencies file for llama_scale_projection.
# This may be replaced when dependencies are built.
