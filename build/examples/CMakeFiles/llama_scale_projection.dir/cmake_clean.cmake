file(REMOVE_RECURSE
  "CMakeFiles/llama_scale_projection.dir/llama_scale_projection.cpp.o"
  "CMakeFiles/llama_scale_projection.dir/llama_scale_projection.cpp.o.d"
  "llama_scale_projection"
  "llama_scale_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llama_scale_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
