// Serving throughput: continuous batching vs sequential single-request
// decode, swept over batch size x exit policy. The headline claim this
// bench substantiates: batched decode at batch >= 4 delivers >= 2x the
// aggregate tokens/s of one-request-at-a-time decoding at identical output
// quality (greedy outputs are checked token-for-token against the
// sequential reference).
//
// Measurements are interleaved and pooled: each repeat runs the sequential
// baseline and every engine config back to back, and throughput is computed
// from summed tokens / summed wall time across repeats. On shared or
// frequency-scaled hosts a single short run is dominated by machine noise;
// interleaving makes baseline and engine see the same conditions.
//
// Run: ./build/bench/bench_serve_throughput [--requests N] [--tokens N]
//      [--repeats N] [--csv out.csv]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "runtime/trace.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::vector<int64_t> make_prompt(int64_t n, int64_t vocab, int64_t salt) {
  std::vector<int64_t> p(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) p[static_cast<size_t>(i)] = (i * 7 + salt * 3 + 1) % vocab;
  return p;
}

// One timed run; Agg pools several of them.
struct RunResult {
  int64_t tokens = 0;
  double ms = 0.0;
  std::vector<double> lat;  ///< per-request total latency, ms
  double occupancy = 0.0;
  int64_t kv_high_water = 0;
  std::vector<std::vector<int64_t>> outputs;
};

struct Agg {
  int64_t tokens = 0;
  double ms = 0.0;
  std::vector<double> lat;
  double occupancy_sum = 0.0;
  int64_t runs = 0;
  int64_t kv_high_water = 0;

  void add(const RunResult& r) {
    tokens += r.tokens;
    ms += r.ms;
    lat.insert(lat.end(), r.lat.begin(), r.lat.end());
    occupancy_sum += r.occupancy;
    ++runs;
    kv_high_water = std::max(kv_high_water, r.kv_high_water);
  }
  double tokens_per_s() const { return static_cast<double>(tokens) / (ms / 1e3); }
  double occupancy() const { return occupancy_sum / static_cast<double>(runs); }
};

double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

/// Sequential baseline: one IncrementalDecoder, requests served strictly
/// one after another — what an edge deployment does without a serving
/// runtime.
RunResult run_sequential(nn::CausalLm& model, const std::vector<std::vector<int64_t>>& prompts,
                         int64_t n_new, int64_t exit_layer) {
  RunResult r;
  nn::IncrementalDecoder dec(model, exit_layer);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  g.exit_layer = exit_layer;
  const auto t0 = Clock::now();
  for (const auto& p : prompts) {
    const auto tr = Clock::now();
    Rng rng(0);
    r.outputs.push_back(dec.generate(p, g, rng));
    r.lat.push_back(ms_since(tr));
    r.tokens += static_cast<int64_t>(r.outputs.back().size());
  }
  r.ms = ms_since(t0);
  r.occupancy = 1.0;
  return r;
}

RunResult run_engine(nn::CausalLm& model, const std::vector<std::vector<int64_t>>& prompts,
                     int64_t n_new, serve::ExitPolicy policy, int64_t exit_layer,
                     int64_t max_batch, int64_t threads) {
  serve::EngineConfig ecfg;
  ecfg.max_batch = max_batch;
  ecfg.threads = threads;
  ecfg.queue_capacity = static_cast<int64_t>(prompts.size());
  serve::ServeEngine engine(model, ecfg);

  const auto t0 = Clock::now();
  std::vector<std::future<serve::Completion>> futs;
  for (size_t i = 0; i < prompts.size(); ++i) {
    serve::Request req;
    req.id = static_cast<int64_t>(i) + 1;
    req.prompt = prompts[i];
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    req.exit_policy = policy;
    req.exit_layer = exit_layer;
    futs.push_back(engine.submit(std::move(req)));
  }

  RunResult r;
  for (auto& f : futs) {
    serve::Completion c = f.get();
    check_arg(c.status == serve::RequestStatus::kOk, "bench: request failed");
    r.tokens += static_cast<int64_t>(c.tokens.size());
    r.lat.push_back(c.metrics.total_ms);
    r.outputs.push_back(std::move(c.tokens));
  }
  r.ms = ms_since(t0);
  engine.shutdown();
  const serve::EngineMetrics m = engine.metrics();
  r.occupancy = m.mean_batch_occupancy();
  r.kv_high_water = m.kv_high_water_bytes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) args[argv[i]] = argv[i + 1];
  const int64_t n_requests =
      args.count("--requests") ? std::stoll(args["--requests"]) : 16;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 24;
  const int64_t repeats = args.count("--repeats") ? std::stoll(args["--repeats"]) : 5;

  const nn::ModelConfig cfg = bench::bench_model_config();
  Rng rng(7);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < n_requests; ++i) prompts.push_back(make_prompt(4, cfg.vocab, i));

  std::cout << "serving " << n_requests << " requests x " << n_new << " tokens ("
            << cfg.n_layers << "L/d" << cfg.d_model << "), pooled over " << repeats
            << " interleaved repeats\n\n";

  struct Config {
    const char* name;
    serve::ExitPolicy policy;
    int64_t exit_layer;
    int64_t batch;
    int64_t threads;
    bool check_vs_final;  // greedy outputs must match the sequential reference
  };
  std::vector<Config> configs;
  const struct {
    const char* name;
    serve::ExitPolicy policy;
    int64_t exit_layer;
  } sweeps[] = {
      {"final", serve::ExitPolicy::kFinal, 0},
      {"fixed-early:4", serve::ExitPolicy::kFixedEarly, 4},
      {"voted", serve::ExitPolicy::kVoted, 0},
  };
  for (const auto& s : sweeps) {
    for (int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      configs.push_back({s.name, s.policy, s.exit_layer, batch, 1,
                         s.policy != serve::ExitPolicy::kVoted});
    }
  }
  // One multi-threaded row: batching and worker sharding compose (the
  // thread axis only pays off on multicore hosts).
  configs.push_back({"final", serve::ExitPolicy::kFinal, 0, 8, 2, true});

  // Untimed warmup + the equal-quality reference outputs per exit depth.
  const RunResult ref_final = run_sequential(model, prompts, n_new, /*exit_layer=*/0);
  const RunResult ref_early = run_sequential(model, prompts, n_new, /*exit_layer=*/4);

  Agg seq_agg;
  std::vector<Agg> aggs(configs.size());
  for (int64_t r = 0; r < repeats; ++r) {
    seq_agg.add(run_sequential(model, prompts, n_new, /*exit_layer=*/0));
    for (size_t i = 0; i < configs.size(); ++i) {
      const Config& c = configs[i];
      const RunResult run =
          run_engine(model, prompts, n_new, c.policy, c.exit_layer, c.batch, c.threads);
      if (c.check_vs_final) {
        const RunResult& want =
            c.policy == serve::ExitPolicy::kFixedEarly ? ref_early : ref_final;
        check_arg(run.outputs == want.outputs,
                  "bench: batched outputs diverge from the sequential reference");
      }
      aggs[i].add(run);
    }
  }

  runtime::TablePrinter table({14, 7, 9, 11, 9, 10, 10, 9});
  table.row({"policy", "batch", "threads", "tokens/s", "speedup", "p50 ms", "p95 ms", "occup"});
  table.rule();
  table.row({"sequential", "1", "1", fmt(seq_agg.tokens_per_s(), 0), "1.00",
             fmt(percentile(seq_agg.lat, 0.50), 2), fmt(percentile(seq_agg.lat, 0.95), 2),
             "1.00"});

  std::unique_ptr<runtime::CsvWriter> csv;
  if (args.count("--csv")) {
    csv = std::make_unique<runtime::CsvWriter>(
        args["--csv"], std::vector<std::string>{"policy", "batch", "threads", "tokens_per_s",
                                                "speedup", "p50_ms", "p95_ms", "occupancy",
                                                "kv_high_water_bytes"});
  }

  double speedup_b4_final = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const Agg& a = aggs[i];
    const double speedup = a.tokens_per_s() / seq_agg.tokens_per_s();
    if (c.policy == serve::ExitPolicy::kFinal && c.batch == 4 && c.threads == 1) {
      speedup_b4_final = speedup;
    }
    table.row({c.name, std::to_string(c.batch), std::to_string(c.threads),
               fmt(a.tokens_per_s(), 0), fmt(speedup, 2), fmt(percentile(a.lat, 0.50), 2),
               fmt(percentile(a.lat, 0.95), 2), fmt(a.occupancy(), 2)});
    if (csv) {
      csv->row(std::vector<std::string>{
          c.name, std::to_string(c.batch), std::to_string(c.threads),
          fmt(a.tokens_per_s(), 1), fmt(speedup, 3), fmt(percentile(a.lat, 0.50), 3),
          fmt(percentile(a.lat, 0.95), 3), fmt(a.occupancy(), 2),
          std::to_string(a.kv_high_water)});
    }
  }
  if (csv) csv->close();

  std::cout << "\nall greedy outputs identical to the sequential reference\n";
  std::cout << "batch-4 speedup over sequential: " << fmt(speedup_b4_final, 2) << "x"
            << (speedup_b4_final >= 2.0 ? " (>= 2x target met)" : "") << "\n";
  return 0;
}
