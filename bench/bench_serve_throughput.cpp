// Serving throughput: continuous batching vs sequential single-request
// decode, swept over batch size x exit policy. The headline claim this
// bench substantiates: batched decode at batch >= 4 delivers >= 2x the
// aggregate tokens/s of one-request-at-a-time decoding at identical output
// quality (greedy outputs are checked token-for-token against the
// sequential reference).
//
// Measurements are interleaved and pooled: each repeat runs the sequential
// baseline and every engine config back to back, and throughput is computed
// from summed tokens / summed wall time across repeats. On shared or
// frequency-scaled hosts a single short run is dominated by machine noise;
// interleaving makes baseline and engine see the same conditions.
//
// The compute-thread axis (tensor/parallel.hpp) is swept as well, and a
// machine-readable summary — a matmul thread sweep with a bitwise check
// against the serial reference, plus the serve sweep — is written to
// BENCH_parallel.json (override with --json PATH, disable with --json "").
//
// Run: ./build/bench/bench_serve_throughput [--requests N] [--tokens N]
//      [--repeats N] [--csv out.csv] [--json out.json]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "runtime/trace.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::vector<int64_t> make_prompt(int64_t n, int64_t vocab, int64_t salt) {
  std::vector<int64_t> p(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) p[static_cast<size_t>(i)] = (i * 7 + salt * 3 + 1) % vocab;
  return p;
}

// One timed run; Agg pools several of them.
struct RunResult {
  int64_t tokens = 0;
  double ms = 0.0;
  std::vector<double> lat;  ///< per-request total latency, ms
  double occupancy = 0.0;
  int64_t kv_high_water = 0;
  std::vector<std::vector<int64_t>> outputs;
};

struct Agg {
  int64_t tokens = 0;
  double ms = 0.0;
  std::vector<double> lat;
  double occupancy_sum = 0.0;
  int64_t runs = 0;
  int64_t kv_high_water = 0;

  void add(const RunResult& r) {
    tokens += r.tokens;
    ms += r.ms;
    lat.insert(lat.end(), r.lat.begin(), r.lat.end());
    occupancy_sum += r.occupancy;
    ++runs;
    kv_high_water = std::max(kv_high_water, r.kv_high_water);
  }
  double tokens_per_s() const { return static_cast<double>(tokens) / (ms / 1e3); }
  double occupancy() const { return occupancy_sum / static_cast<double>(runs); }
};

double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

/// Sequential baseline: one IncrementalDecoder, requests served strictly
/// one after another — what an edge deployment does without a serving
/// runtime.
RunResult run_sequential(nn::CausalLm& model, const std::vector<std::vector<int64_t>>& prompts,
                         int64_t n_new, int64_t exit_layer) {
  RunResult r;
  nn::IncrementalDecoder dec(model, exit_layer);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  g.exit_layer = exit_layer;
  const auto t0 = Clock::now();
  for (const auto& p : prompts) {
    const auto tr = Clock::now();
    Rng rng(0);
    r.outputs.push_back(dec.generate(p, g, rng));
    r.lat.push_back(ms_since(tr));
    r.tokens += static_cast<int64_t>(r.outputs.back().size());
  }
  r.ms = ms_since(t0);
  r.occupancy = 1.0;
  return r;
}

RunResult run_engine(nn::CausalLm& model, const std::vector<std::vector<int64_t>>& prompts,
                     int64_t n_new, serve::ExitPolicy policy, int64_t exit_layer,
                     int64_t max_batch, int64_t threads, int64_t compute_threads) {
  serve::EngineConfig ecfg;
  ecfg.max_batch = max_batch;
  ecfg.threads = threads;
  ecfg.compute_threads = compute_threads;
  ecfg.queue_capacity = static_cast<int64_t>(prompts.size());
  serve::ServeEngine engine(model, ecfg);

  const auto t0 = Clock::now();
  std::vector<std::future<serve::Completion>> futs;
  for (size_t i = 0; i < prompts.size(); ++i) {
    serve::Request req;
    req.id = static_cast<int64_t>(i) + 1;
    req.prompt = prompts[i];
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    req.exit_policy = policy;
    req.exit_layer = exit_layer;
    futs.push_back(engine.submit(std::move(req)));
  }

  RunResult r;
  for (auto& f : futs) {
    serve::Completion c = f.get();
    check_arg(c.status == serve::RequestStatus::kOk, "bench: request failed");
    r.tokens += static_cast<int64_t>(c.tokens.size());
    r.lat.push_back(c.metrics.total_ms);
    r.outputs.push_back(std::move(c.tokens));
  }
  r.ms = ms_since(t0);
  engine.shutdown();
  const serve::EngineMetrics m = engine.metrics();
  r.occupancy = m.mean_batch_occupancy();
  r.kv_high_water = m.kv_high_water_bytes;
  // Engine configs set the process-global compute thread count; restore
  // serial so the sequential baseline is never accidentally parallel.
  parallel::set_num_threads(1);
  return r;
}

/// One row of the matmul thread sweep written to BENCH_parallel.json.
struct MatmulSweepRow {
  int64_t threads = 0;
  double gflops = 0.0;
  double speedup = 0.0;
  bool bitwise_identical = false;
};

/// Times n x n matmul at each thread count and checks the result bit for
/// bit against the serial reference — the backend's contract, measured.
std::vector<MatmulSweepRow> matmul_thread_sweep(int64_t n, int64_t reps) {
  Rng rng(13);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);

  parallel::set_num_threads(1);
  const Tensor ref = ops::matmul(a, b);

  std::vector<MatmulSweepRow> rows;
  for (const int64_t nt : {1, 2, 4, 8}) {
    parallel::set_num_threads(nt);
    Tensor out;
    const auto t0 = Clock::now();
    for (int64_t r = 0; r < reps; ++r) out = ops::matmul(a, b);
    const double ms = ms_since(t0);

    MatmulSweepRow row;
    row.threads = nt;
    row.gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                 static_cast<double>(n) * static_cast<double>(reps) / (ms * 1e6);
    row.bitwise_identical = out.numel() == ref.numel();
    for (int64_t i = 0; row.bitwise_identical && i < out.numel(); ++i) {
      if (out[i] != ref[i]) row.bitwise_identical = false;
    }
    rows.push_back(row);
  }
  parallel::set_num_threads(1);
  for (auto& row : rows) row.speedup = row.gflops / rows.front().gflops;
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) args[argv[i]] = argv[i + 1];
  const int64_t n_requests =
      args.count("--requests") ? std::stoll(args["--requests"]) : 16;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 24;
  const int64_t repeats = args.count("--repeats") ? std::stoll(args["--repeats"]) : 5;

  const nn::ModelConfig cfg = bench::bench_model_config();
  Rng rng(7);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < n_requests; ++i) prompts.push_back(make_prompt(4, cfg.vocab, i));

  std::cout << "serving " << n_requests << " requests x " << n_new << " tokens ("
            << cfg.n_layers << "L/d" << cfg.d_model << "), pooled over " << repeats
            << " interleaved repeats\n\n";

  struct Config {
    const char* name;
    serve::ExitPolicy policy;
    int64_t exit_layer;
    int64_t batch;
    int64_t threads;
    int64_t compute;  // tensor-backend threads inside each decode tick
    bool check_vs_final;  // greedy outputs must match the sequential reference
  };
  std::vector<Config> configs;
  const struct {
    const char* name;
    serve::ExitPolicy policy;
    int64_t exit_layer;
  } sweeps[] = {
      {"final", serve::ExitPolicy::kFinal, 0},
      {"fixed-early:4", serve::ExitPolicy::kFixedEarly, 4},
      {"voted", serve::ExitPolicy::kVoted, 0},
  };
  for (const auto& s : sweeps) {
    for (int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      configs.push_back({s.name, s.policy, s.exit_layer, batch, 1, 1,
                         s.policy != serve::ExitPolicy::kVoted});
    }
  }
  // One multi-threaded row: batching and worker sharding compose (the
  // thread axis only pays off on multicore hosts).
  configs.push_back({"final", serve::ExitPolicy::kFinal, 0, 8, 2, 1, true});
  // Compute-thread sweep: same batch-4 greedy workload, the deterministic
  // tensor backend fanned out inside each tick. Outputs are still checked
  // token-for-token against the sequential reference at every width.
  for (int64_t compute : {int64_t{2}, int64_t{4}}) {
    configs.push_back({"final", serve::ExitPolicy::kFinal, 0, 4, 1, compute, true});
  }

  // Untimed warmup + the equal-quality reference outputs per exit depth.
  const RunResult ref_final = run_sequential(model, prompts, n_new, /*exit_layer=*/0);
  const RunResult ref_early = run_sequential(model, prompts, n_new, /*exit_layer=*/4);

  Agg seq_agg;
  std::vector<Agg> aggs(configs.size());
  for (int64_t r = 0; r < repeats; ++r) {
    seq_agg.add(run_sequential(model, prompts, n_new, /*exit_layer=*/0));
    for (size_t i = 0; i < configs.size(); ++i) {
      const Config& c = configs[i];
      const RunResult run = run_engine(model, prompts, n_new, c.policy, c.exit_layer, c.batch,
                                       c.threads, c.compute);
      if (c.check_vs_final) {
        const RunResult& want =
            c.policy == serve::ExitPolicy::kFixedEarly ? ref_early : ref_final;
        check_arg(run.outputs == want.outputs,
                  "bench: batched outputs diverge from the sequential reference");
      }
      aggs[i].add(run);
    }
  }

  runtime::TablePrinter table({14, 7, 9, 9, 11, 9, 10, 10, 9});
  table.row({"policy", "batch", "threads", "compute", "tokens/s", "speedup", "p50 ms", "p95 ms",
             "occup"});
  table.rule();
  table.row({"sequential", "1", "1", "1", fmt(seq_agg.tokens_per_s(), 0), "1.00",
             fmt(percentile(seq_agg.lat, 0.50), 2), fmt(percentile(seq_agg.lat, 0.95), 2),
             "1.00"});

  std::unique_ptr<runtime::CsvWriter> csv;
  if (args.count("--csv")) {
    csv = std::make_unique<runtime::CsvWriter>(
        args["--csv"], std::vector<std::string>{"policy", "batch", "threads", "compute_threads",
                                                "tokens_per_s", "speedup", "p50_ms", "p95_ms",
                                                "occupancy", "kv_high_water_bytes"});
  }

  double speedup_b4_final = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const Agg& a = aggs[i];
    const double speedup = a.tokens_per_s() / seq_agg.tokens_per_s();
    if (c.policy == serve::ExitPolicy::kFinal && c.batch == 4 && c.threads == 1) {
      speedup_b4_final = speedup;
    }
    table.row({c.name, std::to_string(c.batch), std::to_string(c.threads),
               std::to_string(c.compute), fmt(a.tokens_per_s(), 0), fmt(speedup, 2),
               fmt(percentile(a.lat, 0.50), 2), fmt(percentile(a.lat, 0.95), 2),
               fmt(a.occupancy(), 2)});
    if (csv) {
      csv->row(std::vector<std::string>{
          c.name, std::to_string(c.batch), std::to_string(c.threads),
          std::to_string(c.compute), fmt(a.tokens_per_s(), 1), fmt(speedup, 3),
          fmt(percentile(a.lat, 0.50), 3), fmt(percentile(a.lat, 0.95), 3),
          fmt(a.occupancy(), 2), std::to_string(a.kv_high_water)});
    }
  }
  if (csv) csv->close();

  std::cout << "\nall greedy outputs identical to the sequential reference\n";
  std::cout << "batch-4 speedup over sequential: " << fmt(speedup_b4_final, 2) << "x"
            << (speedup_b4_final >= 2.0 ? " (>= 2x target met)" : "") << "\n";

  // Machine-readable summary: the raw matmul thread sweep (with its bitwise
  // check) plus every serve sweep row.
  const std::string json_path =
      args.count("--json") ? args["--json"] : std::string("BENCH_parallel.json");
  if (!json_path.empty()) {
    const auto sweep = matmul_thread_sweep(/*n=*/192, /*reps=*/3);
    std::ofstream js(json_path);
    js << "{\n  \"matmul_thread_sweep\": {\n    \"n\": 192,\n    \"rows\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      js << "      {\"threads\": " << sweep[i].threads << ", \"gflops\": "
         << fmt(sweep[i].gflops, 3) << ", \"speedup\": " << fmt(sweep[i].speedup, 3)
         << ", \"bitwise_identical\": " << (sweep[i].bitwise_identical ? "true" : "false")
         << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    js << "    ]\n  },\n  \"serve_sweep\": [\n";
    js << "    {\"policy\": \"sequential\", \"batch\": 1, \"threads\": 1, "
          "\"compute_threads\": 1, \"tokens_per_s\": "
       << fmt(seq_agg.tokens_per_s(), 1) << ", \"speedup\": 1.0},\n";
    for (size_t i = 0; i < configs.size(); ++i) {
      const Config& c = configs[i];
      js << "    {\"policy\": \"" << c.name << "\", \"batch\": " << c.batch
         << ", \"threads\": " << c.threads << ", \"compute_threads\": " << c.compute
         << ", \"tokens_per_s\": " << fmt(aggs[i].tokens_per_s(), 1) << ", \"speedup\": "
         << fmt(aggs[i].tokens_per_s() / seq_agg.tokens_per_s(), 3) << "}"
         << (i + 1 < configs.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"greedy_outputs_bitwise_identical\": true\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
