// Table R4 (generality check) — the Table-R1 comparison repeated on the
// *structured* template language, whose cloze task needs a long-range
// subject->object dependency rather than order-1 statistics. If Edge-LLM's
// savings only worked on trivially local data, this is where it would show.
#include <iostream>

#include "bench_common.hpp"
#include "data/template_lang.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

data::TemplateLanguage base_lang() {
  data::TemplateLanguage::Config cfg;
  cfg.n_subjects = 8;
  cfg.n_verbs = 8;
  cfg.n_objects = 12;
  cfg.n_modifiers = 4;
  cfg.preferred = 2;
  cfg.seed = 31;
  return data::TemplateLanguage(cfg);
}

data::LmBatch sample_batch(const data::TemplateLanguage& lang, Rng& rng) {
  const auto stream = lang.sample(edgellm::bench::kBatch * (edgellm::bench::kSeq + 1), rng);
  return data::make_lm_batches(stream, edgellm::bench::kBatch, edgellm::bench::kSeq)[0];
}

}  // namespace

int main() {
  std::cout << "=== Table R4: adaptation on the structured template language ===\n\n";

  const data::TemplateLanguage base = base_lang();
  const data::TemplateLanguage target = base.shifted(0.6f, 77);

  nn::ModelConfig cfg = edgellm::bench::bench_model_config();
  cfg.vocab = base.vocab();

  std::cout << "pretraining on the base language...\n";
  Rng rng(7);
  nn::CausalLm model(cfg, rng);
  {
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    t.sampling = core::DepthSampling::kCyclic;
    core::AdaptiveLayerTuner pre(model, t, Rng(8));
    Rng drng(9);
    for (int i = 0; i < edgellm::bench::kPretrainIters; ++i) pre.step(sample_batch(base, drng));
  }
  const auto base_state = model.state_dict();

  // Held-out evaluation on the target language.
  Rng eval_rng(555);
  std::vector<data::LmBatch> eval_set;
  for (int i = 0; i < 8; ++i) eval_set.push_back(sample_batch(target, eval_rng));
  Rng mcq_rng(556);
  const auto cloze = target.make_cloze_set(64, 4, mcq_rng);

  const float pre_loss = data::lm_loss(model, eval_set, cfg.n_layers);
  const float pre_acc =
      data::mcq_accuracy(data::exit_logits_fn(model, cfg.n_layers), cloze, cfg.vocab);
  std::cout << "before adaptation: eval loss " << fmt(pre_loss, 3) << ", cloze acc "
            << fmt(pre_acc, 3) << "\n\n";

  runtime::TablePrinter table({14, 12, 10, 11});
  table.row({"method", "eval loss", "ppl", "cloze acc"});
  table.rule();

  auto adapt = [&](core::TunerConfig t, uint64_t seed) {
    core::AdaptiveLayerTuner tuner(model, t, Rng(seed));
    Rng drng(404);
    for (int64_t i = 0; i < edgellm::bench::kAdaptIters; ++i) {
      tuner.step(sample_batch(target, drng));
    }
  };

  // Vanilla FT.
  {
    model.load_state_dict(base_state);
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    adapt(t, 1);
    const float loss = data::lm_loss(model, eval_set, cfg.n_layers);
    table.row({"vanilla FT", fmt(loss, 3), fmt(data::perplexity(loss), 2),
               fmt(data::mcq_accuracy(data::exit_logits_fn(model, cfg.n_layers), cloze,
                                      cfg.vocab),
                   3)});
  }

  // Edge-LLM: sensitivity on base language, LUC, windowed tuning, voting.
  {
    model.load_state_dict(base_state);
    Rng crng(31);
    std::vector<data::LmBatch> sens_calib, calib;
    for (int i = 0; i < 6; ++i) sens_calib.push_back(sample_batch(base, crng));
    for (int i = 0; i < 4; ++i) calib.push_back(sample_batch(target, crng));

    core::SensitivityConfig sens_cfg;
    const core::SensitivityProfile prof =
        core::analyze_sensitivity(model, sens_calib, sens_cfg);
    core::LucConfig luc;
    luc.target_effective_bits = 3.0;
    luc.search = core::LucConfig::Search::kExactDp;
    const core::LucPolicy policy = core::search_luc_policy(prof, sens_cfg, luc);
    core::apply_policy(model, policy);

    core::TunerConfig t;
    t.sampling = core::DepthSampling::kUniform;
    t.backprop_window = 2;
    t.optim.lr = 1e-2f;
    adapt(t, 2);

    core::ExitVoter voter(model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    const float loss = voter.voted_loss(eval_set);
    table.row({"Edge-LLM", fmt(loss, 3), fmt(data::perplexity(loss), 2),
               fmt(data::mcq_accuracy(voter.logits_fn(), cloze, cfg.vocab), 3)});
  }

  std::cout << "\nShape to check: both methods recover the shifted language; Edge-LLM stays\n"
               "within a few percent of vanilla on eval loss AND on the long-range cloze\n"
               "accuracy, despite 3-effective-bit weights and a 2-layer backprop window.\n";
  return 0;
}
