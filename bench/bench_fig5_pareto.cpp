// Figure R5 — accuracy vs modelled-latency Pareto frontier across
// compression budgets, Edge-LLM (layer-wise) vs uniform allocation.
// Each point: compress, adapt briefly, evaluate voted loss + modelled
// per-iteration latency.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  std::cout << "=== Figure R5: quality vs per-iteration latency across budgets ===\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const nn::ModelConfig cfg = model->config();
  const auto eval_set = bench::target_eval_set();
  const runtime::SimulatorConfig sim = bench::bench_simulator();

  const std::vector<data::LmBatch> sens_calib = bench::base_calib_set();
  const std::vector<data::LmBatch> calib = bench::target_calib_set();
  core::SensitivityConfig sens_cfg;
  const core::SensitivityProfile prof = core::analyze_sensitivity(*model, sens_calib, sens_cfg);

  const int64_t adapt_iters = 150;
  auto run_point = [&](const core::LucPolicy& policy) {
    model->load_state_dict(base_state);
    core::apply_policy(*model, policy);
    core::TunerConfig t;
    t.sampling = core::DepthSampling::kUniform;
    t.backprop_window = 2;
    t.optim.lr = 1e-2f;
    core::AdaptiveLayerTuner tuner(*model, t, Rng(55));
    Rng data_rng(404);
    const data::MarkovChain domain = bench::target_domain();
    for (int64_t i = 0; i < adapt_iters; ++i) {
      tuner.step(data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng));
    }
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    const float loss = voter.voted_loss(eval_set);
    const double ms =
        runtime::simulate_method(cfg, bench::edge_llm_method_spec(cfg, policy), sim).expected_ms;
    core::clear_policy(*model);
    return std::make_pair(loss, ms);
  };

  runtime::TablePrinter table({10, 14, 14, 12, 12});
  table.row({"budget", "policy", "voted loss", "ppl", "iter ms"});
  table.rule();

  std::vector<std::tuple<double, float, double>> luc_points, uni_points;
  for (double budget : {2.0, 2.5, 3.0, 4.0, 6.0}) {
    core::LucConfig luc;
    luc.target_effective_bits = budget;
    luc.search = core::LucConfig::Search::kExactDp;
    const core::LucPolicy lp = core::search_luc_policy(prof, sens_cfg, luc);
    const auto [l_loss, l_ms] = run_point(lp);
    luc_points.emplace_back(budget, l_loss, l_ms);
    table.row({fmt(budget, 1) + "b", "LUC (layerwise)", fmt(l_loss, 4),
               fmt(data::perplexity(l_loss), 2), fmt(l_ms, 3)});

    const core::LucPolicy up = core::uniform_policy(cfg.n_layers, sens_cfg, budget);
    const auto [u_loss, u_ms] = run_point(up);
    uni_points.emplace_back(budget, u_loss, u_ms);
    table.row({fmt(budget, 1) + "b", "uniform", fmt(u_loss, 4),
               fmt(data::perplexity(u_loss), 2), fmt(u_ms, 3)});
    table.rule();
  }

  // ASCII scatter: loss (y, lower better) vs latency bucket.
  std::cout << "\nLUC-vs-uniform voted loss by budget (lower is better):\n";
  for (size_t i = 0; i < luc_points.size(); ++i) {
    const auto& [b, ll, lm] = luc_points[i];
    const auto& [b2, ul, um] = uni_points[i];
    std::cout << fmt(b, 1) << "b  LUC " << fmt(ll, 3) << "  uniform " << fmt(ul, 3)
              << "  (LUC advantage " << fmt(ul - ll, 3) << ")\n";
  }

  std::cout << "\nShape to check: at tight budgets the layer-wise frontier dominates the\n"
               "uniform one (lower loss at equal-or-lower latency); the gap closes as the\n"
               "budget loosens.\n";
  return 0;
}
