// Out-of-process load generation against the HTTP front door (src/net):
// real loopback sockets, real HTTP/1.1, streamed chunked responses — the
// whole serving path a deployed client exercises, including the parser,
// the event loop's write-buffer backpressure and the 429/503 shed surface.
//
// By default the bench hosts the server itself on a background thread (an
// ephemeral port, the same resilience policy as bench_serve_overload) so a
// bare `./bench_serve_http` measures end to end; `--addr host:port` points
// the generator at an *externally launched* server instead (the CI http
// job runs `edgellm_cli serve --listen` and drives it this way).
//
// Methodology mirrors bench_serve_overload: the closed-loop HTTP service
// rate is calibrated first (keep-alive clients, back-to-back requests),
// then seeded Poisson arrivals replay at 0.25x..2.0x of it, each worker
// owning one keep-alive connection. At 2x the engine must shed visibly
// (429/503) while the p99 of successful streams stays within a small
// multiple of the unloaded p99.
//
// A machine-readable summary goes to BENCH_serve_http.json (--json PATH,
// "" disables). --check-http exits non-zero when: any response fails to
// parse as HTTP or carries an unexpected status, a load point completes no
// work, the 2x point never sheds, the p99 ratio blows past a generous CI
// bar, or any request goes unanswered (sent != answered).
//
// Run: ./build/bench/bench_serve_http [--seconds S] [--repeats N]
//      [--tokens N] [--addr host:port] [--json out.json] [--check-http]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

constexpr int64_t kPromptLen = 4;

std::string make_body(int64_t id, int64_t n_new, int64_t vocab, int64_t salt) {
  std::string b = "{\"id\": " + std::to_string(id) + ", \"prompt\": [";
  for (int64_t i = 0; i < kPromptLen; ++i) {
    if (i > 0) b += ", ";
    b += std::to_string((i * 7 + salt * 3 + 1) % vocab);
  }
  b += "], \"max_new_tokens\": " + std::to_string(n_new) + ", \"temperature\": 0.0}";
  return b;
}

/// Outcome of one HTTP request as the client saw it.
struct HttpResult {
  bool answered = false;  ///< a complete, parseable HTTP response arrived
  int status = 0;
  int64_t tokens = 0;    ///< token lines streamed before the final object
  double ttfb_ms = 0.0;  ///< request written -> first response byte
  double total_ms = 0.0; ///< request written -> response complete
  std::string error;     ///< transport/parse failure description
};

/// A blocking keep-alive HTTP/1.1 client: one connection, sequential
/// requests, incremental dechunking. Deliberately independent of src/net —
/// the bench must not trust the code under test to read its own output.
class HttpClient {
 public:
  HttpClient(std::string host, int port) : host_(std::move(host)), port_(port) {}
  ~HttpClient() { reset(); }

  HttpResult post(const std::string& target, const std::string& body) {
    return request_("POST", target, body);
  }
  HttpResult get(const std::string& target) { return request_("GET", target, ""); }

 private:
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  bool ensure_connected() {
    if (fd_ >= 0) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      reset();
      return false;
    }
    return true;
  }

  /// Reads until `buf_` contains `needle`; returns its end offset or npos.
  size_t read_until(const std::string& needle) {
    while (true) {
      const size_t at = buf_.find(needle);
      if (at != std::string::npos) return at + needle.size();
      if (!read_more()) return std::string::npos;
    }
  }

  bool read_exact(size_t n) {
    while (buf_.size() < n) {
      if (!read_more()) return false;
    }
    return true;
  }

  bool read_more() {
    char tmp[8192];
    const ssize_t r = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (r <= 0) return false;
    buf_.append(tmp, static_cast<size_t>(r));
    return true;
  }

  HttpResult request_(const char* method, const std::string& target, const std::string& body) {
    HttpResult res;
    if (!ensure_connected()) {
      res.error = "connect failed";
      return res;
    }
    std::string req = std::string(method) + " " + target + " HTTP/1.1\r\nHost: " + host_ +
                      "\r\nContent-Type: application/json\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body;
    const auto t0 = Clock::now();
    size_t off = 0;
    while (off < req.size()) {
      const ssize_t n = ::send(fd_, req.data() + off, req.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        // A keep-alive connection the server timed out or closed: retry
        // once on a fresh one.
        reset();
        if (!ensure_connected()) {
          res.error = "send failed";
          return res;
        }
        off = 0;
        continue;
      }
      off += static_cast<size_t>(n);
    }

    const size_t head_end = read_until("\r\n\r\n");
    if (head_end == std::string::npos) {
      res.error = "no response head";
      reset();
      return res;
    }
    res.ttfb_ms = ms_since(t0);
    const std::string head = buf_.substr(0, head_end);
    buf_.erase(0, head_end);
    if (head.rfind("HTTP/1.1 ", 0) != 0 || head.size() < 12) {
      res.error = "bad status line";
      reset();
      return res;
    }
    res.status = std::atoi(head.c_str() + 9);
    std::string lower = head;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    const bool chunked = lower.find("transfer-encoding: chunked") != std::string::npos;
    const bool close_conn = lower.find("connection: close") != std::string::npos;

    std::string payload;
    if (chunked) {
      while (true) {
        const size_t line_end = read_until("\r\n");
        if (line_end == std::string::npos) {
          res.error = "truncated chunk size";
          reset();
          return res;
        }
        const long sz = std::strtol(buf_.c_str(), nullptr, 16);
        buf_.erase(0, line_end);
        if (sz < 0) {
          res.error = "bad chunk size";
          reset();
          return res;
        }
        if (!read_exact(static_cast<size_t>(sz) + 2)) {
          res.error = "truncated chunk";
          reset();
          return res;
        }
        if (sz == 0) {
          buf_.erase(0, 2);
          break;
        }
        payload.append(buf_, 0, static_cast<size_t>(sz));
        buf_.erase(0, static_cast<size_t>(sz) + 2);
      }
    } else {
      const size_t cl_at = lower.find("content-length: ");
      if (cl_at == std::string::npos) {
        res.error = "no framing";
        reset();
        return res;
      }
      const long cl = std::strtol(lower.c_str() + cl_at + 16, nullptr, 10);
      if (cl < 0 || !read_exact(static_cast<size_t>(cl))) {
        res.error = "truncated body";
        reset();
        return res;
      }
      payload.assign(buf_, 0, static_cast<size_t>(cl));
      buf_.erase(0, static_cast<size_t>(cl));
    }
    res.total_ms = ms_since(t0);
    res.answered = true;

    // A streamed 200 is token lines then the final completion object; only
    // the token lines count as streamed tokens.
    size_t lines = 0;
    for (const char c : payload) {
      if (c == '\n') ++lines;
    }
    if (res.status == 200 && chunked && lines > 0) res.tokens = static_cast<int64_t>(lines) - 1;
    if (close_conn) reset();
    return res;
  }

  std::string host_;
  int port_ = 0;
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the current parse point
};

/// Closed-loop calibration over HTTP: `workers` keep-alive clients send
/// back-to-back until `total` requests complete; the drain rate is the
/// service capacity the open-loop arrival rates are expressed against.
double calibrate_http_rps(const std::string& host, int port, int64_t total, int64_t workers,
                          int64_t n_new, int64_t vocab) {
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> ok{0};
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (int64_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      HttpClient client(host, port);
      while (true) {
        const int64_t i = next.fetch_add(1);
        if (i >= total) break;
        const HttpResult r =
            client.post("/v1/completions", make_body(0, n_new, vocab, i + w * 131));
        if (r.answered && r.status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double ms = ms_since(t0);
  check_arg(ok.load() > 0, "bench: calibration completed nothing — is the server up?");
  return static_cast<double>(ok.load()) / (ms / 1e3);
}

/// Pooled outcome of one load point.
struct LoadRow {
  double load = 0.0;
  double arrival_rps = 0.0;
  int64_t sent = 0;
  int64_t answered = 0;
  int64_t ok = 0;
  int64_t shed_429 = 0;
  int64_t unavailable_503 = 0;
  int64_t other_status = 0;
  int64_t transport_errors = 0;
  int64_t ok_tokens = 0;
  double wall_ms = 0.0;
  std::vector<double> lat;   ///< total_ms of every 200 response
  std::vector<double> ttfb;  ///< ttfb_ms of every 200 response

  double goodput_tok_s() const { return static_cast<double>(ok_tokens) / (wall_ms / 1e3); }
};

/// One open-loop run: a seeded Poisson arrival schedule partitioned
/// round-robin over `workers` keep-alive connections. Arrivals fire on
/// schedule whether or not the server is coping — that is what makes 2x an
/// overload, and what the 429/503 surface exists to absorb.
void run_load(const std::string& host, int port, LoadRow& row, double rate_rps,
              double duration_s, int64_t n_new, int64_t vocab, uint64_t seed) {
  const int64_t offered = std::max<int64_t>(16, std::llround(rate_rps * duration_s));
  const int64_t workers = std::min<int64_t>(32, std::max<int64_t>(4, offered / 4));
  Rng rng(seed);
  std::vector<double> arrive_ms(static_cast<size_t>(offered));
  double at = 0.0;
  for (int64_t i = 0; i < offered; ++i) {
    const double u = static_cast<double>(rng.uniform(0.0f, 1.0f));
    at += -std::log1p(-std::min(u, 0.999999)) / rate_rps * 1e3;
    arrive_ms[static_cast<size_t>(i)] = at;
  }

  std::mutex mu;  // guards row during the merge
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  for (int64_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      HttpClient client(host, port);
      LoadRow local;
      for (int64_t i = w; i < offered; i += workers) {
        const auto due =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(arrive_ms[static_cast<size_t>(i)]));
        std::this_thread::sleep_until(due);
        ++local.sent;
        const HttpResult r =
            client.post("/v1/completions", make_body(0, n_new, vocab, i));
        if (!r.answered) {
          ++local.transport_errors;
          continue;
        }
        ++local.answered;
        if (r.status == 200) {
          ++local.ok;
          local.ok_tokens += r.tokens;
          local.lat.push_back(r.total_ms);
          local.ttfb.push_back(r.ttfb_ms);
        } else if (r.status == 429) {
          ++local.shed_429;
        } else if (r.status == 503) {
          ++local.unavailable_503;
        } else {
          ++local.other_status;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      row.sent += local.sent;
      row.answered += local.answered;
      row.ok += local.ok;
      row.shed_429 += local.shed_429;
      row.unavailable_503 += local.unavailable_503;
      row.other_status += local.other_status;
      row.transport_errors += local.transport_errors;
      row.ok_tokens += local.ok_tokens;
      row.lat.insert(row.lat.end(), local.lat.begin(), local.lat.end());
      row.ttfb.insert(row.ttfb.end(), local.ttfb.begin(), local.ttfb.end());
    });
  }
  for (auto& t : pool) t.join();
  row.wall_ms += ms_since(t0);
}

/// The same resilience policy as bench_serve_overload, so the two benches'
/// shed behaviour is comparable (there at the submit() API, here over HTTP).
serve::EngineConfig overload_cfg() {
  serve::EngineConfig e;
  e.threads = 2;
  e.max_batch = 4;
  e.queue_capacity = 16;
  e.admission.shed_policy = serve::ShedPolicy::kRejectNew;
  e.admission.degrade_queue_ratio = 0.125;
  e.admission.shed_queue_ratio = 0.375;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool check_http = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-http") == 0) {
      check_http = true;
    } else if (i + 1 < argc) {
      args[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  const double duration_s = args.count("--seconds") ? std::stod(args["--seconds"]) : 1.2;
  const int64_t repeats = args.count("--repeats") ? std::stoll(args["--repeats"]) : 2;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 16;
  const int64_t vocab = 32;  // both the bench model and edgellm_cli pretrain use vocab 32

  // Server: in-process on an ephemeral port by default, --addr to target an
  // externally launched `edgellm_cli serve --listen`.
  std::string host = "127.0.0.1";
  int port = 0;
  std::unique_ptr<nn::CausalLm> model;
  std::unique_ptr<serve::ServeEngine> engine;
  std::unique_ptr<net::HttpServer> server;
  std::thread server_thread;
  if (args.count("--addr")) {
    const std::string addr = args["--addr"];
    const size_t colon = addr.rfind(':');
    check_arg(colon != std::string::npos, "--addr must be host:port");
    host = addr.substr(0, colon);
    port = std::atoi(addr.c_str() + colon + 1);
  } else {
    const nn::ModelConfig cfg = bench::bench_model_config();
    Rng rng(7);
    model = std::make_unique<nn::CausalLm>(cfg, rng);
    engine = std::make_unique<serve::ServeEngine>(*model, overload_cfg());
    net::ServerConfig scfg;
    scfg.max_connections = 128;
    server = std::make_unique<net::HttpServer>(*engine, scfg);
    port = server->port();
    server_thread = std::thread([&] { server->run(); });
  }

  {
    HttpClient probe(host, port);
    HttpResult h;
    for (int i = 0; i < 50 && !(h.answered && h.status == 200); ++i) {
      h = probe.get("/healthz");
      if (!h.answered) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    check_arg(h.answered && h.status == 200, "bench: /healthz never came up at " + host + ":" +
                                                 std::to_string(port));
  }

  // Warm pass, then the measured calibration.
  calibrate_http_rps(host, port, 8, 4, n_new, vocab);
  const double service_rps = calibrate_http_rps(host, port, 32, 4, n_new, vocab);
  std::cout << "calibrated HTTP service rate: " << fmt(service_rps, 1) << " req/s at " << host
            << ":" << port << " (" << n_new << " tokens/request, "
            << (args.count("--addr") ? "external server" : "in-process server")
            << "); open-loop arrivals for " << fmt(duration_s, 1) << "s x " << repeats
            << " repeats per load\n\n";

  const double loads[] = {0.25, 0.5, 1.0, 2.0};
  std::vector<LoadRow> rows;
  for (const double load : loads) {
    LoadRow row;
    row.load = load;
    row.arrival_rps = load * service_rps;
    for (int64_t r = 0; r < repeats; ++r) {
      run_load(host, port, row, row.arrival_rps, duration_s, n_new, vocab,
               /*seed=*/0x177B + static_cast<uint64_t>(load * 100) * 31 +
                   static_cast<uint64_t>(r));
    }
    rows.push_back(std::move(row));
  }

  runtime::TablePrinter table({6, 9, 7, 7, 7, 7, 7, 9, 9, 9, 11});
  table.row({"load", "rps", "sent", "ok", "429", "503", "err", "ttfb p50", "p50 ms", "p99 ms",
             "goodput t/s"});
  table.rule();
  for (const LoadRow& r : rows) {
    table.row({fmt(r.load, 2), fmt(r.arrival_rps, 1), std::to_string(r.sent),
               std::to_string(r.ok), std::to_string(r.shed_429),
               std::to_string(r.unavailable_503),
               std::to_string(r.transport_errors + r.other_status),
               fmt(percentile(r.ttfb, 0.50), 2), fmt(percentile(r.lat, 0.50), 2),
               fmt(percentile(r.lat, 0.99), 2), fmt(r.goodput_tok_s(), 0)});
  }

  const double unloaded_p99 = percentile(rows.front().lat, 0.99);
  const double loaded_p99 = percentile(rows.back().lat, 0.99);
  const double p99_ratio_2x = unloaded_p99 > 0.0 ? loaded_p99 / unloaded_p99 : 0.0;
  const int64_t shed_2x = rows.back().shed_429 + rows.back().unavailable_503;
  std::cout << "\np99 at 2.0x load / p99 at 0.25x load: " << fmt(p99_ratio_2x, 2)
            << "x (server shed " << shed_2x << " requests over HTTP at 2x)\n";

  // In-process mode: drain the server before reading final engine state.
  if (server) {
    server->begin_drain();
    server_thread.join();
    engine->shutdown();
    const serve::EngineMetrics m = engine->metrics();
    check_arg(m.submitted == m.completed + m.rejected + m.cancelled + m.timed_out + m.shed +
                                 m.expired + m.failed,
              "bench: request conservation violated");
    const obs::MetricsSnapshot snap = engine->registry().snapshot();
    check_arg(snap.counter("kv/acquired") == snap.counter("kv/released"),
              "bench: KV slots leaked across drain");
  }

  const std::string json_path =
      args.count("--json") ? args["--json"] : std::string("BENCH_serve_http.json");
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n  \"service_rate_rps\": " << fmt(service_rps, 1)
       << ",\n  \"tokens_per_request\": " << n_new
       << ",\n  \"server\": \"" << (args.count("--addr") ? "external" : "in-process")
       << "\",\n  \"shed_policy\": \"reject-new\",\n  \"loads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const LoadRow& r = rows[i];
      js << "    {\"load\": " << fmt(r.load, 2) << ", \"arrival_rps\": " << fmt(r.arrival_rps, 1)
         << ", \"sent\": " << r.sent << ", \"answered\": " << r.answered
         << ", \"ok\": " << r.ok << ", \"shed_429\": " << r.shed_429
         << ", \"unavailable_503\": " << r.unavailable_503
         << ", \"other_status\": " << r.other_status
         << ", \"transport_errors\": " << r.transport_errors
         << ", \"ttfb_p50_ms\": " << fmt(percentile(r.ttfb, 0.50), 3)
         << ", \"p50_ms\": " << fmt(percentile(r.lat, 0.50), 3)
         << ", \"p99_ms\": " << fmt(percentile(r.lat, 0.99), 3)
         << ", \"goodput_tok_s\": " << fmt(r.goodput_tok_s(), 1) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"p99_ratio_2x\": " << fmt(p99_ratio_2x, 3)
       << ",\n  \"shed_over_http_at_2x\": " << shed_2x << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (check_http) {
    // Generous CI bars — shared runners are noisy; the committed baseline
    // documents the real margins.
    bool ok = true;
    for (const LoadRow& r : rows) {
      if (r.ok <= 0 || r.ok_tokens <= 0) {
        std::cerr << "CHECK FAILED: no successful streams at load " << fmt(r.load, 2) << "x\n";
        ok = false;
      }
      if (r.sent != r.answered + r.transport_errors) {
        std::cerr << "CHECK FAILED: sent != answered + errors at load " << fmt(r.load, 2)
                  << "x\n";
        ok = false;
      }
      if (r.other_status > 0) {
        std::cerr << "CHECK FAILED: unexpected HTTP status at load " << fmt(r.load, 2) << "x\n";
        ok = false;
      }
      if (r.transport_errors > r.sent / 10) {
        std::cerr << "CHECK FAILED: >10% transport errors at load " << fmt(r.load, 2) << "x\n";
        ok = false;
      }
    }
    if (shed_2x <= 0) {
      std::cerr << "CHECK FAILED: server never shed over HTTP at 2x load\n";
      ok = false;
    }
    if (!(p99_ratio_2x > 0.0 && p99_ratio_2x <= 5.0)) {
      std::cerr << "CHECK FAILED: p99 ratio at 2x load is " << fmt(p99_ratio_2x, 2)
                << "x (want (0, 5])\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "http checks passed\n";
  }
  return 0;
}
