// Figure R9 (extension) — decode-time KV-cache footprint: standard MHA vs
// grouped-query attention, fp32 vs int8 cache, measured on the real
// incremental decoder plus an analytic 7B/2048-context projection. The KV
// cache is the dominant inference-memory cost on edge devices once weights
// are compressed, so these two knobs complete the deployment story.
#include <iostream>

#include "bench_common.hpp"
#include "nn/decoder.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;
using runtime::fmt_bytes;

double quality_probe(nn::CausalLm& model, bool quantize_kv, const data::MarkovChain& domain) {
  // Mean next-token NLL of incremental decoding over held-out streams.
  Rng rng(777);
  double total = 0.0;
  int64_t counted = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const auto stream = domain.sample(24, rng);
    nn::IncrementalDecoder dec(model, 0, quantize_kv);
    dec.prime({stream[0]});
    for (size_t i = 1; i < stream.size(); ++i) {
      const Tensor logp = edgellm::ops::log_softmax_lastdim(
          dec.logits().reshape({int64_t{1}, model.config().vocab}));
      total += -logp[stream[i]];
      ++counted;
      if (i < stream.size() - 1) dec.step(stream[i]);
    }
  }
  return total / counted;
}

}  // namespace

int main() {
  std::cout << "=== Figure R9: decode-time KV-cache footprint (MHA/GQA x fp32/int8) ===\n\n";

  // Measured on real decoders at bench scale: train nothing, just compare
  // footprint and decode quality of the same pretrained weights. GQA needs
  // its own pretraining (different architecture).
  const data::MarkovChain domain = bench::base_domain();

  struct Variant {
    const char* name;
    int64_t kv_heads;  // 0 = full MHA
    bool quantize;
  };
  const Variant variants[] = {
      {"MHA, fp32 cache", 0, false},
      {"MHA, int8 cache", 0, true},
      {"GQA-2, fp32 cache", 2, false},
      {"GQA-2, int8 cache", 2, true},
  };

  runtime::TablePrinter table({20, 14, 14, 12});
  table.row({"variant", "kv @ 32 pos", "bytes/pos", "decode nll"});
  table.rule();

  for (const Variant& v : variants) {
    nn::ModelConfig cfg = bench::bench_model_config();
    cfg.n_kv_heads = v.kv_heads;
    Rng rng(7);
    auto model = core::pretrain_base_model(cfg, domain, 600, bench::kBatch, bench::kSeq, rng);

    nn::IncrementalDecoder dec(*model, 0, v.quantize);
    Rng srng(9);
    const auto stream = domain.sample(32, srng);
    dec.prime(stream);
    const double nll = quality_probe(*model, v.quantize, domain);
    table.row({v.name, fmt_bytes(static_cast<double>(dec.kv_cache_bytes())),
               fmt(static_cast<double>(dec.kv_cache_bytes()) / 32.0, 1), fmt(nll, 4)});
  }

  // Analytic projection: LLaMA-7B shapes at full 2048-token context.
  std::cout << "\n--- 7B-scale projection, 2048-token context ---\n";
  runtime::TablePrinter t2({20, 16});
  t2.row({"variant", "kv cache"});
  t2.rule();
  const double layers = 32, ctx = 2048, dh = 128;
  auto kv_gb = [&](double kv_heads, double bytes_per_elem, double scale_bytes) {
    return (layers * 2.0 * ctx * (kv_heads * dh * bytes_per_elem + scale_bytes)) / 1e9;
  };
  t2.row({"MHA, fp16 cache", fmt(kv_gb(32, 2.0, 0.0), 2) + " GB"});
  t2.row({"MHA, int8 cache", fmt(kv_gb(32, 1.0, 4.0), 2) + " GB"});
  t2.row({"GQA-8, fp16 cache", fmt(kv_gb(8, 2.0, 0.0), 2) + " GB"});
  t2.row({"GQA-8, int8 cache", fmt(kv_gb(8, 1.0, 4.0), 2) + " GB"});

  std::cout << "\nShape to check: int8 quarters (vs fp32) / halves (vs fp16) the cache and\n"
               "GQA divides it by the head-group factor, both at negligible decode-NLL\n"
               "cost; stacked, 7B decoding drops from ~1 GB of KV to ~0.13 GB.\n";
  return 0;
}
