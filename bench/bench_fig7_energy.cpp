// Figure R7 — per-iteration energy breakdown (DRAM / MAC / SRAM) across
// the Edge-LLM component stack, at paper scale. Energy is the constraint
// the paper's motivating edge scenario ultimately answers to; DRAM traffic
// dominance is the standard on-device finding this model should reproduce.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

void report(const char* title, const nn::ModelConfig& cfg,
            const std::vector<std::pair<std::string, runtime::MethodSpec>>& methods,
            runtime::SimulatorConfig sim) {
  std::cout << "--- " << title << " ---\n";
  runtime::TablePrinter table({26, 14, 12, 12, 12, 10});
  table.row({"configuration", "energy uJ", "dram uJ", "mac uJ", "sram uJ", "dram %"});
  table.rule();
  std::vector<std::pair<std::string, double>> totals;
  for (const auto& [name, spec] : methods) {
    const runtime::MethodReport rep = runtime::simulate_method(cfg, spec, sim);
    table.row({name, fmt(rep.expected_energy_uj, 1), fmt(rep.dram_energy_uj, 1),
               fmt(rep.mac_energy_uj, 1), fmt(rep.sram_energy_uj, 1),
               fmt(100.0 * rep.dram_energy_uj / rep.expected_energy_uj, 1)});
    totals.emplace_back(name, rep.expected_energy_uj);
  }
  std::cout << "\n";
  const double base = totals.front().second;
  for (const auto& [name, e] : totals) {
    std::cout << fmt(base / e, 2) << "x |";
    for (int i = 0; i < static_cast<int>(base / e * 12); ++i) std::cout << '#';
    std::cout << "  " << name << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure R7: per-iteration energy breakdown ===\n\n";

  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure

  core::LucPolicy luc;
  luc.layers.assign(32, core::LayerPolicy{4, 0.5f});

  runtime::MethodSpec vanilla = runtime::vanilla_method(llama);

  runtime::MethodSpec with_luc = vanilla;
  with_luc.name = "+LUC";
  with_luc.policy = luc;

  runtime::MethodSpec full = with_luc;
  full.name = "Edge-LLM";
  full.exits = {16, 24, 32};
  full.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  full.backprop_window = 8;
  full.update_embeddings = false;

  runtime::SimulatorConfig sim7b;
  sim7b.batch = 1;
  sim7b.seq = 512;
  report("LLaMA-7B-scale projection (b1 x s512)", llama,
         {{"vanilla", vanilla}, {"+LUC", with_luc}, {"Edge-LLM (full)", full}}, sim7b);

  // Bench-scale for completeness (bandwidth-bound: DRAM dominates even more).
  const nn::ModelConfig small = edgellm::bench::bench_model_config();
  core::LucPolicy small_luc;
  small_luc.layers.assign(static_cast<size_t>(small.n_layers), core::LayerPolicy{3, 0.5f});
  runtime::MethodSpec sv = runtime::vanilla_method(small);
  runtime::MethodSpec se = edgellm::bench::edge_llm_method_spec(small, small_luc);
  report("bench scale (6L/d32, b8 x s16)", small, {{"vanilla", sv}, {"Edge-LLM", se}},
         edgellm::bench::bench_simulator());

  std::cout << "Shape to check: data movement (DRAM + SRAM) dominates iteration energy over\n"
               "MAC arithmetic — the standard edge finding; LUC cuts both MAC energy\n"
               "(fewer, narrower MACs) and movement energy (smaller weights), and the\n"
               "adaptive window removes most backward-pass energy wholesale.\n";
  return 0;
}
