// Figure R4 — adaptive layer voting ablation.
//
// After an Edge-LLM adaptation run: held-out loss / PPL / MCQ accuracy of
// every single exit vs the four voting modes, plus a depth-sampling
// strategy ablation (uniform / cyclic / loss-weighted).
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

void adapt_model(nn::CausalLm& model, core::DepthSampling sampling, uint64_t seed,
                 float distill_weight = 0.0f) {
  core::TunerConfig t;
  t.sampling = sampling;
  t.backprop_window = 2;
  t.optim.lr = 1e-2f;
  t.distill_weight = distill_weight;
  core::AdaptiveLayerTuner tuner(model, t, Rng(seed));
  Rng data_rng(404);
  const data::MarkovChain domain = bench::target_domain();
  for (int64_t i = 0; i < bench::kAdaptIters; ++i) {
    tuner.step(data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng));
  }
}

}  // namespace

int main() {
  std::cout << "=== Figure R4: adaptive layer voting ablation ===\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const nn::ModelConfig cfg = model->config();
  const auto eval_set = bench::target_eval_set();
  const auto mcq = bench::target_mcq_set();

  const std::vector<data::LmBatch> sens_calib = bench::base_calib_set();
  const std::vector<data::LmBatch> calib = bench::target_calib_set();

  // Compress + adapt once with the standard Edge-LLM recipe.
  core::SensitivityConfig sens_cfg;
  const core::SensitivityProfile prof = core::analyze_sensitivity(*model, sens_calib, sens_cfg);
  core::LucConfig luc;
  luc.target_effective_bits = 3.0;
  luc.search = core::LucConfig::Search::kExactDp;
  const core::LucPolicy policy = core::search_luc_policy(prof, sens_cfg, luc);
  core::apply_policy(*model, policy);
  adapt_model(*model, core::DepthSampling::kUniform, 5);

  std::cout << "--- per-exit quality vs voting (after adaptation) ---\n";
  runtime::TablePrinter table({26, 12, 10, 10});
  table.row({"prediction source", "eval loss", "ppl", "mcq acc"});
  table.rule();

  for (int64_t exit_layer : model->exit_layers()) {
    const float loss = data::lm_loss(*model, eval_set, exit_layer);
    const float acc =
        data::mcq_accuracy(data::exit_logits_fn(*model, exit_layer), mcq, cfg.vocab);
    table.row({"exit @ layer " + std::to_string(exit_layer), fmt(loss, 4),
               fmt(data::perplexity(loss), 2), fmt(acc, 3)});
  }
  table.rule();

  for (auto mode : {core::VotingMode::kBestSingle, core::VotingMode::kMajority,
                    core::VotingMode::kCalibratedWeight, core::VotingMode::kEntropyAdaptive}) {
    static const char* names[] = {"vote: best-single", "vote: majority",
                                  "vote: calibrated", "vote: entropy-adaptive"};
    core::ExitVoter voter(*model, {mode, 0.5f});
    voter.calibrate(calib);
    const float loss = voter.voted_loss(eval_set);
    const float acc = data::mcq_accuracy(voter.logits_fn(), mcq, cfg.vocab);
    table.row({names[static_cast<int>(mode)], fmt(loss, 4), fmt(data::perplexity(loss), 2),
               fmt(acc, 3)});
  }

  {
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    std::cout << "\ncalibrated voter weights per exit: ";
    for (float w : voter.weights()) std::cout << fmt(w, 3) << " ";
    std::cout << "\n";
  }

  std::cout << "\n--- depth-sampling strategy ablation (fresh adaptation each) ---\n";
  runtime::TablePrinter t2({22, 12, 10, 10});
  t2.row({"sampling", "voted loss", "ppl", "mcq acc"});
  t2.rule();
  const std::pair<core::DepthSampling, const char*> strategies[] = {
      {core::DepthSampling::kUniform, "uniform"},
      {core::DepthSampling::kCyclic, "cyclic"},
      {core::DepthSampling::kLossWeighted, "loss-weighted"},
      {core::DepthSampling::kFinalOnly, "final-only (no adapt.)"},
  };
  for (const auto& [sampling, name] : strategies) {
    model->load_state_dict(base_state);
    core::apply_policy(*model, policy);
    adapt_model(*model, sampling, 99);
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    const float loss = voter.voted_loss(eval_set);
    t2.row({name, fmt(loss, 4), fmt(data::perplexity(loss), 2),
            fmt(data::mcq_accuracy(voter.logits_fn(), mcq, cfg.vocab), 3)});
  }

  // Extension: exit self-distillation during adaptation.
  std::cout << "\n--- exit self-distillation extension (uniform sampling) ---\n";
  runtime::TablePrinter t3({22, 14, 14, 12});
  t3.row({"distill weight", "exit2 loss", "voted loss", "mcq acc"});
  t3.rule();
  for (float w : {0.0f, 1.0f, 2.0f}) {
    model->load_state_dict(base_state);
    core::apply_policy(*model, policy);
    adapt_model(*model, core::DepthSampling::kUniform, 123, w);
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    const float early = data::lm_loss(*model, eval_set, model->exit_layers().front());
    t3.row({fmt(w, 1), fmt(early, 4), fmt(voter.voted_loss(eval_set), 4),
            fmt(data::mcq_accuracy(voter.logits_fn(), mcq, cfg.vocab), 3)});
  }

  std::cout << "\nShape to check: voting matches or beats the best single exit, and beats\n"
               "early exits clearly; adaptive (uniform/cyclic/loss-weighted) depth sampling\n"
               "trains the early exits that final-only leaves cold; distillation tightens\n"
               "the earliest exit further.\n";
  return 0;
}
