// Figure R1 — per-training-iteration speedup breakdown:
// vanilla -> +LUC -> +adaptive layer tuning -> +schedule search.
// The abstract's headline number (2.92x per iteration) is the shape target
// for the full stack. Reported at paper scale (LLaMA-7B-shaped workload,
// where GEMMs dominate) and at bench scale.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

void breakdown(const char* title, const nn::ModelConfig& cfg, const core::LucPolicy& luc_policy,
               const std::vector<int64_t>& exits, int64_t window,
               const runtime::SimulatorConfig& base_sim) {
  std::cout << "--- " << title << " ---\n";

  core::LucPolicy fp16;
  fp16.layers.assign(static_cast<size_t>(cfg.n_layers), core::LayerPolicy{});

  struct Stage {
    std::string name;
    runtime::MethodSpec spec;
    runtime::ScheduleMode mode = runtime::ScheduleMode::kDefault;
  };
  std::vector<Stage> stages;

  runtime::MethodSpec vanilla = runtime::vanilla_method(cfg);
  stages.push_back({"vanilla (default sched)", vanilla, runtime::ScheduleMode::kDefault});

  runtime::MethodSpec with_luc = vanilla;
  with_luc.name = "+LUC";
  with_luc.policy = luc_policy;
  stages.push_back({"+LUC", with_luc, runtime::ScheduleMode::kDefault});

  runtime::MethodSpec with_tuning = with_luc;
  with_tuning.name = "+adaptive tuning";
  with_tuning.exits = exits;
  with_tuning.exit_probs.assign(exits.size(), 1.0 / static_cast<double>(exits.size()));
  with_tuning.backprop_window = window;
  with_tuning.update_embeddings = false;
  stages.push_back({"+adaptive layer tuning", with_tuning, runtime::ScheduleMode::kDefault});

  runtime::MethodSpec full = with_tuning;
  full.name = "Edge-LLM";
  stages.push_back({"+schedule search (full Edge-LLM)", full, runtime::ScheduleMode::kSearched});

  runtime::TablePrinter table({34, 14, 12, 12, 12});
  table.row({"configuration", "cycles/iter", "step gain", "cum speedup", "peak mem"});
  table.rule();
  double vanilla_cycles = 0.0, prev = 0.0;
  std::vector<double> cycles;
  for (const Stage& s : stages) {
    runtime::SimulatorConfig sim = base_sim;
    sim.schedule_mode = s.mode;
    const runtime::MethodReport rep = runtime::simulate_method(cfg, s.spec, sim);
    if (vanilla_cycles == 0.0) {
      vanilla_cycles = rep.expected_cycles;
      prev = rep.expected_cycles;
    }
    cycles.push_back(rep.expected_cycles);
    table.row({s.name, fmt(rep.expected_cycles, 0), fmt(prev / rep.expected_cycles, 2) + "x",
               fmt(vanilla_cycles / rep.expected_cycles, 2) + "x",
               runtime::fmt_bytes(rep.peak_memory_bytes)});
    prev = rep.expected_cycles;
  }

  // ASCII bar chart of cumulative speedup.
  std::cout << "\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const double speedup = vanilla_cycles / cycles[i];
    std::cout << fmt(speedup, 2) << "x |";
    for (int b = 0; b < static_cast<int>(speedup * 12); ++b) std::cout << '#';
    std::cout << "  " << stages[i].name << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure R1: per-iteration speedup breakdown (target shape ~2.9x) ===\n\n";

  // Paper-scale: LLaMA-7B-shaped workload, 4-bit/50% LUC, exits every 8
  // layers, backprop window 4.
  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure
  core::LucPolicy llama_policy;
  // A plausible LUC outcome: more bits in the first/last layers (most
  // sensitive in LLMs), fewer in the middle.
  for (int i = 0; i < 32; ++i) {
    if (i < 2 || i >= 30) {
      llama_policy.layers.push_back({8, 0.3f});
    } else if (i < 8 || i >= 24) {
      llama_policy.layers.push_back({4, 0.5f});
    } else {
      llama_policy.layers.push_back({3, 0.5f});
    }
  }
  runtime::SimulatorConfig sim7b;
  sim7b.batch = 1;
  sim7b.seq = 512;
  // Paper-plausible tuning aggressiveness: exits in the upper half of the
  // network, 8-layer backprop window.
  breakdown("LLaMA-7B-scale projection (b1 x s512)", llama, llama_policy, {16, 24, 32}, 8,
            sim7b);

  // Bench-scale: the exact model the accuracy benches train.
  const nn::ModelConfig small = edgellm::bench::bench_model_config();
  core::LucPolicy small_policy;
  small_policy.layers.assign(static_cast<size_t>(small.n_layers), core::LayerPolicy{3, 0.5f});
  breakdown("bench scale (6L/d32, b8 x s16)", small, small_policy, small.exit_layers, 2,
            edgellm::bench::bench_simulator());

  // Window sensitivity at bench scale: the paper's 2.92x sits between the
  // window-1 and window-2 operating points of this reproduction.
  {
    const nn::ModelConfig cfg2 = edgellm::bench::bench_model_config();
    core::LucPolicy pol;
    pol.layers.assign(static_cast<size_t>(cfg2.n_layers), core::LayerPolicy{3, 0.5f});
    runtime::SimulatorConfig sim = edgellm::bench::bench_simulator();
    sim.schedule_mode = runtime::ScheduleMode::kDefault;
    const double vanilla_c =
        runtime::simulate_method(cfg2, runtime::vanilla_method(cfg2), sim).expected_cycles;
    sim.schedule_mode = runtime::ScheduleMode::kSearched;
    std::cout << "backprop-window sensitivity (bench scale): ";
    for (int64_t w : {1, 2, 4}) {
      const double c =
          runtime::simulate_method(cfg2, edgellm::bench::edge_llm_method_spec(cfg2, pol, w), sim)
              .expected_cycles;
      std::cout << "w" << w << "=" << fmt(vanilla_c / c, 2) << "x  ";
    }
    std::cout << "\n\n";
  }

  std::cout << "Shape to check: each component contributes, and the full stack lands in the\n"
               "~3x region, matching the abstract's 2.92x claim (which falls between this\n"
               "reproduction's window-1 and window-2 operating points).\n";
  return 0;
}
