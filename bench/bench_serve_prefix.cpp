// Cross-request prefix reuse through the paged KV pool: how many sequences
// fit under one KV byte budget, and what the shared-prefix cache buys.
//
// The workload is the canonical edge-serving shape: every request carries
// the same long system-prompt prefix plus a short unique tail. The slot
// pool reserves every sequence's *full* projection up front, so the budget
// admits only budget / full_projection sequences at a time. The paged pool
// stores the shared prefix once (pinned while referenced, LRU-evictable
// after) and reserves only each request's incremental blocks past the
// cached prefix, so the same byte budget runs several times more sequences
// concurrently — the tentpole's effective-concurrency claim, measured here
// as mean batch occupancy over the drain of an identical staged backlog.
//
// Correctness is asserted inside the bench: both pools must produce
// byte-identical greedy completions for every request, and both engines
// must satisfy KV conservation after drain.
//
// A machine-readable summary is written to BENCH_serve_prefix.json
// (override with --json PATH, disable with --json ""). --check-prefix
// exits non-zero unless the prefix cache visibly engaged (hit rate > 0),
// outputs matched, conservation held, and the paged pool sustained at
// least 2x the slot pool's effective concurrency.
//
// Run: ./build/bench/bench_serve_prefix [--requests N] [--tokens N]
//      [--json out.json] [--check-prefix]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr int64_t kPrefixLen = 24;  ///< shared system-prompt prefix
constexpr int64_t kTailLen = 1;     ///< unique per-request suffix

/// Shared prefix + one distinguishing tail token per request id.
std::vector<int64_t> make_prompt(int64_t salt, int64_t vocab) {
  std::vector<int64_t> p(static_cast<size_t>(kPrefixLen + kTailLen));
  for (int64_t i = 0; i < kPrefixLen; ++i) p[static_cast<size_t>(i)] = (i * 7 + 1) % vocab;
  for (int64_t i = 0; i < kTailLen; ++i) {
    p[static_cast<size_t>(kPrefixLen + i)] = (salt * 5 + i + 3) % vocab;
  }
  return p;
}

struct RunResult {
  double concurrency = 0.0;  ///< mean batch occupancy over the staged drain
  double wall_ms = 0.0;
  int64_t tokens = 0;
  int64_t prefix_hit = 0;
  int64_t prefix_miss = 0;
  int64_t prefix_hit_tokens = 0;
  int64_t high_water_bytes = 0;
  bool conserved = false;
  std::vector<std::vector<int64_t>> outputs;

  double tok_s() const { return static_cast<double>(tokens) / (wall_ms / 1e3); }
};

/// Stages `n_requests` identical-shape requests behind pause(), drains them,
/// and reports effective concurrency as the occupancy delta over the drain.
/// A single warm request runs first (outside the measured window) so the
/// paged engine's prefix cache is populated the way a live system's would
/// be; the slot engine gets the same warm-up for symmetry.
RunResult run_backlog(nn::CausalLm& model, const serve::EngineConfig& ecfg, int64_t n_requests,
                      int64_t n_new, int64_t vocab) {
  serve::ServeEngine engine(model, ecfg);
  RunResult r;

  {
    serve::Request warm;
    warm.id = 1;
    warm.prompt = make_prompt(/*salt=*/0, vocab);
    warm.max_new_tokens = n_new;
    warm.temperature = 0.0f;
    engine.submit(std::move(warm)).get();
  }
  const serve::EngineMetrics m0 = engine.metrics();

  engine.pause();
  std::vector<std::future<serve::Completion>> futs;
  for (int64_t i = 0; i < n_requests; ++i) {
    serve::Request req;
    req.id = i + 2;
    req.prompt = make_prompt(/*salt=*/i + 1, vocab);
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    futs.push_back(engine.submit(std::move(req)));
  }
  const auto t0 = Clock::now();
  engine.resume();
  for (auto& f : futs) {
    const serve::Completion c = f.get();
    check_arg(c.status == serve::RequestStatus::kOk, "bench: request failed: " + c.error);
    r.tokens += static_cast<int64_t>(c.tokens.size());
    r.outputs.push_back(c.tokens);
  }
  r.wall_ms = ms_since(t0);
  engine.shutdown();

  const serve::EngineMetrics m1 = engine.metrics();
  const int64_t ticks = m1.ticks - m0.ticks;
  r.concurrency = ticks > 0 ? (m1.occupancy_sum - m0.occupancy_sum) / static_cast<double>(ticks)
                            : 0.0;
  r.prefix_hit = engine.registry().counter("kv/prefix_hit").value();
  r.prefix_miss = engine.registry().counter("kv/prefix_miss").value();
  r.prefix_hit_tokens = engine.registry().counter("kv/prefix_hit_tokens").value();
  r.high_water_bytes = static_cast<int64_t>(engine.registry().gauge("kv/high_water_bytes").value());
  r.conserved = engine.registry().counter("kv/acquired").value() ==
                    engine.registry().counter("kv/released").value() &&
                static_cast<int64_t>(engine.registry().gauge("kv/committed_bytes").value()) == 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool check_prefix = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-prefix") == 0) {
      check_prefix = true;
    } else if (i + 1 < argc) {
      args[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  const int64_t n_requests = args.count("--requests") ? std::stoll(args["--requests"]) : 21;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 4;

  const nn::ModelConfig cfg = bench::bench_model_config();
  Rng rng(7);
  nn::CausalLm model(cfg, rng);

  // Budget: exactly three full-projection sequences. Every request projects
  // kPrefixLen + kTailLen + n_new positions at full depth; the slot pool
  // reserves all of it per sequence, so its concurrency is 3 by
  // construction. The paged pool pays that projection only for the blocks
  // past the shared prefix.
  const int64_t projected = std::min<int64_t>(kPrefixLen + kTailLen + n_new, cfg.max_seq);
  const int64_t full_seq_bytes =
      projected * nn::KvCache::bytes_per_position(cfg.n_layers, cfg.kv_dim(), false);
  const int64_t budget = 3 * full_seq_bytes;

  serve::EngineConfig base;
  base.threads = 2;
  base.max_batch = 16;
  base.queue_capacity = n_requests + 2;
  base.kv_byte_budget = budget;

  serve::EngineConfig slot_cfg = base;
  serve::EngineConfig paged_cfg = base;
  paged_cfg.kv_paged = true;
  paged_cfg.kv_block_tokens = 8;

  std::cout << "prefix workload: " << n_requests << " requests, " << kPrefixLen
            << "-token shared prefix + " << kTailLen << "-token tail, " << n_new
            << " new tokens each; budget = 3 full sequences (" << budget << " bytes)\n\n";

  const RunResult slot = run_backlog(model, slot_cfg, n_requests, n_new, cfg.vocab);
  const RunResult paged = run_backlog(model, paged_cfg, n_requests, n_new, cfg.vocab);

  const bool outputs_match = slot.outputs == paged.outputs;
  const double ratio = slot.concurrency > 0.0 ? paged.concurrency / slot.concurrency : 0.0;
  const double hit_rate =
      paged.prefix_hit + paged.prefix_miss > 0
          ? static_cast<double>(paged.prefix_hit) /
                static_cast<double>(paged.prefix_hit + paged.prefix_miss)
          : 0.0;

  runtime::TablePrinter table({8, 13, 9, 11, 9, 10, 12});
  table.row({"pool", "concurrency", "wall ms", "tok/s", "hits", "hit toks", "high water"});
  table.rule();
  table.row({"slot", fmt(slot.concurrency, 2), fmt(slot.wall_ms, 1), fmt(slot.tok_s(), 0),
             std::to_string(slot.prefix_hit), std::to_string(slot.prefix_hit_tokens),
             std::to_string(slot.high_water_bytes)});
  table.row({"paged", fmt(paged.concurrency, 2), fmt(paged.wall_ms, 1), fmt(paged.tok_s(), 0),
             std::to_string(paged.prefix_hit), std::to_string(paged.prefix_hit_tokens),
             std::to_string(paged.high_water_bytes)});

  std::cout << "\neffective concurrency: " << fmt(ratio, 2) << "x (paged "
            << fmt(paged.concurrency, 2) << " vs slot " << fmt(slot.concurrency, 2)
            << " sequences under the same budget); prefix hit rate " << fmt(hit_rate * 100.0, 1)
            << "%; outputs " << (outputs_match ? "byte-identical" : "DIVERGED") << "\n";

  const std::string json_path =
      args.count("--json") ? args["--json"] : std::string("BENCH_serve_prefix.json");
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n  \"requests\": " << n_requests << ",\n  \"prefix_tokens\": " << kPrefixLen
       << ",\n  \"tail_tokens\": " << kTailLen << ",\n  \"new_tokens\": " << n_new
       << ",\n  \"block_tokens\": " << paged_cfg.kv_block_tokens
       << ",\n  \"kv_byte_budget\": " << budget << ",\n  \"full_sequence_bytes\": "
       << full_seq_bytes << ",\n  \"slot\": {\"concurrency\": " << fmt(slot.concurrency, 3)
       << ", \"wall_ms\": " << fmt(slot.wall_ms, 1) << ", \"tok_s\": " << fmt(slot.tok_s(), 1)
       << ", \"high_water_bytes\": " << slot.high_water_bytes << "}"
       << ",\n  \"paged\": {\"concurrency\": " << fmt(paged.concurrency, 3)
       << ", \"wall_ms\": " << fmt(paged.wall_ms, 1) << ", \"tok_s\": " << fmt(paged.tok_s(), 1)
       << ", \"high_water_bytes\": " << paged.high_water_bytes
       << ", \"prefix_hit\": " << paged.prefix_hit << ", \"prefix_miss\": " << paged.prefix_miss
       << ", \"prefix_hit_tokens\": " << paged.prefix_hit_tokens << "}"
       << ",\n  \"concurrency_ratio\": " << fmt(ratio, 3)
       << ",\n  \"prefix_hit_rate\": " << fmt(hit_rate, 3)
       << ",\n  \"outputs_byte_identical\": " << (outputs_match ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (check_prefix) {
    bool ok = true;
    if (!(hit_rate > 0.0)) {
      std::cerr << "CHECK FAILED: prefix cache never hit\n";
      ok = false;
    }
    if (!outputs_match) {
      std::cerr << "CHECK FAILED: paged outputs diverged from slot-pool outputs\n";
      ok = false;
    }
    if (!slot.conserved || !paged.conserved) {
      std::cerr << "CHECK FAILED: KV conservation violated after drain\n";
      ok = false;
    }
    if (!(ratio >= 2.0)) {
      std::cerr << "CHECK FAILED: effective concurrency ratio " << fmt(ratio, 2)
                << "x (want >= 2x)\n";
      ok = false;
    }
    if (slot.high_water_bytes > budget || paged.high_water_bytes > budget) {
      std::cerr << "CHECK FAILED: KV high water exceeded the byte budget\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "prefix checks passed\n";
  }
  return 0;
}
