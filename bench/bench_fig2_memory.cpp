// Figure R2 — peak adaptation memory vs backprop window.
//
// Shows the component-(2) memory mechanism: activations, gradients and
// optimizer state all shrink as the backprop window narrows. Reports both
// the *measured* footprint from the real training loop and the simulator's
// analytic model (which tests cross-validate), plus a paper-scale
// projection.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;
  using runtime::fmt_bytes;

  std::cout << "=== Figure R2: adaptation memory vs backprop depth ===\n\n";

  const nn::ModelConfig cfg = bench::bench_model_config();
  const data::MarkovChain domain = bench::target_domain();

  std::cout << "--- measured on the real training loop (6L/d32, b" << bench::kBatch << " x s"
            << bench::kSeq << ", 30 iters each) ---\n";
  runtime::TablePrinter table({22, 12, 12, 12, 12});
  table.row({"method", "activations", "grads", "opt state", "total"});
  table.rule();

  struct Case {
    std::string name;
    core::TunerConfig tcfg;
  };
  std::vector<Case> cases;
  {
    Case vanilla{"vanilla (full)", core::TunerConfig::vanilla()};
    vanilla.tcfg.optim.lr = 1e-2f;
    cases.push_back(vanilla);
  }
  {
    // The classic memory baseline: same gradients as vanilla, activations
    // traded for ~1 extra forward of compute.
    Case ckpt{"vanilla + grad ckpt", core::TunerConfig::vanilla_checkpointed()};
    ckpt.tcfg.optim.lr = 1e-2f;
    cases.push_back(ckpt);
  }
  for (int64_t w : {4, 2, 1}) {
    Case c;
    c.name = "adaptive, window " + std::to_string(w);
    c.tcfg.sampling = core::DepthSampling::kUniform;
    c.tcfg.backprop_window = w;
    c.tcfg.optim.lr = 1e-2f;
    cases.push_back(c);
  }
  {
    // Edge-LLM window + int8 optimizer state: the full memory stack.
    Case q;
    q.name = "window 2 + int8 optim";
    q.tcfg.sampling = core::DepthSampling::kUniform;
    q.tcfg.backprop_window = 2;
    q.tcfg.optim.lr = 1e-2f;
    q.tcfg.quantized_optimizer = true;
    cases.push_back(q);
  }

  for (const Case& c : cases) {
    Rng rng(5);
    nn::CausalLm model(cfg, rng);
    core::AdaptiveLayerTuner tuner(model, c.tcfg, Rng(17));
    Rng data_rng(18);
    int64_t act = 0, grad = 0, opt = 0;
    for (int i = 0; i < 30; ++i) {
      const auto batch = data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng);
      const core::StepStats st = tuner.step(batch);
      act = std::max(act, st.activation_bytes);
      grad = std::max(grad, st.grad_bytes);
      opt = std::max(opt, st.optimizer_state_bytes);
    }
    table.row({c.name, fmt_bytes(static_cast<double>(act)), fmt_bytes(static_cast<double>(grad)),
               fmt_bytes(static_cast<double>(opt)),
               fmt_bytes(static_cast<double>(act + grad + opt))});
  }

  std::cout << "\n--- analytic projection at LLaMA-7B scale (b1 x s512) ---\n";
  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure
  runtime::SimulatorConfig sim;
  sim.batch = 1;
  sim.seq = 512;

  runtime::TablePrinter t2({22, 14, 14, 14, 14});
  t2.row({"method", "activations", "grads", "opt state", "total+weights"});
  t2.rule();
  auto project = [&](const std::string& name, int64_t window, bool emb) {
    runtime::MethodSpec m = runtime::vanilla_method(llama);
    m.name = name;
    if (window > 0) {
      m.exits = {16, 24, 32};
      m.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
      m.backprop_window = window;
      m.update_embeddings = emb;
      core::LucPolicy p;
      p.layers.assign(32, core::LayerPolicy{4, 0.5f});
      m.policy = p;
    }
    const runtime::MethodReport rep = runtime::simulate_method(llama, m, sim);
    t2.row({name, fmt(rep.peak_activation_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_grad_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_optimizer_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_memory_bytes / 1e9, 2) + " GB"});
  };
  project("vanilla (full)", 0, true);
  {
    const runtime::MethodReport rep =
        runtime::simulate_method(llama, runtime::vanilla_checkpointed_method(llama), sim);
    t2.row({"vanilla + grad ckpt", fmt(rep.peak_activation_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_grad_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_optimizer_bytes / 1e9, 2) + " GB",
            fmt(rep.peak_memory_bytes / 1e9, 2) + " GB"});
  }
  project("Edge-LLM, window 8", 8, false);
  project("Edge-LLM, window 4", 4, false);
  project("Edge-LLM, window 2", 2, false);

  std::cout << "\nShape to check: memory falls monotonically with the window; gradient\n"
               "checkpointing only attacks activations (grads/optimizer state stay at\n"
               "full size and it pays a recompute), while Edge-LLM's window shrinks all\n"
               "three at once. At 7B scale vanilla adaptation is tens of GB (impossible\n"
               "on edge); Edge-LLM is a fraction of that, dominated by the compressed\n"
               "weights themselves.\n";
  return 0;
}
