// Figure R6 (design-choice ablation, DESIGN.md §5) — pruning pattern
// structure vs hardware efficiency.
//
// Same LUC effective-bits budget, three sparsity patterns:
//   unstructured : best accuracy, only partially skippable in hardware
//   2:4 (N:M)    : semi-structured, fully skippable on modern MAC arrays
//   row          : fully structured, fully skippable, coarsest
// The trade-off the paper's component (1)+(3) interplay navigates.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  std::cout << "=== Figure R6: prune-pattern ablation (accuracy vs hw efficiency) ===\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const nn::ModelConfig cfg = model->config();
  const auto eval_set = bench::target_eval_set();
  const std::vector<data::LmBatch> sens_calib = bench::base_calib_set();
  const std::vector<data::LmBatch> calib = bench::target_calib_set();
  const runtime::SimulatorConfig sim = bench::bench_simulator();

  runtime::TablePrinter table({16, 12, 12, 12, 14, 12});
  table.row({"pattern", "calib loss", "voted loss", "ppl", "gemm util", "iter ms"});
  table.rule();

  struct PatternCase {
    const char* name;
    prune::Pattern pattern;
  };
  const PatternCase cases[] = {
      {"unstructured", prune::Pattern::kUnstructured},
      {"2:4", prune::Pattern::kNM},
      {"row", prune::Pattern::kRow},
  };

  for (const PatternCase& c : cases) {
    model->load_state_dict(base_state);

    core::SensitivityConfig sens_cfg;
    sens_cfg.prune_pattern = c.pattern;
    if (c.pattern == prune::Pattern::kNM) {
      // N:M fixes sparsity at 1 - n/m; probe only that ratio (plus zero).
      sens_cfg.prune_candidates = {0.0f, 0.5f};
    }
    const core::SensitivityProfile prof =
        core::analyze_sensitivity(*model, sens_calib, sens_cfg);
    core::LucConfig luc;
    luc.target_effective_bits = 3.0;
    luc.search = core::LucConfig::Search::kExactDp;
    const core::LucPolicy policy = core::search_luc_policy(prof, sens_cfg, luc);
    core::apply_policy(*model, policy, c.pattern);
    const float calib_loss = data::lm_loss(*model, sens_calib, cfg.n_layers);

    core::TunerConfig t;
    t.sampling = core::DepthSampling::kUniform;
    t.backprop_window = 2;
    t.optim.lr = 1e-2f;
    core::AdaptiveLayerTuner tuner(*model, t, Rng(55));
    Rng data_rng(404);
    const data::MarkovChain domain = bench::target_domain();
    for (int64_t i = 0; i < 200; ++i) {
      tuner.step(data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng));
    }
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    const float voted = voter.voted_loss(eval_set);

    runtime::MethodSpec spec = bench::edge_llm_method_spec(cfg, policy);
    spec.prune_pattern = c.pattern;
    const runtime::MethodReport rep = runtime::simulate_method(cfg, spec, sim);

    table.row({c.name, fmt(calib_loss, 4), fmt(voted, 4), fmt(data::perplexity(voted), 2),
               fmt(rep.utilization, 3), fmt(rep.expected_ms, 3)});
    core::clear_policy(*model);
  }

  // At bench scale the iteration is bandwidth-bound, so pattern structure
  // barely moves latency; project the same policies onto a 7B-shaped
  // workload where compute dominates and skippability pays.
  std::cout << "\n--- hardware effect at LLaMA-7B scale (same 4b/50% policy, per pattern) ---\n";
  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure
  runtime::SimulatorConfig sim7b;
  sim7b.batch = 1;
  sim7b.seq = 512;
  // A 7B workload on a 256 KiB-SRAM device is bound by activation
  // re-fetches regardless of the weights; use a developer-board-class
  // scratchpad (2 MiB, 256-wide tiles) so the compute effect is visible.
  sim7b.device.sram_bytes = 2.0 * 1024.0 * 1024.0;
  sim7b.search.tile_candidates = {32, 64, 128, 256};

  runtime::TablePrinter t2({16, 14, 12, 12});
  t2.row({"pattern", "iter ms", "speedup", "gemm util"});
  t2.rule();
  double dense_ms = 0.0;
  {
    runtime::MethodSpec dense;
    dense.name = "dense";
    dense.policy.layers.assign(32, core::LayerPolicy{4, 0.0f});
    dense.exits = {16, 24, 32};
    dense.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
    dense.backprop_window = 8;
    const auto rep = runtime::simulate_method(llama, dense, sim7b);
    dense_ms = rep.expected_ms;
    t2.row({"dense (no prune)", fmt(rep.expected_ms, 0), "1.00x", fmt(rep.utilization, 3)});
  }
  for (const PatternCase& c : cases) {
    runtime::MethodSpec spec;
    spec.name = c.name;
    spec.policy.layers.assign(32, core::LayerPolicy{4, 0.5f});
    spec.exits = {16, 24, 32};
    spec.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
    spec.backprop_window = 8;
    spec.prune_pattern = c.pattern;
    const auto rep = runtime::simulate_method(llama, spec, sim7b);
    t2.row({c.name, fmt(rep.expected_ms, 0), fmt(dense_ms / rep.expected_ms, 2) + "x",
            fmt(rep.utilization, 3)});
  }

  std::cout << "\nShape to check: at bench scale accuracy ranks unstructured <= row/2:4\n"
               "loss-wise with no latency difference (bandwidth-bound); at 7B scale the\n"
               "structured patterns convert their zeros into real speedup while\n"
               "unstructured only realises about half.\n";
  return 0;
}
