// Table R3 — hardware scheduling search: naive vs searched schedules for a
// full training iteration, for both the fp16 model and the LUC-compressed
// model, at bench scale and at paper (LLaMA-7B) scale. Search results are
// memoised in a persistent ScheduleCache (hw/measured.hpp), so re-runs of
// this bench — and a re-search of the same workload inside one run — skip
// the exhaustive search.
#include <iostream>

#include "bench_common.hpp"
#include "hw/measured.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

hw::ScheduleCache& schedule_cache() {
  static hw::ScheduleCache cache;
  return cache;
}

void report(const char* title, const nn::ModelConfig& cfg,
            const std::vector<hw::LayerCompression>& comp, const hw::IterationSpec& iter,
            const hw::DeviceModel& dev) {
  const auto workloads = hw::training_iteration_workloads(cfg, comp, iter);
  const hw::SearchConfig scfg;
  const hw::IterationPlan naive = hw::schedule_iteration_naive(dev, workloads);
  const hw::IterationPlan deflt = hw::schedule_iteration_default(dev, workloads);
  const hw::IterationPlan searched = hw::schedule_iteration(dev, workloads, scfg, &schedule_cache());

  std::cout << "--- " << title << " ---\n";
  runtime::TablePrinter table({12, 14, 14, 12, 12, 12});
  table.row({"schedule", "cycles", "dram MB", "util", "energy uJ", "pinned KB"});
  table.rule();
  auto row = [&](const char* name, const hw::IterationPlan& p) {
    table.row({name, fmt(p.total_cycles, 0), fmt(p.total_dram_bytes / (1024.0 * 1024.0), 2),
               fmt(p.gemm_utilization, 3), fmt(p.total_energy_pj * 1e-6, 1),
               fmt(p.pinned_bytes / 1024.0, 1)});
  };
  row("naive", naive);
  row("default", deflt);
  row("searched", searched);
  std::cout << "speedup, searched vs default: "
            << fmt(deflt.total_cycles / searched.total_cycles, 2)
            << "x   (vs naive: " << fmt(naive.total_cycles / searched.total_cycles, 2)
            << "x)\n\n";

  // Per-layer detail for the first forward block, showing what the search
  // actually picked.
  for (const hw::LayerPlan& lp : searched.layers) {
    if (lp.name != "block0.fwd") continue;
    std::cout << "block0 forward schedules:\n";
    for (const hw::GemmPlan& gp : lp.gemms) {
      std::cout << "  " << gp.gemm.name << " [" << gp.gemm.m << "x" << gp.gemm.n << "x"
                << gp.gemm.k << "] -> " << gp.schedule.to_string() << "  cycles "
                << fmt(gp.cost.cycles, 0) << " util " << fmt(gp.cost.utilization, 2) << "\n";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== Table R3: hardware scheduling search (naive vs searched) ===\n\n";
  const char* cache_path = "BENCH_table3_schedule.cache";
  const bool warm = schedule_cache().load(cache_path);
  std::cout << "schedule cache: " << cache_path << (warm ? " (warm)" : " (cold)") << "\n";
  const hw::DeviceModel dev = hw::default_edge_device();
  std::cout << "device: " << dev.name << ", " << dev.peak_macs_per_cycle << " MAC/cyc, "
            << dev.dram_bytes_per_cycle << " B/cyc DRAM, " << dev.sram_bytes / 1024.0
            << " KiB SRAM\n\n";

  // Bench-scale model, fp16 and LUC-compressed.
  const nn::ModelConfig small = edgellm::bench::bench_model_config();
  hw::IterationSpec iter{edgellm::bench::kBatch, edgellm::bench::kSeq, small.n_layers,
                         small.n_layers, true};
  std::vector<hw::LayerCompression> fp16(static_cast<size_t>(small.n_layers));
  std::vector<hw::LayerCompression> luc(static_cast<size_t>(small.n_layers), {3, 0.5f, false});
  report("bench scale (6L/d32), fp16", small, fp16, iter, dev);
  report("bench scale (6L/d32), LUC 3b/50%", small, luc, iter, dev);

  // Paper-scale projection: LLaMA-7B-shaped workload.
  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure
  hw::IterationSpec liter{1, 512, llama.n_layers, llama.n_layers, false};
  std::vector<hw::LayerCompression> lfp16(32);
  std::vector<hw::LayerCompression> lluc(32, {4, 0.5f, false});
  report("LLaMA-7B scale, fp16", llama, lfp16, liter, dev);
  report("LLaMA-7B scale, LUC 4b/50%", llama, lluc, liter, dev);

  // Bandwidth-starved device: the big-tile default struggles, so the search
  // space matters more.
  const hw::DeviceModel small_dev = hw::constrained_edge_device();
  std::cout << "device: " << small_dev.name << ", " << small_dev.peak_macs_per_cycle
            << " MAC/cyc, " << small_dev.dram_bytes_per_cycle << " B/cyc DRAM, "
            << small_dev.sram_bytes / 1024.0 << " KiB SRAM\n\n";
  report("constrained device, LUC 4b/50% (7B)", llama, lluc, liter, small_dev);

  std::cout << "Shape to check: the searched schedule never loses to the default and\n"
               "crushes the naive one; its wins concentrate where workloads are small or\n"
               "irregular (compressed layers, constrained devices) where pinning and\n"
               "per-GEMM tile shapes matter. Large dense GEMMs are easy to schedule and\n"
               "the competent default already saturates the MAC array there.\n\n";

  // The memoisation contract: re-searching a workload already in the cache
  // must be served from it (every per-GEMM search a hit, zero misses added).
  {
    const nn::ModelConfig small = edgellm::bench::bench_model_config();
    hw::IterationSpec iter{edgellm::bench::kBatch, edgellm::bench::kSeq, small.n_layers,
                           small.n_layers, true};
    std::vector<hw::LayerCompression> fp16(static_cast<size_t>(small.n_layers));
    const auto workloads = hw::training_iteration_workloads(small, fp16, iter);
    const int64_t hits_before = schedule_cache().hits();
    const int64_t misses_before = schedule_cache().misses();
    (void)hw::schedule_iteration(dev, workloads, hw::SearchConfig{}, &schedule_cache());
    check_arg(schedule_cache().hits() > hits_before,
              "bench_table3: warm re-search produced no cache hits");
    check_arg(schedule_cache().misses() == misses_before,
              "bench_table3: warm re-search missed the cache");
    std::cout << "cache re-search check: " << (schedule_cache().hits() - hits_before)
              << " hits, 0 misses (memoisation working)\n";
  }
  check_arg(schedule_cache().save(cache_path), "bench_table3: cannot write schedule cache");
  std::cout << "saved " << schedule_cache().size() << " schedule(s) to " << cache_path << "\n";
  return 0;
}
