// Figure R8 — catastrophic forgetting under continuous adaptation.
//
// The paper motivates *continuous* on-device adaptation; a method that
// wrecks the base capabilities while adapting is useless for that. We
// measure base-domain quality before/after adapting to the shifted domain
// for vanilla full tuning, LoRA, and Edge-LLM's windowed tuning: updating
// only a small per-iteration window (and never the embeddings) should
// retain markedly more of the base domain.
#include <iostream>

#include "bench_common.hpp"
#include "nn/lora.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

float base_domain_loss(nn::CausalLm& model) {
  Rng rng(888);
  std::vector<data::LmBatch> eval;
  for (int i = 0; i < 6; ++i) {
    eval.push_back(data::sample_lm_batch(bench::base_domain(), bench::kBatch, bench::kSeq, rng));
  }
  return data::lm_loss(model, eval, model.config().n_layers);
}

float target_domain_loss(nn::CausalLm& model) {
  return data::lm_loss(model, bench::target_eval_set(), model.config().n_layers);
}

}  // namespace

int main() {
  std::cout << "=== Figure R8: base-domain retention while adapting (forgetting) ===\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const float base_before = base_domain_loss(*model);
  const float target_before = target_domain_loss(*model);
  std::cout << "pretrained base: base-domain loss " << fmt(base_before, 3)
            << ", target-domain loss " << fmt(target_before, 3) << "\n\n";

  runtime::TablePrinter table({22, 14, 14, 14});
  table.row({"method", "target after", "base after", "forgetting"});
  table.rule();

  struct Row {
    std::string name;
    core::TunerConfig tcfg;
    bool lora = false;
  };
  std::vector<Row> rows;
  {
    Row vanilla{"vanilla FT", core::TunerConfig::vanilla(), false};
    vanilla.tcfg.optim.lr = 1e-2f;
    rows.push_back(vanilla);
  }
  {
    Row lora{"LoRA r=4", core::TunerConfig::vanilla(), true};
    lora.tcfg.optim.lr = 1e-2f;
    lora.tcfg.update_embeddings = false;
    rows.push_back(lora);
  }
  {
    Row edge{"Edge-LLM window 2", {}, false};
    edge.tcfg.sampling = core::DepthSampling::kUniform;
    edge.tcfg.backprop_window = 2;
    edge.tcfg.optim.lr = 1e-2f;
    rows.push_back(edge);
  }
  {
    Row edge1{"Edge-LLM window 1", {}, false};
    edge1.tcfg.sampling = core::DepthSampling::kUniform;
    edge1.tcfg.backprop_window = 1;
    edge1.tcfg.optim.lr = 1e-2f;
    rows.push_back(edge1);
  }

  const data::MarkovChain domain = bench::target_domain();
  for (const Row& r : rows) {
    model->load_state_dict(base_state);
    nn::disable_lora_tuning(*model);
    Rng lora_rng(77);
    if (r.lora) nn::enable_lora_tuning(*model, 4, 8.0f, lora_rng);

    core::AdaptiveLayerTuner tuner(*model, r.tcfg, Rng(5));
    Rng data_rng(404);
    for (int64_t i = 0; i < bench::kAdaptIters; ++i) {
      tuner.step(data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng));
    }
    const float target_after = target_domain_loss(*model);
    const float base_after = base_domain_loss(*model);
    table.row({r.name, fmt(target_after, 3), fmt(base_after, 3),
               "+" + fmt(base_after - base_before, 3)});
    if (r.lora) nn::disable_lora_tuning(*model);
  }

  std::cout << "\nShape to check: all methods adapt (target loss drops well below "
            << fmt(target_before, 2) << ");\n"
            << "vanilla FT forgets the base domain the most, while windowed tuning\n"
               "(fewer touched parameters per iteration) and LoRA retain more.\n";
  return 0;
}
