// Table R2 — LUC ablation: layer-wise (sensitivity-driven) allocation vs
// uniform allocation at equal effective-bit budgets, plus greedy-vs-DP
// searcher comparison (solution quality and search time).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  std::cout << "=== Table R2: layer-wise unified compression (LUC) ablation ===\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const nn::ModelConfig cfg = model->config();

  // Sensitivity is probed on the base domain (where the model is
  // competent); quality is reported on the base-domain calib set, since the
  // question here is purely "how much does compression hurt the model".
  const std::vector<data::LmBatch> calib = bench::base_calib_set();
  const std::vector<data::LmBatch> eval_set = bench::base_calib_set(8, 999);

  core::SensitivityConfig sens_cfg;
  const core::SensitivityProfile prof = core::analyze_sensitivity(*model, calib, sens_cfg);
  core::SensitivityConfig joint_cfg = sens_cfg;
  joint_cfg.joint = true;
  const core::SensitivityProfile joint_prof =
      core::analyze_sensitivity(*model, calib, joint_cfg);
  std::cout << "fp16 baseline calibration loss: " << fmt(prof.baseline_loss, 4) << "\n\n";

  const runtime::SimulatorConfig sim = bench::bench_simulator();

  runtime::TablePrinter table({8, 14, 12, 12, 12, 12, 12});
  table.row({"budget", "policy", "pred dloss", "calib loss", "eval loss", "iter ms", "search us"});
  table.rule();

  for (double budget : {2.0, 3.0, 4.0, 6.0}) {
    struct Entry {
      std::string name;
      core::LucPolicy policy;
      double search_us = 0.0;
    };
    std::vector<Entry> entries;

    entries.push_back({"uniform", core::uniform_policy(cfg.n_layers, sens_cfg, budget), 0.0});
    for (auto mode : {core::LucConfig::Search::kGreedy, core::LucConfig::Search::kExactDp}) {
      core::LucConfig luc;
      luc.target_effective_bits = budget;
      luc.search = mode;
      const auto t0 = std::chrono::steady_clock::now();
      const core::LucPolicy p = core::search_luc_policy(prof, sens_cfg, luc);
      const auto t1 = std::chrono::steady_clock::now();
      entries.push_back(
          {mode == core::LucConfig::Search::kGreedy ? "LUC-greedy" : "LUC-dp", p,
           std::chrono::duration<double, std::micro>(t1 - t0).count()});
    }
    {
      // Joint (non-additive) sensitivity ablation: the predicted delta
      // should track the measured calibration loss more faithfully.
      core::LucConfig luc;
      luc.target_effective_bits = budget;
      luc.search = core::LucConfig::Search::kExactDp;
      const auto t0 = std::chrono::steady_clock::now();
      const core::LucPolicy p = core::search_luc_policy(joint_prof, joint_cfg, luc);
      const auto t1 = std::chrono::steady_clock::now();
      entries.push_back({"LUC-dp-joint", p,
                         std::chrono::duration<double, std::micro>(t1 - t0).count()});
    }

    for (const Entry& e : entries) {
      model->load_state_dict(base_state);
      core::apply_policy(*model, e.policy);
      const float calib_loss = data::lm_loss(*model, calib, cfg.n_layers);
      const float eval_loss = data::lm_loss(*model, eval_set, cfg.n_layers);
      runtime::MethodSpec spec = runtime::vanilla_method(cfg);
      spec.policy = e.policy;
      const double ms = runtime::simulate_method(cfg, spec, sim).expected_ms;
      table.row({fmt(budget, 1) + "b", e.name, fmt(e.policy.predicted_delta, 4),
                 fmt(calib_loss, 4), fmt(eval_loss, 4), fmt(ms, 3),
                 e.name == "uniform" ? "-" : fmt(e.search_us, 1)});
      core::clear_policy(*model);
    }
    table.rule();
  }

  std::cout << "\nShape to check: at tight budgets (2-3 effective bits) the sensitivity-driven\n"
               "LUC policies keep calibration/eval loss well below the uniform policy, and\n"
               "the exact DP never predicts worse than greedy.\n";
  return 0;
}
