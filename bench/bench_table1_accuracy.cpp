// Table R1 — task quality of Edge-LLM vs baselines at matched budgets.
//
// Reproduces the abstract's headline claim: Edge-LLM reaches task quality
// comparable to vanilla tuning while each training iteration is far
// cheaper. Baselines: vanilla full FT, LoRA, last-k layer tuning, and
// uniform-compression FT. All methods adapt the same pretrained base to the
// same shifted domain for the same number of iterations.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "nn/lora.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;
using runtime::fmt_bytes;

struct MethodResult {
  std::string name;
  float eval_loss = 0.0f;
  float mcq_acc = 0.0f;
  double iter_ms = 0.0;
  int64_t act_bytes = 0;
  int64_t grad_bytes = 0;
  int64_t opt_bytes = 0;
};

struct Peaks {
  int64_t act = 0, grad = 0, opt = 0;
};

Peaks adapt(nn::CausalLm& model, const core::TunerConfig& cfg, uint64_t seed) {
  core::AdaptiveLayerTuner tuner(model, cfg, Rng(seed));
  Rng data_rng(404);
  const data::MarkovChain domain = bench::target_domain();
  Peaks p;
  for (int64_t i = 0; i < bench::kAdaptIters; ++i) {
    const auto batch = data::sample_lm_batch(domain, bench::kBatch, bench::kSeq, data_rng);
    const core::StepStats st = tuner.step(batch);
    p.act = std::max(p.act, st.activation_bytes);
    p.grad = std::max(p.grad, st.grad_bytes);
    p.opt = std::max(p.opt, st.optimizer_state_bytes);
  }
  return p;
}

}  // namespace

int main() {
  std::cout << "=== Table R1: adaptation quality vs baselines (Edge-LLM reproduction) ===\n"
            << "Base: 6L/d32 decoder pretrained on the base domain; all methods adapt\n"
            << "to a 60%-shifted domain for " << bench::kAdaptIters << " iterations.\n\n";

  auto model = bench::make_pretrained_base();
  const auto base_state = model->state_dict();
  const nn::ModelConfig cfg = model->config();
  const auto eval_set = bench::target_eval_set();
  const auto mcq = bench::target_mcq_set();
  const runtime::SimulatorConfig sim = bench::bench_simulator();

  const float pre_loss = data::lm_loss(*model, eval_set, cfg.n_layers);
  const float pre_acc =
      data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab);
  std::cout << "Before adaptation: eval loss " << fmt(pre_loss, 3) << " (ppl "
            << fmt(data::perplexity(pre_loss), 2) << "), MCQ acc " << fmt(pre_acc, 3) << "\n\n";

  std::vector<MethodResult> results;

  auto restore = [&] {
    core::clear_policy(*model);
    nn::disable_lora_tuning(*model);
    model->load_state_dict(base_state);
  };

  // --- vanilla full fine-tuning -------------------------------------------
  {
    restore();
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    const Peaks p = adapt(*model, t, 1);
    MethodResult r{"vanilla FT",
                   data::lm_loss(*model, eval_set, cfg.n_layers),
                   data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, runtime::vanilla_method(cfg), sim).expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);
  }

  // --- LoRA (rank 4) --------------------------------------------------------
  {
    restore();
    Rng lora_rng(77);
    nn::enable_lora_tuning(*model, /*rank=*/4, /*alpha=*/8.0f, lora_rng);
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    t.update_embeddings = false;  // frozen under LoRA anyway
    const Peaks p = adapt(*model, t, 2);
    // Latency: full-depth backprop like vanilla (adapter GEMMs are
    // negligible at rank 4), so reuse the vanilla latency model.
    MethodResult r{"LoRA r=4",
                   data::lm_loss(*model, eval_set, cfg.n_layers),
                   data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, runtime::vanilla_method(cfg), sim).expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);
    nn::disable_lora_tuning(*model);
  }

  // --- QLoRA-style: uniform 4-bit base + LoRA adapters ----------------------
  {
    restore();
    quant::QuantSpec q4;
    q4.bits = 4;
    for (nn::TransformerBlock* b : model->blocks()) b->set_compression(q4, std::nullopt);
    Rng lora_rng(78);
    nn::enable_lora_tuning(*model, /*rank=*/4, /*alpha=*/8.0f, lora_rng);
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    t.update_embeddings = false;
    const Peaks p = adapt(*model, t, 6);
    runtime::MethodSpec spec = runtime::vanilla_method(cfg);
    spec.name = "qlora";
    spec.policy.layers.assign(static_cast<size_t>(cfg.n_layers), core::LayerPolicy{4, 0.0f});
    MethodResult r{"QLoRA-style",
                   data::lm_loss(*model, eval_set, cfg.n_layers),
                   data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, spec, sim).expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);
    nn::disable_lora_tuning(*model);
  }

  // --- last-k layer tuning (k = 2) ----------------------------------------
  {
    restore();
    core::TunerConfig t;
    t.sampling = core::DepthSampling::kFinalOnly;
    t.backprop_window = 2;
    t.optim.lr = 1e-2f;
    const Peaks p = adapt(*model, t, 3);
    runtime::MethodSpec spec = runtime::vanilla_method(cfg);
    spec.name = "last-2";
    spec.backprop_window = 2;
    spec.update_embeddings = false;
    MethodResult r{"last-2 FT",
                   data::lm_loss(*model, eval_set, cfg.n_layers),
                   data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, spec, sim).expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);
  }

  // --- uniform compression + vanilla FT ------------------------------------
  core::SensitivityConfig sens_cfg;
  {
    restore();
    const core::LucPolicy uni = core::uniform_policy(cfg.n_layers, sens_cfg, 3.0);
    core::apply_policy(*model, uni);
    core::TunerConfig t = core::TunerConfig::vanilla();
    t.optim.lr = 1e-2f;
    const Peaks p = adapt(*model, t, 4);
    runtime::MethodSpec spec = runtime::vanilla_method(cfg);
    spec.name = "uniform";
    spec.policy = uni;
    MethodResult r{"uniform3b FT",
                   data::lm_loss(*model, eval_set, cfg.n_layers),
                   data::mcq_accuracy(data::exit_logits_fn(*model, cfg.n_layers), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, spec, sim).expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);
  }

  // --- Edge-LLM (LUC + adaptive layer tuning + voting) ---------------------
  {
    restore();
    const std::vector<data::LmBatch> sens_calib = bench::base_calib_set();
    const std::vector<data::LmBatch> calib = bench::target_calib_set();
    const core::SensitivityProfile prof =
        core::analyze_sensitivity(*model, sens_calib, sens_cfg);
    core::LucConfig luc;
    luc.target_effective_bits = 3.0;
    luc.search = core::LucConfig::Search::kExactDp;
    const core::LucPolicy policy = core::search_luc_policy(prof, sens_cfg, luc);
    core::apply_policy(*model, policy);

    core::TunerConfig t;
    t.sampling = core::DepthSampling::kUniform;
    t.backprop_window = 2;
    t.optim.lr = 1e-2f;
    const Peaks p = adapt(*model, t, 5);

    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    voter.calibrate(calib);
    MethodResult r{"Edge-LLM",
                   voter.voted_loss(eval_set),
                   data::mcq_accuracy(voter.logits_fn(), mcq, cfg.vocab),
                   runtime::simulate_method(cfg, bench::edge_llm_method_spec(cfg, policy), sim)
                       .expected_ms,
                   p.act,
                   p.grad,
                   p.opt};
    results.push_back(r);

    std::cout << "Edge-LLM LUC policy (bits | sparsity per layer): ";
    for (const auto& lp : policy.layers) {
      std::cout << lp.bits << "b/" << fmt(lp.sparsity, 2) << " ";
    }
    std::cout << "\n\n";
  }

  runtime::TablePrinter table({14, 10, 8, 9, 11, 9, 11, 11, 11});
  table.row({"method", "eval loss", "ppl", "mcq acc", "iter ms", "speedup", "act mem",
             "grad mem", "opt mem"});
  table.rule();
  const double vanilla_ms = results.front().iter_ms;
  for (const MethodResult& r : results) {
    table.row({r.name, fmt(r.eval_loss, 3), fmt(data::perplexity(r.eval_loss), 2),
               fmt(r.mcq_acc, 3), fmt(r.iter_ms, 2), fmt(vanilla_ms / r.iter_ms, 2) + "x",
               fmt_bytes(static_cast<double>(r.act_bytes)),
               fmt_bytes(static_cast<double>(r.grad_bytes)),
               fmt_bytes(static_cast<double>(r.opt_bytes))});
  }
  std::cout << "\nPaper claim: Edge-LLM reaches accuracy comparable to vanilla tuning with a\n"
               "2.92x per-iteration speedup; the shape to check here is eval-loss parity\n"
               "(Edge-LLM within a few percent of vanilla, well below 'before adaptation')\n"
               "at a multi-x modelled speedup.\n";
  return 0;
}
