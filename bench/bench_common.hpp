// Shared experimental setup for all paper-reproduction benches.
//
// Every bench binary uses the same base model, pretraining recipe and
// domain pair so that numbers are comparable across tables/figures:
//   base domain  : order-1 Markov chain, vocab 32, 4 preferred branches
//   target domain: the same chain with 60% of context rows re-drawn
//   model        : 6-layer decoder, d=32, 4 heads, exits at {2, 4, 6}
// Pretraining stands in for the paper's pretrained LLM checkpoint; the
// shifted target domain stands in for the downstream adaptation task.
#pragma once

#include <memory>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "runtime/simulator.hpp"
#include "runtime/table.hpp"

namespace edgellm::bench {

inline nn::ModelConfig bench_model_config() {
  nn::ModelConfig cfg;
  cfg.vocab = 32;
  cfg.d_model = 32;
  cfg.n_layers = 6;
  cfg.n_heads = 4;
  cfg.d_ff = 128;
  cfg.max_seq = 32;
  cfg.exit_layers = {2, 4, 6};
  return cfg;
}

inline data::MarkovChain base_domain() {
  data::MarkovChain::Config cfg;
  cfg.vocab = 32;
  cfg.order = 1;
  cfg.branch = 4;
  cfg.mass = 0.85f;
  cfg.seed = 1001;
  return data::MarkovChain(cfg);
}

inline data::MarkovChain target_domain() { return base_domain().shifted(0.6f, 2002); }

inline constexpr int64_t kBatch = 8;
inline constexpr int64_t kSeq = 16;
// 1200 full-depth iterations bring the base model near the domain's entropy
// floor (~2.1 vs ~1.9 nats), which is what makes compression sensitivity
// profiles meaningful — an undertrained model is insensitive to everything.
inline constexpr int64_t kPretrainIters = 1200;
inline constexpr int64_t kAdaptIters = 250;

/// Pretrains the shared base model (deterministic; every bench binary gets
/// the same base).
inline std::unique_ptr<nn::CausalLm> make_pretrained_base() {
  Rng rng(7);
  return core::pretrain_base_model(bench_model_config(), base_domain(), kPretrainIters, kBatch,
                                   kSeq, rng);
}

/// Held-out evaluation batches from the target domain.
inline std::vector<data::LmBatch> target_eval_set(int64_t n_batches = 8, uint64_t seed = 555) {
  Rng rng(seed);
  const data::MarkovChain domain = target_domain();
  std::vector<data::LmBatch> out;
  for (int64_t i = 0; i < n_batches; ++i) {
    out.push_back(data::sample_lm_batch(domain, kBatch, kSeq, rng));
  }
  return out;
}

/// Calibration batches from the *base* domain — what sensitivity analysis
/// must run on: the model is competent there, so a compression-induced loss
/// increase measures information destroyed by compression rather than
/// domain mismatch (on the shifted domain, quantization noise can even look
/// beneficial).
inline std::vector<data::LmBatch> base_calib_set(int64_t n_batches = 6, uint64_t seed = 311) {
  Rng rng(seed);
  const data::MarkovChain domain = base_domain();
  std::vector<data::LmBatch> out;
  for (int64_t i = 0; i < n_batches; ++i) {
    out.push_back(data::sample_lm_batch(domain, kBatch, kSeq, rng));
  }
  return out;
}

/// Calibration batches from the target domain (for voter calibration after
/// adaptation).
inline std::vector<data::LmBatch> target_calib_set(int64_t n_batches = 4, uint64_t seed = 313) {
  Rng rng(seed);
  const data::MarkovChain domain = target_domain();
  std::vector<data::LmBatch> out;
  for (int64_t i = 0; i < n_batches; ++i) {
    out.push_back(data::sample_lm_batch(domain, kBatch, kSeq, rng));
  }
  return out;
}

/// MCQ set from the target domain sized to the model context window.
inline std::vector<data::McqItem> target_mcq_set(int n_items = 64, uint64_t seed = 556) {
  Rng rng(seed);
  data::McqConfig cfg;
  cfg.n_items = n_items;
  cfg.prompt_len = 16;
  cfg.cont_len = 6;
  // Distractors come from the *base* domain, which the pretrained model
  // already likes — so the task genuinely requires adaptation.
  cfg.distractor_seed = base_domain().config().seed;
  return data::make_mcq_set(target_domain(), cfg, rng);
}

/// The Edge-LLM runtime method spec used across benches (for the simulator).
inline runtime::MethodSpec edge_llm_method_spec(const nn::ModelConfig& cfg,
                                                const core::LucPolicy& policy,
                                                int64_t backprop_window = 2) {
  runtime::MethodSpec m;
  m.name = "Edge-LLM";
  m.policy = policy;
  m.exits = cfg.exit_layers;
  m.exit_probs.assign(cfg.exit_layers.size(), 1.0 / static_cast<double>(cfg.exit_layers.size()));
  m.backprop_window = backprop_window;
  return m;
}

/// Simulator at the bench batch size.
inline runtime::SimulatorConfig bench_simulator() {
  runtime::SimulatorConfig sim;
  sim.batch = kBatch;
  sim.seq = kSeq;
  return sim;
}

}  // namespace edgellm::bench
