// Self-speculative decoding through the serving engine: draft k tokens from
// an early-exit head, verify them in one stacked full-depth pass, accept the
// longest agreeing prefix. The bench sweeps draft depth x verify width k
// over the pretrained base model (trained exit heads, so acceptance rates
// are real, not noise) and reports tokens/sec against the non-speculative
// full-depth baseline serving the identical backlog.
//
// Correctness is asserted inside the bench: every sweep cell must produce
// byte-identical greedy completions to the baseline (speculative decoding
// is an exact-equivalence transform, not an approximation), and every
// engine must satisfy KV conservation after drain.
//
// A machine-readable summary is written to BENCH_serve_speculative.json
// (override with --json PATH, disable with --json ""). --check-spec exits
// non-zero unless drafts were accepted (acceptance > 0), all outputs were
// byte-identical, conservation held, and at least one sweep cell beat the
// baseline's tokens/sec.
//
// Run: ./build/bench/bench_serve_speculative [--requests N] [--tokens N]
//      [--json out.json] [--check-spec]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Prompts drawn from the base domain's Markov chain: the pretrained model
/// is competent on them, so shallow-exit drafts frequently agree with the
/// full-depth verdict — the regime speculative decoding is built for.
std::vector<std::vector<int64_t>> make_prompts(int64_t n_requests, int64_t prompt_len) {
  Rng rng(99);
  const data::MarkovChain domain = bench::base_domain();
  const data::LmBatch batch = data::sample_lm_batch(domain, n_requests, prompt_len, rng);
  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < n_requests; ++i) {
    std::vector<int64_t> p(static_cast<size_t>(prompt_len));
    for (int64_t t = 0; t < prompt_len; ++t) {
      p[static_cast<size_t>(t)] = batch.inputs[static_cast<size_t>(i * batch.seq + t)];
    }
    prompts.push_back(std::move(p));
  }
  return prompts;
}

struct RunResult {
  double wall_ms = 0.0;
  int64_t tokens = 0;
  int64_t accepted = 0;  ///< spec/accepted_tokens after drain
  int64_t rejected = 0;  ///< spec/rejected_tokens after drain
  bool conserved = false;
  std::vector<std::vector<int64_t>> outputs;

  double tok_s() const { return static_cast<double>(tokens) / (wall_ms / 1e3); }
  double accept_rate() const {
    const int64_t drafted = accepted + rejected;
    return drafted > 0 ? static_cast<double>(accepted) / static_cast<double>(drafted) : 0.0;
  }
};

/// Serves the prompts one at a time — the interactive single-stream regime
/// speculative decoding targets. (A batched backlog amortises full-depth
/// compute across concurrent rows, which is the continuous-batching win, a
/// different lever; here every tick advances exactly one sequence, so the
/// comparison isolates drafts-then-verify against token-at-a-time decode.)
/// depth == 0 means a plain full-depth (non-speculative) run.
RunResult run_stream(nn::CausalLm& model, const serve::EngineConfig& ecfg,
                     const std::vector<std::vector<int64_t>>& prompts, int64_t n_new,
                     int64_t depth, int64_t k) {
  serve::ServeEngine engine(model, ecfg);
  RunResult r;

  const auto t0 = Clock::now();
  for (size_t i = 0; i < prompts.size(); ++i) {
    serve::Request req;
    req.id = static_cast<int64_t>(i) + 1;
    req.prompt = prompts[i];
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    if (depth > 0) {
      req.exit_policy = serve::ExitPolicy::kSpeculative;
      req.draft_depth = depth;
      req.draft_k = k;
    }
    const serve::Completion c = engine.submit(std::move(req)).get();
    check_arg(c.status == serve::RequestStatus::kOk, "bench: request failed: " + c.error);
    r.tokens += static_cast<int64_t>(c.tokens.size());
    r.outputs.push_back(c.tokens);
  }
  r.wall_ms = ms_since(t0);
  engine.shutdown();

  r.accepted = engine.registry().counter("spec/accepted_tokens").value();
  r.rejected = engine.registry().counter("spec/rejected_tokens").value();
  r.conserved = engine.registry().counter("kv/acquired").value() ==
                    engine.registry().counter("kv/released").value() &&
                static_cast<int64_t>(engine.registry().gauge("kv/committed_bytes").value()) == 0;
  return r;
}

struct Cell {
  int64_t depth = 0;
  int64_t k = 0;
  RunResult run;
};

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool check_spec = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-spec") == 0) {
      check_spec = true;
    } else if (i + 1 < argc) {
      args[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  const int64_t n_requests = args.count("--requests") ? std::stoll(args["--requests"]) : 8;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 16;

  std::cout << "pretraining base model (deterministic)...\n";
  const std::unique_ptr<nn::CausalLm> model = bench::make_pretrained_base();
  const nn::ModelConfig cfg = model->config();
  const int64_t prompt_len = std::min<int64_t>(8, cfg.max_seq - n_new);
  check_arg(prompt_len >= 1, "bench: --tokens leaves no room for a prompt");
  const auto prompts = make_prompts(n_requests, prompt_len);

  serve::EngineConfig base;
  base.threads = 2;
  base.max_batch = 16;
  base.queue_capacity = n_requests + 2;

  std::cout << "speculative workload: " << n_requests << " requests, " << prompt_len
            << "-token prompts, " << n_new << " new tokens each; draft exits at {2, 4} of "
            << cfg.n_layers << " layers\n\n";

  const RunResult baseline = run_stream(*model, base, prompts, n_new, /*depth=*/0, /*k=*/0);

  std::vector<Cell> cells;
  for (const int64_t depth : {int64_t{2}, int64_t{4}}) {
    for (const int64_t k : {int64_t{2}, int64_t{4}, int64_t{8}}) {
      cells.push_back({depth, k, run_stream(*model, base, prompts, n_new, depth, k)});
    }
  }

  bool all_identical = true;
  bool all_conserved = baseline.conserved;
  int64_t total_accepted = 0;
  double best_speedup = 0.0;
  for (const Cell& c : cells) {
    all_identical = all_identical && c.run.outputs == baseline.outputs;
    all_conserved = all_conserved && c.run.conserved;
    total_accepted += c.run.accepted;
    best_speedup = std::max(best_speedup, c.run.tok_s() / baseline.tok_s());
  }

  runtime::TablePrinter table({10, 4, 9, 9, 9, 9, 11});
  table.row({"cell", "k", "wall ms", "tok/s", "speedup", "accept", "identical"});
  table.rule();
  table.row({"baseline", "-", fmt(baseline.wall_ms, 1), fmt(baseline.tok_s(), 0), "1.00x", "-",
             "-"});
  for (const Cell& c : cells) {
    table.row({"depth " + std::to_string(c.depth), std::to_string(c.k), fmt(c.run.wall_ms, 1),
               fmt(c.run.tok_s(), 0), fmt(c.run.tok_s() / baseline.tok_s(), 2) + "x",
               fmt(c.run.accept_rate() * 100.0, 1) + "%",
               c.run.outputs == baseline.outputs ? "yes" : "NO"});
  }

  std::cout << "\nbest speedup " << fmt(best_speedup, 2) << "x over full-depth decode; outputs "
            << (all_identical ? "byte-identical" : "DIVERGED") << " across the sweep\n";

  const std::string json_path =
      args.count("--json") ? args["--json"] : std::string("BENCH_serve_speculative.json");
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n  \"requests\": " << n_requests << ",\n  \"prompt_tokens\": " << prompt_len
       << ",\n  \"new_tokens\": " << n_new
       << ",\n  \"baseline\": {\"wall_ms\": " << fmt(baseline.wall_ms, 1)
       << ", \"tok_s\": " << fmt(baseline.tok_s(), 1) << "},\n  \"cells\": [";
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      js << (i ? "," : "") << "\n    {\"draft_depth\": " << c.depth << ", \"draft_k\": " << c.k
         << ", \"wall_ms\": " << fmt(c.run.wall_ms, 1) << ", \"tok_s\": " << fmt(c.run.tok_s(), 1)
         << ", \"speedup\": " << fmt(c.run.tok_s() / baseline.tok_s(), 3)
         << ", \"accept_rate\": " << fmt(c.run.accept_rate(), 3)
         << ", \"accepted\": " << c.run.accepted << ", \"rejected\": " << c.run.rejected
         << ", \"outputs_byte_identical\": "
         << (c.run.outputs == baseline.outputs ? "true" : "false") << "}";
    }
    js << "\n  ],\n  \"best_speedup\": " << fmt(best_speedup, 3)
       << ",\n  \"all_outputs_byte_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"kv_conserved\": " << (all_conserved ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (check_spec) {
    bool ok = true;
    if (!(total_accepted > 0)) {
      std::cerr << "CHECK FAILED: no draft token was ever accepted\n";
      ok = false;
    }
    if (!all_identical) {
      std::cerr << "CHECK FAILED: speculative outputs diverged from full-depth decode\n";
      ok = false;
    }
    if (!all_conserved) {
      std::cerr << "CHECK FAILED: KV conservation violated after drain\n";
      ok = false;
    }
    if (!(best_speedup > 1.0)) {
      std::cerr << "CHECK FAILED: best speedup " << fmt(best_speedup, 2)
                << "x (want > 1.0x at some sweep cell)\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "speculative checks passed\n";
  }
  return 0;
}
