// Serving resilience under overload: an open-loop load sweep against the
// admission-controlled ServeEngine.
//
// The engine's closed-loop service rate (requests/s at full batch) is
// calibrated first, then seeded Poisson arrivals are replayed at 0.25x,
// 0.5x, 1.0x and 2.0x of that rate against an engine with the resilience
// layer enabled: queue-depth degradation (final -> early exit, the paper's
// accuracy-for-survival trade) below a queue-depth shed threshold
// (reject-new). The claim this bench substantiates: with admission control
// on, p99 latency at 2x overload stays within a small multiple of the
// unloaded p99 — the queue cannot grow without bound — while goodput is
// preserved by degrading instead of queueing.
//
// A machine-readable summary is written to BENCH_serve_overload.json
// (override with --json PATH, disable with --json ""). --check-overload
// exits non-zero if the sweep loses its shape: p99(2x)/p99(0.25x) must
// stay under a generous CI bar, overload must visibly engage the policy
// (shed + degraded + rejected > 0 at 2x), every load must complete work,
// and the engine's conservation invariant must hold. The committed
// baseline in bench/BENCH_serve_overload.json holds the real margin.
//
// Run: ./build/bench/bench_serve_overload [--seconds S] [--repeats N]
//      [--tokens N] [--json out.json] [--check-overload]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::vector<int64_t> make_prompt(int64_t n, int64_t vocab, int64_t salt) {
  std::vector<int64_t> p(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) p[static_cast<size_t>(i)] = (i * 7 + salt * 3 + 1) % vocab;
  return p;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[i];
}

constexpr int64_t kPromptLen = 4;

/// The resilience policy every loaded run uses. Queue depth is the pressure
/// signal: past 1/8 of capacity the degradation ladder engages (new
/// admissions decode at a registered early exit, which is both cheaper per
/// tick and a smaller KV reservation), past 3/8 new arrivals are shed. The
/// thresholds cap how much latency the queue can ever add — that is what
/// keeps the p99 ratio flat across the load axis.
serve::EngineConfig overload_cfg() {
  serve::EngineConfig e;
  e.threads = 2;
  e.max_batch = 4;
  e.queue_capacity = 16;
  e.admission.shed_policy = serve::ShedPolicy::kRejectNew;
  e.admission.degrade_queue_ratio = 0.125;  // depth 2 of 16
  e.admission.shed_queue_ratio = 0.375;     // depth 6 of 16
  return e;
}

/// Closed-loop calibration: everything submitted at once to an engine with
/// no resilience policy; the sustained drain rate is the service capacity
/// that the open-loop arrival rates are expressed against.
double calibrate_service_rps(nn::CausalLm& model, int64_t n, int64_t n_new, int64_t vocab) {
  serve::EngineConfig e;
  e.threads = 2;
  e.max_batch = 4;
  e.queue_capacity = n;
  serve::ServeEngine engine(model, e);
  std::vector<std::future<serve::Completion>> futs;
  const auto t0 = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i + 1;
    req.prompt = make_prompt(kPromptLen, vocab, i);
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    futs.push_back(engine.submit(std::move(req)));
  }
  for (auto& f : futs) f.get();
  const double ms = ms_since(t0);
  engine.shutdown();
  return static_cast<double>(n) / (ms / 1e3);
}

/// Pooled outcome of one load point (possibly several repeats).
struct LoadRow {
  double load = 0.0;
  double arrival_rps = 0.0;
  int64_t offered = 0;
  int64_t completed = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  int64_t failed = 0;
  int64_t ok_tokens = 0;
  double wall_ms = 0.0;
  std::vector<double> lat;  ///< total_ms of every kOk completion

  double goodput_tok_s() const { return static_cast<double>(ok_tokens) / (wall_ms / 1e3); }
};

/// One open-loop run: seeded exponential inter-arrival gaps at `rate_rps`,
/// submitted on schedule regardless of how the engine is coping (that is
/// what makes it an overload test), then every future drained.
void run_load(nn::CausalLm& model, LoadRow& row, double rate_rps, double duration_s,
              int64_t n_new, int64_t vocab, uint64_t seed) {
  const int64_t offered = std::max<int64_t>(16, std::llround(rate_rps * duration_s));
  serve::ServeEngine engine(model, overload_cfg());
  Rng rng(seed);

  std::vector<std::future<serve::Completion>> futs;
  futs.reserve(static_cast<size_t>(offered));
  const auto t0 = Clock::now();
  auto next = t0;
  for (int64_t i = 0; i < offered; ++i) {
    const double u = static_cast<double>(rng.uniform(0.0f, 1.0f));
    const double gap_s = -std::log1p(-std::min(u, 0.999999)) / rate_rps;
    next += std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next);
    serve::Request req;
    req.id = i + 1;
    req.prompt = make_prompt(kPromptLen, vocab, i);
    req.max_new_tokens = n_new;
    req.temperature = 0.0f;
    futs.push_back(engine.submit(std::move(req)));
  }
  for (auto& f : futs) {
    const serve::Completion c = f.get();
    if (c.status == serve::RequestStatus::kOk) {
      row.ok_tokens += static_cast<int64_t>(c.tokens.size());
      row.lat.push_back(c.metrics.total_ms);
    }
  }
  row.wall_ms += ms_since(t0);
  engine.shutdown();

  const serve::EngineMetrics m = engine.metrics();
  check_arg(m.submitted == m.completed + m.rejected + m.cancelled + m.timed_out + m.shed +
                               m.expired + m.failed,
            "bench: request conservation violated");
  row.offered += m.submitted;
  row.completed += m.completed;
  row.degraded += m.degraded;
  row.shed += m.shed;
  row.rejected += m.rejected;
  row.expired += m.expired;
  row.failed += m.failed;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool check_overload = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-overload") == 0) {
      check_overload = true;
    } else if (i + 1 < argc) {
      args[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  const double duration_s = args.count("--seconds") ? std::stod(args["--seconds"]) : 1.2;
  const int64_t repeats = args.count("--repeats") ? std::stoll(args["--repeats"]) : 2;
  const int64_t n_new = args.count("--tokens") ? std::stoll(args["--tokens"]) : 16;

  const nn::ModelConfig cfg = bench::bench_model_config();
  Rng rng(7);
  nn::CausalLm model(cfg, rng);

  // Warm pass, then the measured calibration.
  calibrate_service_rps(model, 8, n_new, cfg.vocab);
  const double service_rps = calibrate_service_rps(model, 32, n_new, cfg.vocab);
  std::cout << "calibrated service rate: " << fmt(service_rps, 1) << " req/s ("
            << cfg.n_layers << "L/d" << cfg.d_model << ", " << n_new
            << " tokens/request); open-loop arrivals for " << fmt(duration_s, 1)
            << "s x " << repeats << " repeats per load\n\n";

  const double loads[] = {0.25, 0.5, 1.0, 2.0};
  std::vector<LoadRow> rows;
  for (const double load : loads) {
    LoadRow row;
    row.load = load;
    row.arrival_rps = load * service_rps;
    for (int64_t r = 0; r < repeats; ++r) {
      run_load(model, row, row.arrival_rps, duration_s, n_new, cfg.vocab,
               /*seed=*/0x0AD5 + static_cast<uint64_t>(load * 100) * 31 +
                   static_cast<uint64_t>(r));
    }
    rows.push_back(std::move(row));
  }

  runtime::TablePrinter table({6, 9, 9, 7, 7, 7, 7, 9, 9, 9, 11});
  table.row({"load", "rps", "offered", "ok", "degr", "shed", "rej", "p50 ms", "p95 ms",
             "p99 ms", "goodput t/s"});
  table.rule();
  for (const LoadRow& r : rows) {
    table.row({fmt(r.load, 2), fmt(r.arrival_rps, 1), std::to_string(r.offered),
               std::to_string(r.completed), std::to_string(r.degraded), std::to_string(r.shed),
               std::to_string(r.rejected), fmt(percentile(r.lat, 0.50), 2),
               fmt(percentile(r.lat, 0.95), 2), fmt(percentile(r.lat, 0.99), 2),
               fmt(r.goodput_tok_s(), 0)});
  }

  const double unloaded_p99 = percentile(rows.front().lat, 0.99);
  const double loaded_p99 = percentile(rows.back().lat, 0.99);
  const double p99_ratio_2x = unloaded_p99 > 0.0 ? loaded_p99 / unloaded_p99 : 0.0;
  const int64_t engaged_2x = rows.back().shed + rows.back().degraded + rows.back().rejected;
  std::cout << "\np99 at 2.0x load / p99 at 0.25x load: " << fmt(p99_ratio_2x, 2)
            << "x (policy engaged on " << engaged_2x << " requests at 2x)\n";

  const std::string json_path =
      args.count("--json") ? args["--json"] : std::string("BENCH_serve_overload.json");
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n  \"service_rate_rps\": " << fmt(service_rps, 1)
       << ",\n  \"tokens_per_request\": " << n_new
       << ",\n  \"shed_policy\": \"reject-new\",\n  \"degrade_queue_ratio\": 0.125,\n"
          "  \"shed_queue_ratio\": 0.375,\n  \"loads\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const LoadRow& r = rows[i];
      js << "    {\"load\": " << fmt(r.load, 2) << ", \"arrival_rps\": " << fmt(r.arrival_rps, 1)
         << ", \"offered\": " << r.offered << ", \"completed\": " << r.completed
         << ", \"degraded\": " << r.degraded << ", \"shed\": " << r.shed
         << ", \"rejected\": " << r.rejected << ", \"expired\": " << r.expired
         << ", \"failed\": " << r.failed << ", \"p50_ms\": " << fmt(percentile(r.lat, 0.50), 3)
         << ", \"p95_ms\": " << fmt(percentile(r.lat, 0.95), 3)
         << ", \"p99_ms\": " << fmt(percentile(r.lat, 0.99), 3)
         << ", \"goodput_tok_s\": " << fmt(r.goodput_tok_s(), 1) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"p99_ratio_2x\": " << fmt(p99_ratio_2x, 3)
       << ",\n  \"policy_engaged_at_2x\": " << engaged_2x << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (check_overload) {
    // Generous CI bars — shared runners are noisy; the committed baseline
    // documents the real margins.
    bool ok = true;
    if (!(p99_ratio_2x > 0.0 && p99_ratio_2x <= 5.0)) {
      std::cerr << "CHECK FAILED: p99 ratio at 2x load is " << fmt(p99_ratio_2x, 2)
                << "x (want (0, 5])\n";
      ok = false;
    }
    if (engaged_2x <= 0) {
      std::cerr << "CHECK FAILED: overload policy never engaged at 2x load\n";
      ok = false;
    }
    for (const LoadRow& r : rows) {
      if (r.completed <= 0 || r.ok_tokens <= 0) {
        std::cerr << "CHECK FAILED: no completed work at load " << fmt(r.load, 2) << "x\n";
        ok = false;
      }
    }
    if (!ok) return 1;
    std::cout << "overload checks passed\n";
  }
  return 0;
}
