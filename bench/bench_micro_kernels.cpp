// Micro-benchmarks (google-benchmark) for the kernels the library leans on:
// GEMM variants, fake-quant, prune masking, attention forward/backward, and
// schedule-cost evaluation / search throughput.
//
// Before the google-benchmark suites run, main() performs the observability
// overhead sweep: instrumented ops::matmul vs a raw triple-loop replica,
// with the tracer off / structural-only / kernel-sampled / every-call, and
// writes the result to BENCH_obs.json (the evidence for the "<2% with
// tracing disabled" claim in docs/OBSERVABILITY.md). Skip it with
// --no-obs-sweep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>

#include "hw/anneal.hpp"
#include "hw/search.hpp"
#include "obs/trace.hpp"
#include "quant/packed.hpp"
#include "nn/attention.hpp"
#include "prune/prune.hpp"
#include "quant/quant.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"
#include "tensor/simd.hpp"

namespace {

using namespace edgellm;

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulNt(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128);

// Thread sweep over the deterministic compute backend: Args are {n,
// threads}. Outputs are bitwise identical at every thread count (asserted
// by ctest -L parallel); this measures the wall-clock side of the bargain.
// On a single-core host every row collapses to serial speed — run on a
// multicore machine to see the scaling.
void BM_MatmulThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_MatmulThreads)
    ->Args({128, 1})->Args({128, 2})->Args({128, 4})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4});

void BM_BmmThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  const Tensor a = randn({8, n, n}, rng);
  const Tensor b = randn({8, n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::bmm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_BmmThreads)->Args({64, 1})->Args({64, 2})->Args({64, 4});

void BM_AttentionForwardThreads(benchmark::State& state) {
  parallel::set_num_threads(state.range(1));
  Rng rng(5);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  attn.set_grad_enabled(false);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
  }
  parallel::set_num_threads(1);
}
BENCHMARK(BM_AttentionForwardThreads)->Args({64, 1})->Args({64, 2})->Args({64, 4});

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = randn({state.range(0), 128}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::softmax_lastdim(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(512);

void BM_FakeQuant(benchmark::State& state) {
  Rng rng(3);
  const Tensor w = randn({state.range(0), state.range(0)}, rng);
  quant::QuantSpec spec;
  spec.bits = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::fake_quant(w, spec));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_FakeQuant)->Args({64, 4})->Args({64, 8})->Args({256, 4});

void BM_MagnitudeMask(benchmark::State& state) {
  Rng rng(4);
  const Tensor w = randn({state.range(0), state.range(0)}, rng);
  prune::PruneSpec spec;
  spec.sparsity = 0.5f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prune::magnitude_mask(w, spec));
  }
}
BENCHMARK(BM_MagnitudeMask)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  attn.set_grad_enabled(false);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64);

void BM_AttentionTrainStep(benchmark::State& state) {
  Rng rng(6);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  const Tensor g = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
    benchmark::DoNotOptimize(attn.backward(g));
    attn.zero_grad();
  }
}
BENCHMARK(BM_AttentionTrainStep)->Arg(16)->Arg(64);

void BM_PackedMatmul(benchmark::State& state) {
  Rng rng(12);
  const int64_t n = state.range(0);
  const Tensor x = randn({8, n}, rng);
  const Tensor w = randn({n, n}, rng);
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::packed_matmul_nt(x, p));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_PackedMatmul)->Args({128, 8})->Args({128, 4});

void BM_ScheduleEval(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  hw::Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::evaluate_schedule(dev, g, s, dev.sram_bytes));
  }
}
BENCHMARK(BM_ScheduleEval);

void BM_ScheduleAnneal(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  hw::AnnealConfig cfg;
  cfg.iterations = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::anneal_gemm(dev, g, dev.sram_bytes, cfg));
  }
}
BENCHMARK(BM_ScheduleAnneal)->Arg(500)->Arg(2000);

void BM_ScheduleSearch(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  const hw::SearchConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::search_gemm(dev, g, dev.sram_bytes, cfg));
  }
}
BENCHMARK(BM_ScheduleSearch);

// --- observability overhead sweep (BENCH_obs.json) --------------------------

/// Uninstrumented reference GEMM: the same allocation + serial triple loop
/// ops::matmul runs (single-threaded), minus argument checks, dispatch and
/// the KernelSpan probe — the denominator for the instrumentation-overhead
/// ratio.
Tensor raw_gemm(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

/// Min-of-reps wall time in ms — min is far more robust to scheduler noise
/// than mean on a shared/single-core box.
template <typename Fn>
double min_time_ms(int reps, int inner, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
        inner;
    best = std::min(best, ms);
  }
  return best;
}

void run_obs_sweep(const std::string& path) {
  obs::Tracer& tracer = obs::Tracer::global();
  Rng rng(7);
  const int64_t n = 96;
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  constexpr int kReps = 9, kInner = 20;

  tracer.disable();
  tracer.clear();
  const double t_raw = min_time_ms(kReps, kInner, [&] {
    benchmark::DoNotOptimize(raw_gemm(a, b));
  });
  const double t_off = min_time_ms(kReps, kInner, [&] {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  });

  tracer.enable(/*kernel_sample=*/0);  // structural spans only: probe cost, no recording
  const double t_structural = min_time_ms(kReps, kInner, [&] {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  });
  tracer.enable(/*kernel_sample=*/16);
  const double t_sampled = min_time_ms(kReps, kInner, [&] {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  });
  tracer.enable(/*kernel_sample=*/1);
  const double t_every = min_time_ms(kReps, kInner, [&] {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  });
  const int64_t recorded = static_cast<int64_t>(tracer.events().size());
  tracer.disable();
  tracer.clear();

  const auto pct = [](double t, double base) { return (t / base - 1.0) * 100.0; };
  std::ofstream js(path);
  js << "{\n"
     << "  \"bench\": \"obs_overhead\",\n"
     << "  \"matmul_n\": " << n << ",\n"
     << "  \"reps\": " << kReps << ", \"inner\": " << kInner << ",\n"
     << "  \"raw_loop_ms\": " << t_raw << ",\n"
     << "  \"instrumented_tracing_off_ms\": " << t_off << ",\n"
     << "  \"tracing_on_structural_ms\": " << t_structural << ",\n"
     << "  \"tracing_on_sample16_ms\": " << t_sampled << ",\n"
     << "  \"tracing_on_sample1_ms\": " << t_every << ",\n"
     << "  \"overhead_off_vs_raw_pct\": " << pct(t_off, t_raw) << ",\n"
     << "  \"overhead_structural_vs_off_pct\": " << pct(t_structural, t_off) << ",\n"
     << "  \"overhead_sample16_vs_off_pct\": " << pct(t_sampled, t_off) << ",\n"
     << "  \"overhead_sample1_vs_off_pct\": " << pct(t_every, t_off) << ",\n"
     << "  \"events_recorded_at_sample1\": " << recorded << "\n"
     << "}\n";
  std::cout << "obs sweep: raw " << t_raw << " ms, tracing-off " << t_off << " ms ("
            << pct(t_off, t_raw) << "% vs raw), sample=1 " << t_every << " ms; wrote " << path
            << "\n";
}

// --- blocked GEMM sweep (BENCH_gemm.json) ------------------------------------

/// Naive vs blocked dense kernels on square and decode-skinny shapes, plus
/// the packed integer kernel vs the dequantize-to-fp32-then-matmul path it
/// replaces, plus a thread sweep of the blocked kernel on the largest dense
/// shape. Every pairing is bitwise identical by construction (tensor/gemm.hpp,
/// asserted by ctest -L gemm) — this measures only the speed side.
/// Returns false (after writing the JSON) when the blocked kernel loses to
/// the naive one on the largest dense NT shape, the CI perf-smoke gate.
bool run_gemm_sweep(const std::string& path) {
  Rng rng(9);
  std::ofstream js(path);
  js << "{\n  \"bench\": \"gemm_sweep\",\n  \"results\": [\n";
  bool first = true;
  double largest_dense_speedup = 0.0;

  const auto emit = [&](const std::string& kind, int bits, int64_t m, int64_t k, int64_t n,
                        int64_t threads, double base_ms, double ours_ms,
                        const char* baseline_name) {
    if (!first) js << ",\n";
    first = false;
    js << "    {\"kind\": \"" << kind << "\", \"bits\": " << bits << ", \"m\": " << m
       << ", \"k\": " << k << ", \"n\": " << n << ", \"threads\": " << threads << ", \""
       << baseline_name << "_ms\": " << base_ms << ", \"blocked_ms\": " << ours_ms
       << ", \"speedup\": " << base_ms / ours_ms << "}";
  };
  const auto reps_for = [](int64_t macs) {
    return macs > int64_t{8} * 1000 * 1000 ? 3 : 5;
  };

  // Dense shapes: squares up to one L2-ish working set, plus the serving
  // decode shape (few activation rows against a wide weight).
  struct Mkn {
    int64_t m, k, n;
  };
  const std::vector<Mkn> dense = {{64, 64, 64},   {128, 128, 128}, {256, 256, 256},
                                  {8, 256, 256},  {8, 512, 512},   {8, 768, 768}};
  for (const Mkn& s : dense) {
    const Tensor a = randn({s.m, s.k}, rng);
    const Tensor bn = randn({s.k, s.n}, rng);
    const Tensor bt = randn({s.n, s.k}, rng);
    const int reps = reps_for(s.m * s.k * s.n);
    const auto blk = ops::gemm::blocking_for(ops::gemm::GemmKind::kNT, s.m, s.k, s.n);
    const double nn_naive = min_time_ms(reps, 1, [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_naive(a, bn));
    });
    const double nn_blocked = min_time_ms(reps, 1, [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_blocked(a, bn, blk));
    });
    emit("nn", 32, s.m, s.k, s.n, 1, nn_naive, nn_blocked, "naive");
    const double nt_naive = min_time_ms(reps, 1, [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_nt_naive(a, bt));
    });
    const double nt_blocked = min_time_ms(reps, 1, [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_nt_blocked(a, bt, blk));
    });
    emit("nt", 32, s.m, s.k, s.n, 1, nt_naive, nt_blocked, "naive");
    if (s.m == 256) largest_dense_speedup = nt_naive / nt_blocked;
  }

  // Packed integer weights at the decode shapes: the blocked integer kernel
  // vs dequantizing the whole weight to fp32 and running the dense matmul —
  // the path DecodeWeightCache takes without --packed-weights.
  for (const Mkn& s : {Mkn{8, 256, 256}, Mkn{8, 512, 512}, Mkn{8, 768, 768},
                       Mkn{8, 1024, 1024}}) {
    const Tensor x = randn({s.m, s.k}, rng);
    const Tensor w = randn({s.n, s.k}, rng);
    const int reps = 5;
    for (int bits : {8, 4}) {
      const quant::PackedMatrix p = quant::PackedMatrix::pack(w, bits);
      const double dequant = min_time_ms(reps, 1, [&] {
        benchmark::DoNotOptimize(ops::matmul_nt(x, p.dequantize()));
      });
      const double packed = min_time_ms(reps, 1, [&] {
        benchmark::DoNotOptimize(quant::packed_matmul_nt(x, p));
      });
      emit("packed_nt", bits, s.m, s.k, s.n, 1, dequant, packed, "dequant_path");
    }
  }

  // Thread sweep on the largest dense shape: same bits at every count; on a
  // single-core host the rows collapse to serial speed.
  {
    const int64_t n = 256;
    const Tensor a = randn({n, n}, rng);
    const Tensor bt = randn({n, n}, rng);
    for (int64_t threads : {1, 2, 8}) {
      parallel::set_num_threads(threads);
      const double naive = min_time_ms(3, 1, [&] {
        benchmark::DoNotOptimize(ops::gemm::matmul_nt_naive(a, bt));
      });
      const double blocked = min_time_ms(3, 1, [&] {
        benchmark::DoNotOptimize(ops::matmul_nt(a, bt));
      });
      emit("nt_threads", 32, n, n, n, threads, naive, blocked, "naive");
    }
    parallel::set_num_threads(1);
  }

  // SIMD dispatch sweep: the same blocked kernel under forced-scalar vs the
  // detected backend (plus its fast_math variant), on the 256^3 NT dense
  // shape, the fused packed int4/int8 dequant-dot, and the three hot
  // elementwise kernels. Scalar-vs-vector rows are bitwise identical in
  // output (ctest -L simd), so the delta is pure vectorization. On a host
  // whose best backend IS scalar the rows collapse to 1.0x and the SIMD
  // gates below auto-pass.
  double simd_gemm_speedup = 1.0;
  double simd_dequant_speedup_min = 1e300;
  const bool have_vector = simd::detected_isa() != simd::Isa::kScalar;
  {
    const char* native = simd::to_string(simd::detected_isa());
    const auto timed_under = [&](const char* isa, auto&& fn) {
      if (!simd::set_dispatch(isa)) std::abort();  // detected ISA is always settable
      const double t = min_time_ms(5, 1, fn);
      simd::set_dispatch("auto");
      return t;
    };

    const int64_t n = 256;
    const Tensor a = randn({n, n}, rng);
    const Tensor bt = randn({n, n}, rng);
    const auto blk = ops::gemm::blocking_for(ops::gemm::GemmKind::kNT, n, n, n);
    const auto nt_once = [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_nt_blocked(a, bt, blk, false));
    };
    const double nt_scalar = timed_under("scalar", nt_once);
    const double nt_vector = timed_under(native, nt_once);
    simd_gemm_speedup = nt_scalar / nt_vector;
    emit("nt_simd", 32, n, n, n, 1, nt_scalar, nt_vector, "scalar_simd");
    const double nt_fast = timed_under(native, [&] {
      benchmark::DoNotOptimize(ops::gemm::matmul_nt_blocked(a, bt, blk, true));
    });
    emit("nt_simd_fastmath", 32, n, n, n, 1, nt_scalar, nt_fast, "scalar_simd");

    const Tensor x = randn({8, 768}, rng);
    const Tensor w = randn({768, 768}, rng);
    const auto qblk = ops::gemm::blocking_for(ops::gemm::GemmKind::kPackedNT, 8, 768, 768);
    for (int bits : {8, 4}) {
      const quant::PackedMatrix p = quant::PackedMatrix::pack(w, bits);
      const auto q_once = [&] {
        benchmark::DoNotOptimize(quant::packed_matmul_nt_blocked(x, p, qblk, false));
      };
      const double q_scalar = timed_under("scalar", q_once);
      const double q_vector = timed_under(native, q_once);
      simd_dequant_speedup_min = std::min(simd_dequant_speedup_min, q_scalar / q_vector);
      emit("packed_nt_simd", bits, 8, 768, 768, 1, q_scalar, q_vector, "scalar_simd");
    }

    // Elementwise: softmax (exp-heavy), swiglu (sigmoid-heavy), rmsnorm
    // (reduction + apply). Shapes sized like decode activations.
    const Tensor sm_x = randn({64, 512}, rng);
    const double sm_scalar = timed_under("scalar", [&] {
      benchmark::DoNotOptimize(ops::softmax_lastdim(sm_x));
    });
    const double sm_vector = timed_under(native, [&] {
      benchmark::DoNotOptimize(ops::softmax_lastdim(sm_x));
    });
    emit("softmax_simd", 32, 64, 0, 512, 1, sm_scalar, sm_vector, "scalar_simd");

    const Tensor gate = randn({64, 1024}, rng);
    const Tensor up = randn({64, 1024}, rng);
    const double sw_scalar = timed_under("scalar", [&] {
      benchmark::DoNotOptimize(ops::swiglu(gate, up));
    });
    const double sw_vector = timed_under(native, [&] {
      benchmark::DoNotOptimize(ops::swiglu(gate, up));
    });
    emit("swiglu_simd", 32, 64, 0, 1024, 1, sw_scalar, sw_vector, "scalar_simd");

    const Tensor nx = randn({64, 1024}, rng);
    const Tensor gain = randn({1024}, rng);
    const double rn_scalar = timed_under("scalar", [&] {
      benchmark::DoNotOptimize(ops::rms_norm_lastdim(nx, gain, 1e-5f));
    });
    const double rn_vector = timed_under(native, [&] {
      benchmark::DoNotOptimize(ops::rms_norm_lastdim(nx, gain, 1e-5f));
    });
    emit("rmsnorm_simd", 32, 64, 0, 1024, 1, rn_scalar, rn_vector, "scalar_simd");
  }
  if (!have_vector) simd_dequant_speedup_min = 1.0;

  js << "\n  ],\n  \"largest_dense_nt_speedup\": " << largest_dense_speedup
     << ",\n  \"simd_isa\": \"" << simd::to_string(simd::detected_isa())
     << "\",\n  \"simd_nt256_speedup\": " << simd_gemm_speedup
     << ",\n  \"simd_dequant_dot_min_speedup\": " << simd_dequant_speedup_min << "\n}\n";
  std::cout << "gemm sweep: blocked NT speedup at 256^3 = " << largest_dense_speedup
            << "x vs naive; simd (" << simd::to_string(simd::detected_isa())
            << ") vs scalar at 256^3 NT = " << simd_gemm_speedup
            << "x, fused dequant-dot min = " << simd_dequant_speedup_min << "x; wrote " << path
            << "\n";
  // Gate: blocked must beat naive, and on hosts with a vector backend the
  // vectorized kernels must beat forced-scalar. The bars are deliberately
  // below the typical 2-4x so scheduler noise on shared CI runners can't
  // flake the job; the committed BENCH_gemm.json records the real margins.
  bool ok = largest_dense_speedup >= 1.0;
  if (have_vector) {
    ok = ok && simd_gemm_speedup >= 1.3 && simd_dequant_speedup_min >= 1.0;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool obs_sweep = true;
  bool gemm_sweep = true;
  bool check_gemm = false;
  const auto strip = [&](int i) {
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  };
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--no-obs-sweep") == 0) {
      obs_sweep = false;
      strip(i);
    } else if (std::strcmp(argv[i], "--no-gemm-sweep") == 0) {
      gemm_sweep = false;
      strip(i);
    } else if (std::strcmp(argv[i], "--check-gemm") == 0) {
      check_gemm = true;
      strip(i);
    } else {
      ++i;
    }
  }
  if (obs_sweep) run_obs_sweep("BENCH_obs.json");
  if (gemm_sweep || check_gemm) {
    const bool ok = run_gemm_sweep("BENCH_gemm.json");
    if (check_gemm && !ok) {
      std::cerr << "gemm sweep: blocked kernel lost to naive on the largest dense shape, "
                   "or the vectorized kernels lost to forced-scalar dispatch\n";
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
