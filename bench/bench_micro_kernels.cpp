// Micro-benchmarks (google-benchmark) for the kernels the library leans on:
// GEMM variants, fake-quant, prune masking, attention forward/backward, and
// schedule-cost evaluation / search throughput.
#include <benchmark/benchmark.h>

#include "hw/anneal.hpp"
#include "hw/search.hpp"
#include "quant/packed.hpp"
#include "nn/attention.hpp"
#include "prune/prune.hpp"
#include "quant/quant.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace edgellm;

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulNt(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128);

// Thread sweep over the deterministic compute backend: Args are {n,
// threads}. Outputs are bitwise identical at every thread count (asserted
// by ctest -L parallel); this measures the wall-clock side of the bargain.
// On a single-core host every row collapses to serial speed — run on a
// multicore machine to see the scaling.
void BM_MatmulThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_MatmulThreads)
    ->Args({128, 1})->Args({128, 2})->Args({128, 4})
    ->Args({256, 1})->Args({256, 2})->Args({256, 4});

void BM_BmmThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  parallel::set_num_threads(state.range(1));
  Rng rng(1);
  const Tensor a = randn({8, n, n}, rng);
  const Tensor b = randn({8, n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::bmm(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n * n);
  parallel::set_num_threads(1);
}
BENCHMARK(BM_BmmThreads)->Args({64, 1})->Args({64, 2})->Args({64, 4});

void BM_AttentionForwardThreads(benchmark::State& state) {
  parallel::set_num_threads(state.range(1));
  Rng rng(5);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  attn.set_grad_enabled(false);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
  }
  parallel::set_num_threads(1);
}
BENCHMARK(BM_AttentionForwardThreads)->Args({64, 1})->Args({64, 2})->Args({64, 4});

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = randn({state.range(0), 128}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::softmax_lastdim(x));
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(512);

void BM_FakeQuant(benchmark::State& state) {
  Rng rng(3);
  const Tensor w = randn({state.range(0), state.range(0)}, rng);
  quant::QuantSpec spec;
  spec.bits = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::fake_quant(w, spec));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_FakeQuant)->Args({64, 4})->Args({64, 8})->Args({256, 4});

void BM_MagnitudeMask(benchmark::State& state) {
  Rng rng(4);
  const Tensor w = randn({state.range(0), state.range(0)}, rng);
  prune::PruneSpec spec;
  spec.sparsity = 0.5f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prune::magnitude_mask(w, spec));
  }
}
BENCHMARK(BM_MagnitudeMask)->Arg(64)->Arg(256);

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(5);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  attn.set_grad_enabled(false);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64);

void BM_AttentionTrainStep(benchmark::State& state) {
  Rng rng(6);
  nn::MultiHeadAttention attn("a", 64, 4, rng);
  const Tensor x = randn({4, state.range(0), 64}, rng);
  const Tensor g = randn({4, state.range(0), 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x));
    benchmark::DoNotOptimize(attn.backward(g));
    attn.zero_grad();
  }
}
BENCHMARK(BM_AttentionTrainStep)->Arg(16)->Arg(64);

void BM_PackedMatmul(benchmark::State& state) {
  Rng rng(12);
  const int64_t n = state.range(0);
  const Tensor x = randn({8, n}, rng);
  const Tensor w = randn({n, n}, rng);
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::packed_matmul_nt(x, p));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_PackedMatmul)->Args({128, 8})->Args({128, 4});

void BM_ScheduleEval(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  hw::Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::evaluate_schedule(dev, g, s, dev.sram_bytes));
  }
}
BENCHMARK(BM_ScheduleEval);

void BM_ScheduleAnneal(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  hw::AnnealConfig cfg;
  cfg.iterations = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::anneal_gemm(dev, g, dev.sram_bytes, cfg));
  }
}
BENCHMARK(BM_ScheduleAnneal)->Arg(500)->Arg(2000);

void BM_ScheduleSearch(benchmark::State& state) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 512;
  g.n = 512;
  g.k = 512;
  g.weight_bits = 4;
  const hw::SearchConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::search_gemm(dev, g, dev.sram_bytes, cfg));
  }
}
BENCHMARK(BM_ScheduleSearch);

}  // namespace

BENCHMARK_MAIN();
