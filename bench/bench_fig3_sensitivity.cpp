// Figure R3 — layer-wise compression sensitivity profiles (LUC's input).
// Prints the Δloss heat-map per layer for bit-widths and prune ratios, on
// the pretrained base model evaluated on target-domain calibration data.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  std::cout << "=== Figure R3: layer sensitivity to quantization and pruning ===\n\n";

  auto model = bench::make_pretrained_base();
  const std::vector<data::LmBatch> calib = bench::base_calib_set();

  core::SensitivityConfig cfg;
  cfg.bit_candidates = {2, 3, 4, 8};
  cfg.prune_candidates = {0.0f, 0.3f, 0.5f, 0.7f};
  const core::SensitivityProfile prof = core::analyze_sensitivity(*model, calib, cfg);

  std::cout << "baseline (fp16) calibration loss: " << fmt(prof.baseline_loss, 4) << "\n\n";
  std::cout << "Quantization: delta loss when ONLY that layer is quantized\n";
  runtime::TablePrinter qt({8, 10, 10, 10, 10});
  qt.row({"layer", "2-bit", "3-bit", "4-bit", "8-bit"});
  qt.rule();
  for (const core::LayerSensitivity& l : prof.layers) {
    qt.row({std::to_string(l.layer), fmt(l.bit_delta.at(2), 4), fmt(l.bit_delta.at(3), 4),
            fmt(l.bit_delta.at(4), 4), fmt(l.bit_delta.at(8), 4)});
  }

  std::cout << "\nPruning: delta loss when ONLY that layer is pruned (unstructured)\n";
  runtime::TablePrinter pt({8, 10, 10, 10});
  pt.row({"layer", "30%", "50%", "70%"});
  pt.rule();
  for (const core::LayerSensitivity& l : prof.layers) {
    pt.row({std::to_string(l.layer), fmt(l.prune_delta.at(0.3f), 4),
            fmt(l.prune_delta.at(0.5f), 4), fmt(l.prune_delta.at(0.7f), 4)});
  }

  // Simple ASCII profile of 2-bit sensitivity across depth.
  std::cout << "\n2-bit sensitivity across depth:\n";
  float max_d = 1e-6f;
  for (const auto& l : prof.layers) max_d = std::max(max_d, l.bit_delta.at(2));
  for (const auto& l : prof.layers) {
    std::cout << "L" << l.layer << " |";
    const int bars = static_cast<int>(40.0f * std::max(0.0f, l.bit_delta.at(2)) / max_d);
    for (int i = 0; i < bars; ++i) std::cout << '#';
    std::cout << " " << fmt(l.bit_delta.at(2), 4) << "\n";
  }

  std::cout << "\nShape to check: sensitivity is non-uniform across layers (the premise of\n"
               "LUC) and increases as bits drop / sparsity rises within each layer.\n";
  return 0;
}
