#include "core/sensitivity.hpp"

#include "data/eval.hpp"

namespace edgellm::core {

float LayerSensitivity::estimate(int bits, float sparsity) const {
  const auto joint_it = joint_delta.find({bits, sparsity});
  if (joint_it != joint_delta.end()) return joint_it->second;
  float d = 0.0f;
  const auto bit_it = bit_delta.find(bits);
  check_arg(bit_it != bit_delta.end(), "estimate: unprobed bit-width");
  d += bit_it->second;
  const auto pr_it = prune_delta.find(sparsity);
  check_arg(pr_it != prune_delta.end(), "estimate: unprobed prune ratio");
  d += pr_it->second;
  return d;
}

SensitivityProfile analyze_sensitivity(nn::CausalLm& model,
                                       const std::vector<data::LmBatch>& calib,
                                       const SensitivityConfig& cfg) {
  check_arg(!calib.empty(), "analyze_sensitivity: empty calibration set");
  check_arg(!cfg.bit_candidates.empty() && !cfg.prune_candidates.empty(),
            "analyze_sensitivity: empty candidate lists");

  const int64_t final_exit = model.config().n_layers;
  auto blocks = model.blocks();

  for (nn::TransformerBlock* b : blocks) b->set_compression(std::nullopt, std::nullopt);

  SensitivityProfile profile;
  profile.baseline_loss = data::lm_loss(model, calib, final_exit);

  for (size_t li = 0; li < blocks.size(); ++li) {
    LayerSensitivity sens;
    sens.layer = static_cast<int64_t>(li);

    for (int bits : cfg.bit_candidates) {
      quant::QuantSpec q;
      q.bits = bits;
      q.granularity = cfg.quant_granularity;
      blocks[li]->set_compression(q, std::nullopt);
      sens.bit_delta[bits] = data::lm_loss(model, calib, final_exit) - profile.baseline_loss;
      blocks[li]->set_compression(std::nullopt, std::nullopt);
    }
    for (float ratio : cfg.prune_candidates) {
      if (ratio <= 0.0f) {
        sens.prune_delta[ratio] = 0.0f;
        continue;
      }
      prune::PruneSpec p;
      p.sparsity = ratio;
      p.pattern = cfg.prune_pattern;
      blocks[li]->set_compression(std::nullopt, p);
      sens.prune_delta[ratio] = data::lm_loss(model, calib, final_exit) - profile.baseline_loss;
      blocks[li]->set_compression(std::nullopt, std::nullopt);
    }
    if (cfg.joint) {
      for (int bits : cfg.bit_candidates) {
        for (float ratio : cfg.prune_candidates) {
          if (ratio <= 0.0f) {
            // Quant-only joint point equals the marginal measurement.
            sens.joint_delta[{bits, ratio}] = sens.bit_delta.at(bits);
            continue;
          }
          quant::QuantSpec q;
          q.bits = bits;
          q.granularity = cfg.quant_granularity;
          prune::PruneSpec p;
          p.sparsity = ratio;
          p.pattern = cfg.prune_pattern;
          blocks[li]->set_compression(q, p);
          sens.joint_delta[{bits, ratio}] =
              data::lm_loss(model, calib, final_exit) - profile.baseline_loss;
          blocks[li]->set_compression(std::nullopt, std::nullopt);
        }
      }
    }
    profile.layers.push_back(std::move(sens));
  }
  return profile;
}

}  // namespace edgellm::core
