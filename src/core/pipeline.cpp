#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "data/eval.hpp"
#include "obs/trace.hpp"
#include "tensor/parallel.hpp"

namespace edgellm::core {

PipelineResult run_pipeline(nn::CausalLm& model, const data::MarkovChain& domain,
                            const PipelineConfig& cfg) {
  check_arg(cfg.adaptation_iters > 0, "run_pipeline: need at least one iteration");
  check_arg(cfg.compute_threads >= 0, "run_pipeline: compute_threads must be >= 0");
  if (cfg.compute_threads > 0) parallel::set_num_threads(cfg.compute_threads);
  obs::Registry& reg = cfg.metrics != nullptr ? *cfg.metrics : obs::Registry::global();
  obs::Histogram& h_step_ms = reg.histogram("tuner/step_ms");
  obs::Histogram& h_exit = reg.histogram("tuner/exit_depth", obs::integer_bounds(16));
  obs::Histogram& h_window = reg.histogram("tuner/backprop_depth", obs::integer_bounds(16));
  obs::Counter& c_steps = reg.counter("tuner/steps");
  obs::Counter& c_skipped = reg.counter("tuner/skipped_steps");
  obs::Counter& c_rollbacks = reg.counter("tuner/rollbacks");
  Rng rng(cfg.seed);

  // Calibration and held-out evaluation data from the target domain.
  std::vector<data::LmBatch> calib, eval_set;
  for (int64_t i = 0; i < cfg.calib_batches; ++i) {
    calib.push_back(data::sample_lm_batch(domain, cfg.batch, cfg.seq, rng));
  }
  for (int64_t i = 0; i < cfg.eval_batches; ++i) {
    eval_set.push_back(data::sample_lm_batch(domain, cfg.batch, cfg.seq, rng));
  }

  PipelineResult res;

  // (1) + (2): layer-wise unified compression.
  if (cfg.apply_compression) {
    const obs::ScopedSpan span("pipeline/compress");
    res.profile = analyze_sensitivity(model, calib, cfg.sensitivity);
    res.policy = search_luc_policy(res.profile, cfg.sensitivity, cfg.luc);
    apply_policy(model, res.policy, cfg.sensitivity.prune_pattern,
                 cfg.sensitivity.quant_granularity);
  } else {
    res.policy.layers.assign(static_cast<size_t>(model.config().n_layers), LayerPolicy{});
  }

  // (3): adaptive layer tuning, with optional crash-safe checkpointing.
  // Snapshots capture the COMPLETE loop state (weights, optimizer moments,
  // tuner + pipeline RNG streams, loss curve), so a resumed run replays the
  // exact batch/exit sequence an uninterrupted run would have seen.
  AdaptiveLayerTuner tuner(model, cfg.tuner, rng.fork());
  res.loss_curve.reserve(static_cast<size_t>(cfg.adaptation_iters));
  PeakBytes peaks;
  int64_t start_iter = 0;
  if (cfg.snapshots && cfg.resume) {
    if (auto snap = cfg.snapshots->load_latest()) {
      restore_training_state(*snap, model, tuner, rng, res.loss_curve, peaks);
      start_iter = snap->iter;
      res.resumed_from_iter = snap->iter;
    }
  }
  {
    const obs::ScopedSpan adapt_span("pipeline/adapt");
    for (int64_t i = start_iter; i < cfg.adaptation_iters; ++i) {
      if (cfg.before_step) cfg.before_step(i);
      const data::LmBatch batch = data::sample_lm_batch(domain, cfg.batch, cfg.seq, rng);
      const auto step_t0 = std::chrono::steady_clock::now();
      const StepStats stats = tuner.step(batch);
      h_step_ms.observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - step_t0)
                            .count());
      h_exit.observe(static_cast<double>(stats.exit_layer));
      h_window.observe(static_cast<double>(stats.backprop_depth));
      c_steps.add();
      if (stats.skipped) c_skipped.add();
      res.loss_curve.push_back(stats.loss);
      if (stats.skipped) ++res.skipped_steps;
      peaks.activation = std::max(peaks.activation, stats.activation_bytes);
      peaks.optimizer = std::max(peaks.optimizer, stats.optimizer_state_bytes);
      peaks.grad = std::max(peaks.grad, stats.grad_bytes);

      if (tuner.needs_rollback()) {
        if (res.rollbacks >= cfg.max_rollbacks) {
          throw std::runtime_error("run_pipeline: rollback limit exceeded; adaptation diverged");
        }
        ++res.rollbacks;
        c_rollbacks.add();
        std::optional<Snapshot> snap;
        if (cfg.snapshots) snap = cfg.snapshots->load_latest();
        if (snap) {
          // Restore the last good state and replay from there with a smaller
          // learning rate; the restore also truncates the loss curve back to
          // the snapshot's iteration.
          restore_training_state(*snap, model, tuner, rng, res.loss_curve, peaks);
          tuner.note_rollback();
          i = snap->iter - 1;
          continue;
        }
        // No checkpoint to fall back to: back off the lr in place and push on.
        tuner.note_rollback();
      }

      if (cfg.snapshots && cfg.checkpoint_every > 0 && (i + 1) % cfg.checkpoint_every == 0 &&
          i + 1 < cfg.adaptation_iters) {
        cfg.snapshots->save(capture_training_state(i + 1, model, tuner, rng, res.loss_curve, peaks));
      }
    }
    if (cfg.snapshots && cfg.checkpoint_every > 0 && cfg.adaptation_iters > start_iter) {
      cfg.snapshots->save(
          capture_training_state(cfg.adaptation_iters, model, tuner, rng, res.loss_curve, peaks));
    }
  }
  res.peak_activation_bytes = peaks.activation;
  res.peak_optimizer_bytes = peaks.optimizer;
  res.peak_grad_bytes = peaks.grad;

  // (4): voting + evaluation.
  const obs::ScopedSpan eval_span("pipeline/eval");
  ExitVoter voter(model, cfg.voter);
  voter.calibrate(calib);
  res.final_exit_loss = data::lm_loss(model, eval_set, model.config().n_layers);
  res.voted_loss = voter.voted_loss(eval_set);
  res.voted_perplexity = data::perplexity(res.voted_loss);

  data::McqConfig mcq_cfg;
  mcq_cfg.n_items = 48;
  // Prompt + continuation must fit the model's context window.
  mcq_cfg.cont_len = 5;
  mcq_cfg.prompt_len = static_cast<int>(std::min<int64_t>(
      16, model.config().max_seq - mcq_cfg.cont_len));
  check_arg(mcq_cfg.prompt_len >= domain.config().order,
            "run_pipeline: max_seq too small for MCQ evaluation");
  const std::vector<data::McqItem> mcq = data::make_mcq_set(domain, mcq_cfg, rng);
  res.mcq_accuracy = data::mcq_accuracy(voter.logits_fn(), mcq, model.config().vocab);
  res.mcq_accuracy_final_exit = data::mcq_accuracy(
      data::exit_logits_fn(model, model.config().n_layers), mcq, model.config().vocab);

  res.model_storage_bytes = model.weight_storage_bytes();
  return res;
}

std::unique_ptr<nn::CausalLm> pretrain_base_model(const nn::ModelConfig& mcfg,
                                                  const data::MarkovChain& base_domain,
                                                  int64_t iters, int64_t batch, int64_t seq,
                                                  Rng& rng) {
  check_arg(iters > 0, "pretrain_base_model: iters must be positive");
  auto model_ptr = std::make_unique<nn::CausalLm>(mcfg, rng);
  nn::CausalLm& model = *model_ptr;

  TunerConfig tcfg = TunerConfig::vanilla();
  tcfg.optim.lr = 1e-2f;
  // Pretraining also exercises every exit head so that early exits start
  // from sensible states (cyclic keeps it deterministic).
  tcfg.sampling = DepthSampling::kCyclic;
  tcfg.backprop_window = 0;  // full backprop during pretraining
  tcfg.update_embeddings = true;
  AdaptiveLayerTuner tuner(model, tcfg, rng.fork());
  for (int64_t i = 0; i < iters; ++i) {
    const data::LmBatch b = data::sample_lm_batch(base_domain, batch, seq, rng);
    tuner.step(b);
  }
  return model_ptr;
}

}  // namespace edgellm::core
