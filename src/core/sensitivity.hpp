// Layer-wise compression sensitivity analysis — the signal LUC's policy
// search consumes (paper component 1).
//
// For each transformer block we measure the calibration-loss increase when
// that block alone is quantized to each candidate bit-width, and when it
// alone is pruned to each candidate ratio. Early/late layers typically show
// very different tolerance, which is exactly the non-uniformity LUC exploits.
#pragma once

#include <map>
#include <vector>

#include "data/corpus.hpp"
#include "nn/model.hpp"

namespace edgellm::core {

/// Candidates to probe.
struct SensitivityConfig {
  std::vector<int> bit_candidates = {2, 3, 4, 8};
  std::vector<float> prune_candidates = {0.0f, 0.3f, 0.5f, 0.7f};
  prune::Pattern prune_pattern = prune::Pattern::kUnstructured;
  quant::Granularity quant_granularity = quant::Granularity::kPerRow;
  /// Probe the full (bits x prune) grid jointly instead of assuming the
  /// two deltas add. |bits| * |prune| forward sweeps per layer instead of
  /// |bits| + |prune| — more honest where quantization and pruning
  /// interact (they share the same weight outliers).
  bool joint = false;
};

/// Measured loss deltas for one layer (vs the uncompressed baseline).
struct LayerSensitivity {
  int64_t layer = 0;
  std::map<int, float> bit_delta;      ///< bits -> Δloss
  std::map<float, float> prune_delta;  ///< sparsity -> Δloss
  /// Jointly measured (bits, sparsity) -> Δloss; preferred by estimate()
  /// when populated.
  std::map<std::pair<int, float>, float> joint_delta;

  /// Estimate for a (bits, sparsity) choice: the joint measurement when
  /// available, otherwise the additive combination.
  float estimate(int bits, float sparsity) const;
};

/// Full profile: per-layer sensitivities plus the fp baseline loss.
struct SensitivityProfile {
  float baseline_loss = 0.0f;
  std::vector<LayerSensitivity> layers;
};

/// Runs the probe. The model's existing compression (if any) is cleared,
/// each candidate is applied to one layer at a time, and the model is
/// restored before returning.
SensitivityProfile analyze_sensitivity(nn::CausalLm& model,
                                       const std::vector<data::LmBatch>& calib,
                                       const SensitivityConfig& cfg);

}  // namespace edgellm::core
