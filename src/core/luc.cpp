#include "core/luc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edgellm::core {

namespace {

struct Option {
  int bits;
  float sparsity;
  float delta;        ///< raw sensitivity estimate (reported)
  float search_delta; ///< clamped + tie-regularised objective (optimised)
  double eff_bits;    ///< bits * (1 - sparsity)
};

std::vector<Option> layer_options(const LayerSensitivity& sens, const SensitivityConfig& cands) {
  std::vector<Option> opts;
  for (int b : cands.bit_candidates) {
    for (float s : cands.prune_candidates) {
      const double eff = b * (1.0 - static_cast<double>(s));
      const float raw = sens.estimate(b, s);
      // Compression cannot genuinely improve the model; negative measured
      // deltas are calibration noise. Clamp them, and add a vanishing
      // preference for *less* compression so ties never over-compress
      // beyond what the budget demands.
      const float search =
          std::max(0.0f, raw) + static_cast<float>((16.0 - eff) * 1e-5);
      opts.push_back({b, s, raw, search, eff});
    }
  }
  return opts;
}

}  // namespace

double LucPolicy::avg_effective_bits() const {
  check_arg(!layers.empty(), "LucPolicy: empty");
  double total = 0.0;
  for (const LayerPolicy& l : layers) total += l.effective_bits();
  return total / static_cast<double>(layers.size());
}

namespace {

LucPolicy greedy_search(const SensitivityProfile& profile, const SensitivityConfig& cands,
                        double target_eff_bits) {
  const size_t n = profile.layers.size();
  std::vector<std::vector<Option>> opts(n);
  std::vector<size_t> pick(n);
  for (size_t i = 0; i < n; ++i) {
    opts[i] = layer_options(profile.layers[i], cands);
    // Start at the most expensive (highest effective bits, lowest delta).
    size_t best = 0;
    for (size_t j = 1; j < opts[i].size(); ++j) {
      if (opts[i][j].eff_bits > opts[i][best].eff_bits ||
          (opts[i][j].eff_bits == opts[i][best].eff_bits &&
           opts[i][j].search_delta < opts[i][best].search_delta)) {
        best = j;
      }
    }
    pick[i] = best;
  }

  auto total_bits = [&] {
    double t = 0.0;
    for (size_t i = 0; i < n; ++i) t += opts[i][pick[i]].eff_bits;
    return t;
  };

  const double budget = target_eff_bits * static_cast<double>(n);
  while (total_bits() > budget) {
    // Cheapest loss increase per saved effective bit, over all single-layer
    // moves to a strictly cheaper option.
    double best_rate = std::numeric_limits<double>::infinity();
    size_t best_layer = 0, best_opt = 0;
    bool found = false;
    for (size_t i = 0; i < n; ++i) {
      const Option& cur = opts[i][pick[i]];
      for (size_t j = 0; j < opts[i].size(); ++j) {
        const Option& cand = opts[i][j];
        const double saved = cur.eff_bits - cand.eff_bits;
        if (saved <= 0.0) continue;
        const double rate = (static_cast<double>(cand.search_delta) - cur.search_delta) / saved;
        if (rate < best_rate) {
          best_rate = rate;
          best_layer = i;
          best_opt = j;
          found = true;
        }
      }
    }
    check_arg(found, "greedy LUC search: budget unreachable with given candidates");
    pick[best_layer] = best_opt;
  }

  LucPolicy policy;
  for (size_t i = 0; i < n; ++i) {
    const Option& o = opts[i][pick[i]];
    policy.layers.push_back({o.bits, o.sparsity});
    policy.predicted_delta += o.delta;
  }
  return policy;
}

LucPolicy dp_search(const SensitivityProfile& profile, const SensitivityConfig& cands,
                    double target_eff_bits) {
  const size_t n = profile.layers.size();
  // Quarter-bit units keep the DP exact over the candidate grid (all
  // candidate effective-bit values are multiples of 0.25 when prune ratios
  // are multiples of 1/4; otherwise rounding *up* keeps the budget safe).
  constexpr double kUnit = 0.25;
  std::vector<std::vector<Option>> opts(n);
  std::vector<std::vector<int>> unit_cost(n);
  int max_units_per_layer = 0;
  for (size_t i = 0; i < n; ++i) {
    opts[i] = layer_options(profile.layers[i], cands);
    for (const Option& o : opts[i]) {
      const int u = static_cast<int>(std::ceil(o.eff_bits / kUnit - 1e-9));
      unit_cost[i].push_back(u);
      max_units_per_layer = std::max(max_units_per_layer, u);
    }
  }
  const int budget_units =
      static_cast<int>(std::floor(target_eff_bits * static_cast<double>(n) / kUnit + 1e-9));

  constexpr float kInf = std::numeric_limits<float>::infinity();
  // dp[u] = min total delta with exactly <= u units used so far.
  std::vector<std::vector<float>> dp(n + 1, std::vector<float>(budget_units + 1, kInf));
  std::vector<std::vector<int>> choice(n, std::vector<int>(budget_units + 1, -1));
  for (int u = 0; u <= budget_units; ++u) dp[0][u] = 0.0f;

  for (size_t i = 0; i < n; ++i) {
    for (int u = 0; u <= budget_units; ++u) {
      for (size_t j = 0; j < opts[i].size(); ++j) {
        const int c = unit_cost[i][j];
        if (c > u) continue;
        const float prev = dp[i][u - c];
        if (prev == kInf) continue;
        const float cand = prev + opts[i][j].search_delta;
        if (cand < dp[i + 1][u]) {
          dp[i + 1][u] = cand;
          choice[i][u] = static_cast<int>(j);
        }
      }
    }
  }
  check_arg(dp[n][budget_units] < kInf, "DP LUC search: budget unreachable");

  // Walk back the best end state.
  LucPolicy policy;
  policy.layers.resize(n);
  int u = budget_units;
  for (size_t i = n; i-- > 0;) {
    const int j = choice[i][u];
    check_arg(j >= 0, "DP LUC search: reconstruction failed");
    const Option& o = opts[i][static_cast<size_t>(j)];
    policy.layers[i] = {o.bits, o.sparsity};
    policy.predicted_delta += o.delta;
    u -= unit_cost[i][static_cast<size_t>(j)];
  }
  return policy;
}

}  // namespace

LucPolicy search_luc_policy(const SensitivityProfile& profile, const SensitivityConfig& cands,
                            const LucConfig& cfg) {
  check_arg(!profile.layers.empty(), "search_luc_policy: empty profile");
  check_arg(cfg.target_effective_bits > 0.0, "search_luc_policy: budget must be positive");
  switch (cfg.search) {
    case LucConfig::Search::kGreedy:
      return greedy_search(profile, cands, cfg.target_effective_bits);
    case LucConfig::Search::kExactDp:
      return dp_search(profile, cands, cfg.target_effective_bits);
  }
  throw std::invalid_argument("unknown LUC search mode");
}

LucPolicy uniform_policy(int64_t n_layers, const SensitivityConfig& cands,
                         double target_effective_bits) {
  check_arg(n_layers > 0, "uniform_policy: n_layers must be positive");
  // Closest probed (bits, sparsity) pair from below the budget; fall back to
  // the cheapest pair when everything exceeds it.
  double best_bits = -1.0, cheapest = std::numeric_limits<double>::infinity();
  LayerPolicy best{}, cheapest_policy{};
  for (int b : cands.bit_candidates) {
    for (float s : cands.prune_candidates) {
      const double eff = b * (1.0 - static_cast<double>(s));
      if (eff <= target_effective_bits && eff > best_bits) {
        best_bits = eff;
        best = {b, s};
      }
      if (eff < cheapest) {
        cheapest = eff;
        cheapest_policy = {b, s};
      }
    }
  }
  LucPolicy policy;
  policy.layers.assign(static_cast<size_t>(n_layers), best_bits > 0.0 ? best : cheapest_policy);
  return policy;
}

void apply_policy(nn::CausalLm& model, const LucPolicy& policy, prune::Pattern pattern,
                  quant::Granularity granularity) {
  auto blocks = model.blocks();
  check_arg(policy.layers.size() == blocks.size(),
            "apply_policy: policy size must match layer count");
  for (size_t i = 0; i < blocks.size(); ++i) {
    const LayerPolicy& lp = policy.layers[i];
    std::optional<quant::QuantSpec> q;
    if (lp.bits < 16) {
      q = quant::QuantSpec{};
      q->bits = lp.bits;
      q->granularity = granularity;
    }
    std::optional<prune::PruneSpec> p;
    if (lp.sparsity > 0.0f) {
      p = prune::PruneSpec{};
      p->sparsity = lp.sparsity;
      p->pattern = pattern;
    }
    blocks[i]->set_compression(q, p);
  }
}

void clear_policy(nn::CausalLm& model) {
  for (nn::TransformerBlock* b : model.blocks()) {
    b->set_compression(std::nullopt, std::nullopt);
  }
}

std::vector<hw::LayerCompression> policy_to_compression(const LucPolicy& policy,
                                                        prune::Pattern pattern) {
  std::vector<hw::LayerCompression> out;
  out.reserve(policy.layers.size());
  // Row/column pruning and N:M patterns are all skippable by the modelled
  // MAC array (N:M the way sparse tensor cores do); only unstructured
  // sparsity is partially exploitable.
  const bool structured = pattern != prune::Pattern::kUnstructured;
  for (const LayerPolicy& lp : policy.layers) {
    out.push_back({lp.bits, lp.sparsity, structured});
  }
  return out;
}

}  // namespace edgellm::core
