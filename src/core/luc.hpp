// LUC — Layer-wise Unified Compression (paper component 1).
//
// Unifies pruning and quantization into one per-layer policy chosen under a
// global budget expressed in *effective bits per weight*
// (bits x (1 - sparsity)). Two searchers are provided: a greedy
// marginal-cost descent and an exact knapsack DP over quarter-bit units
// (compared in bench_table2_luc).
#pragma once

#include "core/sensitivity.hpp"
#include "hw/workload.hpp"

namespace edgellm::core {

/// Per-layer compression decision.
struct LayerPolicy {
  int bits = 16;          ///< 16 means "leave in fp16"
  float sparsity = 0.0f;

  double effective_bits() const { return bits * (1.0 - sparsity); }
};

/// A complete LUC policy.
struct LucPolicy {
  std::vector<LayerPolicy> layers;
  float predicted_delta = 0.0f;  ///< sensitivity-model estimate of Δloss

  double avg_effective_bits() const;
};

/// Budget and searcher selection.
struct LucConfig {
  double target_effective_bits = 3.0;
  enum class Search { kGreedy, kExactDp };
  Search search = Search::kGreedy;
};

/// Searches a policy meeting the budget that minimises the (additive)
/// sensitivity estimate. Candidates come from the profile's probed points.
LucPolicy search_luc_policy(const SensitivityProfile& profile, const SensitivityConfig& cands,
                            const LucConfig& cfg);

/// The non-layer-wise baseline: same (bits, sparsity) everywhere, chosen as
/// the probed combination closest to (but not above) the budget.
LucPolicy uniform_policy(int64_t n_layers, const SensitivityConfig& cands,
                         double target_effective_bits);

/// Applies a policy to a model's blocks (one entry per block).
void apply_policy(nn::CausalLm& model, const LucPolicy& policy,
                  prune::Pattern pattern = prune::Pattern::kUnstructured,
                  quant::Granularity granularity = quant::Granularity::kPerRow);

/// Removes all compression from the model.
void clear_policy(nn::CausalLm& model);

/// Converts a policy into the hardware model's per-layer attributes.
std::vector<hw::LayerCompression> policy_to_compression(const LucPolicy& policy,
                                                        prune::Pattern pattern);

}  // namespace edgellm::core
