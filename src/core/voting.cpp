#include "core/voting.hpp"

#include <algorithm>
#include <cmath>

#include "data/eval.hpp"
#include "tensor/ops.hpp"

namespace edgellm::core {

ExitVoter::ExitVoter(nn::CausalLm& model, VoterConfig cfg) : model_(model), cfg_(cfg) {
  check_arg(cfg_.temperature > 0.0f, "ExitVoter: temperature must be positive");
  const size_t n = model_.exit_layers().size();
  weights_.assign(n, 1.0f / static_cast<float>(n));
  calib_losses_.assign(n, 0.0f);
}

void ExitVoter::calibrate(const std::vector<data::LmBatch>& calib) {
  check_arg(!calib.empty(), "ExitVoter::calibrate: empty calibration set");
  const auto& exits = model_.exit_layers();
  for (size_t e = 0; e < exits.size(); ++e) {
    calib_losses_[e] = data::lm_loss(model_, calib, exits[e]);
  }
  // weights = softmax(-loss / T)
  float mx = -calib_losses_[0];
  for (float l : calib_losses_) mx = std::max(mx, -l);
  double total = 0.0;
  for (size_t e = 0; e < weights_.size(); ++e) {
    weights_[e] = std::exp((-calib_losses_[e] - mx) / cfg_.temperature);
    total += weights_[e];
  }
  for (float& w : weights_) w = static_cast<float>(w / total);
  calibrated_ = true;
}

Tensor combine_exit_logits(const std::vector<Tensor>& exit_logits,
                           const std::vector<float>& weights,
                           const std::vector<float>& calib_losses, const VoterConfig& cfg) {
  check_arg(!exit_logits.empty(), "combine_exit_logits: no exit logits");
  check_arg(weights.size() == exit_logits.size() && calib_losses.size() == exit_logits.size(),
            "combine_exit_logits: weights/losses must match exit count");
  const std::vector<Tensor>& all = exit_logits;
  const size_t n_exits = all.size();
  const int64_t vocab = all[0].dim(-1);
  const int64_t rows = all[0].numel() / vocab;

  switch (cfg.mode) {
    case VotingMode::kBestSingle: {
      size_t best = 0;
      for (size_t e = 1; e < n_exits; ++e) {
        if (calib_losses[e] < calib_losses[best]) best = e;
      }
      return ops::log_softmax_lastdim(all[best]);
    }
    case VotingMode::kMajority: {
      Tensor counts({rows, vocab});
      for (size_t e = 0; e < n_exits; ++e) {
        const std::vector<int64_t> am = ops::argmax_lastdim(all[e]);
        for (int64_t r = 0; r < rows; ++r) counts[r * vocab + am[static_cast<size_t>(r)]] += 1.0f;
      }
      return counts;
    }
    case VotingMode::kCalibratedWeight: {
      // Accumulated by flat index so [vocab] decode-time logits (rows == 1)
      // and [rows, vocab] eval-time logits both work.
      Tensor mix({rows, vocab});
      for (size_t e = 0; e < n_exits; ++e) {
        const Tensor probs = ops::softmax_lastdim(all[e]);
        for (int64_t i = 0; i < mix.numel(); ++i) mix[i] += weights[e] * probs[i];
      }
      for (int64_t i = 0; i < mix.numel(); ++i) mix[i] = std::log(mix[i] + 1e-12f);
      return mix;
    }
    case VotingMode::kEntropyAdaptive: {
      // Per-row weights: calibrated prior x confidence (low entropy -> high).
      std::vector<Tensor> probs;
      probs.reserve(n_exits);
      for (size_t e = 0; e < n_exits; ++e) probs.push_back(ops::softmax_lastdim(all[e]));

      Tensor mix({rows, vocab});
      std::vector<float> row_w(n_exits);
      for (int64_t r = 0; r < rows; ++r) {
        double total = 0.0;
        for (size_t e = 0; e < n_exits; ++e) {
          double h = 0.0;
          for (int64_t v = 0; v < vocab; ++v) {
            const float p = probs[e][r * vocab + v];
            if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
          }
          row_w[e] = weights[e] * std::exp(static_cast<float>(-h) / cfg.temperature);
          total += row_w[e];
        }
        check_arg(total > 0.0, "ExitVoter: degenerate per-row weights");
        for (size_t e = 0; e < n_exits; ++e) {
          const float w = static_cast<float>(row_w[e] / total);
          for (int64_t v = 0; v < vocab; ++v) {
            mix[r * vocab + v] += w * probs[e][r * vocab + v];
          }
        }
      }
      for (int64_t i = 0; i < mix.numel(); ++i) mix[i] = std::log(mix[i] + 1e-12f);
      return mix;
    }
  }
  throw std::invalid_argument("unknown voting mode");
}

Tensor ExitVoter::vote_logits(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq) {
  return combine_exit_logits(model_.forward_all_exits(tokens, batch, seq), weights_,
                             calib_losses_, cfg_);
}

float ExitVoter::voted_loss(const std::vector<data::LmBatch>& batches) {
  check_arg(!batches.empty(), "voted_loss: empty batch list");
  double total = 0.0;
  int64_t counted = 0;
  const int64_t vocab = model_.config().vocab;
  for (const data::LmBatch& b : batches) {
    Tensor scores = vote_logits(b.inputs, b.batch, b.seq);
    if (cfg_.mode == VotingMode::kMajority) {
      // Laplace-smoothed vote distribution.
      const float n_exits = static_cast<float>(model_.exit_layers().size());
      for (int64_t i = 0; i < scores.numel(); ++i) {
        scores[i] = std::log((scores[i] + 0.5f) / (n_exits + 0.5f * vocab));
      }
    }
    const int64_t rows = b.batch * b.seq;
    for (int64_t r = 0; r < rows; ++r) {
      total += -scores[r * vocab + b.targets[static_cast<size_t>(r)]];
      ++counted;
    }
  }
  return static_cast<float>(total / counted);
}

data::LogitsFn ExitVoter::logits_fn() {
  return [this](const std::vector<int64_t>& tokens, int64_t seq) {
    return vote_logits(tokens, /*batch=*/1, seq);
  };
}

}  // namespace edgellm::core
