// Adaptive layer tuning (paper component 2, training half).
//
// Each adaptation iteration samples one of the model's exit depths, runs the
// forward pass only that far, and backpropagates only through the topmost
// `backprop_window` blocks below that exit. Activations for everything
// deeper than the window are never cached and optimizer state is only
// materialised for parameters that actually receive updates — the two
// memory savings the paper claims.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "data/corpus.hpp"
#include "nn/model.hpp"
#include "nn/optim.hpp"

namespace edgellm::core {

/// How the exit depth is chosen per iteration.
enum class DepthSampling {
  kUniform,      ///< uniform over registered exits
  kCyclic,       ///< round-robin over exits
  kLossWeighted, ///< probability proportional to each exit's recent loss
  kFinalOnly,    ///< always the deepest exit (vanilla tuning)
};

struct TunerConfig {
  DepthSampling sampling = DepthSampling::kUniform;
  /// Blocks updated per iteration, counted down from the sampled exit.
  /// <= 0 means "all blocks up to the exit" (vanilla backprop depth).
  int64_t backprop_window = 2;
  bool update_embeddings = false;  ///< only honoured on full-depth windows
  /// Gradient checkpointing (baseline memory technique; full-depth only).
  bool checkpoint = false;
  /// Store AdamW moments in block-wise int8 (~4x less optimizer memory).
  bool quantized_optimizer = false;
  nn::AdamW::Config optim;
  float clip_norm = 1.0f;
  float loss_ema = 0.9f;  ///< smoothing for kLossWeighted

  /// Learning-rate schedule: linear warmup over `warmup_iters`, then cosine
  /// decay to `min_lr_fraction * lr` over `decay_iters` (0 = constant).
  int64_t warmup_iters = 0;
  int64_t decay_iters = 0;
  float min_lr_fraction = 0.1f;

  /// Exit self-distillation (extension): when a non-final exit is sampled,
  /// mix a KL term toward the final exit's (no-grad) predictions into the
  /// loss. Sharpens early exits for voting at the cost of one extra
  /// teacher forward per distilled step. 0 disables.
  float distill_weight = 0.0f;
  float distill_temperature = 2.0f;

  /// Numeric-fault guard: when true, a step whose loss or gradients come
  /// out non-finite skips the optimizer update (weights and moments stay
  /// clean) and is counted instead of silently poisoning training state.
  bool guard_numerics = true;
  /// Consecutive guarded (skipped) steps before needs_rollback() trips.
  int64_t max_consecutive_bad = 3;
  /// Multiplier applied to the base learning rate on each rollback.
  float lr_backoff = 0.5f;
  /// Fault-injection/observation hook: mutates the logits gradient before
  /// backward (runtime::FaultInjector installs NaN poisoning here).
  std::function<void(int64_t iter, Tensor& grad_logits)> grad_hook;

  /// Vanilla full fine-tuning configuration.
  static TunerConfig vanilla() {
    TunerConfig cfg;
    cfg.sampling = DepthSampling::kFinalOnly;
    cfg.backprop_window = 0;  // full depth
    cfg.update_embeddings = true;
    return cfg;
  }

  /// Vanilla full fine-tuning with gradient checkpointing (the classic
  /// memory-reduction baseline Edge-LLM's tuning is compared against).
  static TunerConfig vanilla_checkpointed() {
    TunerConfig cfg = vanilla();
    cfg.checkpoint = true;
    return cfg;
  }
};

/// Per-step telemetry (feeds the memory/latency experiments).
struct StepStats {
  float loss = 0.0f;
  float distill_loss = 0.0f;  ///< soft-target CE when distillation ran
  int64_t exit_layer = 0;
  int64_t backprop_depth = 0;
  int64_t activation_bytes = 0;       ///< cached activations at backward time
  int64_t grad_bytes = 0;             ///< gradient buffers touched this step
  int64_t optimizer_state_bytes = 0;  ///< cumulative AdamW state
  bool skipped = false;               ///< update skipped by the numeric-fault guard
};

/// Drives adaptation of a CausalLm.
class AdaptiveLayerTuner {
 public:
  AdaptiveLayerTuner(nn::CausalLm& model, TunerConfig cfg, Rng rng);

  /// One adaptation iteration on one batch.
  StepStats step(const data::LmBatch& batch);

  /// Probability of sampling each registered exit next (used by the runtime
  /// to compute expected per-iteration latency).
  std::vector<double> exit_probabilities() const;

  /// The plan a given exit produces under this config.
  nn::ForwardPlan make_plan(int64_t exit_layer) const;

  /// Learning rate the schedule yields at iteration `iter` (0-based).
  float scheduled_lr(int64_t iter) const;

  const TunerConfig& config() const { return cfg_; }
  int64_t iterations() const { return iter_; }
  const nn::Optimizer& optimizer() const { return *optim_; }

  // --- numeric-fault guard & crash-safe checkpoint support -----------------

  /// Steps skipped by the guard since construction (total / current streak).
  int64_t bad_steps() const { return bad_steps_; }
  int64_t consecutive_bad_steps() const { return consecutive_bad_; }
  /// Rollbacks acknowledged via note_rollback().
  int64_t rollbacks() const { return rollbacks_; }
  /// Base learning rate after any rollback backoffs.
  float base_lr() const { return cfg_.optim.lr; }

  /// True once `max_consecutive_bad` steps in a row were non-finite; the
  /// driver should restore the last good checkpoint and call note_rollback().
  bool needs_rollback() const {
    return cfg_.guard_numerics && consecutive_bad_ >= cfg_.max_consecutive_bad;
  }

  /// Resets the bad-step streak and applies the learning-rate backoff.
  /// Called by the driver after restoring a good checkpoint (or in place
  /// when no checkpoint exists).
  void note_rollback();

  /// Serializes the full tuner state — iteration counter, sampling cursor,
  /// per-exit loss EMA, RNG stream, guard counters, base lr and all
  /// optimizer moments — under `prefix`. A tuner built with the same config
  /// over the same model that restore_state()s this map continues training
  /// bit-exactly where this one stood.
  void export_state(const std::string& prefix, std::map<std::string, Tensor>& out) const;
  void restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in);

 private:
  nn::CausalLm& model_;
  TunerConfig cfg_;
  Rng rng_;
  std::unique_ptr<nn::Optimizer> optim_;
  int64_t iter_ = 0;
  size_t cyclic_next_ = 0;
  float stats_distill_loss_ = 0.0f;
  std::vector<float> exit_loss_ema_;  ///< for kLossWeighted
  int64_t bad_steps_ = 0;
  int64_t consecutive_bad_ = 0;
  int64_t rollbacks_ = 0;

  int64_t sample_exit();
};

}  // namespace edgellm::core
