// End-to-end Edge-LLM pipeline: sensitivity -> LUC -> adaptive tuning ->
// voting -> evaluation. This is the headline public API a downstream user
// calls (see examples/quickstart.cpp).
#pragma once

#include <functional>
#include <memory>

#include "core/luc.hpp"
#include "core/snapshot.hpp"
#include "core/tuner.hpp"
#include "core/voting.hpp"
#include "data/tasks.hpp"
#include "obs/metrics.hpp"

namespace edgellm::core {

/// Everything the pipeline needs besides the model and data.
struct PipelineConfig {
  SensitivityConfig sensitivity;
  LucConfig luc;
  TunerConfig tuner;
  VoterConfig voter;

  int64_t adaptation_iters = 200;
  int64_t batch = 8;
  int64_t seq = 32;
  int64_t calib_batches = 4;
  int64_t eval_batches = 8;
  uint64_t seed = 42;

  bool apply_compression = true;  ///< disable for no-LUC ablations

  /// Compute threads for the deterministic tensor backend
  /// (tensor/parallel.hpp) used by every training step. 0 leaves the
  /// process-global setting (EDGELLM_NUM_THREADS or 1) alone. Losses,
  /// weights and checkpoints are bitwise identical at any value.
  int64_t compute_threads = 0;

  // --- fault tolerance (see docs/ROBUSTNESS.md) ----------------------------
  /// Non-owning snapshot store (e.g. a runtime::Checkpointer). Enables
  /// periodic checkpointing, resume and bad-step rollback; null disables all
  /// three.
  SnapshotStore* snapshots = nullptr;
  /// Iterations between snapshots (0 = never checkpoint periodically).
  int64_t checkpoint_every = 0;
  /// Restore the newest valid snapshot before adapting, making the run
  /// bit-exact with one that was never interrupted.
  bool resume = false;
  /// Abort (throw) after this many guard-triggered rollbacks; training that
  /// keeps diverging through repeated lr backoffs is genuinely broken.
  int64_t max_rollbacks = 8;
  /// Observer/fault hook called with the 0-based iteration about to run.
  /// Throwing (e.g. runtime::PowerLossError) aborts the run like a power
  /// cut — nothing past the last committed snapshot survives.
  std::function<void(int64_t iter)> before_step;

  // --- observability (see docs/OBSERVABILITY.md) ---------------------------
  /// Non-owning metrics registry. The pipeline records per-step timing
  /// (tuner/step_ms), sampled exit depth and backprop window histograms,
  /// and step/skip/rollback counters into it; null uses the process-global
  /// obs::Registry::global(). Spans (pipeline/compress, pipeline/adapt,
  /// pipeline/eval, tuner/step) go to obs::Tracer::global() when enabled.
  obs::Registry* metrics = nullptr;
};

/// Outputs of one adaptation run.
struct PipelineResult {
  LucPolicy policy;
  SensitivityProfile profile;

  std::vector<float> loss_curve;   ///< training loss per iteration
  float final_exit_loss = 0.0f;    ///< deepest-exit held-out loss
  float voted_loss = 0.0f;         ///< voter held-out loss
  float voted_perplexity = 0.0f;
  float mcq_accuracy = 0.0f;       ///< via voter
  float mcq_accuracy_final_exit = 0.0f;

  double model_storage_bytes = 0.0;
  int64_t peak_activation_bytes = 0;
  int64_t peak_optimizer_bytes = 0;
  int64_t peak_grad_bytes = 0;

  int64_t skipped_steps = 0;       ///< updates skipped by the numeric guard
  int64_t rollbacks = 0;           ///< checkpoint rollbacks taken
  int64_t resumed_from_iter = -1;  ///< -1 when the run started fresh
};

/// Runs the full Edge-LLM flow, adapting `model` to `domain`.
PipelineResult run_pipeline(nn::CausalLm& model, const data::MarkovChain& domain,
                            const PipelineConfig& cfg);

/// Pretrains a fresh base model on `base_domain` for `iters` iterations.
/// Stands in for the paper's pretrained LLM checkpoint.
std::unique_ptr<nn::CausalLm> pretrain_base_model(const nn::ModelConfig& mcfg,
                                                  const data::MarkovChain& base_domain,
                                                  int64_t iters, int64_t batch, int64_t seq,
                                                  Rng& rng);

}  // namespace edgellm::core
