#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace edgellm::core {

AdaptiveLayerTuner::AdaptiveLayerTuner(nn::CausalLm& model, TunerConfig cfg, Rng rng)
    : model_(model), cfg_(cfg), rng_(rng) {
  check_arg(cfg_.clip_norm > 0.0f, "AdaptiveLayerTuner: clip_norm must be positive");
  check_arg(cfg_.loss_ema > 0.0f && cfg_.loss_ema < 1.0f,
            "AdaptiveLayerTuner: loss_ema must be in (0, 1)");
  if (cfg_.quantized_optimizer) {
    nn::QuantizedAdamW::Config qcfg;
    qcfg.lr = cfg_.optim.lr;
    qcfg.beta1 = cfg_.optim.beta1;
    qcfg.beta2 = cfg_.optim.beta2;
    qcfg.eps = cfg_.optim.eps;
    qcfg.weight_decay = cfg_.optim.weight_decay;
    optim_ = std::make_unique<nn::QuantizedAdamW>(std::vector<nn::Param*>{}, qcfg);
  } else {
    optim_ = std::make_unique<nn::AdamW>(std::vector<nn::Param*>{}, cfg_.optim);
  }
  exit_loss_ema_.assign(model_.exit_layers().size(), 1.0f);
}

nn::ForwardPlan AdaptiveLayerTuner::make_plan(int64_t exit_layer) const {
  nn::ForwardPlan plan;
  plan.exit_layer = exit_layer;
  plan.backprop_depth = cfg_.backprop_window <= 0
                            ? exit_layer
                            : std::min(cfg_.backprop_window, exit_layer);
  plan.update_embeddings = cfg_.update_embeddings && plan.backprop_depth == exit_layer;
  plan.checkpoint = cfg_.checkpoint && plan.backprop_depth == exit_layer;
  return plan;
}

int64_t AdaptiveLayerTuner::sample_exit() {
  const auto& exits = model_.exit_layers();
  switch (cfg_.sampling) {
    case DepthSampling::kFinalOnly:
      return exits.back();
    case DepthSampling::kUniform:
      return exits[static_cast<size_t>(rng_.uniform_int(0, static_cast<int64_t>(exits.size()) - 1))];
    case DepthSampling::kCyclic: {
      const int64_t e = exits[cyclic_next_];
      cyclic_next_ = (cyclic_next_ + 1) % exits.size();
      return e;
    }
    case DepthSampling::kLossWeighted: {
      const int64_t idx = rng_.categorical(exit_loss_ema_);
      return exits[static_cast<size_t>(idx)];
    }
  }
  throw std::invalid_argument("unknown depth sampling mode");
}

std::vector<double> AdaptiveLayerTuner::exit_probabilities() const {
  const size_t n = model_.exit_layers().size();
  std::vector<double> p(n, 0.0);
  switch (cfg_.sampling) {
    case DepthSampling::kFinalOnly:
      p.back() = 1.0;
      break;
    case DepthSampling::kUniform:
    case DepthSampling::kCyclic:
      std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n));
      break;
    case DepthSampling::kLossWeighted: {
      double total = 0.0;
      for (float w : exit_loss_ema_) total += w;
      for (size_t i = 0; i < n; ++i) p[i] = exit_loss_ema_[i] / total;
      break;
    }
  }
  return p;
}

float AdaptiveLayerTuner::scheduled_lr(int64_t iter) const {
  const float base = cfg_.optim.lr;
  float lr = base;
  if (cfg_.warmup_iters > 0 && iter < cfg_.warmup_iters) {
    lr = base * static_cast<float>(iter + 1) / static_cast<float>(cfg_.warmup_iters);
  } else if (cfg_.decay_iters > 0) {
    const int64_t t = std::min(cfg_.decay_iters, iter - cfg_.warmup_iters);
    const float progress = static_cast<float>(t) / static_cast<float>(cfg_.decay_iters);
    const float floor_lr = cfg_.min_lr_fraction * base;
    lr = floor_lr +
         0.5f * (base - floor_lr) * (1.0f + std::cos(3.14159265f * progress));
  }
  return lr;
}

StepStats AdaptiveLayerTuner::step(const data::LmBatch& batch) {
  const obs::ScopedSpan span("tuner/step");
  optim_->set_lr(scheduled_lr(iter_));
  const int64_t exit_layer = sample_exit();
  const nn::ForwardPlan plan = make_plan(exit_layer);

  // Teacher pass for self-distillation must run BEFORE the student forward
  // so the student's caches are intact for backward.
  const bool distill = cfg_.distill_weight > 0.0f && exit_layer < model_.exit_layers().back();
  Tensor teacher_probs;
  if (distill) {
    const Tensor tl = model_.forward_eval(batch.inputs, batch.batch, batch.seq,
                                          model_.exit_layers().back());
    teacher_probs = ops::softmax_lastdim(ops::scale(tl, 1.0f / cfg_.distill_temperature));
  }

  const Tensor logits = model_.forward(batch.inputs, batch.batch, batch.seq, plan);
  nn::CrossEntropyResult ce = nn::cross_entropy(logits, batch.targets);

  if (distill) {
    // Soft-target CE at temperature T: grad = (softmax(z/T) - p_teacher)
    // * (w * T) / rows, added to the hard-label grad. (The usual T^2
    // factor times the 1/T from d(z/T)/dz.)
    const Tensor student = ops::softmax_lastdim(
        ops::scale(logits, 1.0f / cfg_.distill_temperature));
    const int64_t rows = logits.dim(0);
    const float scale = cfg_.distill_weight * cfg_.distill_temperature /
                        static_cast<float>(rows);
    double soft_loss = 0.0;
    for (int64_t i = 0; i < logits.numel(); ++i) {
      ce.grad_logits[i] += scale * (student[i] - teacher_probs[i]);
    }
    for (int64_t i = 0; i < logits.numel(); ++i) {
      if (teacher_probs[i] > 0.0f) {
        soft_loss -= static_cast<double>(teacher_probs[i]) *
                     std::log(static_cast<double>(student[i]) + 1e-12);
      }
    }
    stats_distill_loss_ = static_cast<float>(soft_loss / rows);
  }

  if (cfg_.grad_hook) cfg_.grad_hook(iter_, ce.grad_logits);

  StepStats stats;
  stats.loss = ce.loss;
  stats.distill_loss = distill ? stats_distill_loss_ : 0.0f;
  stats.exit_layer = exit_layer;
  stats.backprop_depth = plan.backprop_depth;
  stats.activation_bytes = model_.cached_activation_bytes();

  // Numeric-fault guard: a non-finite loss means the forward already
  // diverged — don't backpropagate garbage into grads or moments.
  bool bad = cfg_.guard_numerics && !std::isfinite(ce.loss);
  if (!bad) {
    model_.backward(ce.grad_logits);
    // Checkpointed backward transiently rebuilds one block's caches on top
    // of the input stash; count that toward the peak.
    stats.activation_bytes += model_.peak_backward_cache_bytes();

    std::vector<nn::Param*> touched = model_.params_for_plan(plan);
    // Second guard point: NaN/Inf gradients (e.g. an injected fault or an
    // overflow inside backward) are caught before weights or optimizer
    // moments see them.
    if (cfg_.guard_numerics && !nn::grads_finite(touched)) bad = true;
    if (!bad) {
      nn::clip_grad_norm(touched, cfg_.clip_norm);
      optim_->set_params(touched);
      optim_->step();
    }
    for (nn::Param* p : touched) {
      stats.grad_bytes += nn::tensor_bytes(p->grad);
      p->zero_grad();
    }
  }
  stats.optimizer_state_bytes = optim_->state_bytes();
  model_.clear_cache();

  if (bad) {
    stats.skipped = true;
    ++bad_steps_;
    ++consecutive_bad_;
  } else {
    consecutive_bad_ = 0;
    // Track per-exit loss for loss-weighted sampling.
    const int64_t idx = model_.exit_index(exit_layer);
    float& ema = exit_loss_ema_[static_cast<size_t>(idx)];
    ema = cfg_.loss_ema * ema + (1.0f - cfg_.loss_ema) * ce.loss;
  }

  ++iter_;
  return stats;
}

void AdaptiveLayerTuner::note_rollback() {
  cfg_.optim.lr *= cfg_.lr_backoff;
  consecutive_bad_ = 0;
  ++rollbacks_;
}

void AdaptiveLayerTuner::export_state(const std::string& prefix,
                                      std::map<std::string, Tensor>& out) const {
  out.insert_or_assign(prefix + "iter", nn::pack_u64(static_cast<uint64_t>(iter_)));
  out.insert_or_assign(prefix + "cyclic_next", nn::pack_u64(cyclic_next_));
  out.insert_or_assign(prefix + "bad_steps", nn::pack_u64(static_cast<uint64_t>(bad_steps_)));
  out.insert_or_assign(prefix + "consecutive_bad",
                       nn::pack_u64(static_cast<uint64_t>(consecutive_bad_)));
  out.insert_or_assign(prefix + "rollbacks", nn::pack_u64(static_cast<uint64_t>(rollbacks_)));
  out.insert_or_assign(prefix + "base_lr", Tensor({1}, cfg_.optim.lr));
  out.insert_or_assign(prefix + "exit_ema",
                       Tensor({static_cast<int64_t>(exit_loss_ema_.size())},
                              std::vector<float>(exit_loss_ema_.begin(), exit_loss_ema_.end())));
  out.insert_or_assign(prefix + "rng", nn::pack_bytes(rng_state_string(rng_)));
  optim_->export_state(prefix + "optim.", out);
}

void AdaptiveLayerTuner::restore_state(const std::string& prefix,
                                       const std::map<std::string, Tensor>& in) {
  auto need = [&](const std::string& key) -> const Tensor& {
    const auto it = in.find(prefix + key);
    if (it == in.end()) throw std::runtime_error("missing tuner state entry: " + prefix + key);
    return it->second;
  };
  iter_ = static_cast<int64_t>(nn::unpack_u64(need("iter")));
  cyclic_next_ = static_cast<size_t>(nn::unpack_u64(need("cyclic_next")));
  bad_steps_ = static_cast<int64_t>(nn::unpack_u64(need("bad_steps")));
  consecutive_bad_ = static_cast<int64_t>(nn::unpack_u64(need("consecutive_bad")));
  rollbacks_ = static_cast<int64_t>(nn::unpack_u64(need("rollbacks")));
  cfg_.optim.lr = need("base_lr").item();
  const Tensor& ema = need("exit_ema");
  if (ema.numel() != static_cast<int64_t>(exit_loss_ema_.size())) {
    throw std::runtime_error("tuner state exit-EMA size mismatch");
  }
  for (int64_t i = 0; i < ema.numel(); ++i) exit_loss_ema_[static_cast<size_t>(i)] = ema[i];
  set_rng_state_string(rng_, nn::unpack_bytes(need("rng")));

  std::map<std::string, nn::Param*> by_name;
  for (nn::Param* p : model_.params()) by_name.emplace(p->name, p);
  optim_->restore_state(prefix + "optim.", in, by_name);
}

}  // namespace edgellm::core
