// Adaptive layer voting (paper component 2, inference half).
//
// After adaptation, every exit head has been trained on the slice of
// iterations that sampled it. Voting recovers full-model quality by
// combining the per-exit predictions: calibrated weighting uses each exit's
// held-out loss; entropy-adaptive weighting additionally re-weights per
// token position by each exit's prediction confidence.
#pragma once

#include "data/corpus.hpp"
#include "data/tasks.hpp"
#include "nn/model.hpp"

namespace edgellm::core {

/// How exit outputs are combined.
enum class VotingMode {
  kBestSingle,       ///< lowest-calibration-loss exit only
  kMajority,         ///< per-position argmax vote counts
  kCalibratedWeight, ///< log-prob mixture weighted by calibration loss
  kEntropyAdaptive,  ///< calibrated weights x per-position confidence
};

struct VoterConfig {
  VotingMode mode = VotingMode::kCalibratedWeight;
  float temperature = 0.5f;  ///< softmax temp over negative calib losses
};

/// Combines per-exit logits ([rows, vocab] each, one per registered exit in
/// exit_layers() order) into voted scores — the shared kernel behind
/// ExitVoter::vote_logits and the serving engine's voted-exit decode
/// (src/serve), which calls it with rows == 1 on every generated token.
/// `weights` must sum to ~1; `calib_losses` is only read by kBestSingle.
/// For probabilistic modes the result is log-probabilities; for kMajority
/// it is vote counts.
Tensor combine_exit_logits(const std::vector<Tensor>& exit_logits,
                           const std::vector<float>& weights,
                           const std::vector<float>& calib_losses, const VoterConfig& cfg);

/// Combines the model's exit heads into one prediction stream.
class ExitVoter {
 public:
  ExitVoter(nn::CausalLm& model, VoterConfig cfg);

  /// Measures per-exit losses on a calibration set and derives weights.
  void calibrate(const std::vector<data::LmBatch>& calib);

  /// Combined prediction scores [batch * seq, vocab]. For probabilistic
  /// modes these are log-probabilities; for kMajority they are vote counts.
  Tensor vote_logits(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq);

  /// Mean next-token NLL of the voted prediction on a batch set (the voting
  /// counterpart of data::lm_loss).
  float voted_loss(const std::vector<data::LmBatch>& batches);

  /// Adapter for MCQ scoring.
  data::LogitsFn logits_fn();

  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& calib_losses() const { return calib_losses_; }
  const VoterConfig& config() const { return cfg_; }

 private:
  nn::CausalLm& model_;
  VoterConfig cfg_;
  std::vector<float> weights_;       ///< one per exit, sums to 1
  std::vector<float> calib_losses_;  ///< one per exit
  bool calibrated_ = false;
};

}  // namespace edgellm::core
