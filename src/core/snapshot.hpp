// Crash-safe training snapshots for the adaptation loop.
//
// A Snapshot is a flat named-tensor map holding EVERYTHING a resumed run
// needs to be bit-exact with an uninterrupted one: model weights, optimizer
// moments (fp32 or quantized), tuner iteration/EMA/RNG/guard state, the
// pipeline RNG stream and the loss curve so far. SnapshotStore abstracts
// where snapshots live; runtime::Checkpointer is the on-disk implementation
// (atomic rename + CRC-32 + keep-N rotation). Keeping the interface here
// lets core stay free of filesystem policy while run_pipeline drives
// checkpointing, resume and rollback.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/tuner.hpp"

namespace edgellm::core {

/// One full training-state capture after `iter` completed iterations.
struct Snapshot {
  int64_t iter = 0;
  std::map<std::string, Tensor> state;
};

/// Where snapshots are persisted. Implementations must be atomic per save:
/// after a crash mid-save, load_latest() returns the previous snapshot, not
/// a torn one.
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Persists a snapshot; throws std::runtime_error on I/O failure (a
  /// failed save must leave earlier snapshots intact).
  virtual void save(const Snapshot& snap) = 0;

  /// Newest snapshot that validates; corrupt ones are skipped in favour of
  /// older rotation slots. nullopt when none exists.
  virtual std::optional<Snapshot> load_latest() = 0;
};

/// Peak memory counters that ride along in a snapshot so a resumed
/// PipelineResult matches an uninterrupted one.
struct PeakBytes {
  int64_t activation = 0;
  int64_t optimizer = 0;
  int64_t grad = 0;
};

/// Assembles the full training state after `iter` completed iterations.
Snapshot capture_training_state(int64_t iter, nn::CausalLm& model,
                                const AdaptiveLayerTuner& tuner, const Rng& rng,
                                const std::vector<float>& loss_curve, const PeakBytes& peaks);

/// Inverse of capture_training_state: restores model weights, tuner and
/// optimizer state, the pipeline RNG and the loss curve in place.
void restore_training_state(const Snapshot& snap, nn::CausalLm& model,
                            AdaptiveLayerTuner& tuner, Rng& rng,
                            std::vector<float>& loss_curve, PeakBytes& peaks);

}  // namespace edgellm::core
