#include "core/snapshot.hpp"

#include <stdexcept>

#include "nn/serialize.hpp"

namespace edgellm::core {

namespace {
constexpr const char* kModelPrefix = "model.";
constexpr const char* kTunerPrefix = "tuner.";
constexpr const char* kMaskPrefix = "mask.";
constexpr const char* kQuantPrefix = "quant.";
}  // namespace

Snapshot capture_training_state(int64_t iter, nn::CausalLm& model,
                                const AdaptiveLayerTuner& tuner, const Rng& rng,
                                const std::vector<float>& loss_curve, const PeakBytes& peaks) {
  Snapshot snap;
  snap.iter = iter;
  snap.state.emplace("meta.iter", nn::pack_u64(static_cast<uint64_t>(iter)));
  for (auto& [name, tensor] : model.state_dict()) {
    snap.state.emplace(kModelPrefix + name, std::move(tensor));
  }
  // Compression artifacts ride along verbatim: prune masks are a function of
  // the weights they were derived FROM (not the current ones), so re-deriving
  // them on restore would pick a different pattern and break bit-exactness.
  for (nn::TransformerBlock* b : model.blocks()) {
    for (nn::Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      if (lin->prune_mask()) snap.state.emplace(kMaskPrefix + wname, *lin->prune_mask());
      if (lin->quant_spec()) {
        const quant::QuantSpec& q = *lin->quant_spec();
        snap.state.emplace(kQuantPrefix + wname,
                           Tensor({4}, std::vector<float>{
                                           static_cast<float>(q.bits),
                                           q.symmetric ? 1.0f : 0.0f,
                                           static_cast<float>(static_cast<int>(q.granularity)),
                                           static_cast<float>(q.group_size)}));
      }
    }
  }
  tuner.export_state(kTunerPrefix, snap.state);
  snap.state.emplace("rng.pipeline", nn::pack_bytes(rng_state_string(rng)));
  snap.state.emplace("loss_curve",
                     Tensor({static_cast<int64_t>(loss_curve.size())},
                            std::vector<float>(loss_curve.begin(), loss_curve.end())));
  snap.state.emplace("peaks.activation", nn::pack_u64(static_cast<uint64_t>(peaks.activation)));
  snap.state.emplace("peaks.optimizer", nn::pack_u64(static_cast<uint64_t>(peaks.optimizer)));
  snap.state.emplace("peaks.grad", nn::pack_u64(static_cast<uint64_t>(peaks.grad)));
  return snap;
}

void restore_training_state(const Snapshot& snap, nn::CausalLm& model,
                            AdaptiveLayerTuner& tuner, Rng& rng,
                            std::vector<float>& loss_curve, PeakBytes& peaks) {
  auto need = [&](const std::string& key) -> const Tensor& {
    const auto it = snap.state.find(key);
    if (it == snap.state.end()) throw std::runtime_error("snapshot missing entry: " + key);
    return it->second;
  };

  std::map<std::string, Tensor> model_state;
  const std::string model_prefix = kModelPrefix;
  for (const auto& [key, tensor] : snap.state) {
    if (key.rfind(model_prefix, 0) == 0) {
      model_state.emplace(key.substr(model_prefix.size()), tensor);
    }
  }
  model.load_state_dict(model_state);
  // load_state_dict recomputed prune masks from the restored weights; put
  // back the exact artifacts the interrupted run was training with.
  for (nn::TransformerBlock* b : model.blocks()) {
    for (nn::Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      const auto mit = snap.state.find(kMaskPrefix + wname);
      if (mit != snap.state.end()) {
        lin->set_prune_mask(mit->second);
      } else {
        lin->set_prune(std::nullopt);
      }
      const auto qit = snap.state.find(kQuantPrefix + wname);
      if (qit != snap.state.end()) {
        const Tensor& qv = qit->second;
        if (qv.numel() != 4) throw std::runtime_error("snapshot: malformed quant entry for " + wname);
        quant::QuantSpec q;
        q.bits = static_cast<int>(qv[0]);
        q.symmetric = qv[1] != 0.0f;
        q.granularity = static_cast<quant::Granularity>(static_cast<int>(qv[2]));
        q.group_size = static_cast<int64_t>(qv[3]);
        lin->set_quant(q);
      } else {
        lin->set_quant(std::nullopt);
      }
    }
  }
  tuner.restore_state(kTunerPrefix, snap.state);
  set_rng_state_string(rng, nn::unpack_bytes(need("rng.pipeline")));

  const Tensor& curve = need("loss_curve");
  loss_curve.assign(curve.raw(), curve.raw() + curve.numel());
  peaks.activation = static_cast<int64_t>(nn::unpack_u64(need("peaks.activation")));
  peaks.optimizer = static_cast<int64_t>(nn::unpack_u64(need("peaks.optimizer")));
  peaks.grad = static_cast<int64_t>(nn::unpack_u64(need("peaks.grad")));
}

}  // namespace edgellm::core
