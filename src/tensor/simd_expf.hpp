// Internal: the shared constants of the polynomial expf (Cephes lineage,
// sse_mathfun coefficients). simd.cpp's exp_scalar is the reference op
// sequence; the vector backends include this header so their cores use
// bit-identical constants. Not part of the public simd.hpp surface.
#pragma once

namespace edgellm::simd::detail {

inline constexpr float kExpHi = 88.3762626647949f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kLn2Hi = 0.693359375f;
inline constexpr float kLn2Lo = -2.12194440e-4f;
inline constexpr float kExpC0 = 1.9875691500e-4f;
inline constexpr float kExpC1 = 1.3981999507e-3f;
inline constexpr float kExpC2 = 8.3334519073e-3f;
inline constexpr float kExpC3 = 4.1665795894e-2f;
inline constexpr float kExpC4 = 1.6666665459e-1f;
inline constexpr float kExpC5 = 5.0000001201e-1f;

}  // namespace edgellm::simd::detail
