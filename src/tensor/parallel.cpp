#include "tensor/parallel.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace edgellm::parallel {

namespace {

// Set while a thread executes a chunk (pool helper or participating
// caller); nested parallel_for calls observe it and run serially.
thread_local bool tl_in_region = false;

// Marks the current thread as inside a parallel region for one scope,
// restoring the previous value on exit (so a nested serial call doesn't
// clear the flag for the rest of the enclosing chunk) and surviving
// exceptions thrown by the chunk body.
struct RegionScope {
  bool prev = tl_in_region;
  RegionScope() { tl_in_region = true; }
  ~RegionScope() { tl_in_region = prev; }
};

int64_t env_threads() {
  const char* s = std::getenv("EDGELLM_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return (end != s && v > 1) ? static_cast<int64_t>(v) : 1;
}

/// Global pool of n_threads-1 helper threads; the calling thread executes
/// chunks alongside them. One job runs at a time (job_mu_); concurrent
/// parallel_for callers (e.g. serve worker threads) serialise their
/// fan-outs, which preserves correctness and bounds total concurrency.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int64_t threads() {
    std::lock_guard<std::mutex> lk(config_mu_);
    return n_threads_;
  }

  void set_threads(int64_t n) {
    n = std::max<int64_t>(1, n);
    std::lock_guard<std::mutex> job(job_mu_);  // drain any in-flight job
    std::lock_guard<std::mutex> lk(config_mu_);
    if (n == n_threads_) return;
    n_threads_ = n;
    stop_helpers();  // respawned lazily at the right size on next run()
  }

  void run(int64_t begin, int64_t end, int64_t grain, const RangeFn& fn) {
    const int64_t n = end - begin;
    if (n <= 0) return;
    grain = std::max<int64_t>(1, grain);

    int64_t nt;
    {
      std::lock_guard<std::mutex> lk(config_mu_);
      nt = n_threads_;
    }
    const int64_t max_chunks = (n + grain - 1) / grain;
    const int64_t n_chunks = std::min(nt, max_chunks);
    if (n_chunks <= 1 || tl_in_region) {
      RegionScope scope;
      fn(begin, end);
      return;
    }

    // Sampled like the kernel-family spans: a fan-out happens once per
    // parallel kernel call, so it shares the kernel_sample gate.
    const obs::KernelSpan span("parallel/fanout");
    std::lock_guard<std::mutex> job(job_mu_);
    {
      std::lock_guard<std::mutex> lk(config_mu_);
      ensure_helpers_locked(n_threads_ - 1);
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      fn_ = &fn;
      begin_ = begin;
      end_ = end;
      // Even contiguous split: chunk c covers rows [begin + c*chunk, ...).
      chunk_ = (n + n_chunks - 1) / n_chunks;
      n_chunks_ = n_chunks;
      next_ = 0;
      done_ = 0;
      eptr_ = nullptr;
      ++epoch_;
    }
    cv_work_.notify_all();
    drain_chunks();
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return done_ == n_chunks_; });
    fn_ = nullptr;
    // A throwing chunk doesn't terminate a helper thread: the first
    // exception is stashed and resurfaces here, on the calling thread,
    // matching the serial path's propagation.
    if (eptr_ != nullptr) {
      std::exception_ptr e = eptr_;
      eptr_ = nullptr;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  Pool() : n_threads_(env_threads()) {}

  ~Pool() {
    std::lock_guard<std::mutex> lk(config_mu_);
    stop_helpers();
  }

  void stop_helpers() {
    {
      std::lock_guard<std::mutex> lk(m_);
      quit_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : helpers_) t.join();
    helpers_.clear();
    std::lock_guard<std::mutex> lk(m_);
    quit_ = false;
  }

  void ensure_helpers_locked(int64_t want) {
    if (static_cast<int64_t>(helpers_.size()) == want) return;
    stop_helpers();
    helpers_.reserve(static_cast<size_t>(want));
    for (int64_t i = 0; i < want; ++i) helpers_.emplace_back([this] { helper(); });
  }

  void run_chunk(int64_t c) {
    const int64_t lo = begin_ + c * chunk_;
    const int64_t hi = std::min(lo + chunk_, end_);
    RegionScope scope;
    try {
      (*fn_)(lo, hi);
    } catch (...) {
      // Callers hold no lock while running chunks; stash the first
      // exception for run() to rethrow after the join.
      std::lock_guard<std::mutex> lk(m_);
      if (eptr_ == nullptr) eptr_ = std::current_exception();
    }
  }

  // Caller-side chunk loop: claim chunks until none are left.
  void drain_chunks() {
    std::unique_lock<std::mutex> lk(m_);
    while (next_ < n_chunks_) {
      const int64_t c = next_++;
      lk.unlock();
      run_chunk(c);
      lk.lock();
      ++done_;
      if (done_ == n_chunks_) cv_done_.notify_all();
    }
  }

  void helper() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    while (true) {
      cv_work_.wait(lk, [&] { return quit_ || (epoch_ != seen && next_ < n_chunks_); });
      if (quit_) return;
      seen = epoch_;
      while (next_ < n_chunks_) {
        const int64_t c = next_++;
        lk.unlock();
        run_chunk(c);
        lk.lock();
        ++done_;
        if (done_ == n_chunks_) cv_done_.notify_all();
      }
    }
  }

  std::mutex config_mu_;  ///< guards n_threads_ + helpers_ lifecycle
  int64_t n_threads_;
  std::vector<std::thread> helpers_;

  std::mutex job_mu_;  ///< one fan-out at a time

  // Per-job state, guarded by m_ (fn_/begin_/end_/chunk_ are written
  // before the job is published and read-only while it runs).
  std::mutex m_;
  std::condition_variable cv_work_, cv_done_;
  const RangeFn* fn_ = nullptr;
  int64_t begin_ = 0, end_ = 0, chunk_ = 0;
  int64_t n_chunks_ = 0, next_ = 0, done_ = 0;
  uint64_t epoch_ = 0;
  bool quit_ = false;
  std::exception_ptr eptr_;  ///< first exception thrown by any chunk
};

}  // namespace

int64_t num_threads() { return Pool::instance().threads(); }

void set_num_threads(int64_t n) { Pool::instance().set_threads(n); }

void parallel_for(int64_t begin, int64_t end, int64_t grain, const RangeFn& fn) {
  Pool::instance().run(begin, end, grain, fn);
}

bool in_parallel_region() { return tl_in_region; }

}  // namespace edgellm::parallel
