// Runtime-dispatched SIMD kernel family: fixed-width f32 vector cores for
// the blocked GEMM micro-kernel, the fused int4/int8 dequant-dot, and the
// hot elementwise paths (softmax, RMSNorm, SiLU/SwiGLU, bias add), behind
// one portable dispatch table with AVX2 and NEON backends and the scalar
// backend kept as the bitwise reference implementation.
//
// Dispatch: detected_isa() probes the CPU once (cpuid on x86-64, the
// aarch64 baseline guarantees NEON); the active table starts at the
// EDGELLM_SIMD environment override ("auto" | "scalar" | "avx2" | "neon",
// read once at first use) and can be re-pointed at any quiescent moment
// with set_dispatch() (the CLI's --simd flag). Switching dispatch is a
// single atomic pointer store; kernels grab the table per call.
//
// Numerics contract (the load-bearing part):
//
//   DEFAULT (deterministic) PATH — every kernel in the table computes, per
//   output element, the exact IEEE operation sequence of the scalar
//   reference. GEMM and dequant-dot vectorize across *n* (the kNr output
//   lane), never across k, so each output element keeps its single
//   ascending-k accumulation chain; multiplies and adds stay separate
//   (no FMA contraction — the whole project builds with -ffp-contract=off
//   so the scalar reference can't silently fuse either). Elementwise
//   kernels are lane-independent with per-element op sequences identical
//   to the scalar code. Results are therefore BITWISE IDENTICAL to the
//   scalar backend at any dispatch choice and any thread count, and the
//   differential suite (ctest -L simd) pins this down.
//
//   FAST-MATH PATH — the *_fast GEMM/dequant-dot entries and sumsq_fast
//   trade the single-chain contract for k-lane multi-accumulator
//   reductions with FMA. Opt-in per call (and via the EngineConfig /
//   --fast-math knobs); differential tests are tolerance-based, not
//   bitwise. On the scalar table the fast pointers alias the
//   deterministic kernels, so scalar dispatch is always the reference.
//
// Transcendentals: std::exp differs across libms and has no vector form,
// so the exp/sigmoid used by softmax and SiLU are defined HERE, once, as a
// polynomial (exp_scalar below) whose vector implementations perform the
// identical per-element op sequence. The scalar functions are the
// reference; ops.cpp routes through them so "scalar dispatch" and "avx2
// dispatch" agree bitwise. Saturation contract: exp_scalar(x) returns +inf
// for x > 88.376..., 0 for x < -87.336..., and propagates NaN inputs
// unchanged (payload preserved, no arithmetic touches them).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

namespace edgellm::simd {

/// Instruction-set backends the dispatch layer knows about.
enum class Isa { kScalar, kAvx2, kNeon };

const char* to_string(Isa isa);

/// Best backend this CPU supports (probed once: cpuid AVX2+FMA on x86-64,
/// NEON is the aarch64 baseline). Never returns less than kScalar.
Isa detected_isa();

/// The backend kernels currently dispatch to. Starts at the EDGELLM_SIMD
/// override if set and usable, else detected_isa().
Isa active_isa();

/// Points dispatch at `name`: "auto" (detected), "scalar", "avx2", "neon".
/// Returns false — leaving dispatch unchanged — for an unknown name or a
/// backend this host cannot run. Call while kernels are quiescent; the
/// store itself is atomic, but in-flight kernels that already grabbed the
/// old table finish on it.
bool set_dispatch(const std::string& name);

/// True if `name` is a valid argument to set_dispatch on this host.
bool dispatch_available(const std::string& name);

// ---------------------------------------------------------------------------
// Kernel table
// ---------------------------------------------------------------------------

/// Per-ISA kernel implementations. All function pointers are always
/// non-null (the scalar reference fills any slot an ISA does not
/// specialise).
struct KernelTable {
  Isa isa;

  /// Blocked-GEMM micro-kernel: C strip [mr x nr] += A rows [mr x pc]
  /// (row stride lda) * packed panel strip [pc x kNr floats, kNr = 8,
  /// 32-byte aligned]; mr <= 4, nr <= 8; panel lanes past nr are
  /// zero-padded by the packers and feed accumulator slots that are never
  /// stored. Accumulates each element over ascending p, loading from and
  /// storing to C (k-blocks chain through memory into one fp32 sum per
  /// element).
  void (*gemm_tile)(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                    int64_t ldc, int64_t mr, int64_t nr);
  /// Fast-math variant: FMA + two k-lane accumulator chains per element.
  void (*gemm_tile_fast)(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                         int64_t ldc, int64_t mr, int64_t nr);

  /// Fused dequant-dot: C strip [mr x nr] += A rows [mr x pc] * W_strip^T
  /// where the weight strip is kNr packed integer rows decoded on the fly
  /// — no fp32 panel temporary. rows[jr] points at weight row j0+jr's
  /// packed payload base (whole row), nullptr for jr >= nr; `bits` is 4
  /// (two nibbles per byte, low first, offset-by-8) or 8 (int8); the
  /// depth range is absolute columns [p0, p0 + pc) of the row (p0 carries
  /// int4 nibble alignment). Deterministic: per element ascending-p
  /// mul+add of a[r][p] * float(q[j][p]), bitwise equal to the scalar
  /// reference (int -> fp32 is exact for |q| <= 127).
  void (*dequant_dot)(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                      int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr);
  void (*dequant_dot_fast)(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                           int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr);

  /// y[i] = exp(x[i] - mx) for i < n (softmax numerator; mx = 0 gives
  /// plain exp). Same saturation/NaN contract as exp_scalar.
  void (*exp_sub)(const float* x, float mx, float* y, int64_t n);
  /// y[i] *= s (softmax normalise).
  void (*scale_inplace)(float* y, float s, int64_t n);
  /// y[i] = x[i] * sigmoid(x[i]).
  void (*silu)(const float* x, float* y, int64_t n);
  /// y[i] = (g[i] * sigmoid(g[i])) * u[i] — the SwiGLU gate-up product,
  /// bitwise equal to silu-then-multiply.
  void (*swiglu)(const float* g, const float* u, float* y, int64_t n);
  /// y[i] = a[i] + b[i] (bias add runs this per row).
  void (*add)(const float* a, const float* b, float* y, int64_t n);
  /// y[i] = gain[i] * x[i] * inv — the RMSNorm application, op order
  /// (gain * x) * inv exactly as the scalar loop.
  void (*rms_apply)(const float* x, const float* gain, float inv, float* y, int64_t n);
  /// Fast-math sum of squares in double (vector multi-accumulator); the
  /// deterministic RMSNorm reduction stays the scalar ascending chain in
  /// ops.cpp and is not in the table.
  double (*sumsq_fast)(const float* x, int64_t n);
};

/// The active table (atomic load of one pointer; grab it once per kernel
/// call, not per element).
const KernelTable& kernels();

/// Table for a specific backend, or nullptr if unavailable on this host.
/// Tests use this to compare backends directly.
const KernelTable* table_for(Isa isa);

// ---------------------------------------------------------------------------
// Shared scalar transcendentals (the reference implementations)
// ---------------------------------------------------------------------------

/// Polynomial expf (Cephes-style, ~1 ulp on the supported range) — THE
/// definition of exp for softmax/SiLU numerics. x > 88.3762626647949f
/// returns +inf, x < -87.3365478515625f returns 0, NaN returns x
/// unchanged. Every vector backend performs this exact op sequence.
float exp_scalar(float x);

/// 1 / (1 + exp_scalar(-x)); the sigmoid under silu/swiglu. NaN inputs
/// return x unchanged — this keeps x * sigmoid(x) order-independent when
/// x is NaN (both multiply operands are then the SAME NaN bit pattern, so
/// the product is that NaN on every backend; two distinct NaN payloads
/// meeting in one multiply would propagate whichever one the instruction's
/// operand order picks, which compilers don't pin).
float sigmoid_scalar(float x);

// ---------------------------------------------------------------------------
// Aligned storage for packed panels
// ---------------------------------------------------------------------------

/// Alignment of packed B panels (bytes). One kNr f32 lane is 32 bytes, so
/// panel strips laid out at kNr-float steps from a kPanelAlign base stay
/// aligned for full-width vector loads on every backend.
inline constexpr size_t kPanelAlign = 64;

/// Minimal aligned allocator so panel buffers can stay std::vector<float>.
template <typename T>
struct PanelAllocator {
  using value_type = T;
  PanelAllocator() = default;
  template <typename U>
  PanelAllocator(const PanelAllocator<U>&) {}
  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(kPanelAlign)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kPanelAlign));
  }
  template <typename U>
  bool operator==(const PanelAllocator<U>&) const {
    return true;
  }
};

namespace detail {
/// Backend tables, defined in their per-ISA translation units (which carry
/// the arch compile flags). Each returns nullptr when the backend is not
/// compiled into this binary; runtime CPU support is checked by table_for.
const KernelTable* avx2_table();
const KernelTable* neon_table();
}  // namespace detail

}  // namespace edgellm::simd
