// Math kernels over Tensor used throughout the library.
//
// All functions validate shapes with check_arg and return freshly
// allocated tensors unless the name says `_inplace`.
//
// Threading: the hot kernels run on the shared deterministic thread pool
// (tensor/parallel.hpp), partitioned over disjoint output rows/elements so
// results are bitwise identical to serial execution at any thread count.
//
// Numerics: the default matmul/bmm variants are IEEE-propagating — a NaN
// or Inf in either operand always reaches the output (0 * NaN == NaN).
// The `_skipzero` variants trade that away for a sparsity fast path; see
// their contracts before using them.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace edgellm::ops {

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A^T[k,m] * B[k,n]  (a is stored [k,m]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B^T[n,k]  (b is stored [n,k]).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Batched matmul: C[b,m,n] = A[b,m,k] * B[b,k,n].
Tensor bmm(const Tensor& a, const Tensor& b);

/// Batched matmul with B transposed: C[b,m,n] = A[b,m,k] * B^T where B is [b,n,k].
Tensor bmm_nt(const Tensor& a, const Tensor& b);

/// Batched matmul with A transposed: C[b,m,n] = A^T * B where A is [b,k,m], B is [b,k,n].
Tensor bmm_tn(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Sparsity-aware matmuls (explicit opt-in fast paths)
// ---------------------------------------------------------------------------
//
// These skip inner-loop work whenever an entry of A is exactly 0.0f, which
// pays off when A is heavily sparse (pruned activations, causally masked
// attention probabilities). CONTRACT: the skip breaks IEEE NaN/Inf
// propagation — a zero in A masks a NaN/Inf at the matching position of B
// (IEEE says 0 * NaN == NaN; these kernels yield 0). Only call them when A
// and B are known finite, or when masking non-finite values behind pruned
// zeros is acceptable; everywhere else use the dense variants above, which
// always propagate.

/// matmul with the zero-skip fast path on A (see contract above).
Tensor matmul_skipzero(const Tensor& a, const Tensor& b);

/// bmm_tn with the zero-skip fast path on A (see contract above).
Tensor bmm_tn_skipzero(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

/// a += b (shapes must match).
void add_inplace(Tensor& a, const Tensor& b);

/// a += s * b (shapes must match).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

/// Adds row vector `bias[n]` to every row of `x[..., n]`.
Tensor add_bias(const Tensor& x, const Tensor& bias);

// Activations and their derivatives (w.r.t. the pre-activation input).
Tensor relu(const Tensor& x);
Tensor relu_grad(const Tensor& x, const Tensor& grad_out);
Tensor gelu(const Tensor& x);
Tensor gelu_grad(const Tensor& x, const Tensor& grad_out);
Tensor silu(const Tensor& x);
Tensor silu_grad(const Tensor& x, const Tensor& grad_out);

/// Fused SwiGLU product: y = silu(gate) * up, elementwise, in one pass.
/// Bitwise equal to mul(silu(gate), up) at every SIMD dispatch choice.
Tensor swiglu(const Tensor& gate, const Tensor& up);

// ---------------------------------------------------------------------------
// Softmax / reductions
// ---------------------------------------------------------------------------

/// Softmax along the last dimension.
Tensor softmax_lastdim(const Tensor& x);

/// Log-softmax along the last dimension.
Tensor log_softmax_lastdim(const Tensor& x);

/// Backward of softmax along the last dimension given y = softmax(x)
/// and dL/dy; returns dL/dx.
Tensor softmax_lastdim_backward(const Tensor& y, const Tensor& grad_out);

/// RMSNorm over the last dimension: y[..., d] = gain[d] * x[..., d] * inv_r
/// with inv_r = 1 / sqrt(mean(x_row^2) + eps). The sum-of-squares runs as
/// a scalar ascending double chain (bitwise-deterministic at any thread
/// count / SIMD dispatch) unless global fast_math is on. When `inv_out` is
/// non-null it receives one inv_r per row (for backward caching).
Tensor rms_norm_lastdim(const Tensor& x, const Tensor& gain, float eps,
                        std::vector<float>* inv_out = nullptr);

float sum(const Tensor& x);
float mean(const Tensor& x);
float max_value(const Tensor& x);
float min_value(const Tensor& x);

/// L2 norm of all elements.
float l2_norm(const Tensor& x);

/// Mean squared difference between two same-shaped tensors.
float mse(const Tensor& a, const Tensor& b);

/// 2-d transpose: [m,n] -> [n,m].
Tensor transpose2d(const Tensor& x);

/// Row-wise argmax over the last dimension; returns indices flattened over
/// the leading dimensions.
std::vector<int64_t> argmax_lastdim(const Tensor& x);

}  // namespace edgellm::ops
