// Core dense tensor type for the Edge-LLM reproduction.
//
// Design: a contiguous, row-major, float32 tensor with value semantics.
// There is intentionally no autograd tape; neural-network modules in
// src/nn implement explicit forward/backward passes, which lets the
// adaptive-layer tuner (src/core) skip activation caching below the
// backpropagation depth — the paper's memory-saving mechanism.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace edgellm {

/// Shape of a tensor; each extent must be >= 0.
using Shape = std::vector<int64_t>;

/// Returns the number of elements a shape describes (product of extents).
int64_t shape_numel(const Shape& shape);

/// Human-readable form, e.g. "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

/// Dense row-major float32 tensor with value semantics.
///
/// Invariants: data().size() == shape_numel(shape()); all extents >= 0.
class Tensor {
 public:
  /// Empty 0-d tensor with one element (scalar zero).
  Tensor();

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor of the given shape adopting `values` (size must match).
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// 1-d tensor from a list of values.
  static Tensor from_values(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  /// Extent along dimension `i`; negative `i` counts from the back.
  int64_t dim(int64_t i) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  // Bounds-checked element access for small-dimensional tensors.
  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  // Unchecked fast access (used by inner loops in ops.cpp).
  float& operator[](int64_t linear) { return data_[static_cast<size_t>(linear)]; }
  float operator[](int64_t linear) const { return data_[static_cast<size_t>(linear)]; }

  /// Returns a tensor with the same data viewed under a new shape.
  /// The element counts must match.
  Tensor reshape(Shape new_shape) const;

  /// Sets every element to `v`.
  void fill(float v);

  /// Scalar value of a one-element tensor.
  float item() const;

  /// True if shapes and all elements are equal.
  bool equals(const Tensor& other) const;

  /// True if shapes are equal and elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  std::string to_string(int64_t max_elems = 32) const;

 private:
  Shape shape_;
  std::vector<float> data_;

  int64_t linear_index(int64_t i, int64_t j) const;
  int64_t linear_index(int64_t i, int64_t j, int64_t k) const;
};

/// Throwing check helper used across the library: throws std::invalid_argument
/// with `msg` when `cond` is false.
void check_arg(bool cond, const std::string& msg);

}  // namespace edgellm
