#include "tensor/rng.hpp"

#include <sstream>
#include <stdexcept>

namespace edgellm {

std::string rng_state_string(const Rng& rng) {
  std::ostringstream os;
  os << rng.engine();
  return os.str();
}

void set_rng_state_string(Rng& rng, const std::string& s) {
  std::istringstream is(s);
  is >> rng.engine();
  if (!is) throw std::runtime_error("malformed RNG state string");
}

Tensor randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.normal(mean, stddev);
  return t;
}

Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.uniform(lo, hi);
  return t;
}

}  // namespace edgellm
