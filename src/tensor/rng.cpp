#include "tensor/rng.hpp"

namespace edgellm {

Tensor randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.normal(mean, stddev);
  return t;
}

Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.uniform(lo, hi);
  return t;
}

}  // namespace edgellm
