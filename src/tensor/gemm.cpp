#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace edgellm::ops::gemm {

namespace {

// --- schedule registry ------------------------------------------------------

struct ShapeKey {
  GemmKind kind;
  int64_t m, k, n;
  bool operator<(const ShapeKey& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (m != o.m) return m < o.m;
    if (k != o.k) return k < o.k;
    return n < o.n;
  }
};

struct Registry {
  std::mutex mu;
  std::map<ShapeKey, Blocking> entries;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtor order
  return *r;
}

std::mutex g_metrics_mu;
obs::Registry* g_metrics = nullptr;

obs::Registry* metrics_registry() {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  return g_metrics;
}

void record_blocked_call(const Blocking& blk, int64_t tiles, double seconds) {
  obs::Registry* reg = metrics_registry();
  if (reg == nullptr) return;
  reg->counter("gemm/blocked_calls").add(1);
  reg->counter("gemm/sched." + blk.to_string() + ".calls").add(1);
  if (seconds > 0.0) {
    reg->histogram("gemm/tiles_per_s").observe(static_cast<double>(tiles) / seconds);
  }
}

// --- B-panel packing --------------------------------------------------------
//
// A panel holds `kc` depth steps of `nc` output columns, laid out as
// column-strips of kNr: strip js occupies kc * kNr consecutive floats, with
// the kNr values of depth step p contiguous at offset (js * kc + p) * kNr.
// Columns past `n` are zero-padded so the micro-kernel always reads a full
// kNr lane (padded lanes are never stored back to C).

// Panel bases must be 32-byte aligned: strips advance by pc * kNr floats
// (a multiple of 32 bytes), so an aligned base keeps every strip and every
// depth step aligned for the vector backends' aligned panel loads.
inline void assert_panel_aligned(const float* out) {
  assert(reinterpret_cast<uintptr_t>(out) % 32 == 0 && "panel base must be 32-byte aligned");
  (void)out;
}

// B stored [k, n] (NN kernel): panel[js][p][jr] = B[p0 + p][j0 + js*kNr + jr].
void pack_panel_nn(const float* b, int64_t n, int64_t p0, int64_t pc, int64_t j0, int64_t jc,
                   float* out) {
  assert_panel_aligned(out);
  const int64_t strips = (jc + kNr - 1) / kNr;
  for (int64_t js = 0; js < strips; ++js) {
    const int64_t j = j0 + js * kNr;
    const int64_t w = std::min(kNr, j0 + jc - j);
    float* dst = out + js * pc * kNr;
    if (w < kNr) {
      // Partial trailing strip: zero the whole strip in one pass, then
      // scatter the live lanes (instead of per-lane pad stores per depth).
      std::fill(dst, dst + pc * kNr, 0.0f);
    }
    for (int64_t p = 0; p < pc; ++p) {
      const float* src = b + (p0 + p) * n + j;
      float* d = dst + p * kNr;
      for (int64_t jr = 0; jr < w; ++jr) d[jr] = src[jr];
    }
  }
}

// B stored [n, k] (NT kernel): panel[js][p][jr] = B[j0 + js*kNr + jr][p0 + p].
void pack_panel_nt(const float* b, int64_t k, int64_t p0, int64_t pc, int64_t j0, int64_t jc,
                   float* out) {
  assert_panel_aligned(out);
  const int64_t strips = (jc + kNr - 1) / kNr;
  for (int64_t js = 0; js < strips; ++js) {
    const int64_t j = j0 + js * kNr;
    const int64_t w = std::min(kNr, j0 + jc - j);
    float* dst = out + js * pc * kNr;
    if (w < kNr) {
      std::fill(dst, dst + pc * kNr, 0.0f);
    }
    for (int64_t jr = 0; jr < w; ++jr) {
      const float* src = b + (j + jr) * k + p0;
      for (int64_t p = 0; p < pc; ++p) dst[p * kNr + jr] = src[p];
    }
  }
}

// Global default for the per-call fast_math flag.
std::atomic<bool> g_fast_math{false};

}  // namespace

void set_fast_math(bool on) { g_fast_math.store(on, std::memory_order_relaxed); }

bool fast_math_enabled() { return g_fast_math.load(std::memory_order_relaxed); }

// --- micro-kernel (exported via gemm.hpp detail) ----------------------------
//
// The deterministic tile kernel of whichever SIMD backend is dispatched
// (tensor/simd.hpp) — every backend implements the same per-element
// ascending-p single-chain contract, so this is bitwise stable across
// dispatch choices. The blocked drivers below resolve the table once per
// GEMM call instead of calling this per tile.
void detail::micro_kernel(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                          int64_t ldc, int64_t mr, int64_t nr) {
  simd::kernels().gemm_tile(a, lda, bp, pc, c, ldc, mr, nr);
}

namespace {

// --- blocked driver ---------------------------------------------------------
//
// Shared by NN and NT: the two differ only in how B panels are packed.
// Loop nest: j-blocks (NC) outer, k-blocks (KC) inside, so each output
// element accumulates its k-blocks in ascending order; within a (j, k)
// block the caller thread packs the panel once, then a parallel_for over
// kMr row strips runs the micro-kernels. Chunks own disjoint C rows, so
// any partition is bitwise identical to serial. The tile kernel (default
// or fast_math) is resolved from the dispatch table once per call.
template <bool transposed_b>
void gemm_blocked_2d(const float* pa, const float* pb, float* pc_out, int64_t m, int64_t k,
                     int64_t n, const Blocking& blk, bool fast_math) {
  const int64_t kc = std::max<int64_t>(1, std::min(blk.kc, k));
  const int64_t nc = std::max(kNr, std::min(blk.nc, ((n + kNr - 1) / kNr) * kNr));
  const int64_t strips_m = (m + kMr - 1) / kMr;
  const int64_t strip_grain = std::max<int64_t>(1, blk.mc / kMr);

  const simd::KernelTable& kt = simd::kernels();
  const auto tile = fast_math ? kt.gemm_tile_fast : kt.gemm_tile;

  std::vector<float, simd::PanelAllocator<float>> panel(
      static_cast<size_t>(((nc + kNr - 1) / kNr) * kc * kNr));
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t jc = std::min(nc, n - j0);
    const int64_t jstrips = (jc + kNr - 1) / kNr;
    for (int64_t p0 = 0; p0 < k; p0 += kc) {
      const int64_t pc = std::min(kc, k - p0);
      if (transposed_b) {
        pack_panel_nt(pb, k, p0, pc, j0, jc, panel.data());
      } else {
        pack_panel_nn(pb, n, p0, pc, j0, jc, panel.data());
      }
      const float* bp = panel.data();
      parallel::parallel_for(0, strips_m, strip_grain, [=](int64_t lo, int64_t hi) {
        for (int64_t is = lo; is < hi; ++is) {
          const int64_t i0 = is * kMr;
          const int64_t mr = std::min(kMr, m - i0);
          const float* arow = pa + i0 * k + p0;
          for (int64_t js = 0; js < jstrips; ++js) {
            const int64_t j = j0 + js * kNr;
            const int64_t nr = std::min(kNr, j0 + jc - j);
            tile(arow, k, bp + js * pc * kNr, pc, pc_out + i0 * n + j, n, mr, nr);
          }
        }
      });
    }
  }
}

int64_t tile_count(int64_t m, int64_t k, int64_t n, const Blocking& blk) {
  const int64_t kc = std::max<int64_t>(1, std::min(blk.kc, k));
  return ((m + kMr - 1) / kMr) * ((n + kNr - 1) / kNr) * ((k + kc - 1) / kc);
}

void check_2d(const Tensor& a, const Tensor& b, const char* what) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, std::string(what) + ": operands must be 2-d");
}

}  // namespace

std::string Blocking::to_string() const {
  return "b" + std::to_string(mc) + "x" + std::to_string(kc) + "x" + std::to_string(nc);
}

Blocking default_blocking(int64_t m, int64_t k, int64_t n) {
  // KC sized so a kNr-wide panel strip (kc * kNr fp32) stays L1-resident;
  // NC bounds the packed panel to ~128 KiB of L2; MC gives parallel chunks
  // enough rows to amortise fan-out without starving the pool.
  Blocking b;
  b.kc = std::clamp<int64_t>(k, 64, 256);
  b.nc = std::clamp<int64_t>(((n + kNr - 1) / kNr) * kNr, kNr, 256);
  b.mc = std::clamp<int64_t>(((m + kMr - 1) / kMr) * kMr, kMr, 64);
  return b;
}

const char* to_string(GemmKind kind) {
  switch (kind) {
    case GemmKind::kNN: return "nn";
    case GemmKind::kNT: return "nt";
    case GemmKind::kPackedNT: return "packed_nt";
  }
  return "?";
}

void set_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n, const Blocking& b) {
  check_arg(b.valid(), "set_blocking: invalid blocking " + b.to_string());
  check_arg(m > 0 && k > 0 && n > 0, "set_blocking: shape must be positive");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.entries[ShapeKey{kind, m, k, n}] = b;
}

Blocking blocking_for(GemmKind kind, int64_t m, int64_t k, int64_t n) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.entries.find(ShapeKey{kind, m, k, n});
    if (it != r.entries.end()) return it->second;
  }
  return default_blocking(m, k, n);
}

bool has_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.entries.count(ShapeKey{kind, m, k, n}) != 0;
}

void clear_blockings() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.entries.clear();
}

int64_t registered_blockings() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return static_cast<int64_t>(r.entries.size());
}

void set_metrics_registry(obs::Registry* r) {
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics = r;
}

bool use_blocked(GemmKind kind, int64_t m, int64_t k, int64_t n) {
  // Below ~32k MACs the pack + fan-out overhead eats the win; the blocked
  // kernel also needs at least one full kNr lane to pay for panelling.
  // The packed kernel cuts over much earlier: its scalar reference pays a
  // bounds-checked value_at per MAC, so bulk panel decode wins from tiny
  // shapes up (single-token decode rows included).
  if (n < kNr || m < 1 || k < 1) return false;
  if (kind == GemmKind::kPackedNT) return m * k * n >= 4096;
  return m * k * n >= 32768;
}

Tensor matmul_blocked(const Tensor& a, const Tensor& b, const Blocking& blk, bool fast_math) {
  check_2d(a, b, "matmul_blocked");
  check_arg(a.dim(1) == b.dim(0), "matmul_blocked: inner dimensions differ");
  check_arg(blk.valid(), "matmul_blocked: invalid blocking");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const auto t0 = std::chrono::steady_clock::now();
  gemm_blocked_2d<false>(a.raw(), b.raw(), c.raw(), m, k, n, blk, fast_math);
  record_blocked_call(blk, tile_count(m, k, n, blk),
                      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  return c;
}

Tensor matmul_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk, bool fast_math) {
  check_2d(a, b, "matmul_nt_blocked");
  check_arg(a.dim(1) == b.dim(1), "matmul_nt_blocked: inner dimensions differ");
  check_arg(blk.valid(), "matmul_nt_blocked: invalid blocking");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const auto t0 = std::chrono::steady_clock::now();
  gemm_blocked_2d<true>(a.raw(), b.raw(), c.raw(), m, k, n, blk, fast_math);
  record_blocked_call(blk, tile_count(m, k, n, blk),
                      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  return c;
}

Tensor bmm_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk, bool fast_math) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm_nt_blocked: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm_nt_blocked: batch sizes differ");
  check_arg(a.dim(2) == b.dim(2), "bmm_nt_blocked: inner dimensions differ");
  check_arg(blk.valid(), "bmm_nt_blocked: invalid blocking");
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t t = 0; t < bs; ++t) {
    gemm_blocked_2d<true>(a.raw() + t * m * k, b.raw() + t * n * k, c.raw() + t * m * n, m, k, n,
                          blk, fast_math);
  }
  record_blocked_call(blk, bs * tile_count(m, k, n, blk),
                      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  return c;
}

// --- naive references -------------------------------------------------------
//
// The exact pre-blocking code paths (see ops.cpp history): grain sizing and
// loop structure match the original dispatch so benches compare against
// what shipped, not a strawman.

namespace {
constexpr int64_t kGrainOps = 16384;

int64_t row_grain(int64_t ops_per_row) {
  return std::max<int64_t>(1, kGrainOps / std::max<int64_t>(1, ops_per_row));
}
}  // namespace

Tensor matmul_naive(const Tensor& a, const Tensor& b) {
  check_2d(a, b, "matmul_naive");
  check_arg(a.dim(1) == b.dim(0), "matmul_naive: inner dimensions differ");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[i * k + p];
        const float* brow = pb + p * n;
        float* crow = pc + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt_naive(const Tensor& a, const Tensor& b) {
  check_2d(a, b, "matmul_nt_naive");
  check_arg(a.dim(1) == b.dim(1), "matmul_nt_naive: inner dimensions differ");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

Tensor bmm_nt_naive(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm_nt_naive: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm_nt_naive: batch sizes differ");
  check_arg(a.dim(2) == b.dim(2), "bmm_nt_naive: inner dimensions differ");
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, bs * m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t t = r / m, i = r % m;
      const float* ab = pa + t * m * k;
      const float* bb = pb + t * n * k;
      float* crow = pc + r * n;
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ab[i * k + p] * bb[j * k + p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

}  // namespace edgellm::ops::gemm
