// Blocked GEMM kernel family: cache-blocked (MC/KC/NC) + register-tiled
// (kMr x kNr micro-kernel) variants of the dense matmul kernels, with
// B-panel packing.
//
// Numerics contract: every blocked kernel accumulates each output element
// over ascending k with a single fp32 accumulator chain — k-blocks are
// visited in order and partial sums round-trip through C between blocks —
// so results are BITWISE IDENTICAL to the naive triple-loop kernels (and
// therefore to serial execution at any thread count, the backend guarantee
// of tensor/parallel.hpp). No operand is ever skipped, so IEEE NaN/Inf
// propagation is preserved. What blocking changes is only the memory
// schedule: B is packed into L1-resident panels once per (k-block,
// n-block) and the micro-kernel keeps an MR x NR accumulator grid live,
// which breaks the naive kernels' per-element dependency chains and cuts
// C/B traffic.
//
// Schedules are per-shape: the registry below maps (kind, m, k, n) to a
// Blocking, populated either by default_blocking() heuristics or by the
// measured autotuner (hw/measured.hpp, `edgellm_cli --schedule-cache`).
// Because blocked == naive bitwise, schedule choice can never change
// results — only speed — so autotuning is safe to run anywhere.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace edgellm::obs {
class Registry;
}

namespace edgellm::ops::gemm {

/// Register-tile shape of the micro-kernel. 4x8 keeps 32 fp32 accumulators
/// live — enough to hide FP add latency in scalar code and small enough
/// that compilers keep them in registers on x86-64/aarch64.
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 8;

/// One cache-blocking schedule: MC output rows per parallel chunk, KC
/// depth per packed B panel, NC columns per packed B panel.
struct Blocking {
  int64_t mc = 64;
  int64_t kc = 256;
  int64_t nc = 128;

  bool valid() const { return mc >= kMr && kc >= 1 && nc >= kNr; }
  bool operator==(const Blocking& o) const { return mc == o.mc && kc == o.kc && nc == o.nc; }
  /// Stable id, e.g. "b64x256x128" (mc x kc x nc) — used for span names,
  /// metrics and the on-disk schedule cache.
  std::string to_string() const;
};

/// Heuristic default when no measured schedule is registered for a shape.
Blocking default_blocking(int64_t m, int64_t k, int64_t n);

/// Which kernel a schedule applies to. kPackedNT covers the integer
/// weight kernel in quant/packed.hpp (only its kc/nc fields are used).
enum class GemmKind { kNN, kNT, kPackedNT };

const char* to_string(GemmKind kind);

// ---------------------------------------------------------------------------
// Per-shape schedule registry (autotuner output)
// ---------------------------------------------------------------------------
//
// Lookup is one mutex-guarded map probe per GEMM call — negligible at GEMM
// granularity. Schedules affect speed only (see the numerics contract
// above), so installing or clearing them mid-run is always safe.

/// Installs `b` for exact shape (kind, m, k, n). Invalid blockings throw.
void set_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n, const Blocking& b);

/// The registered blocking for the shape, or default_blocking(m, k, n).
Blocking blocking_for(GemmKind kind, int64_t m, int64_t k, int64_t n);

/// True when an autotuned blocking is registered for the exact shape.
bool has_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n);

/// Drops every registered blocking (tests / re-tune).
void clear_blockings();

/// Number of registered (kind, shape) -> blocking entries.
int64_t registered_blockings();

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

/// Routes blocked-kernel metrics into `r` (nullptr disables, the default):
/// counters `gemm/blocked_calls`, `gemm/sched.<id>.calls`, histogram
/// `gemm/tiles_per_s` (micro-kernel invocations per second per call).
/// Call while kernels are quiescent; the registry must outlive use.
void set_metrics_registry(obs::Registry* r);

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------
//
// The `_blocked` entry points take an explicit schedule (the autotuner
// times candidates through these); ops::matmul / ops::matmul_nt /
// ops::bmm_nt dispatch to them via blocking_for() when the shape clears
// use_blocked(). The `_naive` entry points are the original triple-loop
// kernels, exported as the bit-exact reference for tests and the baseline
// for benches.

/// C[m,n] = A[m,k] * B[k,n], blocked. Bitwise equal to matmul_naive.
Tensor matmul_blocked(const Tensor& a, const Tensor& b, const Blocking& blk);

/// C[m,n] = A[m,k] * B^T (B stored [n,k]), blocked. Bitwise equal to
/// matmul_nt_naive.
Tensor matmul_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk);

/// C[b,m,n] = A[b,m,k] * B^T (B stored [b,n,k]), blocked per batch.
/// Bitwise equal to bmm_nt_naive.
Tensor bmm_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk);

/// The pre-blocking kernels (exact code paths ops::matmul & friends ran
/// before blocked dispatch existed).
Tensor matmul_naive(const Tensor& a, const Tensor& b);
Tensor matmul_nt_naive(const Tensor& a, const Tensor& b);
Tensor bmm_nt_naive(const Tensor& a, const Tensor& b);

/// Dispatch policy: true when the blocked kernel is worth its packing and
/// fan-out overhead for this shape (per-batch shape for bmm).
bool use_blocked(GemmKind kind, int64_t m, int64_t k, int64_t n);

namespace detail {

/// The register-tile micro-kernel, exported so the packed integer kernel
/// (quant/packed.cpp) can run the exact same accumulation pipeline against
/// panels it decodes from integer storage. C strip [mr x nr] += A rows
/// [mr x pc] (row stride lda) * packed panel strip [pc x kNr]; mr <= kMr,
/// nr <= kNr; panel lanes past nr must be zero-padded (they feed
/// accumulator slots that are never stored). Accumulates each element over
/// ascending p, loading from and storing back to C, so chained k-blocks
/// form one fp32 accumulation chain per element.
void micro_kernel(const float* a, int64_t lda, const float* bp, int64_t pc, float* c, int64_t ldc,
                  int64_t mr, int64_t nr);

}  // namespace detail

}  // namespace edgellm::ops::gemm
