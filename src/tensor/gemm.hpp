// Blocked GEMM kernel family: cache-blocked (MC/KC/NC) + register-tiled
// (kMr x kNr micro-kernel) variants of the dense matmul kernels, with
// B-panel packing.
//
// Numerics contract: every blocked kernel accumulates each output element
// over ascending k with a single fp32 accumulator chain — k-blocks are
// visited in order and partial sums round-trip through C between blocks —
// so results are BITWISE IDENTICAL to the naive triple-loop kernels (and
// therefore to serial execution at any thread count, the backend guarantee
// of tensor/parallel.hpp). No operand is ever skipped, so IEEE NaN/Inf
// propagation is preserved. What blocking changes is only the memory
// schedule: B is packed into L1-resident panels once per (k-block,
// n-block) and the micro-kernel keeps an MR x NR accumulator grid live,
// which breaks the naive kernels' per-element dependency chains and cuts
// C/B traffic.
//
// The micro-kernel itself runs through the runtime-dispatched SIMD table
// (tensor/simd.hpp: scalar / AVX2 / NEON, selectable via EDGELLM_SIMD or
// simd::set_dispatch). The default kernels vectorize across the kNr output
// lane only, so the contract above holds at ANY dispatch choice. The
// opt-in fast_math mode (set_fast_math / per-call flag below) swaps in
// FMA + multi-accumulator kernels that trade the single-chain contract
// for speed — results then differ from the reference within accumulation
// tolerance, and only for calls that opted in (scalar dispatch ignores
// fast_math and always computes the reference).
//
// Schedules are per-shape: the registry below maps (kind, m, k, n) to a
// Blocking, populated either by default_blocking() heuristics or by the
// measured autotuner (hw/measured.hpp, `edgellm_cli --schedule-cache`).
// Because blocked == naive bitwise, schedule choice can never change
// results — only speed — so autotuning is safe to run anywhere.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace edgellm::obs {
class Registry;
}

namespace edgellm::ops::gemm {

/// Register-tile shape of the micro-kernel. 4x8 keeps 32 fp32 accumulators
/// live — enough to hide FP add latency in scalar code and small enough
/// that compilers keep them in registers on x86-64/aarch64.
inline constexpr int64_t kMr = 4;
inline constexpr int64_t kNr = 8;

/// One cache-blocking schedule: MC output rows per parallel chunk, KC
/// depth per packed B panel, NC columns per packed B panel.
struct Blocking {
  int64_t mc = 64;
  int64_t kc = 256;
  int64_t nc = 128;

  bool valid() const { return mc >= kMr && kc >= 1 && nc >= kNr; }
  bool operator==(const Blocking& o) const { return mc == o.mc && kc == o.kc && nc == o.nc; }
  /// Stable id, e.g. "b64x256x128" (mc x kc x nc) — used for span names,
  /// metrics and the on-disk schedule cache.
  std::string to_string() const;
};

/// Heuristic default when no measured schedule is registered for a shape.
Blocking default_blocking(int64_t m, int64_t k, int64_t n);

/// Which kernel a schedule applies to. kPackedNT covers the integer
/// weight kernel in quant/packed.hpp (only its kc/nc fields are used).
enum class GemmKind { kNN, kNT, kPackedNT };

const char* to_string(GemmKind kind);

// ---------------------------------------------------------------------------
// Per-shape schedule registry (autotuner output)
// ---------------------------------------------------------------------------
//
// Lookup is one mutex-guarded map probe per GEMM call — negligible at GEMM
// granularity. Schedules affect speed only (see the numerics contract
// above), so installing or clearing them mid-run is always safe.

/// Installs `b` for exact shape (kind, m, k, n). Invalid blockings throw.
void set_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n, const Blocking& b);

/// The registered blocking for the shape, or default_blocking(m, k, n).
Blocking blocking_for(GemmKind kind, int64_t m, int64_t k, int64_t n);

/// True when an autotuned blocking is registered for the exact shape.
bool has_blocking(GemmKind kind, int64_t m, int64_t k, int64_t n);

/// Drops every registered blocking (tests / re-tune).
void clear_blockings();

/// Number of registered (kind, shape) -> blocking entries.
int64_t registered_blockings();

// ---------------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------------

/// Routes blocked-kernel metrics into `r` (nullptr disables, the default):
/// counters `gemm/blocked_calls`, `gemm/sched.<id>.calls`, histogram
/// `gemm/tiles_per_s` (micro-kernel invocations per second per call).
/// Call while kernels are quiescent; the registry must outlive use.
void set_metrics_registry(obs::Registry* r);

// ---------------------------------------------------------------------------
// fast_math mode
// ---------------------------------------------------------------------------

/// Global default for the per-call fast_math flag (off at startup; the
/// serving engine sets it from EngineConfig::fast_math). When a call runs
/// with fast_math on a vector backend, the micro-kernels use FMA and a
/// second k-lane accumulator chain — faster, but no longer bitwise equal
/// to the naive reference. Scalar dispatch always computes the reference.
void set_fast_math(bool on);

/// The current global default (what calls without an explicit flag use).
bool fast_math_enabled();

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------
//
// The `_blocked` entry points take an explicit schedule (the autotuner
// times candidates through these); ops::matmul / ops::matmul_nt /
// ops::bmm_nt dispatch to them via blocking_for() when the shape clears
// use_blocked(). The `_naive` entry points are the original triple-loop
// kernels, exported as the bit-exact reference for tests and the baseline
// for benches.

/// C[m,n] = A[m,k] * B[k,n], blocked. Bitwise equal to matmul_naive
/// unless `fast_math` (defaults to the global flag) opts this call into
/// the FMA multi-accumulator kernels.
Tensor matmul_blocked(const Tensor& a, const Tensor& b, const Blocking& blk,
                      bool fast_math = fast_math_enabled());

/// C[m,n] = A[m,k] * B^T (B stored [n,k]), blocked. Bitwise equal to
/// matmul_nt_naive unless `fast_math` opts in.
Tensor matmul_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk,
                         bool fast_math = fast_math_enabled());

/// C[b,m,n] = A[b,m,k] * B^T (B stored [b,n,k]), blocked per batch.
/// Bitwise equal to bmm_nt_naive unless `fast_math` opts in.
Tensor bmm_nt_blocked(const Tensor& a, const Tensor& b, const Blocking& blk,
                      bool fast_math = fast_math_enabled());

/// The pre-blocking kernels (exact code paths ops::matmul & friends ran
/// before blocked dispatch existed).
Tensor matmul_naive(const Tensor& a, const Tensor& b);
Tensor matmul_nt_naive(const Tensor& a, const Tensor& b);
Tensor bmm_nt_naive(const Tensor& a, const Tensor& b);

/// Dispatch policy: true when the blocked kernel is worth its packing and
/// fan-out overhead for this shape (per-batch shape for bmm).
bool use_blocked(GemmKind kind, int64_t m, int64_t k, int64_t n);

namespace detail {

/// The register-tile micro-kernel (deterministic path), dispatched through
/// the active SIMD table. C strip [mr x nr] += A rows [mr x pc] (row
/// stride lda) * packed panel strip [pc x kNr]; mr <= kMr, nr <= kNr;
/// panel lanes past nr must be zero-padded (they feed accumulator slots
/// that are never stored), and `bp` must be 32-byte aligned (the packers
/// and the aligned panel buffers guarantee this; vector backends use
/// aligned panel loads). Accumulates each element over ascending p,
/// loading from and storing back to C, so chained k-blocks form one fp32
/// accumulation chain per element.
void micro_kernel(const float* a, int64_t lda, const float* bp, int64_t pc, float* c, int64_t ldc,
                  int64_t mr, int64_t nr);

}  // namespace detail

}  // namespace edgellm::ops::gemm
