// Seeded random-number utilities. Every stochastic component in the library
// takes an explicit Rng so that all experiments are reproducible.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace edgellm {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with
/// helpers for the distributions the library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled to `stddev` around `mean`.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Samples an index from an unnormalised non-negative weight vector.
  int64_t categorical(std::span<const float> weights) {
    double total = 0.0;
    for (float w : weights) total += w > 0 ? w : 0;
    check_arg(total > 0.0, "categorical() requires a positive total weight");
    double r = uniform(0.0f, 1.0f) * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      const double w = weights[i] > 0 ? weights[i] : 0;
      if (r < w) return static_cast<int64_t>(i);
      r -= w;
    }
    return static_cast<int64_t>(weights.size()) - 1;
  }

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

  /// Derives an independent child stream (stable across platforms).
  Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

/// Serializes the full engine state as portable text (the standard
/// mt19937_64 stream format). Round-trips bit-exactly through
/// set_rng_state_string, which checkpoint/resume relies on.
std::string rng_state_string(const Rng& rng);

/// Restores a state produced by rng_state_string; throws
/// std::runtime_error on malformed input.
void set_rng_state_string(Rng& rng, const std::string& s);

/// Tensor of i.i.d. N(mean, stddev^2) values.
Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);

/// Tensor of i.i.d. U[lo, hi) values.
Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

}  // namespace edgellm
