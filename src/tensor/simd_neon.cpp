// NEON (aarch64 AdvSIMD) backend for the simd:: kernel table. AdvSIMD is
// architecturally baseline on aarch64, so this TU needs no extra arch
// flags — only -ffp-contract=off, which the whole project already builds
// with (aarch64 scalar code would otherwise contract a*b+c into fmadd and
// break the scalar reference itself).
//
// Determinism follows the same shape as the AVX2 backend: vectorize across
// the kNr output lane (two float32x4 halves per accumulator row), explicit
// vmul+vadd (never vfma) in the default kernels, per-element op sequences
// identical to the scalar reference. Where vectorizing cannot change the
// chain anyway (edge tiles, sub-width tails), this backend simply runs the
// reference scalar loop — bitwise equal by definition.
#include "tensor/simd.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "tensor/simd_expf.hpp"

namespace edgellm::simd {
namespace {

constexpr int64_t kMr = 4;
constexpr int64_t kNr = 8;

// ---------------------------------------------------------------------------
// Vector exp / sigmoid — the exp_scalar op sequence, lane-parallel
// ---------------------------------------------------------------------------

inline float32x4_t exp_f32x4(float32x4_t x) {
  using namespace detail;
  const float32x4_t one = vdupq_n_f32(1.0f);
  // vrndnq = round-to-nearest-even, matching scalar nearbyintf in the
  // default rounding mode.
  float32x4_t n = vrndnq_f32(vmulq_f32(x, vdupq_n_f32(kLog2e)));
  float32x4_t r = vsubq_f32(x, vmulq_f32(n, vdupq_n_f32(kLn2Hi)));
  r = vsubq_f32(r, vmulq_f32(n, vdupq_n_f32(kLn2Lo)));
  const float32x4_t z = vmulq_f32(r, r);
  float32x4_t p = vdupq_n_f32(kExpC0);
  p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(kExpC1));
  p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(kExpC2));
  p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(kExpC3));
  p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(kExpC4));
  p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(kExpC5));
  p = vaddq_f32(vmulq_f32(p, z), r);
  p = vaddq_f32(p, one);
  // n is integral inside the saturation bounds, so truncation == exact;
  // out-of-range lanes produce garbage the selects below overwrite.
  const int32x4_t e = vaddq_s32(vcvtq_s32_f32(n), vdupq_n_s32(127));
  const float32x4_t two_n = vreinterpretq_f32_s32(vshlq_n_s32(e, 23));
  float32x4_t y = vmulq_f32(p, two_n);
  // Scalar branch order: NaN first, so its select is applied last here.
  const uint32x4_t gt_hi = vcgtq_f32(x, vdupq_n_f32(kExpHi));
  const uint32x4_t lt_lo = vcltq_f32(x, vdupq_n_f32(kExpLo));
  const uint32x4_t is_nan = vmvnq_u32(vceqq_f32(x, x));
  y = vbslq_f32(gt_hi, vdupq_n_f32(__builtin_inff()), y);
  y = vbslq_f32(lt_lo, vdupq_n_f32(0.0f), y);
  y = vbslq_f32(is_nan, x, y);
  return y;
}

inline float32x4_t sigmoid_f32x4(float32x4_t x) {
  const float32x4_t one = vdupq_n_f32(1.0f);
  const float32x4_t e = exp_f32x4(vnegq_f32(x));  // fneg: sign-bit flip, like scalar -x
  const float32x4_t y = vdivq_f32(one, vaddq_f32(one, e));
  // NaN lanes return x unchanged, matching sigmoid_scalar (see its comment
  // on why silu needs this).
  const uint32x4_t ordered = vceqq_f32(x, x);
  return vbslq_f32(ordered, y, x);
}

// ---------------------------------------------------------------------------
// GEMM micro-kernel
// ---------------------------------------------------------------------------

// The reference chain for edge tiles — identical to the scalar backend.
void gemm_tile_ref(const float* a, int64_t lda, const float* bp, int64_t pc, float* c, int64_t ldc,
                   int64_t mr, int64_t nr) {
  float acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
    for (int64_t j = nr; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  for (int64_t p = 0; p < pc; ++p) {
    const float* b = bp + p * kNr;
    for (int64_t r = 0; r < mr; ++r) {
      const float av = a[r * lda + p];
      for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * b[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

void gemm_tile_neon(const float* a, int64_t lda, const float* bp, int64_t pc, float* c, int64_t ldc,
                    int64_t mr, int64_t nr) {
  if (mr != kMr || nr != kNr) {
    gemm_tile_ref(a, lda, bp, pc, c, ldc, mr, nr);
    return;
  }
  float32x4_t a0l = vld1q_f32(c), a0h = vld1q_f32(c + 4);
  float32x4_t a1l = vld1q_f32(c + ldc), a1h = vld1q_f32(c + ldc + 4);
  float32x4_t a2l = vld1q_f32(c + 2 * ldc), a2h = vld1q_f32(c + 2 * ldc + 4);
  float32x4_t a3l = vld1q_f32(c + 3 * ldc), a3h = vld1q_f32(c + 3 * ldc + 4);
  for (int64_t p = 0; p < pc; ++p) {
    const float32x4_t bl = vld1q_f32(bp + p * kNr);
    const float32x4_t bh = vld1q_f32(bp + p * kNr + 4);
    const float32x4_t v0 = vdupq_n_f32(a[p]);
    a0l = vaddq_f32(a0l, vmulq_f32(v0, bl));
    a0h = vaddq_f32(a0h, vmulq_f32(v0, bh));
    const float32x4_t v1 = vdupq_n_f32(a[lda + p]);
    a1l = vaddq_f32(a1l, vmulq_f32(v1, bl));
    a1h = vaddq_f32(a1h, vmulq_f32(v1, bh));
    const float32x4_t v2 = vdupq_n_f32(a[2 * lda + p]);
    a2l = vaddq_f32(a2l, vmulq_f32(v2, bl));
    a2h = vaddq_f32(a2h, vmulq_f32(v2, bh));
    const float32x4_t v3 = vdupq_n_f32(a[3 * lda + p]);
    a3l = vaddq_f32(a3l, vmulq_f32(v3, bl));
    a3h = vaddq_f32(a3h, vmulq_f32(v3, bh));
  }
  vst1q_f32(c, a0l);
  vst1q_f32(c + 4, a0h);
  vst1q_f32(c + ldc, a1l);
  vst1q_f32(c + ldc + 4, a1h);
  vst1q_f32(c + 2 * ldc, a2l);
  vst1q_f32(c + 2 * ldc + 4, a2h);
  vst1q_f32(c + 3 * ldc, a3l);
  vst1q_f32(c + 3 * ldc + 4, a3h);
}

// fast_math variant: vfma with even/odd depth chains.
void gemm_tile_fast_neon(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                         int64_t ldc, int64_t mr, int64_t nr) {
  if (mr != kMr || nr != kNr) {
    gemm_tile_ref(a, lda, bp, pc, c, ldc, mr, nr);
    return;
  }
  float32x4_t e[kMr][2], o[kMr][2];
  for (int64_t r = 0; r < kMr; ++r) {
    e[r][0] = vld1q_f32(c + r * ldc);
    e[r][1] = vld1q_f32(c + r * ldc + 4);
    o[r][0] = vdupq_n_f32(0.0f);
    o[r][1] = vdupq_n_f32(0.0f);
  }
  int64_t p = 0;
  for (; p + 2 <= pc; p += 2) {
    const float32x4_t b0l = vld1q_f32(bp + p * kNr), b0h = vld1q_f32(bp + p * kNr + 4);
    const float32x4_t b1l = vld1q_f32(bp + (p + 1) * kNr), b1h = vld1q_f32(bp + (p + 1) * kNr + 4);
    for (int64_t r = 0; r < kMr; ++r) {
      const float32x4_t v0 = vdupq_n_f32(a[r * lda + p]);
      const float32x4_t v1 = vdupq_n_f32(a[r * lda + p + 1]);
      e[r][0] = vfmaq_f32(e[r][0], v0, b0l);
      e[r][1] = vfmaq_f32(e[r][1], v0, b0h);
      o[r][0] = vfmaq_f32(o[r][0], v1, b1l);
      o[r][1] = vfmaq_f32(o[r][1], v1, b1h);
    }
  }
  if (p < pc) {
    const float32x4_t bl = vld1q_f32(bp + p * kNr), bh = vld1q_f32(bp + p * kNr + 4);
    for (int64_t r = 0; r < kMr; ++r) {
      const float32x4_t v = vdupq_n_f32(a[r * lda + p]);
      e[r][0] = vfmaq_f32(e[r][0], v, bl);
      e[r][1] = vfmaq_f32(e[r][1], v, bh);
    }
  }
  for (int64_t r = 0; r < kMr; ++r) {
    vst1q_f32(c + r * ldc, vaddq_f32(e[r][0], o[r][0]));
    vst1q_f32(c + r * ldc + 4, vaddq_f32(e[r][1], o[r][1]));
  }
}

// ---------------------------------------------------------------------------
// Fused dequant-dot: scalar integer decode per depth (exact), vector
// accumulation across the kNr lane (the FLOP side, which is what pays).
// ---------------------------------------------------------------------------

template <bool use_fma>
void dequant_dot_impl(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                      int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  // Padded lanes re-read row 0 (valid memory); their accumulator lanes are
  // never stored back.
  const uint8_t* r8[kNr];
  for (int64_t jr = 0; jr < kNr; ++jr) r8[jr] = jr < nr ? rows[jr] : rows[0];

  float32x4_t acc[kMr][2];
  float accs[kMr][kNr];  // scalar mirror for sub-width nr (reference chain)
  const bool full = (nr == kNr);
  if (full) {
    for (int64_t r = 0; r < mr; ++r) {
      acc[r][0] = vld1q_f32(c + r * ldc);
      acc[r][1] = vld1q_f32(c + r * ldc + 4);
    }
  } else {
    for (int64_t r = 0; r < mr; ++r) {
      for (int64_t jr = 0; jr < nr; ++jr) accs[r][jr] = c[r * ldc + jr];
    }
  }

  alignas(16) float qb[kNr];
  for (int64_t p = 0; p < pc; ++p) {
    const int64_t col = p0 + p;
    if (bits == 8) {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        qb[jr] = static_cast<float>(static_cast<int8_t>(r8[jr][col]));
      }
    } else {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        const uint8_t byte = r8[jr][col >> 1];
        const int32_t nib = (col & 1) ? (byte >> 4) : (byte & 0x0F);
        qb[jr] = static_cast<float>(nib - 8);
      }
    }
    if (full) {
      const float32x4_t ql = vld1q_f32(qb), qh = vld1q_f32(qb + 4);
      for (int64_t r = 0; r < mr; ++r) {
        const float32x4_t av = vdupq_n_f32(a[r * lda + p]);
        if (use_fma) {
          acc[r][0] = vfmaq_f32(acc[r][0], av, ql);
          acc[r][1] = vfmaq_f32(acc[r][1], av, qh);
        } else {
          acc[r][0] = vaddq_f32(acc[r][0], vmulq_f32(av, ql));
          acc[r][1] = vaddq_f32(acc[r][1], vmulq_f32(av, qh));
        }
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        const float av = a[r * lda + p];
        for (int64_t jr = 0; jr < nr; ++jr) accs[r][jr] += av * qb[jr];
      }
    }
  }

  if (full) {
    for (int64_t r = 0; r < mr; ++r) {
      vst1q_f32(c + r * ldc, acc[r][0]);
      vst1q_f32(c + r * ldc + 4, acc[r][1]);
    }
  } else {
    for (int64_t r = 0; r < mr; ++r) {
      for (int64_t jr = 0; jr < nr; ++jr) c[r * ldc + jr] = accs[r][jr];
    }
  }
}

void dequant_dot_neon(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                      int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  dequant_dot_impl<false>(a, lda, mr, rows, bits, p0, pc, c, ldc, nr);
}

void dequant_dot_fast_neon(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                           int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  dequant_dot_impl<true>(a, lda, mr, rows, bits, p0, pc, c, ldc, nr);
}

// ---------------------------------------------------------------------------
// Elementwise kernels. Tails run the scalar reference per element — the op
// sequence is identical by construction (exp_scalar/sigmoid_scalar are the
// shared definitions), so there is no scalar/vector numeric seam.
// ---------------------------------------------------------------------------

void exp_sub_neon(const float* x, float mx, float* y, int64_t n) {
  const float32x4_t mv = vdupq_n_f32(mx);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, exp_f32x4(vsubq_f32(vld1q_f32(x + i), mv)));
  }
  for (; i < n; ++i) y[i] = exp_scalar(x[i] - mx);
}

void scale_inplace_neon(float* y, float s, int64_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), sv));
  for (; i < n; ++i) y[i] *= s;
}

void silu_neon(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    vst1q_f32(y + i, vmulq_f32(v, sigmoid_f32x4(v)));
  }
  for (; i < n; ++i) {
    const float s = sigmoid_scalar(x[i]);
    y[i] = x[i] * s;
  }
}

void swiglu_neon(const float* g, const float* u, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t gv = vld1q_f32(g + i);
    const float32x4_t sv = vmulq_f32(gv, sigmoid_f32x4(gv));
    vst1q_f32(y + i, vmulq_f32(sv, vld1q_f32(u + i)));
  }
  for (; i < n; ++i) {
    const float s = sigmoid_scalar(g[i]);
    y[i] = (g[i] * s) * u[i];
  }
}

void add_neon(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) vst1q_f32(y + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

void rms_apply_neon(const float* x, const float* gain, float inv, float* y, int64_t n) {
  const float32x4_t iv = vdupq_n_f32(inv);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t gx = vmulq_f32(vld1q_f32(gain + i), vld1q_f32(x + i));
    vst1q_f32(y + i, vmulq_f32(gx, iv));
  }
  for (; i < n; ++i) y[i] = (gain[i] * x[i]) * inv;
}

// fast_math sum of squares: two f64 chains over fp32 pairs.
double sumsq_fast_neon(const float* x, int64_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const float64x2_t lo = vcvt_f64_f32(vget_low_f32(v));
    const float64x2_t hi = vcvt_f64_f32(vget_high_f32(v));
    acc0 = vfmaq_f64(acc0, lo, lo);
    acc1 = vfmaq_f64(acc1, hi, hi);
  }
  const float64x2_t acc = vaddq_f64(acc0, acc1);
  double ss = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  return ss;
}

constexpr KernelTable kNeonTable = {
    .isa = Isa::kNeon,
    .gemm_tile = gemm_tile_neon,
    .gemm_tile_fast = gemm_tile_fast_neon,
    .dequant_dot = dequant_dot_neon,
    .dequant_dot_fast = dequant_dot_fast_neon,
    .exp_sub = exp_sub_neon,
    .scale_inplace = scale_inplace_neon,
    .silu = silu_neon,
    .swiglu = swiglu_neon,
    .add = add_neon,
    .rms_apply = rms_apply_neon,
    .sumsq_fast = sumsq_fast_neon,
};

}  // namespace

const KernelTable* detail::neon_table() { return &kNeonTable; }

}  // namespace edgellm::simd

#else  // non-aarch64 build: backend absent

namespace edgellm::simd {
const KernelTable* detail::neon_table() { return nullptr; }
}  // namespace edgellm::simd

#endif
