#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace edgellm {

void check_arg(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    check_arg(d >= 0, "shape extents must be non-negative");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : shape_{}, data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  check_arg(static_cast<int64_t>(data_.size()) == shape_numel(shape_),
            "value count does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())}, std::vector<float>(values));
}

int64_t Tensor::dim(int64_t i) const {
  const int64_t n = ndim();
  if (i < 0) i += n;
  check_arg(i >= 0 && i < n, "dimension index out of range");
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t i) {
  check_arg(ndim() == 1, "at(i) requires a 1-d tensor");
  check_arg(i >= 0 && i < shape_[0], "index out of range");
  return data_[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const { return const_cast<Tensor*>(this)->at(i); }

int64_t Tensor::linear_index(int64_t i, int64_t j) const {
  check_arg(ndim() == 2, "at(i,j) requires a 2-d tensor");
  check_arg(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1], "index out of range");
  return i * shape_[1] + j;
}

int64_t Tensor::linear_index(int64_t i, int64_t j, int64_t k) const {
  check_arg(ndim() == 3, "at(i,j,k) requires a 3-d tensor");
  check_arg(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 && k < shape_[2],
            "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

float& Tensor::at(int64_t i, int64_t j) { return data_[static_cast<size_t>(linear_index(i, j))]; }
float Tensor::at(int64_t i, int64_t j) const {
  return data_[static_cast<size_t>(linear_index(i, j))];
}
float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  return data_[static_cast<size_t>(linear_index(i, j, k))];
}
float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return data_[static_cast<size_t>(linear_index(i, j, k))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  check_arg(shape_numel(new_shape) == numel(),
            "reshape element count mismatch: " + shape_to_string(shape_) + " -> " +
                shape_to_string(new_shape));
  Tensor out(std::move(new_shape), data_);
  return out;
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

float Tensor::item() const {
  check_arg(numel() == 1, "item() requires a single-element tensor");
  return data_[0];
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::to_string(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace edgellm
