// Shared deterministic thread-pool compute backend for tensor kernels.
//
// parallel_for partitions a half-open index range into contiguous chunks
// and runs them on a lazily-initialised global pool. Kernels only ever
// partition over *disjoint output rows/elements*, and every chunk performs
// the exact per-element operation sequence of the serial loop, so results
// are bitwise identical to single-threaded execution at any thread count —
// the determinism guarantee the test suite asserts (ctest -L parallel).
//
// Thread count resolution, in priority order:
//   1. set_num_threads(n)   — config knobs (PipelineConfig::compute_threads,
//                             serve::EngineConfig::compute_threads,
//                             nn::GenerateConfig::n_threads, CLI flags)
//   2. EDGELLM_NUM_THREADS  — environment, read once at startup
//   3. 1                    — serial fallback (zero-overhead: parallel_for
//                             invokes fn inline, no pool is ever started)
//
// Nested parallel_for calls (a kernel invoked from inside a pool worker or
// from the calling thread's own chunk) run serially on the calling thread,
// so composing parallel kernels can never deadlock or oversubscribe.
#pragma once

#include <cstdint>
#include <functional>

namespace edgellm::parallel {

/// Chunk body: processes the half-open sub-range [lo, hi).
using RangeFn = std::function<void(int64_t lo, int64_t hi)>;

/// Current global compute thread count (always >= 1).
int64_t num_threads();

/// Sets the global compute thread count. Values < 1 clamp to 1 (serial).
/// Safe to call from any thread; waits for an in-flight parallel_for to
/// drain before resizing the pool.
void set_num_threads(int64_t n);

/// Scoped override of the global thread count: sets `n` on construction
/// and restores the previous count on destruction. n <= 0 is a no-op
/// (leaves the current setting untouched, restores nothing). For
/// per-call knobs like nn::GenerateConfig::n_threads, where silently
/// persisting a global change past the call would surprise other users
/// of the pool (e.g. a serve engine in the same process).
class NumThreadsScope {
 public:
  explicit NumThreadsScope(int64_t n) : active_(n > 0), prev_(active_ ? num_threads() : 0) {
    if (active_) set_num_threads(n);
  }
  ~NumThreadsScope() {
    if (active_) set_num_threads(prev_);
  }
  NumThreadsScope(const NumThreadsScope&) = delete;
  NumThreadsScope& operator=(const NumThreadsScope&) = delete;

 private:
  bool active_;
  int64_t prev_;
};

/// Runs fn over [begin, end) split into contiguous chunks of at least
/// `grain` indices (grain < 1 clamps to 1). Serial when the range is
/// smaller than one grain, when num_threads() <= 1, or when called from
/// inside another parallel_for. Blocks until every chunk has finished.
/// fn must write only to locations owned by its own sub-range. If a
/// chunk body throws, remaining chunks still run; the first exception is
/// rethrown on the calling thread once every chunk has finished.
void parallel_for(int64_t begin, int64_t end, int64_t grain, const RangeFn& fn);

/// True while the calling thread is executing a parallel_for chunk
/// (pool worker or participating caller). Exposed for tests.
bool in_parallel_region();

}  // namespace edgellm::parallel
