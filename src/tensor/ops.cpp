#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace edgellm::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  check_arg(a.shape() == b.shape(), std::string(what) + ": shape mismatch " +
                                        shape_to_string(a.shape()) + " vs " +
                                        shape_to_string(b.shape()));
}

// Inner GEMM kernel on raw pointers: C[m,n] += A[m,k] * B[k,n], with C
// assumed zero-initialised by the caller. Loop order (m,k,n) keeps the B
// and C accesses sequential.
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, "matmul: operands must be 2-d");
  check_arg(a.dim(1) == b.dim(0), "matmul: inner dimensions differ");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  gemm_nn(a.raw(), b.raw(), c.raw(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, "matmul_tn: operands must be 2-d");
  check_arg(a.dim(0) == b.dim(0), "matmul_tn: inner dimensions differ");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  // C[i,j] = sum_p A[p,i] * B[p,j]
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a.raw() + p * m;
    const float* brow = b.raw() + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.raw() + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, "matmul_nt: operands must be 2-d");
  check_arg(a.dim(1) == b.dim(1), "matmul_nt: inner dimensions differ");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.raw() + i * k;
    float* crow = c.raw() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.raw() + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm: batch sizes differ");
  check_arg(a.dim(2) == b.dim(1), "bmm: inner dimensions differ");
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  for (int64_t t = 0; t < bs; ++t) {
    gemm_nn(a.raw() + t * m * k, b.raw() + t * k * n, c.raw() + t * m * n, m, k, n);
  }
  return c;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm_nt: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm_nt: batch sizes differ");
  check_arg(a.dim(2) == b.dim(2), "bmm_nt: inner dimensions differ");
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  for (int64_t t = 0; t < bs; ++t) {
    const float* ab = a.raw() + t * m * k;
    const float* bb = b.raw() + t * n * k;
    float* cb = c.raw() + t * m * n;
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ab[i * k + p] * bb[j * k + p];
        cb[i * n + j] = acc;
      }
    }
  }
  return c;
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm_tn: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm_tn: batch sizes differ");
  check_arg(a.dim(1) == b.dim(1), "bmm_tn: inner dimensions differ");
  const int64_t bs = a.dim(0), k = a.dim(1), m = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  for (int64_t t = 0; t < bs; ++t) {
    const float* ab = a.raw() + t * k * m;
    const float* bb = b.raw() + t * k * n;
    float* cb = c.raw() + t * m * n;
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t i = 0; i < m; ++i) {
        const float av = ab[p * m + i];
        if (av == 0.0f) continue;
        for (int64_t j = 0; j < n; ++j) cb[i * n + j] += av * bb[p * n + j];
      }
    }
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) c[i] = a[i] + b[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) c[i] = a[i] - b[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) c[i] = a[i] * b[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) c[i] = a[i] * s;
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += s * b[i];
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  check_arg(bias.ndim() == 1, "add_bias: bias must be 1-d");
  const int64_t n = bias.dim(0);
  check_arg(x.numel() % n == 0 && x.dim(-1) == n, "add_bias: last dim mismatch");
  Tensor c(x.shape());
  const int64_t rows = x.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < n; ++j) c[r * n + j] = x[r * n + j] + bias[j];
  }
  return c;
}

Tensor relu(const Tensor& x) {
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0 ? x[i] : 0.0f;
  return y;
}

Tensor relu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "relu_grad");
  Tensor g(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) g[i] = x[i] > 0 ? grad_out[i] : 0.0f;
  return g;
}

namespace {
// tanh-approximation GELU, matching the variant common in LLM codebases.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_scalar(float x) {
  const float u = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float gelu_grad_scalar(float x) {
  const float u = kGeluC * (x + 0.044715f * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}
}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) y[i] = gelu_scalar(x[i]);
  return y;
}

Tensor gelu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "gelu_grad");
  Tensor g(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) g[i] = grad_out[i] * gelu_grad_scalar(x[i]);
  return g;
}

Tensor silu(const Tensor& x) {
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float s = 1.0f / (1.0f + std::exp(-x[i]));
    y[i] = x[i] * s;
  }
  return y;
}

Tensor silu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "silu_grad");
  Tensor g(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float s = 1.0f / (1.0f + std::exp(-x[i]));
    g[i] = grad_out[i] * (s + x[i] * s * (1.0f - s));
  }
  return g;
}

Tensor softmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "softmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "softmax_lastdim: empty last dimension");
  Tensor y(x.shape());
  const int64_t rows = x.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * n;
    float* yr = y.raw() + r * n;
    float mx = xr[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      yr[j] = std::exp(xr[j] - mx);
      denom += yr[j];
    }
    const float inv = 1.0f / denom;
    for (int64_t j = 0; j < n; ++j) yr[j] *= inv;
  }
  return y;
}

Tensor log_softmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "log_softmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "log_softmax_lastdim: empty last dimension");
  Tensor y(x.shape());
  const int64_t rows = x.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * n;
    float* yr = y.raw() + r * n;
    float mx = xr[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) denom += std::exp(xr[j] - mx);
    const float lse = mx + std::log(denom);
    for (int64_t j = 0; j < n; ++j) yr[j] = xr[j] - lse;
  }
  return y;
}

Tensor softmax_lastdim_backward(const Tensor& y, const Tensor& grad_out) {
  check_same_shape(y, grad_out, "softmax_lastdim_backward");
  const int64_t n = y.dim(-1);
  Tensor g(y.shape());
  const int64_t rows = y.numel() / n;
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = y.raw() + r * n;
    const float* gr = grad_out.raw() + r * n;
    float* outr = g.raw() + r * n;
    float dot = 0.0f;
    for (int64_t j = 0; j < n; ++j) dot += yr[j] * gr[j];
    for (int64_t j = 0; j < n; ++j) outr[j] = yr[j] * (gr[j] - dot);
  }
  return g;
}

float sum(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) acc += x[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& x) {
  check_arg(x.numel() > 0, "mean: empty tensor");
  return sum(x) / static_cast<float>(x.numel());
}

float max_value(const Tensor& x) {
  check_arg(x.numel() > 0, "max_value: empty tensor");
  float mx = x[0];
  for (int64_t i = 1; i < x.numel(); ++i) mx = std::max(mx, x[i]);
  return mx;
}

float min_value(const Tensor& x) {
  check_arg(x.numel() > 0, "min_value: empty tensor");
  float mn = x[0];
  for (int64_t i = 1; i < x.numel(); ++i) mn = std::min(mn, x[i]);
  return mn;
}

float l2_norm(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) acc += static_cast<double>(x[i]) * x[i];
  return static_cast<float>(std::sqrt(acc));
}

float mse(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mse");
  check_arg(a.numel() > 0, "mse: empty tensor");
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

Tensor transpose2d(const Tensor& x) {
  check_arg(x.ndim() == 2, "transpose2d: needs a 2-d tensor");
  const int64_t m = x.dim(0), n = x.dim(1);
  Tensor y({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) y[j * m + i] = x[i * n + j];
  }
  return y;
}

std::vector<int64_t> argmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "argmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "argmax_lastdim: empty last dimension");
  const int64_t rows = x.numel() / n;
  std::vector<int64_t> out(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * n;
    int64_t best = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (xr[j] > xr[best]) best = j;
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

}  // namespace edgellm::ops
