#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace edgellm::ops {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  check_arg(a.shape() == b.shape(), std::string(what) + ": shape mismatch " +
                                        shape_to_string(a.shape()) + " vs " +
                                        shape_to_string(b.shape()));
}

// Accumulating kernels assume their output starts at exactly zero; a future
// pooled/uninitialised allocation path handing them dirty memory would
// silently corrupt results. Debug builds assert the contract.
#ifndef NDEBUG
void debug_assert_zeroed(const Tensor& c, const char* what) {
  for (int64_t i = 0; i < c.numel(); ++i) {
    check_arg(c[i] == 0.0f, std::string(what) + ": output not zero-initialised");
  }
}
#else
void debug_assert_zeroed(const Tensor&, const char*) {}
#endif

// Chunk sizing: aim for at least this many scalar multiply-adds per chunk
// so fan-out overhead stays negligible. Chunk boundaries never affect
// results (kernels partition over disjoint output rows), only scheduling.
constexpr int64_t kGrainOps = 16384;

int64_t row_grain(int64_t ops_per_row) {
  return std::max<int64_t>(1, kGrainOps / std::max<int64_t>(1, ops_per_row));
}

// Inner GEMM kernel on raw pointers over an output-row range:
// C[i,n] += A[i,k] * B[k,n] for i in [lo, hi), with C assumed
// zero-initialised by the caller. Loop order (i,p,j) keeps the B and C
// accesses sequential and fixes the per-element accumulation order (over
// ascending p), so any row partition is bitwise identical to the serial
// pass. `skip_zero_a` enables the sparsity fast path that skips a[i,p] ==
// 0 — see matmul_skipzero for the numerics contract.
template <bool skip_zero_a>
void gemm_nn_rows(const float* a, const float* b, float* c, int64_t lo, int64_t hi, int64_t k,
                  int64_t n) {
  for (int64_t i = lo; i < hi; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (skip_zero_a && av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

template <bool skip_zero_a>
Tensor matmul_impl(const Tensor& a, const Tensor& b, const char* what) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, std::string(what) + ": operands must be 2-d");
  check_arg(a.dim(1) == b.dim(0), std::string(what) + ": inner dimensions differ");
  const obs::KernelSpan span("kernel/matmul");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  debug_assert_zeroed(c, what);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    gemm_nn_rows<skip_zero_a>(pa, pb, pc, lo, hi, k, n);
  });
  return c;
}

template <bool skip_zero_a>
Tensor bmm_tn_impl(const Tensor& a, const Tensor& b, const char* what) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, std::string(what) + ": operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), std::string(what) + ": batch sizes differ");
  check_arg(a.dim(1) == b.dim(1), std::string(what) + ": inner dimensions differ");
  const obs::KernelSpan span("kernel/bmm");
  const int64_t bs = a.dim(0), k = a.dim(1), m = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  debug_assert_zeroed(c, what);
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Partition over flattened output rows (t, i); each row accumulates over
  // ascending p exactly as the serial (p, i, j) loop did per element.
  parallel::parallel_for(0, bs * m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t t = r / m, i = r % m;
      const float* ab = pa + t * k * m;
      const float* bb = pb + t * k * n;
      float* crow = pc + r * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ab[p * m + i];
        if (skip_zero_a && av == 0.0f) continue;
        const float* brow = bb + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

// Elementwise map over a flat range: y[i] = f(x[i]).
template <typename F>
Tensor map_elems(const Tensor& x, F f) {
  Tensor y(x.shape());
  const float* px = x.raw();
  float* py = y.raw();
  parallel::parallel_for(0, x.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] = f(px[i]);
  });
  return y;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  // Blocked dispatch is invisible to results: gemm.hpp's kernels are bitwise
  // identical to the naive loops (see the contract there), so only speed
  // depends on the shape cut-over and the registered schedule.
  if (a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0) &&
      gemm::use_blocked(gemm::GemmKind::kNN, a.dim(0), a.dim(1), b.dim(1))) {
    const obs::KernelSpan span("kernel/matmul");
    return gemm::matmul_blocked(
        a, b, gemm::blocking_for(gemm::GemmKind::kNN, a.dim(0), a.dim(1), b.dim(1)));
  }
  return matmul_impl<false>(a, b, "matmul");
}

Tensor matmul_skipzero(const Tensor& a, const Tensor& b) {
  return matmul_impl<true>(a, b, "matmul_skipzero");
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, "matmul_tn: operands must be 2-d");
  check_arg(a.dim(0) == b.dim(0), "matmul_tn: inner dimensions differ");
  const obs::KernelSpan span("kernel/matmul");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  debug_assert_zeroed(c, "matmul_tn");
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // C[i,j] = sum_p A[p,i] * B[p,j], accumulated over ascending p per output
  // element — the same order at any row partition.
  parallel::parallel_for(0, m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* crow = pc + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p * m + i];
        const float* brow = pb + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 2 && b.ndim() == 2, "matmul_nt: operands must be 2-d");
  check_arg(a.dim(1) == b.dim(1), "matmul_nt: inner dimensions differ");
  const obs::KernelSpan span("kernel/matmul");
  if (gemm::use_blocked(gemm::GemmKind::kNT, a.dim(0), a.dim(1), b.dim(0))) {
    return gemm::matmul_nt_blocked(
        a, b, gemm::blocking_for(gemm::GemmKind::kNT, a.dim(0), a.dim(1), b.dim(0)));
  }
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm: batch sizes differ");
  check_arg(a.dim(2) == b.dim(1), "bmm: inner dimensions differ");
  const obs::KernelSpan span("kernel/bmm");
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  debug_assert_zeroed(c, "bmm");
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // Partition over flattened output rows (t, i) across the whole batch.
  parallel::parallel_for(0, bs * m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t t = r / m, i = r % m;
      gemm_nn_rows<false>(pa + t * m * k, pb + t * k * n, pc + t * m * n, i, i + 1, k, n);
    }
  });
  return c;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check_arg(a.ndim() == 3 && b.ndim() == 3, "bmm_nt: operands must be 3-d");
  check_arg(a.dim(0) == b.dim(0), "bmm_nt: batch sizes differ");
  check_arg(a.dim(2) == b.dim(2), "bmm_nt: inner dimensions differ");
  const obs::KernelSpan span("kernel/bmm");
  if (gemm::use_blocked(gemm::GemmKind::kNT, a.dim(1), a.dim(2), b.dim(1))) {
    return gemm::bmm_nt_blocked(
        a, b, gemm::blocking_for(gemm::GemmKind::kNT, a.dim(1), a.dim(2), b.dim(1)));
  }
  const int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, bs * m, row_grain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int64_t t = r / m, i = r % m;
      const float* ab = pa + t * m * k;
      const float* bb = pb + t * n * k;
      float* crow = pc + r * n;
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ab[i * k + p] * bb[j * k + p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

Tensor bmm_tn(const Tensor& a, const Tensor& b) {
  return bmm_tn_impl<false>(a, b, "bmm_tn");
}

Tensor bmm_tn_skipzero(const Tensor& a, const Tensor& b) {
  return bmm_tn_impl<true>(a, b, "bmm_tn_skipzero");
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  const auto add_kernel = simd::kernels().add;
  parallel::parallel_for(0, a.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    add_kernel(pa + lo, pb + lo, pc + lo, hi - lo);
  });
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, a.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] = pa[i] - pb[i];
  });
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel::parallel_for(0, a.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] = pa[i] * pb[i];
  });
  return c;
}

Tensor scale(const Tensor& a, float s) {
  return map_elems(a, [s](float v) { return v * s; });
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  parallel::parallel_for(0, a.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  float* pa = a.raw();
  const float* pb = b.raw();
  parallel::parallel_for(0, a.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += s * pb[i];
  });
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  check_arg(bias.ndim() == 1, "add_bias: bias must be 1-d");
  const int64_t n = bias.dim(0);
  check_arg(x.numel() % n == 0 && x.dim(-1) == n, "add_bias: last dim mismatch");
  Tensor c(x.shape());
  const int64_t rows = x.numel() / n;
  const float* px = x.raw();
  const float* pbias = bias.raw();
  float* pc = c.raw();
  const auto add_kernel = simd::kernels().add;
  parallel::parallel_for(0, rows, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) add_kernel(px + r * n, pbias, pc + r * n, n);
  });
  return c;
}

Tensor relu(const Tensor& x) {
  return map_elems(x, [](float v) { return v > 0 ? v : 0.0f; });
}

Tensor relu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "relu_grad");
  Tensor g(x.shape());
  const float* px = x.raw();
  const float* pg = grad_out.raw();
  float* po = g.raw();
  parallel::parallel_for(0, x.numel(), kGrainOps, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = px[i] > 0 ? pg[i] : 0.0f;
  });
  return g;
}

namespace {
// tanh-approximation GELU, matching the variant common in LLM codebases.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_scalar(float x) {
  const float u = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float gelu_grad_scalar(float x) {
  const float u = kGeluC * (x + 0.044715f * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

// Transcendental elementwise work gets a finer grain than fused adds.
constexpr int64_t kTranscendentalGrain = 2048;
}  // namespace

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  const float* px = x.raw();
  float* py = y.raw();
  parallel::parallel_for(0, x.numel(), kTranscendentalGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) py[i] = gelu_scalar(px[i]);
  });
  return y;
}

Tensor gelu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "gelu_grad");
  Tensor g(x.shape());
  const float* px = x.raw();
  const float* pg = grad_out.raw();
  float* po = g.raw();
  parallel::parallel_for(0, x.numel(), kTranscendentalGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pg[i] * gelu_grad_scalar(px[i]);
  });
  return g;
}

Tensor silu(const Tensor& x) {
  Tensor y(x.shape());
  const float* px = x.raw();
  float* py = y.raw();
  const auto silu_kernel = simd::kernels().silu;
  parallel::parallel_for(0, x.numel(), kTranscendentalGrain, [=](int64_t lo, int64_t hi) {
    silu_kernel(px + lo, py + lo, hi - lo);
  });
  return y;
}

Tensor silu_grad(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "silu_grad");
  Tensor g(x.shape());
  const float* px = x.raw();
  const float* pg = grad_out.raw();
  float* po = g.raw();
  // simd::sigmoid_scalar keeps the gradient consistent with the forward
  // kernel's sigmoid (both use the shared polynomial exp).
  parallel::parallel_for(0, x.numel(), kTranscendentalGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float s = simd::sigmoid_scalar(px[i]);
      po[i] = pg[i] * (s + px[i] * s * (1.0f - s));
    }
  });
  return g;
}

Tensor swiglu(const Tensor& gate, const Tensor& up) {
  check_same_shape(gate, up, "swiglu");
  Tensor y(gate.shape());
  const float* pg = gate.raw();
  const float* pu = up.raw();
  float* py = y.raw();
  const auto swiglu_kernel = simd::kernels().swiglu;
  parallel::parallel_for(0, gate.numel(), kTranscendentalGrain, [=](int64_t lo, int64_t hi) {
    swiglu_kernel(pg + lo, pu + lo, py + lo, hi - lo);
  });
  return y;
}

Tensor softmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "softmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "softmax_lastdim: empty last dimension");
  const obs::KernelSpan span("kernel/softmax");
  Tensor y(x.shape());
  const int64_t rows = x.numel() / n;
  const float* px = x.raw();
  float* py = y.raw();
  const simd::KernelTable& kt = simd::kernels();
  const auto exp_sub = kt.exp_sub;
  const auto scale_inplace = kt.scale_inplace;
  parallel::parallel_for(0, rows, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float* yr = py + r * n;
      float mx = xr[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
      exp_sub(xr, mx, yr, n);
      // The denominator stays a scalar ascending chain so normalisation is
      // identical at every dispatch choice.
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) denom += yr[j];
      scale_inplace(yr, 1.0f / denom, n);
    }
  });
  return y;
}

Tensor log_softmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "log_softmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "log_softmax_lastdim: empty last dimension");
  const obs::KernelSpan span("kernel/softmax");
  Tensor y(x.shape());
  const int64_t rows = x.numel() / n;
  const float* px = x.raw();
  float* py = y.raw();
  parallel::parallel_for(0, rows, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      float* yr = py + r * n;
      float mx = xr[0];
      for (int64_t j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < n; ++j) denom += std::exp(xr[j] - mx);
      const float lse = mx + std::log(denom);
      for (int64_t j = 0; j < n; ++j) yr[j] = xr[j] - lse;
    }
  });
  return y;
}

Tensor softmax_lastdim_backward(const Tensor& y, const Tensor& grad_out) {
  check_same_shape(y, grad_out, "softmax_lastdim_backward");
  const int64_t n = y.dim(-1);
  Tensor g(y.shape());
  const int64_t rows = y.numel() / n;
  const float* py = y.raw();
  const float* pg = grad_out.raw();
  float* po = g.raw();
  parallel::parallel_for(0, rows, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* yr = py + r * n;
      const float* gr = pg + r * n;
      float* outr = po + r * n;
      float dot = 0.0f;
      for (int64_t j = 0; j < n; ++j) dot += yr[j] * gr[j];
      for (int64_t j = 0; j < n; ++j) outr[j] = yr[j] * (gr[j] - dot);
    }
  });
  return g;
}

Tensor rms_norm_lastdim(const Tensor& x, const Tensor& gain, float eps, std::vector<float>* inv_out) {
  check_arg(x.ndim() >= 1, "rms_norm_lastdim: needs at least 1-d");
  check_arg(gain.ndim() == 1, "rms_norm_lastdim: gain must be 1-d");
  const int64_t n = gain.dim(0);
  check_arg(x.dim(-1) == n, "rms_norm_lastdim: last dim mismatch");
  check_arg(eps > 0.0f, "rms_norm_lastdim: eps must be positive");
  Tensor y(x.shape());
  const int64_t rows = x.numel() / n;
  if (inv_out) inv_out->resize(static_cast<size_t>(rows));
  float* pinv = inv_out ? inv_out->data() : nullptr;
  const float* px = x.raw();
  const float* pgain = gain.raw();
  float* py = y.raw();
  const simd::KernelTable& kt = simd::kernels();
  const auto rms_apply = kt.rms_apply;
  // The sum-of-squares reduction stays a scalar ascending double chain by
  // default (the bitwise reference); fast_math swaps in the vector
  // multi-accumulator reduction, which regroups the additions.
  const auto sumsq_fast = gemm::fast_math_enabled() ? kt.sumsq_fast : nullptr;
  parallel::parallel_for(0, rows, row_grain(2 * n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      double ss;
      if (sumsq_fast) {
        ss = sumsq_fast(xr, n);
      } else {
        ss = 0.0;
        for (int64_t d = 0; d < n; ++d) {
          const double v = xr[d];
          ss += v * v;
        }
      }
      const float inv = 1.0f / std::sqrt(static_cast<float>(ss / static_cast<double>(n)) + eps);
      if (pinv) pinv[r] = inv;
      rms_apply(xr, pgain, inv, py + r * n, n);
    }
  });
  return y;
}

// Scalar reductions stay serial: a parallel tree reduction would change
// the floating-point accumulation order and break the backend's
// bitwise-determinism guarantee for marginal gain (they are O(n), not
// O(n^2) like the matmuls).
float sum(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) acc += x[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& x) {
  check_arg(x.numel() > 0, "mean: empty tensor");
  return sum(x) / static_cast<float>(x.numel());
}

float max_value(const Tensor& x) {
  check_arg(x.numel() > 0, "max_value: empty tensor");
  float mx = x[0];
  for (int64_t i = 1; i < x.numel(); ++i) mx = std::max(mx, x[i]);
  return mx;
}

float min_value(const Tensor& x) {
  check_arg(x.numel() > 0, "min_value: empty tensor");
  float mn = x[0];
  for (int64_t i = 1; i < x.numel(); ++i) mn = std::min(mn, x[i]);
  return mn;
}

float l2_norm(const Tensor& x) {
  double acc = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) acc += static_cast<double>(x[i]) * x[i];
  return static_cast<float>(std::sqrt(acc));
}

float mse(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mse");
  check_arg(a.numel() > 0, "mse: empty tensor");
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

Tensor transpose2d(const Tensor& x) {
  check_arg(x.ndim() == 2, "transpose2d: needs a 2-d tensor");
  const int64_t m = x.dim(0), n = x.dim(1);
  Tensor y({n, m});
  const float* px = x.raw();
  float* py = y.raw();
  parallel::parallel_for(0, m, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < n; ++j) py[j * m + i] = px[i * n + j];
    }
  });
  return y;
}

std::vector<int64_t> argmax_lastdim(const Tensor& x) {
  check_arg(x.ndim() >= 1, "argmax_lastdim: needs at least 1-d");
  const int64_t n = x.dim(-1);
  check_arg(n > 0, "argmax_lastdim: empty last dimension");
  const int64_t rows = x.numel() / n;
  std::vector<int64_t> out(static_cast<size_t>(rows));
  const float* px = x.raw();
  int64_t* po = out.data();
  parallel::parallel_for(0, rows, row_grain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* xr = px + r * n;
      int64_t best = 0;
      for (int64_t j = 1; j < n; ++j) {
        if (xr[j] > xr[best]) best = j;
      }
      po[r] = best;
    }
  });
  return out;
}

}  // namespace edgellm::ops
