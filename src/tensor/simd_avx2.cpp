// AVX2 backend for the simd:: kernel table. This translation unit is the
// only one compiled with -mavx2 -mfma (plus -ffp-contract=off, like the
// whole project), so AVX2 instructions cannot leak into code that runs on
// non-AVX2 hosts; dispatch guarantees these kernels execute only after
// __builtin_cpu_supports("avx2")/("fma") passed.
//
// Determinism: the default kernels vectorize across the kNr output lane —
// one __m256 per row of the accumulator grid, each lane an independent
// ascending-p chain — with explicit mul-then-add intrinsics (never FMA),
// so every output element performs exactly the scalar reference's op
// sequence. The *_fast kernels use FMA and a second accumulator chain and
// are only reached through the opt-in fast_math path.
#include "tensor/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

#include "tensor/simd_expf.hpp"

namespace edgellm::simd {
namespace {

constexpr int64_t kMr = 4;
constexpr int64_t kNr = 8;

// Mask with the low `w` lanes active (0 < w <= 8), for tail loads/stores.
inline __m256i tail_mask(int64_t w) {
  alignas(32) static const int32_t kSrc[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                               0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kSrc + (8 - w)));
}

// ---------------------------------------------------------------------------
// Vector exp / sigmoid — the exp_scalar op sequence, lane-parallel
// ---------------------------------------------------------------------------

inline __m256 exp_ps(__m256 x) {
  using namespace detail;
  const __m256 one = _mm256_set1_ps(1.0f);
  // Core on every lane; out-of-range lanes produce garbage that the
  // saturation/NaN selects below overwrite, mirroring the scalar branches
  // (NaN checked first in scalar => blended last here).
  __m256 n = _mm256_round_ps(_mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
                             _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(kLn2Hi)));
  r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(kLn2Lo)));
  const __m256 z = _mm256_mul_ps(r, r);
  __m256 p = _mm256_set1_ps(kExpC0);
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC1));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC2));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC3));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC4));
  p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC5));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), r);
  p = _mm256_add_ps(p, one);
  const __m256i e = _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
  const __m256 two_n = _mm256_castsi256_ps(_mm256_slli_epi32(e, 23));
  __m256 y = _mm256_mul_ps(p, two_n);
  const __m256 inf = _mm256_set1_ps(__builtin_inff());
  y = _mm256_blendv_ps(y, inf, _mm256_cmp_ps(x, _mm256_set1_ps(kExpHi), _CMP_GT_OQ));
  y = _mm256_blendv_ps(y, _mm256_setzero_ps(), _mm256_cmp_ps(x, _mm256_set1_ps(kExpLo), _CMP_LT_OQ));
  y = _mm256_blendv_ps(y, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return y;
}

inline __m256 sigmoid_ps(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  // -x as a sign-bit flip, exactly the scalar negation's codegen.
  const __m256 e = exp_ps(_mm256_xor_ps(x, _mm256_set1_ps(-0.0f)));
  const __m256 y = _mm256_div_ps(one, _mm256_add_ps(one, e));
  // NaN lanes return x unchanged, matching sigmoid_scalar (see its comment
  // on why silu needs this).
  return _mm256_blendv_ps(y, x, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
}

// ---------------------------------------------------------------------------
// GEMM micro-kernel
// ---------------------------------------------------------------------------

void gemm_tile_avx2(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                    int64_t ldc, int64_t mr, int64_t nr) {
  if (mr == kMr && nr == kNr) {
    // Hot interior tile: 4 row accumulators, full-width unmasked C I/O,
    // aligned panel loads (panels are kPanelAlign-based at 8-float steps).
    __m256 acc0 = _mm256_loadu_ps(c);
    __m256 acc1 = _mm256_loadu_ps(c + ldc);
    __m256 acc2 = _mm256_loadu_ps(c + 2 * ldc);
    __m256 acc3 = _mm256_loadu_ps(c + 3 * ldc);
    for (int64_t p = 0; p < pc; ++p) {
      const __m256 b = _mm256_load_ps(bp + p * kNr);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_broadcast_ss(a + p), b));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_broadcast_ss(a + lda + p), b));
      acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_broadcast_ss(a + 2 * lda + p), b));
      acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_broadcast_ss(a + 3 * lda + p), b));
    }
    _mm256_storeu_ps(c, acc0);
    _mm256_storeu_ps(c + ldc, acc1);
    _mm256_storeu_ps(c + 2 * ldc, acc2);
    _mm256_storeu_ps(c + 3 * ldc, acc3);
    return;
  }
  // Edge tiles: masked C I/O; padded panel lanes are zero, so inactive
  // accumulator lanes stay zero and the maskstore never touches them.
  const __m256i m = tail_mask(nr);
  __m256 acc[kMr];
  for (int64_t r = 0; r < mr; ++r) acc[r] = _mm256_maskload_ps(c + r * ldc, m);
  for (int64_t p = 0; p < pc; ++p) {
    const __m256 b = _mm256_load_ps(bp + p * kNr);
    for (int64_t r = 0; r < mr; ++r) {
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_broadcast_ss(a + r * lda + p), b));
    }
  }
  for (int64_t r = 0; r < mr; ++r) _mm256_maskstore_ps(c + r * ldc, m, acc[r]);
}

// fast_math variant: FMA plus a second accumulator chain over the k lane
// (even/odd p interleave), combined once at the end. Not bitwise with the
// reference — reached only through the opt-in fast_math path.
void gemm_tile_fast_avx2(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                         int64_t ldc, int64_t mr, int64_t nr) {
  const __m256i m = tail_mask(nr);
  const bool full = (nr == kNr);
  __m256 acc0[kMr], acc1[kMr];
  for (int64_t r = 0; r < mr; ++r) {
    acc0[r] = full ? _mm256_loadu_ps(c + r * ldc) : _mm256_maskload_ps(c + r * ldc, m);
    acc1[r] = _mm256_setzero_ps();
  }
  int64_t p = 0;
  for (; p + 2 <= pc; p += 2) {
    const __m256 b0 = _mm256_load_ps(bp + p * kNr);
    const __m256 b1 = _mm256_load_ps(bp + (p + 1) * kNr);
    for (int64_t r = 0; r < mr; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p + 1), b1, acc1[r]);
    }
  }
  if (p < pc) {
    const __m256 b = _mm256_load_ps(bp + p * kNr);
    for (int64_t r = 0; r < mr; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), b, acc0[r]);
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    const __m256 s = _mm256_add_ps(acc0[r], acc1[r]);
    if (full) {
      _mm256_storeu_ps(c + r * ldc, s);
    } else {
      _mm256_maskstore_ps(c + r * ldc, m, s);
    }
  }
}

// ---------------------------------------------------------------------------
// Fused dequant-dot
// ---------------------------------------------------------------------------

// 8x8 in-register float transpose (unpack / shuffle / permute2f128).
inline void transpose8(__m256 v[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(v[0], v[1]);
  const __m256 t1 = _mm256_unpackhi_ps(v[0], v[1]);
  const __m256 t2 = _mm256_unpacklo_ps(v[2], v[3]);
  const __m256 t3 = _mm256_unpackhi_ps(v[2], v[3]);
  const __m256 t4 = _mm256_unpacklo_ps(v[4], v[5]);
  const __m256 t5 = _mm256_unpackhi_ps(v[4], v[5]);
  const __m256 t6 = _mm256_unpacklo_ps(v[6], v[7]);
  const __m256 t7 = _mm256_unpackhi_ps(v[6], v[7]);
  const __m256 s0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 s6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 s7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  v[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  v[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  v[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  v[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  v[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  v[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  v[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  v[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
}

// Eight int8 values at `src` -> fp32 vector (exact for |q| <= 127).
inline __m256 int8_load8(const uint8_t* src) {
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

// Four packed int4 bytes at `src` (even column alignment) -> the eight
// nibble values in column order, offset-decoded to [-8, 7], as fp32.
inline __m256 int4_expand8(const uint8_t* src) {
  uint32_t u;
  std::memcpy(&u, src, sizeof(u));
  const __m128i v = _mm_cvtsi32_si128(static_cast<int>(u));
  const __m128i lo = _mm_and_si128(v, _mm_set1_epi8(0x0F));
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), _mm_set1_epi8(0x0F));
  // Interleave low/high nibbles into column order, then apply the -8 offset.
  const __m128i q = _mm_sub_epi8(_mm_unpacklo_epi8(lo, hi), _mm_set1_epi8(8));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
}

void dequant_dot_avx2(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                      int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  // Padded lanes re-read row 0: their accumulator lanes compute garbage
  // that the masked store never writes, and row 0 is always a valid read.
  const uint8_t* r8[kNr];
  for (int64_t jr = 0; jr < kNr; ++jr) r8[jr] = jr < nr ? rows[jr] : rows[0];

  const bool full = (nr == kNr);
  const __m256i m = tail_mask(nr);
  __m256 acc[kMr];
  for (int64_t r = 0; r < mr; ++r) {
    acc[r] = full ? _mm256_loadu_ps(c + r * ldc) : _mm256_maskload_ps(c + r * ldc, m);
  }

  // One depth step with scalar decode (head realignment for odd int4 p0,
  // and the sub-8 tail): the accumulation itself stays vector mul+add, so
  // the per-element chain is unchanged.
  const auto step_one = [&](int64_t p) {
    alignas(32) float qb[kNr];
    const int64_t col = p0 + p;
    if (bits == 8) {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        qb[jr] = static_cast<float>(static_cast<int8_t>(r8[jr][col]));
      }
    } else {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        const uint8_t byte = r8[jr][col >> 1];
        const int32_t nib = (col & 1) ? (byte >> 4) : (byte & 0x0F);
        qb[jr] = static_cast<float>(nib - 8);
      }
    }
    const __m256 q = _mm256_load_ps(qb);
    for (int64_t r = 0; r < mr; ++r) {
      acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_broadcast_ss(a + r * lda + p), q));
    }
  };

  int64_t p = 0;
  if (bits == 4 && ((p0 & 1) != 0) && p < pc) {
    step_one(p);
    ++p;
  }
  // Body: decode an 8x8 block (8 weight rows x 8 depths) into registers,
  // transpose to depth-major, accumulate depth by depth in ascending order.
  for (; p + 8 <= pc; p += 8) {
    __m256 q[kNr];
    if (bits == 8) {
      for (int64_t jr = 0; jr < kNr; ++jr) q[jr] = int8_load8(r8[jr] + (p0 + p));
    } else {
      for (int64_t jr = 0; jr < kNr; ++jr) q[jr] = int4_expand8(r8[jr] + ((p0 + p) >> 1));
    }
    transpose8(q);
    for (int64_t t = 0; t < 8; ++t) {
      for (int64_t r = 0; r < mr; ++r) {
        acc[r] =
            _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_broadcast_ss(a + r * lda + p + t), q[t]));
      }
    }
  }
  for (; p < pc; ++p) step_one(p);

  for (int64_t r = 0; r < mr; ++r) {
    if (full) {
      _mm256_storeu_ps(c + r * ldc, acc[r]);
    } else {
      _mm256_maskstore_ps(c + r * ldc, m, acc[r]);
    }
  }
}

// fast_math variant: FMA with even/odd depth chains inside each 8-block.
void dequant_dot_fast_avx2(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                           int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  const uint8_t* r8[kNr];
  for (int64_t jr = 0; jr < kNr; ++jr) r8[jr] = jr < nr ? rows[jr] : rows[0];

  const bool full = (nr == kNr);
  const __m256i m = tail_mask(nr);
  __m256 acc0[kMr], acc1[kMr];
  for (int64_t r = 0; r < mr; ++r) {
    acc0[r] = full ? _mm256_loadu_ps(c + r * ldc) : _mm256_maskload_ps(c + r * ldc, m);
    acc1[r] = _mm256_setzero_ps();
  }

  const auto step_one = [&](int64_t p) {
    alignas(32) float qb[kNr];
    const int64_t col = p0 + p;
    if (bits == 8) {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        qb[jr] = static_cast<float>(static_cast<int8_t>(r8[jr][col]));
      }
    } else {
      for (int64_t jr = 0; jr < kNr; ++jr) {
        const uint8_t byte = r8[jr][col >> 1];
        const int32_t nib = (col & 1) ? (byte >> 4) : (byte & 0x0F);
        qb[jr] = static_cast<float>(nib - 8);
      }
    }
    const __m256 q = _mm256_load_ps(qb);
    for (int64_t r = 0; r < mr; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p), q, acc0[r]);
    }
  };

  int64_t p = 0;
  if (bits == 4 && ((p0 & 1) != 0) && p < pc) {
    step_one(p);
    ++p;
  }
  for (; p + 8 <= pc; p += 8) {
    __m256 q[kNr];
    if (bits == 8) {
      for (int64_t jr = 0; jr < kNr; ++jr) q[jr] = int8_load8(r8[jr] + (p0 + p));
    } else {
      for (int64_t jr = 0; jr < kNr; ++jr) q[jr] = int4_expand8(r8[jr] + ((p0 + p) >> 1));
    }
    transpose8(q);
    for (int64_t t = 0; t < 8; t += 2) {
      for (int64_t r = 0; r < mr; ++r) {
        acc0[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p + t), q[t], acc0[r]);
        acc1[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + r * lda + p + t + 1), q[t + 1], acc1[r]);
      }
    }
  }
  for (; p < pc; ++p) step_one(p);

  for (int64_t r = 0; r < mr; ++r) {
    const __m256 s = _mm256_add_ps(acc0[r], acc1[r]);
    if (full) {
      _mm256_storeu_ps(c + r * ldc, s);
    } else {
      _mm256_maskstore_ps(c + r * ldc, m, s);
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise kernels (masked vector tails keep every element on the same
// vector op sequence — no scalar/vector seam inside one array)
// ---------------------------------------------------------------------------

void exp_sub_avx2(const float* x, float mx, float* y, int64_t n) {
  const __m256 mv = _mm256_set1_ps(mx);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, exp_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), mv)));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    const __m256 v = exp_ps(_mm256_sub_ps(_mm256_maskload_ps(x + i, m), mv));
    _mm256_maskstore_ps(y + i, m, v);
  }
}

void scale_inplace_avx2(float* y, float s, int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), sv));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    _mm256_maskstore_ps(y + i, m, _mm256_mul_ps(_mm256_maskload_ps(y + i, m), sv));
  }
}

void silu_avx2(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_mul_ps(v, sigmoid_ps(v)));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    const __m256 v = _mm256_maskload_ps(x + i, m);
    _mm256_maskstore_ps(y + i, m, _mm256_mul_ps(v, sigmoid_ps(v)));
  }
}

void swiglu_avx2(const float* g, const float* u, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gv = _mm256_loadu_ps(g + i);
    const __m256 sv = _mm256_mul_ps(gv, sigmoid_ps(gv));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(sv, _mm256_loadu_ps(u + i)));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    const __m256 gv = _mm256_maskload_ps(g + i, m);
    const __m256 sv = _mm256_mul_ps(gv, sigmoid_ps(gv));
    _mm256_maskstore_ps(y + i, m, _mm256_mul_ps(sv, _mm256_maskload_ps(u + i, m)));
  }
}

void add_avx2(const float* a, const float* b, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    _mm256_maskstore_ps(y + i, m,
                        _mm256_add_ps(_mm256_maskload_ps(a + i, m), _mm256_maskload_ps(b + i, m)));
  }
}

void rms_apply_avx2(const float* x, const float* gain, float inv, float* y, int64_t n) {
  const __m256 iv = _mm256_set1_ps(inv);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gx = _mm256_mul_ps(_mm256_loadu_ps(gain + i), _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(gx, iv));
  }
  if (i < n) {
    const __m256i m = tail_mask(n - i);
    const __m256 gx = _mm256_mul_ps(_mm256_maskload_ps(gain + i, m), _mm256_maskload_ps(x + i, m));
    _mm256_maskstore_ps(y + i, m, _mm256_mul_ps(gx, iv));
  }
}

// fast_math sum of squares: two f64 accumulator chains over fp32 pairs.
double sumsq_fast_avx2(const float* x, int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double ss = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  return ss;
}

constexpr KernelTable kAvx2Table = {
    .isa = Isa::kAvx2,
    .gemm_tile = gemm_tile_avx2,
    .gemm_tile_fast = gemm_tile_fast_avx2,
    .dequant_dot = dequant_dot_avx2,
    .dequant_dot_fast = dequant_dot_fast_avx2,
    .exp_sub = exp_sub_avx2,
    .scale_inplace = scale_inplace_avx2,
    .silu = silu_avx2,
    .swiglu = swiglu_avx2,
    .add = add_avx2,
    .rms_apply = rms_apply_avx2,
    .sumsq_fast = sumsq_fast_avx2,
};

}  // namespace

const KernelTable* detail::avx2_table() { return &kAvx2Table; }

}  // namespace edgellm::simd

#else  // non-x86 build: backend absent

namespace edgellm::simd {
const KernelTable* detail::avx2_table() { return nullptr; }
}  // namespace edgellm::simd

#endif
