// Scalar reference backend + runtime dispatch state for the simd:: kernel
// table. The scalar kernels here ARE the numerics definition: every vector
// backend must reproduce their per-element IEEE op sequences bitwise (see
// simd.hpp for the full contract). This file builds with the project's
// baseline flags — no arch extensions — so its codegen cannot silently use
// instructions the scalar contract forbids (FMA contraction is off
// project-wide via -ffp-contract=off).
#include "tensor/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

#include "tensor/simd_expf.hpp"

namespace edgellm::simd {

// ---------------------------------------------------------------------------
// Shared transcendentals (reference op sequences)
// ---------------------------------------------------------------------------

using namespace detail;  // kExpHi, kLog2e, kExpC0..C5 — shared with the vector TUs

float exp_scalar(float x) {
  if (x != x) return x;  // NaN in, the same NaN out
  if (x > kExpHi) return std::numeric_limits<float>::infinity();
  if (x < kExpLo) return 0.0f;
  // Round-to-nearest-even, matching the vector backends' explicit
  // round-to-nearest (the process runs in the default rounding mode).
  const float n = std::nearbyintf(x * kLog2e);
  float r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;
  const float z = r * r;
  float p = kExpC0;
  p = p * r + kExpC1;
  p = p * r + kExpC2;
  p = p * r + kExpC3;
  p = p * r + kExpC4;
  p = p * r + kExpC5;
  p = p * z + r;
  p = p + 1.0f;
  // 2^n via exponent-field construction; n is integral in [-126, 127]
  // inside the saturation bounds, so this never denormalises or overflows.
  const uint32_t bits = static_cast<uint32_t>(static_cast<int32_t>(n) + 127) << 23;
  float two_n;
  std::memcpy(&two_n, &bits, sizeof(two_n));
  return p * two_n;
}

float sigmoid_scalar(float x) {
  // NaN passes through unchanged. This matters beyond hygiene: silu
  // computes x * sigmoid(x), and when the two operands are DIFFERENT NaN
  // bit patterns the surviving payload depends on instruction operand
  // order, which compilers don't pin. Returning x's own NaN makes both
  // multiply operands identical, so the product is that NaN at every
  // backend regardless of operand order.
  if (std::isnan(x)) return x;
  const float e = exp_scalar(-x);
  return 1.0f / (1.0f + e);
}

// ---------------------------------------------------------------------------
// Scalar backend kernels
// ---------------------------------------------------------------------------

namespace {

// The pre-SIMD detail::micro_kernel body, verbatim: the bitwise reference
// every vector gemm_tile must match.
void gemm_tile_scalar(const float* a, int64_t lda, const float* bp, int64_t pc, float* c,
                      int64_t ldc, int64_t mr, int64_t nr) {
  constexpr int64_t kMr = 4, kNr = 8;
  float acc[kMr][kNr];
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) acc[r][j] = c[r * ldc + j];
    for (int64_t j = nr; j < kNr; ++j) acc[r][j] = 0.0f;
  }
  if (mr == kMr) {
    // Hot full-height path: fixed trip counts keep the 4x8 grid in
    // registers even at -O2.
    for (int64_t p = 0; p < pc; ++p) {
      const float* b = bp + p * kNr;
      for (int64_t r = 0; r < kMr; ++r) {
        const float av = a[r * lda + p];
        for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * b[j];
      }
    }
  } else {
    for (int64_t p = 0; p < pc; ++p) {
      const float* b = bp + p * kNr;
      for (int64_t r = 0; r < mr; ++r) {
        const float av = a[r * lda + p];
        for (int64_t j = 0; j < kNr; ++j) acc[r][j] += av * b[j];
      }
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    for (int64_t j = 0; j < nr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Per element: acc (loaded from C) += a[r][p] * float(q[j][p0 + p]) over
// ascending p — the same chain the fp32 micro-kernel runs over a decoded
// panel, so fusing the decode changes nothing bitwise.
void dequant_dot_scalar(const float* a, int64_t lda, int64_t mr, const uint8_t* const* rows,
                        int bits, int64_t p0, int64_t pc, float* c, int64_t ldc, int64_t nr) {
  for (int64_t r = 0; r < mr; ++r) {
    const float* ar = a + r * lda;
    for (int64_t jr = 0; jr < nr; ++jr) {
      float acc = c[r * ldc + jr];
      if (bits == 8) {
        const int8_t* q = reinterpret_cast<const int8_t*>(rows[jr]) + p0;
        for (int64_t p = 0; p < pc; ++p) acc += ar[p] * static_cast<float>(q[p]);
      } else {
        const uint8_t* wrow = rows[jr];
        for (int64_t p = 0; p < pc; ++p) {
          const int64_t col = p0 + p;
          const uint8_t byte = wrow[col >> 1];
          const int32_t nib = (col & 1) ? (byte >> 4) : (byte & 0x0F);
          acc += ar[p] * static_cast<float>(nib - 8);
        }
      }
      c[r * ldc + jr] = acc;
    }
  }
}

void exp_sub_scalar(const float* x, float mx, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = exp_scalar(x[i] - mx);
}

void scale_inplace_scalar(float* y, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= s;
}

void silu_scalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float s = sigmoid_scalar(x[i]);
    y[i] = x[i] * s;
  }
}

void swiglu_scalar(const float* g, const float* u, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    const float s = sigmoid_scalar(g[i]);
    y[i] = (g[i] * s) * u[i];
  }
}

void add_scalar(const float* a, const float* b, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

void rms_apply_scalar(const float* x, const float* gain, float inv, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = (gain[i] * x[i]) * inv;
}

double sumsq_scalar(const float* x, int64_t n) {
  double ss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    ss += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return ss;
}

// The scalar table's fast pointers alias the deterministic kernels, so
// scalar dispatch is always the reference even in fast_math mode.
constexpr KernelTable kScalarTable = {
    .isa = Isa::kScalar,
    .gemm_tile = gemm_tile_scalar,
    .gemm_tile_fast = gemm_tile_scalar,
    .dequant_dot = dequant_dot_scalar,
    .dequant_dot_fast = dequant_dot_scalar,
    .exp_sub = exp_sub_scalar,
    .scale_inplace = scale_inplace_scalar,
    .silu = silu_scalar,
    .swiglu = swiglu_scalar,
    .add = add_scalar,
    .rms_apply = rms_apply_scalar,
    .sumsq_fast = sumsq_scalar,
};

// ---------------------------------------------------------------------------
// Detection + dispatch
// ---------------------------------------------------------------------------

Isa probe_isa() {
#if defined(__x86_64__) || defined(_M_X64)
  // The AVX2 backend uses FMA in its fast_math kernels, so both bits gate
  // together (every AVX2-era core has both).
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return Isa::kAvx2;
  return Isa::kScalar;
#elif defined(__aarch64__)
  // AdvSIMD is architecturally baseline on aarch64; the HWCAP probe guards
  // against exotic kernels that mask it.
#if defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_ASIMD) == 0) return Isa::kScalar;
#endif
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* initial_table() {
  const KernelTable* t = table_for(detected_isa());
  if (t == nullptr) t = &kScalarTable;
  if (const char* env = std::getenv("EDGELLM_SIMD"); env != nullptr && env[0] != '\0') {
    const std::string name(env);
    if (name == "auto") return t;
    const KernelTable* forced = nullptr;
    if (name == "scalar") {
      forced = &kScalarTable;
    } else if (name == "avx2") {
      forced = table_for(Isa::kAvx2);
    } else if (name == "neon") {
      forced = table_for(Isa::kNeon);
    }
    if (forced != nullptr) return forced;
    std::fprintf(stderr, "edgellm: EDGELLM_SIMD=%s not usable on this host, using %s\n", env,
                 to_string(t->isa));
  }
  return t;
}

const KernelTable* active_table() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    const KernelTable* fresh = initial_table();
    // First callers race benignly: initial_table is deterministic, so
    // whichever store wins installs the same choice.
    if (g_active.compare_exchange_strong(t, fresh, std::memory_order_acq_rel)) t = fresh;
  }
  return t;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

Isa detected_isa() {
  static const Isa isa = probe_isa();
  return isa;
}

Isa active_isa() { return active_table()->isa; }

const KernelTable& kernels() { return *active_table(); }

const KernelTable* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return &kScalarTable;
    case Isa::kAvx2:
      return detected_isa() == Isa::kAvx2 ? detail::avx2_table() : nullptr;
    case Isa::kNeon:
      return detected_isa() == Isa::kNeon ? detail::neon_table() : nullptr;
  }
  return nullptr;
}

namespace {

const KernelTable* table_by_name(const std::string& name) {
  if (name == "auto") return table_for(detected_isa());
  if (name == "scalar") return &kScalarTable;
  if (name == "avx2") return table_for(Isa::kAvx2);
  if (name == "neon") return table_for(Isa::kNeon);
  return nullptr;
}

}  // namespace

bool set_dispatch(const std::string& name) {
  const KernelTable* t = table_by_name(name);
  if (t == nullptr) return false;
  g_active.store(t, std::memory_order_release);
  return true;
}

bool dispatch_available(const std::string& name) { return table_by_name(name) != nullptr; }

}  // namespace edgellm::simd
