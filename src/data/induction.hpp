// Induction (copy-recall) task generator — a third evaluation corpus that
// tests *in-context* recall rather than memorised statistics: sequences
// contain a random key-value vocabulary where every reappearance of a key
// is followed by the same value it had earlier in the sequence. A model
// can only solve it by attending back to the previous occurrence (the
// classic "induction head" capability), so it stresses exactly the part of
// the network that aggressive compression and shallow backprop windows
// might damage.
#pragma once

#include <functional>

#include "data/corpus.hpp"

namespace edgellm::data {

/// Seeded induction-task generator.
class InductionTask {
 public:
  struct Config {
    int64_t n_keys = 8;     ///< key tokens [0, n_keys)
    int64_t n_values = 8;   ///< value tokens [n_keys, n_keys + n_values)
    int64_t n_fillers = 8;  ///< filler tokens after values
    uint64_t seed = 1;
  };

  explicit InductionTask(Config cfg);

  int64_t vocab() const { return cfg_.n_keys + cfg_.n_values + cfg_.n_fillers; }
  bool is_key(int64_t t) const { return t >= 0 && t < cfg_.n_keys; }
  bool is_value(int64_t t) const {
    return t >= cfg_.n_keys && t < cfg_.n_keys + cfg_.n_values;
  }

  /// Samples one sequence of `length` tokens: interleaved (key, value)
  /// pairs and fillers, where a key's SECOND and later occurrences repeat
  /// its first value.
  std::vector<int64_t> sample(int64_t length, Rng& rng) const;

  /// An LM batch of such sequences.
  LmBatch sample_batch(int64_t batch, int64_t seq, Rng& rng) const;

  /// Fraction of repeat-key positions where `predict` returns the correct
  /// value. `predict(prefix)` must return a token id given the sequence so
  /// far. Only positions whose key appeared before count.
  double recall_accuracy(const std::function<int64_t(const std::vector<int64_t>&)>& predict,
                         int64_t n_sequences, int64_t seq_len, Rng& rng) const;

 private:
  Config cfg_;
};

}  // namespace edgellm::data
