// Synthetic multiple-choice tasks — the stand-in for the paper's MMLU /
// commonsense-QA downstream evaluation (DESIGN.md §2).
//
// Each item gives a prompt sampled from the domain chain, one continuation
// sampled from the *true* next-token distributions (the correct answer),
// and distractor continuations sampled from a mismatched domain. A model
// that has adapted to the domain assigns higher log-likelihood to the true
// continuation — exactly the LM-scoring mechanism used to evaluate MCQ
// benchmarks with LLMs.
#pragma once

#include <functional>
#include <vector>

#include "data/corpus.hpp"
#include "tensor/tensor.hpp"

namespace edgellm::data {

/// One multiple-choice item.
struct McqItem {
  std::vector<int64_t> prompt;
  std::vector<std::vector<int64_t>> choices;  ///< candidate continuations
  int64_t correct = 0;                        ///< index into choices
};

struct McqConfig {
  int n_items = 64;
  int n_choices = 4;
  int prompt_len = 16;
  int cont_len = 6;
  uint64_t distractor_seed = 777;  ///< domain the distractors come from
};

/// Generates a seeded MCQ set for the given domain.
std::vector<McqItem> make_mcq_set(const MarkovChain& chain, const McqConfig& cfg, Rng& rng);

/// Callback returning next-token logits [seq, vocab] for one sequence of
/// length `seq`. Plugged by a plain exit or by the core::ExitVoter.
using LogitsFn =
    std::function<Tensor(const std::vector<int64_t>& tokens, int64_t seq)>;

/// Sum of log P(choice tokens | prompt, preceding choice tokens).
float score_continuation(const LogitsFn& logits_fn, const std::vector<int64_t>& prompt,
                         const std::vector<int64_t>& continuation, int64_t vocab);

/// Fraction of items where the correct choice has the highest score.
float mcq_accuracy(const LogitsFn& logits_fn, const std::vector<McqItem>& items, int64_t vocab);

}  // namespace edgellm::data
