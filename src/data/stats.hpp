// Small statistics helpers for reporting: bootstrap confidence intervals
// over per-batch losses, so bench tables can state whether method gaps are
// larger than the evaluation noise.
#pragma once

#include <vector>

#include "tensor/rng.hpp"

namespace edgellm::data {

/// A two-sided confidence interval around a mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double v) const { return v >= lo && v <= hi; }
  bool overlaps(const ConfidenceInterval& other) const {
    return lo <= other.hi && other.lo <= hi;
  }
};

/// Percentile bootstrap CI of the mean of `samples` at the given level
/// (e.g. 0.95), with `resamples` bootstrap draws.
ConfidenceInterval bootstrap_mean_ci(const std::vector<float>& samples, double level,
                                     int64_t resamples, Rng& rng);

}  // namespace edgellm::data
