// Evaluation helpers tying models to data: held-out loss, perplexity and
// MCQ scoring through a chosen exit.
#pragma once

#include "data/corpus.hpp"
#include "data/tasks.hpp"
#include "nn/model.hpp"

namespace edgellm::data {

/// Mean next-token cross-entropy of the model's `exit_layer` head on one
/// batch (no gradient, no caching).
float lm_loss(nn::CausalLm& model, const LmBatch& batch, int64_t exit_layer);

/// Mean loss over a batch list.
float lm_loss(nn::CausalLm& model, const std::vector<LmBatch>& batches, int64_t exit_layer);

/// exp(loss) convenience.
inline float perplexity(float loss) { return std::exp(loss); }

/// LogitsFn adapter for a single fixed exit (for MCQ scoring).
LogitsFn exit_logits_fn(nn::CausalLm& model, int64_t exit_layer);

}  // namespace edgellm::data
