#include "data/eval.hpp"

#include "nn/loss.hpp"

namespace edgellm::data {

float lm_loss(nn::CausalLm& model, const LmBatch& batch, int64_t exit_layer) {
  const Tensor logits = model.forward_eval(batch.inputs, batch.batch, batch.seq, exit_layer);
  return nn::cross_entropy_loss_only(logits, batch.targets);
}

float lm_loss(nn::CausalLm& model, const std::vector<LmBatch>& batches, int64_t exit_layer) {
  check_arg(!batches.empty(), "lm_loss: empty batch list");
  double total = 0.0;
  for (const LmBatch& b : batches) total += lm_loss(model, b, exit_layer);
  return static_cast<float>(total / static_cast<double>(batches.size()));
}

LogitsFn exit_logits_fn(nn::CausalLm& model, int64_t exit_layer) {
  return [&model, exit_layer](const std::vector<int64_t>& tokens, int64_t seq) {
    return model.forward_eval(tokens, /*batch=*/1, seq, exit_layer);
  };
}

}  // namespace edgellm::data
