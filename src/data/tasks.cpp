#include "data/tasks.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace edgellm::data {

std::vector<McqItem> make_mcq_set(const MarkovChain& chain, const McqConfig& cfg, Rng& rng) {
  check_arg(cfg.n_items > 0 && cfg.n_choices >= 2, "make_mcq_set: need items and >= 2 choices");
  check_arg(cfg.prompt_len >= chain.config().order && cfg.cont_len >= 1,
            "make_mcq_set: prompt must cover the chain order");

  // Distractor continuations come from an unrelated domain with the same
  // vocabulary, so they are locally plausible but globally off-distribution.
  MarkovChain::Config dcfg = chain.config();
  dcfg.seed = cfg.distractor_seed;
  dcfg.shift_fraction = 0.0f;
  const MarkovChain distractor_chain(dcfg);

  const int order = chain.config().order;
  std::vector<McqItem> items;
  items.reserve(static_cast<size_t>(cfg.n_items));
  for (int i = 0; i < cfg.n_items; ++i) {
    McqItem item;
    item.prompt = chain.sample(cfg.prompt_len, rng);

    // Correct continuation: walk the true chain from the prompt suffix.
    std::vector<int64_t> walk = item.prompt;
    for (int t = 0; t < cfg.cont_len; ++t) {
      const std::span<const int64_t> ctx(walk.data() + walk.size() - order,
                                         static_cast<size_t>(order));
      walk.push_back(rng.categorical(chain.next_dist(ctx)));
    }
    std::vector<int64_t> correct(walk.end() - cfg.cont_len, walk.end());

    item.correct = rng.uniform_int(0, cfg.n_choices - 1);
    for (int c = 0; c < cfg.n_choices; ++c) {
      if (c == item.correct) {
        item.choices.push_back(correct);
        continue;
      }
      std::vector<int64_t> dwalk = item.prompt;
      for (int t = 0; t < cfg.cont_len; ++t) {
        const std::span<const int64_t> ctx(dwalk.data() + dwalk.size() - order,
                                           static_cast<size_t>(order));
        dwalk.push_back(rng.categorical(distractor_chain.next_dist(ctx)));
      }
      item.choices.emplace_back(dwalk.end() - cfg.cont_len, dwalk.end());
    }
    items.push_back(std::move(item));
  }
  return items;
}

float score_continuation(const LogitsFn& logits_fn, const std::vector<int64_t>& prompt,
                         const std::vector<int64_t>& continuation, int64_t vocab) {
  check_arg(!prompt.empty() && !continuation.empty(), "score_continuation: empty input");
  std::vector<int64_t> seq = prompt;
  seq.insert(seq.end(), continuation.begin(), continuation.end());
  const int64_t t = static_cast<int64_t>(seq.size());

  const Tensor logits = logits_fn(seq, t);
  check_arg(logits.numel() == t * vocab, "score_continuation: logits shape mismatch");
  const Tensor logp = ops::log_softmax_lastdim(logits.reshape({t, vocab}));

  // Position p's logits predict token p+1; the continuation starts at
  // position prompt.size().
  float total = 0.0f;
  const int64_t start = static_cast<int64_t>(prompt.size());
  for (int64_t p = start; p < t; ++p) {
    total += logp[(p - 1) * vocab + seq[static_cast<size_t>(p)]];
  }
  return total;
}

float mcq_accuracy(const LogitsFn& logits_fn, const std::vector<McqItem>& items, int64_t vocab) {
  check_arg(!items.empty(), "mcq_accuracy: empty item set");
  int64_t hits = 0;
  for (const McqItem& item : items) {
    float best = -1e30f;
    int64_t best_idx = -1;
    for (size_t c = 0; c < item.choices.size(); ++c) {
      const float s = score_continuation(logits_fn, item.prompt, item.choices[c], vocab);
      if (s > best) {
        best = s;
        best_idx = static_cast<int64_t>(c);
      }
    }
    if (best_idx == item.correct) ++hits;
  }
  return static_cast<float>(hits) / static_cast<float>(items.size());
}

}  // namespace edgellm::data
