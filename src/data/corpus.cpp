#include "data/corpus.hpp"

#include <cmath>

namespace edgellm::data {

namespace {

// splitmix64 — deterministic, platform-independent hash mixing.
uint64_t mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

MarkovChain::MarkovChain(Config cfg) : cfg_(cfg) {
  check_arg(cfg_.vocab >= 4, "MarkovChain: vocab must be >= 4");
  check_arg(cfg_.order >= 1 && cfg_.order <= 8, "MarkovChain: order must be in [1, 8]");
  check_arg(cfg_.branch >= 1 && cfg_.branch < cfg_.vocab, "MarkovChain: branch out of range");
  check_arg(cfg_.mass > 0.0f && cfg_.mass < 1.0f, "MarkovChain: mass must be in (0, 1)");
  check_arg(cfg_.shift_fraction >= 0.0f && cfg_.shift_fraction <= 1.0f,
            "MarkovChain: shift_fraction must be in [0, 1]");
  const float share = cfg_.mass / static_cast<float>(cfg_.branch);
  const float base = (1.0f - cfg_.mass) / static_cast<float>(cfg_.vocab - cfg_.branch);
  check_arg(share > base, "MarkovChain: preferred share must exceed the baseline mass");
}

uint64_t MarkovChain::context_hash(std::span<const int64_t> context) const {
  uint64_t h = mix(0xC0FFEEull);
  const size_t order = static_cast<size_t>(cfg_.order);
  // Left-pad with token 0 when the context is short.
  for (size_t i = 0; i < order; ++i) {
    const int64_t tok =
        i < order - context.size() ? 0 : context[context.size() - order + i];
    h = mix(h ^ static_cast<uint64_t>(tok + 1));
  }
  return h;
}

bool MarkovChain::row_is_shifted(uint64_t ctx_hash) const {
  if (cfg_.shift_fraction <= 0.0f) return false;
  // Deterministic per-context coin flip, independent of the row seed.
  const uint64_t coin = mix(ctx_hash ^ 0xD1FF'0000ull);
  const double u = static_cast<double>(coin >> 11) * 0x1.0p-53;
  return u < static_cast<double>(cfg_.shift_fraction);
}

std::vector<float> MarkovChain::next_dist(std::span<const int64_t> context) const {
  const uint64_t h = context_hash(context);
  const uint64_t row_seed =
      row_is_shifted(h) ? mix(h ^ cfg_.shift_seed) : mix(h ^ cfg_.seed);

  const int64_t v = cfg_.vocab;
  std::vector<float> dist(static_cast<size_t>(v),
                          (1.0f - cfg_.mass) / static_cast<float>(v - cfg_.branch));
  // Pick `branch` distinct preferred tokens via a seeded walk.
  uint64_t s = row_seed;
  int picked = 0;
  const float share = cfg_.mass / static_cast<float>(cfg_.branch);
  while (picked < cfg_.branch) {
    s = mix(s);
    const int64_t tok = static_cast<int64_t>(s % static_cast<uint64_t>(v));
    float& p = dist[static_cast<size_t>(tok)];
    if (p < share) {  // not yet preferred (duplicates are skipped)
      p = share;
      ++picked;
    }
  }
  // Renormalise exactly.
  double total = 0.0;
  for (float p : dist) total += p;
  const float inv = static_cast<float>(1.0 / total);
  for (float& p : dist) p *= inv;
  return dist;
}

std::vector<int64_t> MarkovChain::sample(int64_t length, Rng& rng) const {
  check_arg(length > 0, "MarkovChain::sample: length must be positive");
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(length) + static_cast<size_t>(cfg_.order));
  for (int i = 0; i < cfg_.order; ++i) out.push_back(rng.uniform_int(0, cfg_.vocab - 1));
  for (int64_t i = 0; i < length; ++i) {
    const size_t n = out.size();
    const std::span<const int64_t> ctx(out.data() + n - cfg_.order,
                                       static_cast<size_t>(cfg_.order));
    const std::vector<float> dist = next_dist(ctx);
    out.push_back(rng.categorical(dist));
  }
  out.erase(out.begin(), out.begin() + cfg_.order);
  return out;
}

MarkovChain MarkovChain::shifted(float shift_fraction, uint64_t shift_seed) const {
  Config cfg = cfg_;
  cfg.shift_fraction = shift_fraction;
  cfg.shift_seed = shift_seed;
  return MarkovChain(cfg);
}

float MarkovChain::entropy_rate(int64_t n_samples, Rng& rng) const {
  check_arg(n_samples > 0, "entropy_rate: n_samples must be positive");
  const std::vector<int64_t> stream =
      sample(n_samples + cfg_.order, rng);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t i = cfg_.order; i < static_cast<int64_t>(stream.size()); ++i) {
    const std::span<const int64_t> ctx(stream.data() + i - cfg_.order,
                                       static_cast<size_t>(cfg_.order));
    const std::vector<float> dist = next_dist(ctx);
    double h = 0.0;
    for (float p : dist) {
      if (p > 0.0f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    total += h;
    ++counted;
  }
  return static_cast<float>(total / counted);
}

std::vector<LmBatch> make_lm_batches(const std::vector<int64_t>& stream, int64_t batch,
                                     int64_t seq) {
  check_arg(batch > 0 && seq > 0, "make_lm_batches: batch and seq must be positive");
  const int64_t tokens_per_batch = batch * seq;
  std::vector<LmBatch> out;
  // Need one extra token per row for the shifted target.
  int64_t pos = 0;
  while (pos + tokens_per_batch + batch <= static_cast<int64_t>(stream.size())) {
    LmBatch b;
    b.batch = batch;
    b.seq = seq;
    b.inputs.reserve(static_cast<size_t>(tokens_per_batch));
    b.targets.reserve(static_cast<size_t>(tokens_per_batch));
    for (int64_t r = 0; r < batch; ++r) {
      const int64_t start = pos + r * (seq + 1);
      for (int64_t t = 0; t < seq; ++t) {
        b.inputs.push_back(stream[static_cast<size_t>(start + t)]);
        b.targets.push_back(stream[static_cast<size_t>(start + t + 1)]);
      }
    }
    pos += batch * (seq + 1);
    out.push_back(std::move(b));
  }
  check_arg(!out.empty(), "make_lm_batches: stream too short for one batch");
  return out;
}

LmBatch sample_lm_batch(const MarkovChain& chain, int64_t batch, int64_t seq, Rng& rng) {
  const std::vector<int64_t> stream = chain.sample(batch * (seq + 1), rng);
  return make_lm_batches(stream, batch, seq).front();
}

}  // namespace edgellm::data
