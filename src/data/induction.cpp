#include "data/induction.hpp"

#include <map>

namespace edgellm::data {

InductionTask::InductionTask(Config cfg) : cfg_(cfg) {
  check_arg(cfg_.n_keys >= 2 && cfg_.n_values >= 2 && cfg_.n_fillers >= 1,
            "InductionTask: need at least 2 keys, 2 values, 1 filler");
}

std::vector<int64_t> InductionTask::sample(int64_t length, Rng& rng) const {
  check_arg(length >= 2, "InductionTask::sample: length must be >= 2");
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(length) + 2);
  std::map<int64_t, int64_t> binding;  // key -> value fixed at first occurrence

  while (static_cast<int64_t>(out.size()) < length) {
    if (rng.bernoulli(0.7)) {
      const int64_t key = rng.uniform_int(0, cfg_.n_keys - 1);
      auto [it, inserted] = binding.try_emplace(
          key, cfg_.n_keys + rng.uniform_int(0, cfg_.n_values - 1));
      out.push_back(key);
      out.push_back(it->second);
    } else {
      out.push_back(cfg_.n_keys + cfg_.n_values + rng.uniform_int(0, cfg_.n_fillers - 1));
    }
  }
  out.resize(static_cast<size_t>(length));
  return out;
}

LmBatch InductionTask::sample_batch(int64_t batch, int64_t seq, Rng& rng) const {
  check_arg(batch > 0 && seq > 0, "InductionTask: batch and seq must be positive");
  LmBatch b;
  b.batch = batch;
  b.seq = seq;
  for (int64_t r = 0; r < batch; ++r) {
    const auto stream = sample(seq + 1, rng);
    b.inputs.insert(b.inputs.end(), stream.begin(), stream.end() - 1);
    b.targets.insert(b.targets.end(), stream.begin() + 1, stream.end());
  }
  return b;
}

double InductionTask::recall_accuracy(
    const std::function<int64_t(const std::vector<int64_t>&)>& predict, int64_t n_sequences,
    int64_t seq_len, Rng& rng) const {
  check_arg(n_sequences > 0 && seq_len >= 4, "recall_accuracy: need sequences of length >= 4");
  int64_t hits = 0, total = 0;
  for (int64_t s = 0; s < n_sequences; ++s) {
    const auto stream = sample(seq_len, rng);
    std::map<int64_t, int64_t> seen;  // key -> value, in prefix order
    for (size_t i = 0; i + 1 < stream.size(); ++i) {
      const int64_t tok = stream[i];
      if (!is_key(tok)) continue;
      const auto it = seen.find(tok);
      if (it != seen.end() && is_value(stream[i + 1])) {
        // Repeat occurrence: the model should recall the bound value.
        const std::vector<int64_t> prefix(stream.begin(),
                                          stream.begin() + static_cast<int64_t>(i) + 1);
        if (predict(prefix) == it->second) ++hits;
        ++total;
      }
      if (is_value(stream[i + 1])) seen.emplace(tok, stream[i + 1]);
    }
  }
  check_arg(total > 0, "recall_accuracy: no repeat-key positions sampled");
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace edgellm::data
