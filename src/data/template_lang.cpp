#include "data/template_lang.hpp"

#include <algorithm>

namespace edgellm::data {

namespace {

uint64_t mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

TemplateLanguage::TemplateLanguage(Config cfg) : cfg_(cfg) {
  check_arg(cfg_.n_subjects >= 2 && cfg_.n_verbs >= 2 && cfg_.n_objects >= 2 &&
                cfg_.n_modifiers >= 1,
            "TemplateLanguage: need at least 2 of each role");
  check_arg(cfg_.preferred >= 1 && cfg_.preferred < cfg_.n_verbs &&
                cfg_.preferred < cfg_.n_objects,
            "TemplateLanguage: preferred count out of range");
  check_arg(cfg_.obedience > 0.5f && cfg_.obedience <= 1.0f,
            "TemplateLanguage: obedience must be in (0.5, 1]");
  check_arg(cfg_.modifier_prob >= 0.0f && cfg_.modifier_prob <= 1.0f,
            "TemplateLanguage: modifier_prob must be in [0, 1]");
  check_arg(cfg_.shift_fraction >= 0.0f && cfg_.shift_fraction <= 1.0f,
            "TemplateLanguage: shift_fraction must be in [0, 1]");
}

int64_t TemplateLanguage::vocab() const {
  return cfg_.n_subjects + cfg_.n_verbs + cfg_.n_objects + cfg_.n_modifiers + 1;
}

uint64_t TemplateLanguage::rule_seed(int64_t subject) const {
  const uint64_t h = mix(0xBEEFull ^ static_cast<uint64_t>(subject + 1));
  if (cfg_.shift_fraction > 0.0f) {
    const uint64_t coin = mix(h ^ 0xD1FFull);
    const double u = static_cast<double>(coin >> 11) * 0x1.0p-53;
    if (u < static_cast<double>(cfg_.shift_fraction)) return mix(h ^ cfg_.shift_seed);
  }
  return mix(h ^ cfg_.seed);
}

std::vector<int64_t> TemplateLanguage::pick_preferred(uint64_t seed, int64_t base,
                                                      int64_t count, int64_t how_many) const {
  std::vector<int64_t> out;
  uint64_t s = seed;
  while (static_cast<int64_t>(out.size()) < how_many) {
    s = mix(s);
    const int64_t tok = base + static_cast<int64_t>(s % static_cast<uint64_t>(count));
    if (std::find(out.begin(), out.end(), tok) == out.end()) out.push_back(tok);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> TemplateLanguage::preferred_verbs(int64_t subject) const {
  check_arg(is_subject(subject), "preferred_verbs: not a subject token");
  return pick_preferred(rule_seed(subject) ^ 0x5EEDull, verb_base(), cfg_.n_verbs,
                        cfg_.preferred);
}

std::vector<int64_t> TemplateLanguage::preferred_objects(int64_t subject, int64_t verb) const {
  check_arg(is_subject(subject), "preferred_objects: not a subject token");
  check_arg(is_verb(verb), "preferred_objects: not a verb token");
  return pick_preferred(mix(rule_seed(subject) ^ static_cast<uint64_t>(verb * 31 + 7)),
                        object_base(), cfg_.n_objects, cfg_.preferred);
}

void TemplateLanguage::sample_sentence(std::vector<int64_t>& out, Rng& rng) const {
  const int64_t subject = rng.uniform_int(0, cfg_.n_subjects - 1);
  out.push_back(subject);

  if (rng.bernoulli(cfg_.modifier_prob)) {
    out.push_back(modifier_base() + rng.uniform_int(0, cfg_.n_modifiers - 1));
  }

  int64_t verb;
  if (rng.bernoulli(cfg_.obedience)) {
    const auto pv = preferred_verbs(subject);
    verb = pv[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(pv.size()) - 1))];
  } else {
    verb = verb_base() + rng.uniform_int(0, cfg_.n_verbs - 1);
  }
  out.push_back(verb);

  int64_t object;
  if (rng.bernoulli(cfg_.obedience)) {
    const auto po = preferred_objects(subject, verb);
    object = po[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(po.size()) - 1))];
  } else {
    object = object_base() + rng.uniform_int(0, cfg_.n_objects - 1);
  }
  out.push_back(object);
  out.push_back(punct_token());
}

std::vector<int64_t> TemplateLanguage::sample(int64_t length, Rng& rng) const {
  check_arg(length > 0, "TemplateLanguage::sample: length must be positive");
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(length) + 5);
  while (static_cast<int64_t>(out.size()) < length) sample_sentence(out, rng);
  out.resize(static_cast<size_t>(length));
  return out;
}

TemplateLanguage TemplateLanguage::shifted(float fraction, uint64_t shift_seed) const {
  Config cfg = cfg_;
  cfg.shift_fraction = fraction;
  cfg.shift_seed = shift_seed;
  return TemplateLanguage(cfg);
}

std::vector<McqItem> TemplateLanguage::make_cloze_set(int n_items, int n_choices,
                                                      Rng& rng) const {
  check_arg(n_items > 0 && n_choices >= 2, "make_cloze_set: need items and >= 2 choices");
  check_arg(n_choices <= cfg_.n_objects, "make_cloze_set: more choices than objects");
  std::vector<McqItem> items;
  items.reserve(static_cast<size_t>(n_items));
  for (int i = 0; i < n_items; ++i) {
    McqItem item;
    // Context: two full sentences, then SUBJ [MOD] VERB of the query.
    sample_sentence(item.prompt, rng);
    sample_sentence(item.prompt, rng);
    const int64_t subject = rng.uniform_int(0, cfg_.n_subjects - 1);
    item.prompt.push_back(subject);
    if (rng.bernoulli(cfg_.modifier_prob)) {
      item.prompt.push_back(modifier_base() + rng.uniform_int(0, cfg_.n_modifiers - 1));
    }
    const auto pv = preferred_verbs(subject);
    const int64_t verb =
        pv[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(pv.size()) - 1))];
    item.prompt.push_back(verb);

    const auto po = preferred_objects(subject, verb);
    const int64_t correct_obj =
        po[static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(po.size()) - 1))];

    item.correct = rng.uniform_int(0, n_choices - 1);
    for (int c = 0; c < n_choices; ++c) {
      if (c == item.correct) {
        item.choices.push_back({correct_obj});
        continue;
      }
      // Distractors: objects NOT preferred for this (subject, verb).
      int64_t obj;
      do {
        obj = object_base() + rng.uniform_int(0, cfg_.n_objects - 1);
      } while (std::find(po.begin(), po.end(), obj) != po.end());
      item.choices.push_back({obj});
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace edgellm::data
