// A second synthetic language with *structure*: templated sentences
//
//   SUBJECT [MODIFIER] VERB OBJECT PUNCT
//
// where each subject prefers a few verbs and each (subject, verb) pair
// prefers a few objects. Unlike the order-k Markov corpus, the correct
// object depends on a token 2-3 positions back *through* an intervening
// modifier — a long-range dependency that exercises attention, and a
// natural cloze-style MCQ ("which object fits this subject+verb?") closer
// in spirit to the paper's commonsense-QA evaluation.
#pragma once

#include "data/corpus.hpp"
#include "data/tasks.hpp"

namespace edgellm::data {

/// Seeded template language. Immutable and cheap to copy.
class TemplateLanguage {
 public:
  struct Config {
    int64_t n_subjects = 8;
    int64_t n_verbs = 8;
    int64_t n_objects = 12;
    int64_t n_modifiers = 4;
    int preferred = 2;        ///< preferred verbs per subject / objects per pair
    float obedience = 0.9f;   ///< prob. of following the preference tables
    float modifier_prob = 0.5f;
    uint64_t seed = 1;
    float shift_fraction = 0.0f;  ///< fraction of subjects with re-drawn rules
    uint64_t shift_seed = 2;
  };

  explicit TemplateLanguage(Config cfg);

  const Config& config() const { return cfg_; }

  /// Total vocabulary: subjects + verbs + objects + modifiers + punct.
  int64_t vocab() const;

  // Token-range helpers (roles are contiguous id ranges).
  int64_t subject_base() const { return 0; }
  int64_t verb_base() const { return cfg_.n_subjects; }
  int64_t object_base() const { return cfg_.n_subjects + cfg_.n_verbs; }
  int64_t modifier_base() const { return cfg_.n_subjects + cfg_.n_verbs + cfg_.n_objects; }
  int64_t punct_token() const { return vocab() - 1; }

  bool is_subject(int64_t t) const { return t >= 0 && t < verb_base(); }
  bool is_verb(int64_t t) const { return t >= verb_base() && t < object_base(); }
  bool is_object(int64_t t) const { return t >= object_base() && t < modifier_base(); }

  /// Preferred verbs for a subject / objects for (subject, verb).
  std::vector<int64_t> preferred_verbs(int64_t subject) const;
  std::vector<int64_t> preferred_objects(int64_t subject, int64_t verb) const;

  /// Samples a stream of whole sentences totalling >= length tokens
  /// (truncated to exactly `length`).
  std::vector<int64_t> sample(int64_t length, Rng& rng) const;

  /// Domain-shifted sibling (re-draws a fraction of subjects' tables).
  TemplateLanguage shifted(float fraction, uint64_t shift_seed) const;

  /// Cloze MCQ set: prompt ends right after SUBJ [MOD] VERB; choices are
  /// objects, correct = a preferred object for the pair.
  std::vector<McqItem> make_cloze_set(int n_items, int n_choices, Rng& rng) const;

 private:
  Config cfg_;

  uint64_t rule_seed(int64_t subject) const;
  std::vector<int64_t> pick_preferred(uint64_t seed, int64_t base, int64_t count,
                                      int64_t how_many) const;
  /// Appends one sentence to `out`.
  void sample_sentence(std::vector<int64_t>& out, Rng& rng) const;
};

}  // namespace edgellm::data
