#include "data/stats.hpp"

#include <algorithm>
#include <cmath>

namespace edgellm::data {

ConfidenceInterval bootstrap_mean_ci(const std::vector<float>& samples, double level,
                                     int64_t resamples, Rng& rng) {
  check_arg(samples.size() >= 2, "bootstrap_mean_ci: need at least 2 samples");
  check_arg(level > 0.0 && level < 1.0, "bootstrap_mean_ci: level must be in (0, 1)");
  check_arg(resamples >= 100, "bootstrap_mean_ci: need at least 100 resamples");

  const int64_t n = static_cast<int64_t>(samples.size());
  double total = 0.0;
  for (float s : samples) total += s;

  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int64_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += samples[static_cast<size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(acc / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());

  const double alpha = (1.0 - level) / 2.0;
  const auto pick = [&](double q) {
    const int64_t idx = std::clamp<int64_t>(
        static_cast<int64_t>(std::floor(q * static_cast<double>(resamples))), 0, resamples - 1);
    return means[static_cast<size_t>(idx)];
  };

  ConfidenceInterval ci;
  ci.mean = total / static_cast<double>(n);
  ci.lo = pick(alpha);
  ci.hi = pick(1.0 - alpha);
  return ci;
}

}  // namespace edgellm::data
