// Synthetic corpora standing in for the paper's natural-language adaptation
// data (see DESIGN.md §2).
//
// The generator is a seeded order-k Markov chain whose transition rows are
// derived *lazily* from a hash of (seed, context), so arbitrary vocab sizes
// and orders need no storage. Each row concentrates most probability mass
// on a few "preferred" next tokens, giving the corpus learnable low-entropy
// structure. A "domain shift" re-draws the preferred set for a fraction of
// contexts — that shifted domain is what the model adapts to in the
// experiments, mirroring the paper's continuous-adaptation setting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.hpp"

namespace edgellm::data {

/// Seeded synthetic language. Immutable and cheap to copy.
class MarkovChain {
 public:
  struct Config {
    int64_t vocab = 64;
    int order = 2;               ///< context length
    int branch = 4;              ///< preferred next-tokens per context
    float mass = 0.85f;          ///< probability mass on the preferred set
    uint64_t seed = 1;           ///< identity of the domain
    float shift_fraction = 0.0f; ///< fraction of contexts re-drawn (domain shift)
    uint64_t shift_seed = 2;     ///< identity of the shifted rows
  };

  explicit MarkovChain(Config cfg);

  const Config& config() const { return cfg_; }
  int64_t vocab() const { return cfg_.vocab; }

  /// True next-token distribution for a context (last `order` tokens; if
  /// fewer are given the context is left-padded with token 0).
  std::vector<float> next_dist(std::span<const int64_t> context) const;

  /// Samples a token stream of the given length.
  std::vector<int64_t> sample(int64_t length, Rng& rng) const;

  /// A domain-shifted sibling: same seed, `shift_fraction` of context rows
  /// re-drawn from `shift_seed`.
  MarkovChain shifted(float shift_fraction, uint64_t shift_seed) const;

  /// Entropy rate estimate (mean next-token entropy over sampled contexts),
  /// in nats — the floor that a perfectly adapted model's loss approaches.
  float entropy_rate(int64_t n_samples, Rng& rng) const;

 private:
  Config cfg_;

  uint64_t context_hash(std::span<const int64_t> context) const;
  bool row_is_shifted(uint64_t ctx_hash) const;
};

/// One language-modelling batch: `inputs[i]` predicts `targets[i]`.
struct LmBatch {
  std::vector<int64_t> inputs;   ///< batch*seq token ids, row-major
  std::vector<int64_t> targets;  ///< batch*seq next-token ids
  int64_t batch = 0;
  int64_t seq = 0;
};

/// Cuts a token stream into LM batches of [batch, seq]. Remainder tokens
/// are dropped.
std::vector<LmBatch> make_lm_batches(const std::vector<int64_t>& stream, int64_t batch,
                                     int64_t seq);

/// Samples a fresh batch directly from the chain.
LmBatch sample_lm_batch(const MarkovChain& chain, int64_t batch, int64_t seq, Rng& rng);

}  // namespace edgellm::data
