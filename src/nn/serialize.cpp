#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace edgellm::nn {

namespace {

constexpr char kMagic[4] = {'E', 'L', 'L', 'M'};
constexpr uint32_t kVersion = 1;

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint truncated");
  return v;
}

}  // namespace

void save_state_dict(const std::map<std::string, Tensor>& state, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open checkpoint for writing: " + path);
  os.write(kMagic, 4);
  const uint32_t version = kVersion;
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  write_u64(os, state.size());
  for (const auto& [name, tensor] : state) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(os, static_cast<uint64_t>(tensor.ndim()));
    for (int64_t d = 0; d < tensor.ndim(); ++d) {
      write_u64(os, static_cast<uint64_t>(tensor.dim(d)));
    }
    os.write(reinterpret_cast<const char*>(tensor.raw()),
             static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint write failed: " + path);
}

std::map<std::string, Tensor> load_state_dict_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open checkpoint: " + path);
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("not an Edge-LLM checkpoint: " + path);
  }
  uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || version != kVersion) throw std::runtime_error("unsupported checkpoint version");

  std::map<std::string, Tensor> state;
  const uint64_t count = read_u64(is);
  for (uint64_t e = 0; e < count; ++e) {
    const uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t ndim = read_u64(is);
    Shape shape;
    for (uint64_t d = 0; d < ndim; ++d) shape.push_back(static_cast<int64_t>(read_u64(is)));
    Tensor t(shape);
    is.read(reinterpret_cast<char*>(t.raw()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint truncated: " + path);
    state.emplace(std::move(name), std::move(t));
  }
  return state;
}

void save_model(CausalLm& model, const std::string& path) {
  save_state_dict(model.state_dict(), path);
}

void load_model(CausalLm& model, const std::string& path) {
  model.load_state_dict(load_state_dict_file(path));
}

namespace {
constexpr const char* kConfigKey = "__config__";
}

namespace {
constexpr const char* kMaskPrefix = "__mask__.";
constexpr const char* kQuantPrefix = "__quant__.";
}  // namespace

void save_model_with_config(CausalLm& model, const std::string& path) {
  auto state = model.state_dict();

  // Compression state (masks + quant specs) rides along so a deployed
  // checkpoint is self-contained.
  for (TransformerBlock* b : model.blocks()) {
    for (Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      if (lin->prune_mask()) {
        state.emplace(kMaskPrefix + wname, *lin->prune_mask());
      }
      if (lin->quant_spec()) {
        const quant::QuantSpec& q = *lin->quant_spec();
        state.emplace(kQuantPrefix + wname,
                      Tensor({4}, std::vector<float>{
                                      static_cast<float>(q.bits),
                                      q.symmetric ? 1.0f : 0.0f,
                                      static_cast<float>(static_cast<int>(q.granularity)),
                                      static_cast<float>(q.group_size)}));
      }
    }
  }
  const ModelConfig& cfg = model.config();
  std::vector<float> packed = {
      static_cast<float>(cfg.vocab),   static_cast<float>(cfg.d_model),
      static_cast<float>(cfg.n_layers), static_cast<float>(cfg.n_heads),
      static_cast<float>(cfg.kv_heads()),
      static_cast<float>(cfg.ff_dim()), static_cast<float>(cfg.max_seq),
      cfg.tie_exit_heads ? 1.0f : 0.0f, cfg.swiglu ? 1.0f : 0.0f,
      static_cast<float>(cfg.exit_layers.size())};
  for (int64_t e : cfg.exit_layers) packed.push_back(static_cast<float>(e));
  const int64_t packed_size = static_cast<int64_t>(packed.size());
  state.emplace(kConfigKey, Tensor({packed_size}, std::move(packed)));
  save_state_dict(state, path);
}

std::unique_ptr<CausalLm> load_model_with_config(const std::string& path) {
  auto state = load_state_dict_file(path);
  const auto it = state.find(kConfigKey);
  if (it == state.end()) {
    throw std::runtime_error("checkpoint has no embedded config: " + path);
  }
  const Tensor& c = it->second;
  if (c.numel() < 10) throw std::runtime_error("malformed config entry in " + path);
  ModelConfig cfg;
  cfg.vocab = static_cast<int64_t>(c[0]);
  cfg.d_model = static_cast<int64_t>(c[1]);
  cfg.n_layers = static_cast<int64_t>(c[2]);
  cfg.n_heads = static_cast<int64_t>(c[3]);
  cfg.n_kv_heads = static_cast<int64_t>(c[4]);
  cfg.d_ff = static_cast<int64_t>(c[5]);
  cfg.max_seq = static_cast<int64_t>(c[6]);
  cfg.tie_exit_heads = c[7] != 0.0f;
  cfg.swiglu = c[8] != 0.0f;
  const int64_t n_exits = static_cast<int64_t>(c[9]);
  if (c.numel() != 10 + n_exits) throw std::runtime_error("malformed config entry in " + path);
  for (int64_t e = 0; e < n_exits; ++e) {
    cfg.exit_layers.push_back(static_cast<int64_t>(c[10 + e]));
  }
  state.erase(it);

  // Split out compression entries before loading parameters.
  std::map<std::string, Tensor> masks, quants;
  for (auto iter = state.begin(); iter != state.end();) {
    if (iter->first.rfind(kMaskPrefix, 0) == 0) {
      masks.emplace(iter->first.substr(std::string(kMaskPrefix).size()), iter->second);
      iter = state.erase(iter);
    } else if (iter->first.rfind(kQuantPrefix, 0) == 0) {
      quants.emplace(iter->first.substr(std::string(kQuantPrefix).size()), iter->second);
      iter = state.erase(iter);
    } else {
      ++iter;
    }
  }

  Rng rng(0);  // weights are overwritten immediately
  auto model = std::make_unique<CausalLm>(cfg, rng);
  model->load_state_dict(state);

  for (TransformerBlock* b : model->blocks()) {
    for (Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      const auto qit = quants.find(wname);
      if (qit != quants.end()) {
        const Tensor& qv = qit->second;
        if (qv.numel() != 4) throw std::runtime_error("malformed quant entry for " + wname);
        quant::QuantSpec q;
        q.bits = static_cast<int>(qv[0]);
        q.symmetric = qv[1] != 0.0f;
        q.granularity = static_cast<quant::Granularity>(static_cast<int>(qv[2]));
        q.group_size = static_cast<int64_t>(qv[3]);
        lin->set_quant(q);
      }
      const auto mit = masks.find(wname);
      if (mit != masks.end()) lin->set_prune_mask(mit->second);
    }
  }
  return model;
}

}  // namespace edgellm::nn
