#include "nn/serialize.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace edgellm::nn {

namespace {

constexpr char kMagic[4] = {'E', 'L', 'L', 'M'};
constexpr uint32_t kVersion = 2;  ///< v2 = v1 body + CRC-32 footer

// Structural plausibility bounds for load hardening: anything past these is
// a corrupt or hostile file, not a real checkpoint, and gets a clean throw
// instead of a multi-gigabyte allocation or UB.
constexpr uint64_t kMaxEntries = 1ull << 20;
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRank = 8;
constexpr uint64_t kMaxExtent = 1ull << 32;

void write_u64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked cursor over an in-memory checkpoint image. Every read
/// validates the remaining byte count first, so a truncated file can never
/// read past the buffer.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  void need(uint64_t bytes) const {
    if (bytes > size_ - off_) {
      throw std::runtime_error("checkpoint truncated: " + path_);
    }
  }

  void read(void* out, uint64_t bytes) {
    need(bytes);
    std::memcpy(out, data_ + off_, static_cast<size_t>(bytes));
    off_ += static_cast<size_t>(bytes);
  }

  uint64_t u64() {
    uint64_t v = 0;
    read(&v, sizeof(v));
    return v;
  }

  std::string str(uint64_t len) {
    need(len);
    std::string s(data_ + off_, static_cast<size_t>(len));
    off_ += static_cast<size_t>(len);
    return s;
  }

  uint64_t remaining() const { return size_ - off_; }
  void skip(uint64_t bytes) { need(bytes); off_ += static_cast<size_t>(bytes); }

 private:
  const char* data_;
  size_t size_;
  size_t off_ = 0;
  std::string path_;
};

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Tensor pack_u64(uint64_t v) {
  return Tensor({4}, std::vector<float>{
                         static_cast<float>(v & 0xFFFFu),
                         static_cast<float>((v >> 16) & 0xFFFFu),
                         static_cast<float>((v >> 32) & 0xFFFFu),
                         static_cast<float>((v >> 48) & 0xFFFFu)});
}

uint64_t unpack_u64(const Tensor& t) {
  if (t.numel() != 4) throw std::runtime_error("unpack_u64: expected 4 limbs");
  uint64_t v = 0;
  for (int64_t i = 0; i < 4; ++i) {
    const float limb = t[i];
    if (limb < 0.0f || limb > 65535.0f || limb != static_cast<float>(static_cast<uint64_t>(limb))) {
      throw std::runtime_error("unpack_u64: limb out of range");
    }
    v |= static_cast<uint64_t>(limb) << (16 * i);
  }
  return v;
}

Tensor pack_bytes(const std::string& bytes) {
  Tensor t({static_cast<int64_t>(bytes.size())});
  for (size_t i = 0; i < bytes.size(); ++i) {
    t[static_cast<int64_t>(i)] = static_cast<float>(static_cast<unsigned char>(bytes[i]));
  }
  return t;
}

std::string unpack_bytes(const Tensor& t) {
  std::string s(static_cast<size_t>(t.numel()), '\0');
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float b = t[i];
    if (b < 0.0f || b > 255.0f || b != static_cast<float>(static_cast<unsigned>(b))) {
      throw std::runtime_error("unpack_bytes: value out of byte range");
    }
    s[static_cast<size_t>(i)] = static_cast<char>(static_cast<unsigned char>(b));
  }
  return s;
}

void save_state_dict(const std::map<std::string, Tensor>& state, const std::string& path) {
  // Build the full image in memory first so the CRC covers exactly what is
  // written and the on-disk commit is a single stream-out + rename.
  std::ostringstream payload(std::ios::binary);
  payload.write(kMagic, 4);
  const uint32_t version = kVersion;
  payload.write(reinterpret_cast<const char*>(&version), sizeof(version));
  write_u64(payload, state.size());
  for (const auto& [name, tensor] : state) {
    write_u64(payload, name.size());
    payload.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_u64(payload, static_cast<uint64_t>(tensor.ndim()));
    for (int64_t d = 0; d < tensor.ndim(); ++d) {
      write_u64(payload, static_cast<uint64_t>(tensor.dim(d)));
    }
    payload.write(reinterpret_cast<const char*>(tensor.raw()),
                  static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  const std::string bytes = payload.str();
  const uint32_t crc = crc32(bytes.data(), bytes.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open checkpoint for writing: " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.flush();
    if (!os) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("checkpoint write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    throw std::runtime_error("cannot commit checkpoint " + path + ": " + ec.message());
  }
}

std::map<std::string, Tensor> load_state_dict_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  if (bytes.size() < 4 + sizeof(uint32_t) + sizeof(uint64_t)) {
    throw std::runtime_error("not an Edge-LLM checkpoint: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw std::runtime_error("not an Edge-LLM checkpoint: " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != 1 && version != kVersion) {
    throw std::runtime_error("unsupported checkpoint version");
  }

  size_t payload_end = bytes.size();
  if (version >= 2) {
    payload_end -= sizeof(uint32_t);
    uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload_end, sizeof(stored));
    if (crc32(bytes.data(), payload_end) != stored) {
      throw std::runtime_error("checkpoint CRC mismatch (corrupt): " + path);
    }
  }

  ByteReader r(bytes.data(), payload_end, path);
  r.skip(4 + sizeof(uint32_t));  // magic + version, already validated

  std::map<std::string, Tensor> state;
  const uint64_t count = r.u64();
  if (count > kMaxEntries) {
    throw std::runtime_error("implausible checkpoint entry count in " + path);
  }
  for (uint64_t e = 0; e < count; ++e) {
    const uint64_t name_len = r.u64();
    if (name_len > kMaxNameLen) {
      throw std::runtime_error("implausible entry name length in " + path);
    }
    std::string name = r.str(name_len);
    const uint64_t ndim = r.u64();
    if (ndim > kMaxRank) throw std::runtime_error("implausible tensor rank in " + path);
    Shape shape;
    int64_t numel = 1;
    for (uint64_t d = 0; d < ndim; ++d) {
      const uint64_t extent = r.u64();
      if (extent > kMaxExtent) throw std::runtime_error("implausible extent in " + path);
      const auto ext = static_cast<int64_t>(extent);
      if (ext > 0 && numel > std::numeric_limits<int64_t>::max() / ext) {
        throw std::runtime_error("tensor extent overflow in " + path);
      }
      numel *= ext;
      shape.push_back(ext);
    }
    // An honest file has the data in its remaining bytes; checking before
    // the allocation turns a would-be bad_alloc into a clean error.
    if (static_cast<uint64_t>(numel) > r.remaining() / sizeof(float)) {
      throw std::runtime_error("checkpoint truncated: " + path);
    }
    Tensor t(shape);
    r.read(t.raw(), static_cast<uint64_t>(t.numel()) * sizeof(float));
    state.emplace(std::move(name), std::move(t));
  }
  return state;
}

void save_model(CausalLm& model, const std::string& path) {
  save_state_dict(model.state_dict(), path);
}

void load_model(CausalLm& model, const std::string& path) {
  model.load_state_dict(load_state_dict_file(path));
}

namespace {
constexpr const char* kConfigKey = "__config__";
}

namespace {
constexpr const char* kMaskPrefix = "__mask__.";
constexpr const char* kQuantPrefix = "__quant__.";
}  // namespace

void save_model_with_config(CausalLm& model, const std::string& path) {
  auto state = model.state_dict();

  // Compression state (masks + quant specs) rides along so a deployed
  // checkpoint is self-contained.
  for (TransformerBlock* b : model.blocks()) {
    for (Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      if (lin->prune_mask()) {
        state.emplace(kMaskPrefix + wname, *lin->prune_mask());
      }
      if (lin->quant_spec()) {
        const quant::QuantSpec& q = *lin->quant_spec();
        state.emplace(kQuantPrefix + wname,
                      Tensor({4}, std::vector<float>{
                                      static_cast<float>(q.bits),
                                      q.symmetric ? 1.0f : 0.0f,
                                      static_cast<float>(static_cast<int>(q.granularity)),
                                      static_cast<float>(q.group_size)}));
      }
    }
  }
  const ModelConfig& cfg = model.config();
  std::vector<float> packed = {
      static_cast<float>(cfg.vocab),   static_cast<float>(cfg.d_model),
      static_cast<float>(cfg.n_layers), static_cast<float>(cfg.n_heads),
      static_cast<float>(cfg.kv_heads()),
      static_cast<float>(cfg.ff_dim()), static_cast<float>(cfg.max_seq),
      cfg.tie_exit_heads ? 1.0f : 0.0f, cfg.swiglu ? 1.0f : 0.0f,
      static_cast<float>(cfg.exit_layers.size())};
  for (int64_t e : cfg.exit_layers) packed.push_back(static_cast<float>(e));
  const int64_t packed_size = static_cast<int64_t>(packed.size());
  state.emplace(kConfigKey, Tensor({packed_size}, std::move(packed)));
  save_state_dict(state, path);
}

std::unique_ptr<CausalLm> load_model_with_config(const std::string& path) {
  auto state = load_state_dict_file(path);
  const auto it = state.find(kConfigKey);
  if (it == state.end()) {
    throw std::runtime_error("checkpoint has no embedded config: " + path);
  }
  const Tensor& c = it->second;
  if (c.numel() < 10) throw std::runtime_error("malformed config entry in " + path);
  ModelConfig cfg;
  cfg.vocab = static_cast<int64_t>(c[0]);
  cfg.d_model = static_cast<int64_t>(c[1]);
  cfg.n_layers = static_cast<int64_t>(c[2]);
  cfg.n_heads = static_cast<int64_t>(c[3]);
  cfg.n_kv_heads = static_cast<int64_t>(c[4]);
  cfg.d_ff = static_cast<int64_t>(c[5]);
  cfg.max_seq = static_cast<int64_t>(c[6]);
  cfg.tie_exit_heads = c[7] != 0.0f;
  cfg.swiglu = c[8] != 0.0f;
  const int64_t n_exits = static_cast<int64_t>(c[9]);
  if (c.numel() != 10 + n_exits) throw std::runtime_error("malformed config entry in " + path);
  for (int64_t e = 0; e < n_exits; ++e) {
    cfg.exit_layers.push_back(static_cast<int64_t>(c[10 + e]));
  }
  state.erase(it);

  // Split out compression entries before loading parameters.
  std::map<std::string, Tensor> masks, quants;
  for (auto iter = state.begin(); iter != state.end();) {
    if (iter->first.rfind(kMaskPrefix, 0) == 0) {
      masks.emplace(iter->first.substr(std::string(kMaskPrefix).size()), iter->second);
      iter = state.erase(iter);
    } else if (iter->first.rfind(kQuantPrefix, 0) == 0) {
      quants.emplace(iter->first.substr(std::string(kQuantPrefix).size()), iter->second);
      iter = state.erase(iter);
    } else {
      ++iter;
    }
  }

  Rng rng(0);  // weights are overwritten immediately
  auto model = std::make_unique<CausalLm>(cfg, rng);
  model->load_state_dict(state);

  for (TransformerBlock* b : model->blocks()) {
    for (Linear* lin : b->linears()) {
      const std::string& wname = lin->weight().name;
      const auto qit = quants.find(wname);
      if (qit != quants.end()) {
        const Tensor& qv = qit->second;
        if (qv.numel() != 4) throw std::runtime_error("malformed quant entry for " + wname);
        quant::QuantSpec q;
        q.bits = static_cast<int>(qv[0]);
        q.symmetric = qv[1] != 0.0f;
        q.granularity = static_cast<quant::Granularity>(static_cast<int>(qv[2]));
        q.group_size = static_cast<int64_t>(qv[3]);
        lin->set_quant(q);
      }
      const auto mit = masks.find(wname);
      if (mit != masks.end()) lin->set_prune_mask(mit->second);
    }
  }
  return model;
}

}  // namespace edgellm::nn
