// Model-level LoRA helpers (LoRA tuning is one of the baselines the paper
// compares Edge-LLM against).
#pragma once

#include "nn/model.hpp"

namespace edgellm::nn {

/// Freezes every base parameter of the model, attaches rank-`rank` LoRA
/// adapters to all block Linear layers, and leaves the exit norms/heads
/// trainable (standard practice so the classifier can adapt).
void enable_lora_tuning(CausalLm& model, int64_t rank, float alpha, Rng& rng);

/// Removes all LoRA adapters and unfreezes base parameters.
void disable_lora_tuning(CausalLm& model);

/// Params that train under LoRA tuning (adapters + exit norms/heads).
std::vector<Param*> lora_trainable_params(CausalLm& model);

}  // namespace edgellm::nn
