#include "nn/norm.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace edgellm::nn {

RmsNorm::RmsNorm(std::string name, int64_t dim, float eps)
    : name_(std::move(name)), dim_(dim), eps_(eps) {
  check_arg(dim_ > 0, "RmsNorm: dim must be positive");
  check_arg(eps_ > 0.0f, "RmsNorm: eps must be positive");
  gain_ = Param(name_ + ".gain", Tensor({dim_}, 1.0f));
}

Tensor RmsNorm::forward(const Tensor& x) {
  check_arg(x.dim(-1) == dim_, name_ + ": feature mismatch");
  const int64_t rows = x.numel() / dim_;
  std::vector<float> inv;
  Tensor y = ops::rms_norm_lastdim(x, gain_.value, eps_, &inv);
  if (grad_enabled_) {
    cached_input_ = x.reshape({rows, dim_});
    cached_x_shape_ = x.shape();
    inv_rms_ = std::move(inv);
    has_cache_ = true;
  }
  return y;
}

Tensor RmsNorm::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_ && has_cache_, name_ + ": backward without cached forward");
  check_arg(grad_out.shape() == cached_x_shape_, name_ + ": grad shape mismatch");
  const int64_t rows = cached_input_.dim(0);
  Tensor gx(cached_x_shape_);
  // y_i = g_i * x_i * r with r = (mean(x^2)+eps)^{-1/2}:
  //   dL/dx_j = r * g_j * go_j - (r^3 * x_j / n) * sum_i(go_i * g_i * x_i)
  //   dL/dg_i = go_i * x_i * r
  for (int64_t r = 0; r < rows; ++r) {
    const float ir = inv_rms_[static_cast<size_t>(r)];
    double dot = 0.0;
    for (int64_t d = 0; d < dim_; ++d) {
      const float go = grad_out[r * dim_ + d];
      const float x = cached_input_[r * dim_ + d];
      dot += static_cast<double>(go) * gain_.value[d] * x;
      gain_.grad[d] += go * x * ir;
    }
    const float c = static_cast<float>(dot) * ir * ir * ir / static_cast<float>(dim_);
    for (int64_t d = 0; d < dim_; ++d) {
      const float go = grad_out[r * dim_ + d];
      const float x = cached_input_[r * dim_ + d];
      gx[r * dim_ + d] = ir * gain_.value[d] * go - c * x;
    }
  }
  return gx;
}

void RmsNorm::collect_params(std::vector<Param*>& out) { out.push_back(&gain_); }

int64_t RmsNorm::cached_activation_bytes() const {
  if (!has_cache_) return 0;
  return tensor_bytes(cached_input_) +
         static_cast<int64_t>(inv_rms_.size() * sizeof(float));
}

void RmsNorm::clear_cache() {
  has_cache_ = false;
  cached_input_ = Tensor();
  inv_rms_.clear();
}

}  // namespace edgellm::nn
