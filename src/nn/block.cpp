#include "nn/block.hpp"

#include "tensor/ops.hpp"

namespace edgellm::nn {

TransformerBlock::TransformerBlock(std::string name, int64_t d_model, int64_t n_heads,
                                   int64_t d_ff, Rng& rng, int64_t n_kv_heads,
                                   MlpKind mlp_kind)
    : name_(std::move(name)) {
  norm1_ = std::make_unique<RmsNorm>(name_ + ".norm1", d_model);
  attn_ = std::make_unique<MultiHeadAttention>(name_ + ".attn", d_model, n_heads, rng,
                                               n_kv_heads);
  norm2_ = std::make_unique<RmsNorm>(name_ + ".norm2", d_model);
  mlp_ = std::make_unique<Mlp>(name_ + ".mlp", d_model, d_ff, rng, mlp_kind);
}

Tensor TransformerBlock::forward(const Tensor& x) {
  norm1_->set_grad_enabled(grad_enabled_);
  attn_->set_grad_enabled(grad_enabled_);
  norm2_->set_grad_enabled(grad_enabled_);
  mlp_->set_grad_enabled(grad_enabled_);

  Tensor h = ops::add(x, attn_->forward(norm1_->forward(x)));
  return ops::add(h, mlp_->forward(norm2_->forward(h)));
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_, name_ + ": backward while grad disabled");
  // Second residual: h + mlp(norm2(h))
  Tensor grad_h = ops::add(grad_out, norm2_->backward(mlp_->backward(grad_out)));
  // First residual: x + attn(norm1(x))
  return ops::add(grad_h, norm1_->backward(attn_->backward(grad_h)));
}

void TransformerBlock::collect_params(std::vector<Param*>& out) {
  norm1_->collect_params(out);
  attn_->collect_params(out);
  norm2_->collect_params(out);
  mlp_->collect_params(out);
}

int64_t TransformerBlock::cached_activation_bytes() const {
  return norm1_->cached_activation_bytes() + attn_->cached_activation_bytes() +
         norm2_->cached_activation_bytes() + mlp_->cached_activation_bytes();
}

void TransformerBlock::clear_cache() {
  norm1_->clear_cache();
  attn_->clear_cache();
  norm2_->clear_cache();
  mlp_->clear_cache();
}

void TransformerBlock::set_compression(std::optional<quant::QuantSpec> qspec,
                                       std::optional<prune::PruneSpec> pspec) {
  for (Linear* lin : linears()) {
    lin->set_quant(qspec);
    lin->set_prune(pspec);
  }
}

std::vector<Linear*> TransformerBlock::linears() {
  std::vector<Linear*> out = {&attn_->q_proj(), &attn_->k_proj(), &attn_->v_proj(),
                              &attn_->out_proj()};
  for (Linear* lin : mlp_->linears()) out.push_back(lin);
  return out;
}

}  // namespace edgellm::nn
