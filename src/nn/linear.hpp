// Fully-connected layer with optional LUC compression (prune mask +
// fake-quantization) applied to its weight.
#pragma once

#include <optional>
#include <string>

#include "nn/module.hpp"
#include "prune/prune.hpp"
#include "quant/packed.hpp"
#include "quant/quant.hpp"
#include "tensor/rng.hpp"

namespace edgellm::nn {

/// y = x * W^T + b, where W is [out, in].
///
/// When a compression policy is set, forward uses the *effective* weight
/// fake_quant(W * mask); backward applies the straight-through estimator
/// for quantization and masks the weight gradient so pruned entries stay
/// zero across optimizer steps.
class Linear final : public Module {
 public:
  /// Kaiming-uniform initialisation, like torch.nn.Linear.
  Linear(std::string name, int64_t in_features, int64_t out_features, bool bias, Rng& rng);

  /// x is [..., in]; returns [..., out]. Caches x when grad is enabled.
  Tensor forward(const Tensor& x);

  /// grad_out is [..., out] matching the last forward; accumulates weight
  /// and bias grads and returns grad w.r.t. x.
  Tensor backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  // --- compression policy -------------------------------------------------

  /// Sets (or clears) the quantization spec used to build the effective
  /// weight each forward.
  void set_quant(std::optional<quant::QuantSpec> spec);

  /// Builds a magnitude mask from the *current* weights (or clears it).
  void set_prune(std::optional<prune::PruneSpec> spec);

  /// Installs an explicit keep-mask (e.g. restored from a checkpoint)
  /// instead of deriving one from the current weights.
  void set_prune_mask(Tensor mask);

  void clear_compression();

  const std::optional<quant::QuantSpec>& quant_spec() const { return qspec_; }
  const std::optional<prune::PruneSpec>& prune_spec() const { return pspec_; }
  const std::optional<Tensor>& prune_mask() const { return mask_; }

  /// The weight actually used by forward (compressed view of `weight()`).
  Tensor effective_weight() const;

  /// Stored bytes of the weight under the current policy (fp16 baseline
  /// when uncompressed).
  double weight_storage_bytes() const;

  /// True when the weight can be held as a PackedMatrix for decoding:
  /// per-row symmetric quantization at 4 or 8 bits (PackedMatrix's storage
  /// format) and no LoRA adapter (adapter deltas are fp32). Tuned/LoRA
  /// layers stay on the fp32 effective-weight path.
  bool packable() const;

  /// Packs the (masked) weight under the current quant spec. Requires
  /// packable(). Computing against the result uses deployed integer-kernel
  /// numerics (activations times raw integers, scaled once per output) —
  /// close to, but not bitwise equal to, matmul against effective_weight().
  quant::PackedMatrix packed_weight() const;

  // --- LoRA adapter (baseline tuning method) ------------------------------

  /// Attaches a rank-`rank` LoRA adapter: y += (alpha/rank) * x A^T B^T.
  /// A is N(0, 0.02) and B starts at zero, so the adapter is a no-op until
  /// trained. The base weight is frozen by the caller (see nn/lora.hpp).
  void enable_lora(int64_t rank, float alpha, Rng& rng);
  void disable_lora();
  bool lora_enabled() const { return lora_a_.has_value(); }
  Param& lora_a() { return *lora_a_; }
  Param& lora_b() { return *lora_b_; }

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  bool has_bias() const { return bias_.has_value(); }
  Param& bias() { return *bias_; }

 private:
  std::string name_;
  int64_t in_;
  int64_t out_;
  Param weight_;
  std::optional<Param> bias_;

  std::optional<quant::QuantSpec> qspec_;
  std::optional<prune::PruneSpec> pspec_;
  std::optional<Tensor> mask_;

  std::optional<Param> lora_a_;  ///< [rank, in]
  std::optional<Param> lora_b_;  ///< [out, rank]
  float lora_scale_ = 0.0f;

  bool has_cache_ = false;
  Tensor cached_input_;  ///< flattened [rows, in]
  Shape cached_x_shape_; ///< original input shape for grad reshape
};

}  // namespace edgellm::nn
