#include "nn/embedding.hpp"

namespace edgellm::nn {

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng)
    : name_(std::move(name)), vocab_(vocab), dim_(dim) {
  check_arg(vocab_ > 0 && dim_ > 0, "Embedding: vocab and dim must be positive");
  weight_ = Param(name_ + ".weight", randn({vocab_, dim_}, rng, 0.0f, 0.02f));
}

Tensor Embedding::forward(const std::vector<int64_t>& tokens) {
  const int64_t n = static_cast<int64_t>(tokens.size());
  check_arg(n > 0, name_ + ": empty token list");
  Tensor out({n, dim_});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = tokens[static_cast<size_t>(i)];
    check_arg(t >= 0 && t < vocab_, name_ + ": token id out of range");
    for (int64_t d = 0; d < dim_; ++d) out[i * dim_ + d] = weight_.value[t * dim_ + d];
  }
  if (grad_enabled_) {
    cached_tokens_ = tokens;
    has_cache_ = true;
  }
  return out;
}

void Embedding::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_ && has_cache_, name_ + ": backward without cached forward");
  const int64_t n = static_cast<int64_t>(cached_tokens_.size());
  check_arg(grad_out.ndim() == 2 && grad_out.dim(0) == n && grad_out.dim(1) == dim_,
            name_ + ": grad shape mismatch");
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = cached_tokens_[static_cast<size_t>(i)];
    for (int64_t d = 0; d < dim_; ++d) weight_.grad[t * dim_ + d] += grad_out[i * dim_ + d];
  }
}

void Embedding::collect_params(std::vector<Param*>& out) { out.push_back(&weight_); }

int64_t Embedding::cached_activation_bytes() const {
  return has_cache_ ? static_cast<int64_t>(cached_tokens_.size() * sizeof(int64_t)) : 0;
}

void Embedding::clear_cache() {
  has_cache_ = false;
  cached_tokens_.clear();
}

}  // namespace edgellm::nn
