// Pre-norm transformer block: x + MHA(RMSNorm(x)); x + MLP(RMSNorm(x)).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/attention.hpp"
#include "nn/mlp.hpp"
#include "nn/norm.hpp"

namespace edgellm::nn {

/// One decoder layer. LUC compression policies are applied per block: the
/// same bit-width / prune spec goes to all six weight matrices inside
/// (Q, K, V, O, FC1, FC2), matching the paper's layer-wise granularity.
class TransformerBlock final : public Module {
 public:
  TransformerBlock(std::string name, int64_t d_model, int64_t n_heads, int64_t d_ff, Rng& rng,
                   int64_t n_kv_heads = 0, MlpKind mlp_kind = MlpKind::kGelu);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  /// Applies a layer-wise compression policy to every Linear inside.
  void set_compression(std::optional<quant::QuantSpec> qspec,
                       std::optional<prune::PruneSpec> pspec);

  /// The weight-bearing Linear layers (Q, K, V, O + the MLP's 2 or 3).
  std::vector<Linear*> linears();

  MultiHeadAttention& attention() { return *attn_; }
  Mlp& mlp() { return *mlp_; }
  RmsNorm& norm1() { return *norm1_; }
  RmsNorm& norm2() { return *norm2_; }

 private:
  std::string name_;
  std::unique_ptr<RmsNorm> norm1_, norm2_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace edgellm::nn
