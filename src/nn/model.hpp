// Decoder-only causal language model with multiple early-exit heads and
// depth-limited backpropagation — the substrate Edge-LLM's adaptive layer
// tuning & voting (paper component 2) operates on.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "nn/block.hpp"
#include "nn/embedding.hpp"

namespace edgellm::nn {

/// Static architecture description.
struct ModelConfig {
  int64_t vocab = 128;
  int64_t d_model = 64;
  int64_t n_layers = 6;
  int64_t n_heads = 4;
  int64_t n_kv_heads = 0;  ///< 0 means n_heads; < n_heads enables GQA
  int64_t d_ff = 0;     ///< 0 means 4 * d_model
  int64_t max_seq = 64;
  /// Depths (1-based block counts) that own an exit head. Must be sorted
  /// ascending; empty means {n_layers}. The full depth is always added.
  std::vector<int64_t> exit_layers;
  /// Share one LM head across exits (per-exit norms stay separate).
  bool tie_exit_heads = true;
  /// LLaMA-style SwiGLU feed-forward (3 matrices) instead of GELU (2).
  bool swiglu = false;

  int64_t ff_dim() const { return d_ff > 0 ? d_ff : 4 * d_model; }
  int64_t kv_heads() const { return n_kv_heads > 0 ? n_kv_heads : n_heads; }
  /// Feature width of the K/V projections.
  int64_t kv_dim() const { return kv_heads() * (d_model / n_heads); }
};

/// How far to run and how deep to backpropagate in one training step.
struct ForwardPlan {
  int64_t exit_layer = 0;      ///< run blocks [0, exit_layer); must be a registered exit
  int64_t backprop_depth = 0;  ///< topmost blocks [exit-depth, exit) cache + train
  bool update_embeddings = false;  ///< requires backprop_depth == exit_layer
  /// Gradient checkpointing (the classic memory baseline Edge-LLM is
  /// compared against): forward stores only each block's input; backward
  /// re-runs one block's forward at a time to rebuild its caches. Requires
  /// backprop_depth == exit_layer. Trades ~one extra forward pass of
  /// compute for O(1)-blocks of activation memory.
  bool checkpoint = false;

  /// Vanilla full tuning through all `n_layers` blocks.
  static ForwardPlan full(int64_t n_layers) {
    return {n_layers, n_layers, true, false};
  }

  /// Full tuning with gradient checkpointing.
  static ForwardPlan full_checkpointed(int64_t n_layers) {
    return {n_layers, n_layers, true, true};
  }
};

/// GPT-style causal LM: token + learned positional embeddings, pre-norm
/// blocks, per-exit RMSNorm heads.
class CausalLm final : public Module {
 public:
  CausalLm(ModelConfig cfg, Rng& rng);

  const ModelConfig& config() const { return cfg_; }
  const std::vector<int64_t>& exit_layers() const { return cfg_.exit_layers; }

  // --- training path -------------------------------------------------------

  /// Runs tokens ([batch * seq] ids, row-major) through blocks [0, exit) and
  /// the exit head; returns logits [batch * seq, vocab]. Blocks below the
  /// backprop window run without activation caching.
  Tensor forward(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
                 const ForwardPlan& plan);

  /// Backward for the last forward(); accumulates grads in the window.
  void backward(const Tensor& grad_logits);

  /// Params the plan's backward touches (optimizer scope for this step).
  std::vector<Param*> params_for_plan(const ForwardPlan& plan);

  // --- eval paths ----------------------------------------------------------

  /// Logits [batch * seq, vocab] at the given exit, no caching.
  Tensor forward_eval(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
                      int64_t exit_layer);

  /// Logits at every registered exit from a single pass, no caching.
  /// Returned in `exit_layers()` order.
  std::vector<Tensor> forward_all_exits(const std::vector<int64_t>& tokens, int64_t batch,
                                        int64_t seq);

  /// Puts every module (recursively) into inference mode: grad — and thus
  /// activation caching — disabled, cached activations dropped. The decode
  /// paths (nn/decoder) require this because they drive child modules
  /// directly and must not mutate shared model state: the serving engine
  /// (src/serve) decodes from several threads against one model. The next
  /// training forward() re-enables whatever its plan needs.
  void set_eval();

  // --- module plumbing -----------------------------------------------------

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  std::vector<TransformerBlock*> blocks();
  Embedding& token_embedding() { return *tok_emb_; }
  Param& positional_embedding() { return pos_emb_; }

  /// Exit-head components by exit index (see exit_index()).
  RmsNorm& exit_norm(int64_t exit_idx) { return *exit_norms_.at(static_cast<size_t>(exit_idx)); }
  Linear& exit_head(int64_t exit_idx) { return head_for_exit(exit_idx); }

  /// Validates an exit depth and returns its index into exit_layers().
  int64_t exit_index(int64_t exit_layer) const;

  /// Copies of all parameter tensors keyed by name.
  std::map<std::string, Tensor> state_dict();

  /// Restores parameters (shape-checked by name; missing names throw).
  void load_state_dict(const std::map<std::string, Tensor>& state);

  /// Total weight storage bytes under current compression policies
  /// (fp16 baseline for uncompressed tensors).
  double weight_storage_bytes();

 private:
  ModelConfig cfg_;
  std::unique_ptr<Embedding> tok_emb_;
  Param pos_emb_;  ///< [max_seq, d_model]
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::vector<std::unique_ptr<RmsNorm>> exit_norms_;   ///< one per exit
  std::vector<std::unique_ptr<Linear>> exit_heads_;    ///< one, or one per exit

  // Forward state for backward().
  bool has_plan_ = false;
  ForwardPlan plan_;
  int64_t cached_batch_ = 0, cached_seq_ = 0;
  bool embeddings_trained_ = false;
  std::vector<Tensor> checkpoint_inputs_;  ///< per-block inputs when checkpointing
  int64_t peak_backward_cache_bytes_ = 0;  ///< transient block cache during ckpt bwd

 public:
  /// Largest transient activation cache observed during the last
  /// checkpointed backward (0 otherwise).
  int64_t peak_backward_cache_bytes() const { return peak_backward_cache_bytes_; }

 private:

  Linear& head_for_exit(int64_t exit_idx);
  Tensor embed(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
               bool cache_for_grad);
};

}  // namespace edgellm::nn
