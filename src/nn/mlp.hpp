// Position-wise feed-forward network: classic GELU MLP or the LLaMA-style
// SwiGLU variant (gate/up/down, three weight matrices, no biases).
#pragma once

#include <memory>
#include <string>

#include "nn/linear.hpp"

namespace edgellm::nn {

enum class MlpKind {
  kGelu,    ///< y = fc2(gelu(fc1(x))), biased
  kSwiGlu,  ///< y = down(silu(gate(x)) * up(x)), bias-free
};

class Mlp final : public Module {
 public:
  Mlp(std::string name, int64_t d_model, int64_t d_ff, Rng& rng,
      MlpKind kind = MlpKind::kGelu);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  MlpKind kind() const { return kind_; }

  /// The weight-bearing Linear layers (2 for GELU, 3 for SwiGLU).
  std::vector<Linear*> linears();

  Linear& fc1() { return *fc1_; }
  Linear& fc2() { return *fc2_; }
  /// SwiGLU only: the "up" projection.
  Linear& fc3() { return *fc3_; }

 private:
  std::string name_;
  MlpKind kind_;
  std::unique_ptr<Linear> fc1_, fc2_, fc3_;  ///< gate/down/up under SwiGLU
  bool has_cache_ = false;
  Tensor pre_act_;  ///< fc1 output before the activation
  Tensor up_;       ///< SwiGLU only: fc3 output
};

}  // namespace edgellm::nn
