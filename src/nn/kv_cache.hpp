// Per-sequence key/value storage for incremental decoding, fp32 or
// int8-quantized (symmetric, one scale per cached row — the edge-standard
// 4x KV compression).
//
// Extracted from IncrementalDecoder so the serving layer (src/serve) can
// pool many sequences' caches behind one global byte budget: a KvCache is
// exactly the unit a serve::KvCachePool hands out per slot.
//
// KvSequenceView is the row-addressed interface the decode path reads and
// writes through. Attention never assumes contiguous storage — it asks for
// one (layer, position) row at a time — so the serving layer can back a
// sequence with paged blocks (serve::PagedKvPool) instead of the
// contiguous vectors here, and the decode stays bitwise identical: the
// same float rows come back in the same order regardless of where they
// live.
#pragma once

#include <cstdint>
#include <vector>

namespace edgellm::nn {

/// Abstract row-addressed view of one sequence's KV cache. Positions are
/// dense per layer: append() adds row `positions(layer)` and reads address
/// rows [0, positions(layer)).
class KvSequenceView {
 public:
  virtual ~KvSequenceView() = default;

  /// Appends one position's K and V rows (`kv_dim` floats each) to `layer`.
  virtual void append(int64_t layer, const float* k, const float* v) = 0;

  /// Dequantises (or copies) a cached row into `out` (`kv_dim` floats).
  virtual void load_k(int64_t layer, int64_t pos, float* out) const = 0;
  virtual void load_v(int64_t layer, int64_t pos, float* out) const = 0;

  /// Direct pointer to a cached fp32 row — nullptr when quantized. Lets hot
  /// attention loops read rows in place instead of copying via load_k/load_v.
  virtual const float* k_row(int64_t layer, int64_t pos) const = 0;
  virtual const float* v_row(int64_t layer, int64_t pos) const = 0;

  virtual int64_t n_layers() const = 0;
  virtual int64_t kv_dim() const = 0;
  virtual bool quantized() const = 0;

  /// Cached positions in `layer` (layers above an early exit stay empty).
  virtual int64_t positions(int64_t layer) const = 0;

  /// Drops every cached position >= `n` in every layer (no-op for layers
  /// already at or below `n`). This is the speculative-decode rewind:
  /// drafted-but-rejected rows are discarded so the next append lands at
  /// position `n`. Backends must leave rows [0, n) bit-identical.
  virtual void truncate(int64_t n) = 0;

  /// Bytes currently held by storage this sequence owns (payload +
  /// quantisation scales; paged backends exclude shared prefix blocks).
  virtual int64_t bytes() const = 0;
};

/// Contiguous per-sequence storage: one growing vector per layer. The
/// single-sequence decoder's cache and the slot-addressed pool's unit.
class KvCache final : public KvSequenceView {
 public:
  KvCache() = default;
  KvCache(int64_t n_layers, int64_t kv_dim, bool quantize) {
    configure(n_layers, kv_dim, quantize);
  }

  /// Re-initialises storage for a new sequence (drops all positions).
  void configure(int64_t n_layers, int64_t kv_dim, bool quantize);

  /// Drops all cached positions, keeping the configuration.
  void clear();

  void append(int64_t layer, const float* k, const float* v) override;

  void load_k(int64_t layer, int64_t pos, float* out) const override;
  void load_v(int64_t layer, int64_t pos, float* out) const override;

  const float* k_row(int64_t layer, int64_t pos) const override {
    return quantize_ ? nullptr : k_[static_cast<std::size_t>(layer)].data() + pos * kv_dim_;
  }
  const float* v_row(int64_t layer, int64_t pos) const override {
    return quantize_ ? nullptr : v_[static_cast<std::size_t>(layer)].data() + pos * kv_dim_;
  }

  int64_t n_layers() const override { return n_layers_; }
  int64_t kv_dim() const override { return kv_dim_; }
  bool quantized() const override { return quantize_; }

  int64_t positions(int64_t layer) const override;

  void truncate(int64_t n) override;

  /// Bytes currently held (payload + quantisation scales).
  int64_t bytes() const override;

  /// Bytes one cached position costs across `n_layers` layers (K + V
  /// payload, plus one fp32 scale per row when quantized).
  static int64_t bytes_per_position(int64_t n_layers, int64_t kv_dim, bool quantize) {
    const int64_t per_row =
        quantize ? kv_dim + static_cast<int64_t>(sizeof(float))
                 : kv_dim * static_cast<int64_t>(sizeof(float));
    return n_layers * 2 * per_row;
  }

 private:
  int64_t n_layers_ = 0;
  int64_t kv_dim_ = 0;
  bool quantize_ = false;
  // Exactly one representation is populated depending on quantize_.
  std::vector<std::vector<float>> k_, v_;
  std::vector<std::vector<int8_t>> kq_, vq_;
  std::vector<std::vector<float>> kq_scales_, vq_scales_;

  void append_quantized(const float* row, std::vector<int8_t>& data, std::vector<float>& scales);
  void load_row(const std::vector<float>* fp, const std::vector<int8_t>* q,
                const std::vector<float>* scales, int64_t pos, float* out) const;
};

}  // namespace edgellm::nn
