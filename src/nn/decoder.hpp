// Incremental (KV-cached) decoding and sampling — the inference path an
// edge deployment runs after adaptation. Eval-only: reuses the model's own
// (possibly compressed) Linear/RMSNorm modules for projections, with a
// per-layer key/value cache so each new token costs O(T) attention instead
// of O(T^2) recompute.
//
// Two entry points share one implementation:
//   - IncrementalDecoder: the single-sequence convenience wrapper.
//   - batched_decode_step(): advances many sequences one token in a single
//     call, stacking their rows through each layer's projections so the
//     weight materialisation (effective_weight) and per-call tensor
//     allocations are paid once per layer instead of once per sequence —
//     the serving engine's (src/serve) continuous-batching tick.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "nn/kv_cache.hpp"
#include "nn/model.hpp"

namespace edgellm::nn {

/// Materialised effective weights for decoding against a frozen (eval-mode)
/// model. Linear::forward rebuilds its effective weight on every call — a
/// full copy, plus prune/fake-quant work when compression is set. Across
/// thousands of decode ticks over weights that never change, that rebuild
/// is pure overhead. build() snapshots every block projection's and exit
/// head's effective weight once; batched_decode_step then multiplies
/// against the snapshot with the same kernels in the same order, so outputs
/// stay bitwise identical to the uncached path.
///
/// The snapshot is read-only and does NOT track the model: rebuild after
/// any weight update or compression-policy change. LoRA-enabled Linears are
/// skipped (their rows fall back to Linear::forward).
///
/// With `pack_compressed`, packable layers (per-row symmetric int4/int8,
/// no LoRA — see Linear::packable) are held as PackedMatrix instead of a
/// dequantized fp32 snapshot, and decode multiplies against the packed
/// integers (quant::packed_matmul_nt). That is the deployed-kernel
/// numerics — activations times raw integers, one scale per output — so it
/// is close to, but NOT bitwise equal to, the fp32 effective-weight path;
/// it is therefore opt-in. Default build() stays bitwise identical to the
/// uncached path. Non-packable layers keep fp32 snapshots either way.
class DecodeWeightCache {
 public:
  DecodeWeightCache() = default;
  explicit DecodeWeightCache(CausalLm& model, bool pack_compressed = false) {
    build(model, pack_compressed);
  }

  /// Snapshots the effective weight of every block projection and exit head
  /// (tied heads are stored once). Clears any previous snapshot. With
  /// `pack_compressed`, packable layers are stored packed (see class doc).
  void build(CausalLm& model, bool pack_compressed = false);

  bool built() const { return !weights_.empty() || !packed_.empty(); }

  /// The cached fp32 weight for `lin`, or nullptr when uncached (LoRA
  /// layer, packed entry, or a Linear not part of build()'s model).
  const Tensor* find(const Linear* lin) const;

  /// The packed weight for `lin`, or nullptr (only non-null entries exist
  /// after build(model, true)).
  const quant::PackedMatrix* find_packed(const Linear* lin) const;

  /// Bytes held by the snapshot (what the cache costs an edge deployment).
  /// Packed entries count their packed payload, not dequantized fp32.
  int64_t bytes() const;

 private:
  std::unordered_map<const Linear*, Tensor> weights_;
  std::unordered_map<const Linear*, quant::PackedMatrix> packed_;
};

/// Sampling controls for generate().
struct GenerateConfig {
  int64_t max_new_tokens = 32;
  float temperature = 1.0f;  ///< <= 0 means greedy decoding
  int64_t top_k = 0;         ///< 0 disables top-k filtering
  int64_t exit_layer = 0;    ///< 0 means the final exit
  /// Compute threads for the deterministic tensor backend
  /// (tensor/parallel.hpp). 0 leaves the process-global setting alone;
  /// > 0 overrides it for the duration of this generate() call only
  /// (the prior count is restored on return). Outputs are bitwise
  /// identical at any value.
  int64_t n_threads = 0;
};

/// Throws std::invalid_argument unless cfg is sane for `model`:
/// max_new_tokens > 0, 0 <= top_k <= vocab, finite temperature,
/// n_threads >= 0, and exit_layer either 0 or a registered exit depth.
void validate_generate_config(const GenerateConfig& cfg, const CausalLm& model);

/// One sequence's slice of a batched decode tick.
struct BatchedSeq {
  /// This sequence's cache (disjoint across seqs). Row-addressed view, so
  /// contiguous (KvCache) and paged (serve::PagedKvPool) storage decode
  /// bitwise identically.
  KvSequenceView* cache = nullptr;
  int64_t position = 0;      ///< tokens already cached
  int64_t token = 0;         ///< token to feed this tick
  int64_t exit_layer = 0;    ///< 0 means the final exit
  bool all_exits = false;    ///< collect logits at every registered exit (voting)
  bool want_logits = true;   ///< false skips the exit head (prompt prefill)
  /// Output: [vocab] logits per requested exit — one entry, or one per
  /// registered exit in exit_layers() order when all_exits is set; empty
  /// when want_logits is false.
  std::vector<Tensor> logits;
};

/// Advances every sequence by one token in one call. Rows are stacked
/// through each layer's norm/projection/MLP so per-layer overheads amortise
/// across the batch; attention runs per sequence against its own cache.
/// Results are bitwise identical to single-sequence decoding.
///
/// `weights`, when non-null, supplies pre-materialised effective weights
/// (see DecodeWeightCache) so projections skip the per-call weight rebuild;
/// the caller must have built it against this model in its current state.
///
/// Requires model.set_eval() to have been called (asserted); the model is
/// only read, so concurrent calls on disjoint caches are safe (a shared
/// DecodeWeightCache is read-only too).
void batched_decode_step(CausalLm& model, std::span<BatchedSeq> seqs,
                         const DecodeWeightCache* weights = nullptr);

/// Single-sequence convenience wrapper over batched_decode_step: feeds
/// `token` at `position`, returns logits at `exit_layer` (0 = final).
Tensor decode_step(CausalLm& model, KvCache& cache, int64_t position, int64_t token,
                   int64_t exit_layer);

/// Like decode_step but returns logits at every registered exit (the
/// serving engine's voted-exit decode path).
std::vector<Tensor> decode_step_all_exits(CausalLm& model, KvCache& cache, int64_t position,
                                          int64_t token);

/// Result of one self-speculative draft-and-verify round.
struct SpeculativeResult {
  /// Verified tokens emitted this round, in order (1..k of them; empty only
  /// when the first verified row was non-finite).
  std::vector<int64_t> tokens;
  int64_t drafted = 0;          ///< shallow draft tokens proposed (k - 1)
  int64_t accepted_drafts = 0;  ///< drafts the full-depth pass confirmed
  bool nonfinite = false;       ///< a verified row's logits were non-finite
};

/// One self-speculative decode round (EDGE-LLM's early-exit heads double as
/// a free draft model): feed `token` at `position`, draft k-1 continuation
/// tokens greedily from the registered exit at `draft_depth`, then verify
/// all k fed tokens in ONE stacked pass through the remaining layers and
/// emit the longest prefix on which draft and full depth agree — plus the
/// first verified token, which is always emitted, so every round advances.
/// Drafted rows' shallow KV and hidden states are reused by the verify pass
/// (recomputing them would be bit-identical), so a full-acceptance round
/// costs the same layer-rows as k sequential full-depth steps; only
/// rejected rows are wasted work.
///
/// Greedy-determinism contract: the emitted stream is bitwise identical to
/// non-speculative full-depth greedy decode. The stacked verify pass runs
/// the same kernels row-independently and appends/attends per row in
/// sequence order, so each verified row sees exactly the cache a sequential
/// decode would; rejected rows are truncated before they are ever read.
///
/// On return the cache holds position + tokens.size() full-depth rows (the
/// last emitted token is not yet fed — same contract as decode_step).
/// `draft_depth` must be a registered exit; `k >= 1` (k == 1 drafts
/// nothing and degenerates to one plain full-depth step); the caller must
/// ensure position + k <= max_seq. With `nonfinite`, emission stopped at
/// the bad row and the cache was rewound to the emitted length.
SpeculativeResult speculative_decode_step(CausalLm& model, KvSequenceView& cache,
                                          int64_t position, int64_t token, int64_t draft_depth,
                                          int64_t k, const DecodeWeightCache* weights = nullptr);

/// Single-sequence incremental decoder over a CausalLm.
///
/// Usage: prime(prompt) once, then step(token) per generated token; logits()
/// after each call gives next-token logits. Or just call generate().
/// reset() returns the decoder to its initial state so one decoder can
/// serve successive prompts.
///
/// With `quantize_kv`, cached keys/values are stored as per-position int8
/// (symmetric, one scale per cached vector) — 4x less cache memory for a
/// small numeric perturbation; the edge-standard KV compression.
class IncrementalDecoder {
 public:
  explicit IncrementalDecoder(CausalLm& model, int64_t exit_layer = 0,
                              bool quantize_kv = false);

  /// Resets the cache and runs the prompt through the model.
  void prime(const std::vector<int64_t>& prompt);

  /// Appends one token and updates the cache.
  void step(int64_t token);

  /// Drops all cached state; the decoder is ready for a fresh prime().
  void reset();

  /// Next-token logits [vocab] after the last prime()/step().
  const Tensor& logits() const { return logits_; }

  /// Tokens currently in the cache.
  int64_t position() const { return position_; }

  /// Bytes held by the KV cache right now (the memory cost of incremental
  /// decoding that edge deployments budget for).
  int64_t kv_cache_bytes() const { return cache_.bytes(); }

  /// Samples a continuation of the prompt. Returns only the new tokens.
  std::vector<int64_t> generate(const std::vector<int64_t>& prompt, const GenerateConfig& cfg,
                                Rng& rng);

  bool quantized_kv() const { return cache_.quantized(); }

 private:
  CausalLm& model_;
  int64_t exit_layer_;
  int64_t position_ = 0;
  KvCache cache_;
  Tensor logits_;
};

/// Samples one token id from logits under the config (greedy / temperature
/// / top-k).
int64_t sample_token(const Tensor& logits, const GenerateConfig& cfg, Rng& rng);

}  // namespace edgellm::nn
