// Incremental (KV-cached) decoding and sampling — the inference path an
// edge deployment runs after adaptation. Eval-only: reuses the model's own
// (possibly compressed) Linear/RMSNorm modules for projections, with a
// per-layer key/value cache so each new token costs O(T) attention instead
// of O(T^2) recompute.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace edgellm::nn {

/// Sampling controls for generate().
struct GenerateConfig {
  int64_t max_new_tokens = 32;
  float temperature = 1.0f;  ///< <= 0 means greedy decoding
  int64_t top_k = 0;         ///< 0 disables top-k filtering
  int64_t exit_layer = 0;    ///< 0 means the final exit
};

/// Single-sequence incremental decoder over a CausalLm.
///
/// Usage: prime(prompt) once, then step(token) per generated token; logits()
/// after each call gives next-token logits. Or just call generate().
///
/// With `quantize_kv`, cached keys/values are stored as per-position int8
/// (symmetric, one scale per cached vector) — 4x less cache memory for a
/// small numeric perturbation; the edge-standard KV compression.
class IncrementalDecoder {
 public:
  explicit IncrementalDecoder(CausalLm& model, int64_t exit_layer = 0,
                              bool quantize_kv = false);

  /// Resets the cache and runs the prompt through the model.
  void prime(const std::vector<int64_t>& prompt);

  /// Appends one token and updates the cache.
  void step(int64_t token);

  /// Next-token logits [vocab] after the last prime()/step().
  const Tensor& logits() const { return logits_; }

  /// Tokens currently in the cache.
  int64_t position() const { return position_; }

  /// Bytes held by the KV cache right now (the memory cost of incremental
  /// decoding that edge deployments budget for).
  int64_t kv_cache_bytes() const;

  /// Samples a continuation of the prompt. Returns only the new tokens.
  std::vector<int64_t> generate(const std::vector<int64_t>& prompt, const GenerateConfig& cfg,
                                Rng& rng);

  bool quantized_kv() const { return quantize_kv_; }

 private:
  CausalLm& model_;
  int64_t exit_layer_;
  bool quantize_kv_;
  int64_t position_ = 0;
  // Per layer: keys/values for all past positions, stored [pos][d_model]
  // flattened (head split is done on the fly). Exactly one representation
  // is populated depending on quantize_kv_.
  std::vector<std::vector<float>> k_cache_;
  std::vector<std::vector<float>> v_cache_;
  std::vector<std::vector<int8_t>> kq_cache_;
  std::vector<std::vector<int8_t>> vq_cache_;
  std::vector<std::vector<float>> kq_scales_;  ///< per layer, one per position
  std::vector<std::vector<float>> vq_scales_;
  Tensor logits_;

  void append_token(int64_t token);
  void store_kv(int64_t layer, const Tensor& k, const Tensor& v);
  float k_at(int64_t layer, int64_t pos, int64_t dim) const;
  float v_at(int64_t layer, int64_t pos, int64_t dim) const;
};

/// Samples one token id from logits under the config (greedy / temperature
/// / top-k).
int64_t sample_token(const Tensor& logits, const GenerateConfig& cfg, Rng& rng);

}  // namespace edgellm::nn
