// Optimizers with per-parameter state and byte accounting.
//
// The optimizer-state byte accounting feeds the peak-memory experiments:
// adaptive layer tuning only materialises optimizer state for the layers it
// actually updates, which is part of the paper's memory saving.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/module.hpp"

namespace edgellm::nn {

/// Clips the global L2 norm of the given params' grads to `max_norm`.
/// Returns the pre-clip norm.
float clip_grad_norm(const std::vector<Param*>& params, float max_norm);

/// True when every trainable param's gradient is finite (the numeric-fault
/// guard in core::AdaptiveLayerTuner checks this before letting an update
/// touch weights or optimizer moments).
bool grads_finite(const std::vector<Param*>& params);

/// Base optimizer over an explicit parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from accumulated grads (trainable params only).
  virtual void step() = 0;

  /// Bytes of optimizer state currently allocated.
  virtual int64_t state_bytes() const = 0;

  /// Replaces the learning rate (for schedules driven by the caller).
  virtual void set_lr(float lr) = 0;
  virtual float lr() const = 0;

  /// Serializes all mutable optimizer state (moments, step counters) into
  /// `out`, keyed `prefix` + suffix [+ param name]. Exact round-trip:
  /// restore_state() on a fresh optimizer with the same config reproduces
  /// bit-identical future updates (crash-safe checkpoint support).
  virtual void export_state(const std::string& prefix,
                            std::map<std::string, Tensor>& out) const = 0;

  /// Restores state written by export_state. `by_name` maps parameter names
  /// to the live Params the state attaches to; entries naming unknown
  /// params throw std::runtime_error.
  virtual void restore_state(const std::string& prefix,
                             const std::map<std::string, Tensor>& in,
                             const std::map<std::string, Param*>& by_name) = 0;

  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  const std::vector<Param*>& params() const { return params_; }

  /// Replaces the parameter set (state for old params is retained lazily;
  /// new params get fresh state on first step).
  void set_params(std::vector<Param*> params) { params_ = std::move(params); }

 protected:
  std::vector<Param*> params_;
};

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
 public:
  struct Config {
    float lr = 1e-2f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<Param*> params, Config cfg);
  void step() override;
  int64_t state_bytes() const override;
  void set_lr(float lr) override { check_arg(lr > 0.0f, "lr must be positive"); cfg_.lr = lr; }
  float lr() const override { return cfg_.lr; }
  void export_state(const std::string& prefix,
                    std::map<std::string, Tensor>& out) const override;
  void restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in,
                     const std::map<std::string, Param*>& by_name) override;

 private:
  Config cfg_;
  std::unordered_map<Param*, Tensor> velocity_;
};

/// AdamW (decoupled weight decay). Set weight_decay = 0 for plain Adam.
class AdamW final : public Optimizer {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  AdamW(std::vector<Param*> params, Config cfg);
  void step() override;
  int64_t state_bytes() const override;
  void set_lr(float lr) override { check_arg(lr > 0.0f, "lr must be positive"); cfg_.lr = lr; }
  float lr() const override { return cfg_.lr; }
  void export_state(const std::string& prefix,
                    std::map<std::string, Tensor>& out) const override;
  void restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in,
                     const std::map<std::string, Param*>& by_name) override;

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  Config cfg_;
  int64_t t_ = 0;
  std::unordered_map<Param*, State> state_;
};

/// AdamW with block-wise 8-bit quantized moment state (the edge-friendly
/// optimizer variant: ~4x less optimizer memory than fp32 AdamW at nearly
/// identical convergence). First moment is stored as signed int8 with a
/// per-block absmax scale; second moment as unsigned int8 on a per-block
/// max scale. Moments are requantized with *stochastic rounding* (seeded,
/// so runs stay reproducible) — deterministic rounding would zero out
/// small late-training moment updates and stall convergence.
class QuantizedAdamW final : public Optimizer {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    int64_t block_size = 128;  ///< scale-sharing group
  };

  QuantizedAdamW(std::vector<Param*> params, Config cfg);
  void step() override;
  int64_t state_bytes() const override;
  void set_lr(float lr) override { check_arg(lr > 0.0f, "lr must be positive"); cfg_.lr = lr; }
  float lr() const override { return cfg_.lr; }
  void export_state(const std::string& prefix,
                    std::map<std::string, Tensor>& out) const override;
  void restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in,
                     const std::map<std::string, Param*>& by_name) override;

 private:
  struct State {
    std::vector<int8_t> m;
    std::vector<uint8_t> v;
    std::vector<float> m_scale;  ///< one per block
    std::vector<float> v_scale;  ///< one per block
  };
  Config cfg_;
  int64_t t_ = 0;
  uint64_t rounding_state_ = 0x853C49E6748FEA9Bull;  ///< stochastic-rounding stream
  std::unordered_map<Param*, State> state_;

  float stochastic_round(float x);
};

}  // namespace edgellm::nn
