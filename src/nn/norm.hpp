// Normalization layers (RMSNorm is the transformer default here).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace edgellm::nn {

/// RMS normalization over the last dimension with a learned gain:
/// y = g * x / sqrt(mean(x^2) + eps).
class RmsNorm final : public Module {
 public:
  RmsNorm(std::string name, int64_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  Param& gain() { return gain_; }
  int64_t dim() const { return dim_; }

 private:
  std::string name_;
  int64_t dim_;
  float eps_;
  Param gain_;

  bool has_cache_ = false;
  Tensor cached_input_;     ///< [rows, dim]
  std::vector<float> inv_rms_;  ///< one per row
  Shape cached_x_shape_;
};

}  // namespace edgellm::nn
