// Binary checkpoint serialization for CausalLm (and any named tensor map).
//
// Format: magic "ELLM", version, entry count, then per entry:
// name length + name bytes + ndim + extents + raw fp32 data. Little-endian
// host order (the reproduction targets a single host).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "nn/model.hpp"

namespace edgellm::nn {

/// Writes a state dict to `path`; throws std::runtime_error on I/O failure.
void save_state_dict(const std::map<std::string, Tensor>& state, const std::string& path);

/// Reads a state dict written by save_state_dict.
std::map<std::string, Tensor> load_state_dict_file(const std::string& path);

/// Convenience: snapshot / restore a model whose config the caller holds.
void save_model(CausalLm& model, const std::string& path);
void load_model(CausalLm& model, const std::string& path);

/// Self-describing checkpoint: the architecture config rides along in a
/// reserved "__config__" entry, so load can reconstruct the model without
/// out-of-band information (what a CLI or a deployment artifact needs).
void save_model_with_config(CausalLm& model, const std::string& path);
std::unique_ptr<CausalLm> load_model_with_config(const std::string& path);

}  // namespace edgellm::nn
