// Binary checkpoint serialization for CausalLm (and any named tensor map).
//
// Format: magic "ELLM", version, entry count, then per entry:
// name length + name bytes + ndim + extents + raw fp32 data. Little-endian
// host order (the reproduction targets a single host).
//
// Version 2 (current writer) appends a CRC-32 footer over everything that
// precedes it, and save_state_dict commits atomically (temp file + rename),
// so a power cut mid-write never leaves a half-checkpoint under the final
// name and bit rot is detected at load instead of silently loading garbage.
// Version 1 files (no footer) are still readable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "nn/model.hpp"

namespace edgellm::nn {

/// CRC-32 (IEEE 802.3, reflected poly 0xEDB88320) over a byte range.
/// Pass a previous return value as `seed` to checksum incrementally.
uint32_t crc32(const void* data, size_t len, uint32_t seed = 0);

/// Writes a state dict to `path` atomically (temp file + rename) with a
/// CRC-32 footer; throws std::runtime_error on I/O failure. No partial or
/// torn file is ever visible at `path`.
void save_state_dict(const std::map<std::string, Tensor>& state, const std::string& path);

/// Reads a state dict written by save_state_dict (v1 or v2). Rejects
/// truncated, corrupted (CRC mismatch), or structurally implausible files
/// (absurd entry counts / name lengths / extents) with std::runtime_error
/// rather than undefined behaviour or bad_alloc.
std::map<std::string, Tensor> load_state_dict_file(const std::string& path);

// --- exact scalar/byte payload helpers --------------------------------------
// Training state (step counters, RNG streams) must round-trip bit-exactly
// through the float-tensor entry format. Integers <= 65535 are exactly
// representable in fp32, so a uint64 travels as four 16-bit limbs and a byte
// string as one float per byte.

/// Packs a uint64 into a {4} tensor of little-endian 16-bit limbs.
Tensor pack_u64(uint64_t v);
/// Inverse of pack_u64; throws std::runtime_error on malformed input.
uint64_t unpack_u64(const Tensor& t);

/// Packs an arbitrary byte string into a {n} tensor (one float per byte).
Tensor pack_bytes(const std::string& bytes);
/// Inverse of pack_bytes; throws std::runtime_error on out-of-range values.
std::string unpack_bytes(const Tensor& t);

/// Convenience: snapshot / restore a model whose config the caller holds.
void save_model(CausalLm& model, const std::string& path);
void load_model(CausalLm& model, const std::string& path);

/// Self-describing checkpoint: the architecture config rides along in a
/// reserved "__config__" entry, so load can reconstruct the model without
/// out-of-band information (what a CLI or a deployment artifact needs).
void save_model_with_config(CausalLm& model, const std::string& path);
std::unique_ptr<CausalLm> load_model_with_config(const std::string& path);

}  // namespace edgellm::nn
