#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace edgellm::nn {

namespace {

Param* lookup_param(const std::map<std::string, Param*>& by_name, const std::string& name) {
  const auto it = by_name.find(name);
  if (it == by_name.end()) {
    throw std::runtime_error("optimizer state names unknown param: " + name);
  }
  return it->second;
}

uint64_t u64_entry(const std::map<std::string, Tensor>& in, const std::string& key) {
  const auto it = in.find(key);
  if (it == in.end()) throw std::runtime_error("missing optimizer state entry: " + key);
  return unpack_u64(it->second);
}

Tensor shaped_like(const Tensor& t, const Param* p, const std::string& key) {
  if (t.numel() != p->value.numel()) {
    throw std::runtime_error("optimizer state size mismatch for " + key);
  }
  return t.reshape(p->value.shape());
}

}  // namespace

float clip_grad_norm(const std::vector<Param*>& params, float max_norm) {
  check_arg(max_norm > 0.0f, "clip_grad_norm: max_norm must be positive");
  double total = 0.0;
  for (const Param* p : params) {
    if (!p->trainable) continue;
    for (int64_t i = 0; i < p->grad.numel(); ++i) {
      total += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (Param* p : params) {
      if (!p->trainable) continue;
      for (int64_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
    }
  }
  return norm;
}

bool grads_finite(const std::vector<Param*>& params) {
  for (const Param* p : params) {
    if (!p->trainable) continue;
    for (int64_t i = 0; i < p->grad.numel(); ++i) {
      if (!std::isfinite(p->grad[i])) return false;
    }
  }
  return true;
}

Sgd::Sgd(std::vector<Param*> params, Config cfg) : Optimizer(std::move(params)), cfg_(cfg) {
  check_arg(cfg_.lr > 0.0f, "Sgd: lr must be positive");
  check_arg(cfg_.momentum >= 0.0f && cfg_.momentum < 1.0f, "Sgd: momentum must be in [0, 1)");
}

void Sgd::step() {
  for (Param* p : params_) {
    if (!p->trainable) continue;
    if (cfg_.weight_decay > 0.0f) {
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        p->grad[i] += cfg_.weight_decay * p->value[i];
      }
    }
    if (cfg_.momentum > 0.0f) {
      auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
      Tensor& v = it->second;
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        v[i] = cfg_.momentum * v[i] + p->grad[i];
        p->value[i] -= cfg_.lr * v[i];
      }
    } else {
      for (int64_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] -= cfg_.lr * p->grad[i];
      }
    }
  }
}

int64_t Sgd::state_bytes() const {
  int64_t bytes = 0;
  for (const auto& [p, v] : velocity_) bytes += tensor_bytes(v);
  return bytes;
}

void Sgd::export_state(const std::string& prefix, std::map<std::string, Tensor>& out) const {
  for (const auto& [p, v] : velocity_) out.emplace(prefix + "vel." + p->name, v);
}

void Sgd::restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in,
                        const std::map<std::string, Param*>& by_name) {
  velocity_.clear();
  const std::string vel_key = prefix + "vel.";
  for (const auto& [key, t] : in) {
    if (key.rfind(vel_key, 0) != 0) continue;
    Param* p = lookup_param(by_name, key.substr(vel_key.size()));
    velocity_.insert_or_assign(p, shaped_like(t, p, key));
  }
}

AdamW::AdamW(std::vector<Param*> params, Config cfg) : Optimizer(std::move(params)), cfg_(cfg) {
  check_arg(cfg_.lr > 0.0f, "AdamW: lr must be positive");
  check_arg(cfg_.beta1 >= 0.0f && cfg_.beta1 < 1.0f, "AdamW: beta1 must be in [0, 1)");
  check_arg(cfg_.beta2 >= 0.0f && cfg_.beta2 < 1.0f, "AdamW: beta2 must be in [0, 1)");
  check_arg(cfg_.eps > 0.0f, "AdamW: eps must be positive");
}

void AdamW::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (Param* p : params_) {
    if (!p->trainable) continue;
    auto [it, inserted] = state_.try_emplace(p);
    if (inserted) {
      it->second.m = Tensor(p->value.shape());
      it->second.v = Tensor(p->value.shape());
    }
    Tensor& m = it->second.m;
    Tensor& v = it->second.v;
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * g;
      v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p->value[i] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                                cfg_.weight_decay * p->value[i]);
    }
  }
}

int64_t AdamW::state_bytes() const {
  int64_t bytes = 0;
  for (const auto& [p, s] : state_) bytes += tensor_bytes(s.m) + tensor_bytes(s.v);
  return bytes;
}

void AdamW::export_state(const std::string& prefix, std::map<std::string, Tensor>& out) const {
  out.insert_or_assign(prefix + "t", pack_u64(static_cast<uint64_t>(t_)));
  for (const auto& [p, s] : state_) {
    out.emplace(prefix + "m." + p->name, s.m);
    out.emplace(prefix + "v." + p->name, s.v);
  }
}

void AdamW::restore_state(const std::string& prefix, const std::map<std::string, Tensor>& in,
                          const std::map<std::string, Param*>& by_name) {
  state_.clear();
  t_ = static_cast<int64_t>(u64_entry(in, prefix + "t"));
  const std::string m_key = prefix + "m.", v_key = prefix + "v.";
  for (const auto& [key, t] : in) {
    if (key.rfind(m_key, 0) == 0) {
      Param* p = lookup_param(by_name, key.substr(m_key.size()));
      state_[p].m = shaped_like(t, p, key);
    } else if (key.rfind(v_key, 0) == 0) {
      Param* p = lookup_param(by_name, key.substr(v_key.size()));
      state_[p].v = shaped_like(t, p, key);
    }
  }
  for (const auto& [p, s] : state_) {
    if (s.m.numel() != p->value.numel() || s.v.numel() != p->value.numel()) {
      throw std::runtime_error("incomplete AdamW state for " + p->name);
    }
  }
}

QuantizedAdamW::QuantizedAdamW(std::vector<Param*> params, Config cfg)
    : Optimizer(std::move(params)), cfg_(cfg) {
  check_arg(cfg_.lr > 0.0f, "QuantizedAdamW: lr must be positive");
  check_arg(cfg_.beta1 >= 0.0f && cfg_.beta1 < 1.0f, "QuantizedAdamW: beta1 must be in [0, 1)");
  check_arg(cfg_.beta2 >= 0.0f && cfg_.beta2 < 1.0f, "QuantizedAdamW: beta2 must be in [0, 1)");
  check_arg(cfg_.eps > 0.0f, "QuantizedAdamW: eps must be positive");
  check_arg(cfg_.block_size > 0 && cfg_.block_size <= 1024,
            "QuantizedAdamW: block_size must be in [1, 1024]");
}

void QuantizedAdamW::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (Param* p : params_) {
    if (!p->trainable) continue;
    const int64_t n = p->value.numel();
    const int64_t blocks = (n + cfg_.block_size - 1) / cfg_.block_size;
    auto [it, inserted] = state_.try_emplace(p);
    State& s = it->second;
    if (inserted) {
      s.m.assign(static_cast<size_t>(n), 0);
      s.v.assign(static_cast<size_t>(n), 0);
      s.m_scale.assign(static_cast<size_t>(blocks), 0.0f);
      s.v_scale.assign(static_cast<size_t>(blocks), 0.0f);
    }

    for (int64_t b = 0; b < blocks; ++b) {
      const int64_t lo = b * cfg_.block_size;
      const int64_t hi = std::min(n, lo + cfg_.block_size);
      const float ms = s.m_scale[static_cast<size_t>(b)];
      const float vs = s.v_scale[static_cast<size_t>(b)];

      // Dequantize the block, apply the AdamW update, track new extrema.
      float new_mmax = 0.0f, new_vmax = 0.0f;
      // Two passes: compute updated moments into stack buffers first so the
      // requantization scale covers the post-update values.
      float mbuf[1024], vbuf[1024];
      check_arg(hi - lo <= 1024, "QuantizedAdamW: block_size too large");
      for (int64_t i = lo; i < hi; ++i) {
        const float g = p->grad[i];
        float m = ms * static_cast<float>(s.m[static_cast<size_t>(i)]);
        float v = vs * static_cast<float>(s.v[static_cast<size_t>(i)]);
        m = cfg_.beta1 * m + (1.0f - cfg_.beta1) * g;
        v = cfg_.beta2 * v + (1.0f - cfg_.beta2) * g * g;
        mbuf[i - lo] = m;
        vbuf[i - lo] = v;
        new_mmax = std::max(new_mmax, std::fabs(m));
        new_vmax = std::max(new_vmax, v);
        const float mhat = m / bc1;
        const float vhat = v / bc2;
        p->value[i] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                                  cfg_.weight_decay * p->value[i]);
      }
      const float new_ms = new_mmax > 0.0f ? new_mmax / 127.0f : 1.0f;
      const float new_vs = new_vmax > 0.0f ? new_vmax / 255.0f : 1.0f;
      s.m_scale[static_cast<size_t>(b)] = new_ms;
      s.v_scale[static_cast<size_t>(b)] = new_vs;
      for (int64_t i = lo; i < hi; ++i) {
        // m: stochastic rounding keeps small updates alive in expectation.
        s.m[static_cast<size_t>(i)] = static_cast<int8_t>(
            std::clamp(stochastic_round(mbuf[i - lo] / new_ms), -127.0f, 127.0f));
        // v: round UP — underestimating the second moment inflates the
        // effective step and can destabilise training.
        s.v[static_cast<size_t>(i)] = static_cast<uint8_t>(
            std::clamp(std::ceil(vbuf[i - lo] / new_vs), 0.0f, 255.0f));
      }
    }
  }
}

float QuantizedAdamW::stochastic_round(float x) {
  // xorshift64* for a cheap uniform in [0, 1).
  rounding_state_ ^= rounding_state_ >> 12;
  rounding_state_ ^= rounding_state_ << 25;
  rounding_state_ ^= rounding_state_ >> 27;
  const uint64_t r = rounding_state_ * 0x2545F4914F6CDD1Dull;
  const float u = static_cast<float>(r >> 40) * 0x1.0p-24f;
  return std::floor(x + u);
}

void QuantizedAdamW::export_state(const std::string& prefix,
                                  std::map<std::string, Tensor>& out) const {
  out.insert_or_assign(prefix + "t", pack_u64(static_cast<uint64_t>(t_)));
  out.insert_or_assign(prefix + "rounding", pack_u64(rounding_state_));
  for (const auto& [p, s] : state_) {
    // int8/uint8 codes and fp32 scales are all exactly representable as
    // floats, so quantized moments round-trip bit-exactly too.
    Tensor m({static_cast<int64_t>(s.m.size())});
    for (size_t i = 0; i < s.m.size(); ++i) m[static_cast<int64_t>(i)] = s.m[i];
    Tensor v({static_cast<int64_t>(s.v.size())});
    for (size_t i = 0; i < s.v.size(); ++i) v[static_cast<int64_t>(i)] = s.v[i];
    out.emplace(prefix + "qm." + p->name, std::move(m));
    out.emplace(prefix + "qv." + p->name, std::move(v));
    out.emplace(prefix + "qms." + p->name,
                Tensor({static_cast<int64_t>(s.m_scale.size())},
                       std::vector<float>(s.m_scale.begin(), s.m_scale.end())));
    out.emplace(prefix + "qvs." + p->name,
                Tensor({static_cast<int64_t>(s.v_scale.size())},
                       std::vector<float>(s.v_scale.begin(), s.v_scale.end())));
  }
}

void QuantizedAdamW::restore_state(const std::string& prefix,
                                   const std::map<std::string, Tensor>& in,
                                   const std::map<std::string, Param*>& by_name) {
  state_.clear();
  t_ = static_cast<int64_t>(u64_entry(in, prefix + "t"));
  rounding_state_ = u64_entry(in, prefix + "rounding");
  const std::string qm = prefix + "qm.";
  for (const auto& [key, t] : in) {
    if (key.rfind(qm, 0) != 0) continue;
    const std::string name = key.substr(qm.size());
    Param* p = lookup_param(by_name, name);
    const int64_t n = p->value.numel();
    const int64_t blocks = (n + cfg_.block_size - 1) / cfg_.block_size;
    const auto vit = in.find(prefix + "qv." + name);
    const auto msit = in.find(prefix + "qms." + name);
    const auto vsit = in.find(prefix + "qvs." + name);
    if (vit == in.end() || msit == in.end() || vsit == in.end() || t.numel() != n ||
        vit->second.numel() != n || msit->second.numel() != blocks ||
        vsit->second.numel() != blocks) {
      throw std::runtime_error("incomplete QuantizedAdamW state for " + name);
    }
    State& s = state_[p];
    s.m.resize(static_cast<size_t>(n));
    s.v.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      s.m[static_cast<size_t>(i)] = static_cast<int8_t>(t[i]);
      s.v[static_cast<size_t>(i)] = static_cast<uint8_t>(vit->second[i]);
    }
    s.m_scale.assign(msit->second.raw(), msit->second.raw() + blocks);
    s.v_scale.assign(vsit->second.raw(), vsit->second.raw() + blocks);
  }
}

int64_t QuantizedAdamW::state_bytes() const {
  int64_t bytes = 0;
  for (const auto& [p, s] : state_) {
    bytes += static_cast<int64_t>(s.m.size() + s.v.size());
    bytes += static_cast<int64_t>((s.m_scale.size() + s.v_scale.size()) * sizeof(float));
  }
  return bytes;
}

}  // namespace edgellm::nn
