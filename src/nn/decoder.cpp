#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "obs/trace.hpp"
#include "quant/packed.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace edgellm::nn {

namespace {

// Gathers `rows` of `src` ([B, width]) into a compact [rows.size(), width].
Tensor gather_rows(const Tensor& src, const std::vector<int64_t>& rows, int64_t width) {
  Tensor out({static_cast<int64_t>(rows.size()), width});
  for (size_t j = 0; j < rows.size(); ++j) {
    std::memcpy(out.raw() + static_cast<int64_t>(j) * width, src.raw() + rows[j] * width,
                static_cast<size_t>(width) * sizeof(float));
  }
  return out;
}

void scatter_rows(const Tensor& src, const std::vector<int64_t>& rows, Tensor& dst,
                  int64_t width) {
  for (size_t j = 0; j < rows.size(); ++j) {
    std::memcpy(dst.raw() + rows[j] * width, src.raw() + static_cast<int64_t>(j) * width,
                static_cast<size_t>(width) * sizeof(float));
  }
}

// Causal attention for one sequence's new token: `q` is this token's query
// row [d_model]; keys/values come from the cache (t cached positions
// including this token's). Writes the merged heads into `ctx` [d_model].
void attend_one(const ModelConfig& cfg, const KvSequenceView& cache, int64_t layer, int64_t t,
                const float* q, float* ctx, std::vector<float>& row,
                std::vector<float>& scores) {
  const int64_t n_heads = cfg.n_heads;
  const int64_t dh = cfg.d_model / n_heads;
  const int64_t group = n_heads / cfg.kv_heads();
  const float alpha = 1.0f / std::sqrt(static_cast<float>(dh));

  const bool qz = cache.quantized();
  row.resize(static_cast<size_t>(cache.kv_dim()));
  scores.resize(static_cast<size_t>(n_heads * t));  // fully overwritten below
  // Pass 1: scores — each cached K row is dequantised once (or, for fp32
  // caches, read in place) and shared by all query heads (GQA groups map
  // onto the same KV head).
  for (int64_t p = 0; p < t; ++p) {
    const float* kr;
    if (qz) {
      cache.load_k(layer, p, row.data());
      kr = row.data();
    } else {
      kr = cache.k_row(layer, p);
    }
    for (int64_t head = 0; head < n_heads; ++head) {
      const int64_t off = head * dh;
      const int64_t kv_off = (head / group) * dh;
      float s = 0.0f;
      for (int64_t d = 0; d < dh; ++d) s += q[off + d] * kr[kv_off + d];
      scores[static_cast<size_t>(head * t + p)] = s * alpha;
    }
  }
  // Per-head softmax over cached positions.
  for (int64_t head = 0; head < n_heads; ++head) {
    float* s = scores.data() + head * t;
    float mx = -1e30f;
    for (int64_t p = 0; p < t; ++p) mx = std::max(mx, s[p]);
    float denom = 0.0f;
    for (int64_t p = 0; p < t; ++p) {
      s[p] = std::exp(s[p] - mx);
      denom += s[p];
    }
    const float inv = 1.0f / denom;
    for (int64_t p = 0; p < t; ++p) s[p] *= inv;
  }
  // Pass 2: weighted V accumulation, again one row per position.
  for (int64_t p = 0; p < t; ++p) {
    const float* vr;
    if (qz) {
      cache.load_v(layer, p, row.data());
      vr = row.data();
    } else {
      vr = cache.v_row(layer, p);
    }
    for (int64_t head = 0; head < n_heads; ++head) {
      const int64_t off = head * dh;
      const int64_t kv_off = (head / group) * dh;
      const float w = scores[static_cast<size_t>(head * t + p)];
      for (int64_t d = 0; d < dh; ++d) ctx[off + d] += w * vr[kv_off + d];
    }
  }
}

// Linear::forward against a cached effective weight: the same kernels in
// the same order (matmul_nt then add_bias), so outputs are bitwise
// identical. Falls back to lin.forward when the cache has no entry for this
// layer (no cache supplied, or a LoRA-enabled Linear).
Tensor cached_linear(Linear& lin, const Tensor& x, const DecodeWeightCache* wc) {
  const quant::PackedMatrix* pw = wc != nullptr ? wc->find_packed(&lin) : nullptr;
  const Tensor* w = wc != nullptr ? wc->find(&lin) : nullptr;
  if (pw == nullptr && w == nullptr) return lin.forward(x);
  const int64_t in = lin.in_features();
  check_arg(x.dim(-1) == in, "cached_linear: input feature mismatch");
  const int64_t rows = x.numel() / in;
  // reshape() copies; decode activations are already [rows, in], so skip it.
  Tensor y = pw != nullptr
                 ? (x.ndim() == 2 ? quant::packed_matmul_nt(x, *pw)
                                  : quant::packed_matmul_nt(x.reshape({rows, in}), *pw))
                 : (x.ndim() == 2 ? ops::matmul_nt(x, *w)
                                  : ops::matmul_nt(x.reshape({rows, in}), *w));
  if (lin.has_bias()) y = ops::add_bias(y, lin.bias().value);
  if (x.ndim() == 2) return y;
  Shape out_shape = x.shape();
  out_shape.back() = lin.out_features();
  return y.reshape(std::move(out_shape));
}

// Mlp::forward's eval path with cached weights (see cached_linear).
Tensor cached_mlp(Mlp& mlp, const Tensor& x, const DecodeWeightCache* wc) {
  if (wc == nullptr) return mlp.forward(x);
  if (mlp.kind() == MlpKind::kGelu) {
    return cached_linear(mlp.fc2(), ops::gelu(cached_linear(mlp.fc1(), x, wc)), wc);
  }
  const Tensor g = cached_linear(mlp.fc1(), x, wc);
  const Tensor u = cached_linear(mlp.fc3(), x, wc);
  return cached_linear(mlp.fc2(), ops::swiglu(g, u), wc);
}

}  // namespace

void DecodeWeightCache::build(CausalLm& model, bool pack_compressed) {
  weights_.clear();
  packed_.clear();
  const auto snapshot = [&](Linear* lin) {
    if (lin->lora_enabled()) return;
    if (weights_.count(lin) != 0 || packed_.count(lin) != 0) return;  // tied heads dedup
    if (pack_compressed && lin->packable()) {
      packed_.emplace(lin, lin->packed_weight());
    } else {
      weights_.emplace(lin, lin->effective_weight());
    }
  };
  for (TransformerBlock* b : model.blocks()) {
    for (Linear* lin : b->linears()) snapshot(lin);
  }
  const int64_t n_exits = static_cast<int64_t>(model.exit_layers().size());
  for (int64_t e = 0; e < n_exits; ++e) snapshot(&model.exit_head(e));
}

const Tensor* DecodeWeightCache::find(const Linear* lin) const {
  const auto it = weights_.find(lin);
  return it == weights_.end() ? nullptr : &it->second;
}

const quant::PackedMatrix* DecodeWeightCache::find_packed(const Linear* lin) const {
  const auto it = packed_.find(lin);
  return it == packed_.end() ? nullptr : &it->second;
}

int64_t DecodeWeightCache::bytes() const {
  int64_t total = 0;
  for (const auto& [lin, w] : weights_) total += tensor_bytes(w);
  for (const auto& [lin, p] : packed_) total += p.storage_bytes();
  return total;
}

void validate_generate_config(const GenerateConfig& cfg, const CausalLm& model) {
  check_arg(cfg.max_new_tokens > 0, "GenerateConfig: max_new_tokens must be positive, got " +
                                        std::to_string(cfg.max_new_tokens));
  check_arg(cfg.top_k >= 0 && cfg.top_k <= model.config().vocab,
            "GenerateConfig: top_k must be in [0, vocab=" +
                std::to_string(model.config().vocab) + "], got " + std::to_string(cfg.top_k));
  check_arg(std::isfinite(cfg.temperature), "GenerateConfig: temperature must be finite");
  check_arg(cfg.n_threads >= 0, "GenerateConfig: n_threads must be >= 0 (0 = global setting)");
  if (cfg.exit_layer != 0) (void)model.exit_index(cfg.exit_layer);  // throws if unregistered
}

void batched_decode_step(CausalLm& model, std::span<BatchedSeq> seqs,
                         const DecodeWeightCache* weights) {
  if (seqs.empty()) return;
  const obs::ScopedSpan span("decode/step");
  const ModelConfig& cfg = model.config();
  const int64_t c = cfg.d_model;
  const int64_t kvd = cfg.kv_dim();
  const int64_t B = static_cast<int64_t>(seqs.size());

  check_arg(!model.token_embedding().grad_enabled(),
            "batched_decode_step: call model.set_eval() first");

  std::vector<int64_t> depth(static_cast<size_t>(B));
  std::vector<int64_t> tokens(static_cast<size_t>(B));
  int64_t max_depth = 0;
  for (int64_t b = 0; b < B; ++b) {
    BatchedSeq& s = seqs[static_cast<size_t>(b)];
    check_arg(s.cache != nullptr, "batched_decode_step: null cache");
    const int64_t d = s.all_exits || s.exit_layer == 0 ? cfg.n_layers : s.exit_layer;
    (void)model.exit_index(d);  // validates the exit is registered
    check_arg(s.cache->n_layers() >= d, "batched_decode_step: cache has too few layers");
    check_arg(s.cache->kv_dim() == kvd, "batched_decode_step: cache kv_dim mismatch");
    check_arg(s.position < cfg.max_seq, "batched_decode_step: context window exhausted");
    check_arg(s.position == s.cache->positions(0),
              "batched_decode_step: position does not match cache");
    check_arg(s.token >= 0 && s.token < cfg.vocab, "batched_decode_step: token out of range");
    depth[static_cast<size_t>(b)] = d;
    max_depth = std::max(max_depth, d);
    tokens[static_cast<size_t>(b)] = s.token;
    s.logits.clear();
  }

  // Embed the whole batch in one call, then add each row's own position.
  Tensor x = model.token_embedding().forward(tokens);  // [B, c]
  const Param& pos = model.positional_embedding();
  for (int64_t b = 0; b < B; ++b) {
    const int64_t p = seqs[static_cast<size_t>(b)].position;
    for (int64_t d = 0; d < c; ++d) x[b * c + d] += pos.value[p * c + d];
  }

  auto blocks = model.blocks();
  for (int64_t li = 0; li < max_depth; ++li) {
    // Rows whose exit depth still needs this layer.
    std::vector<int64_t> alive;
    for (int64_t b = 0; b < B; ++b) {
      if (depth[static_cast<size_t>(b)] > li) alive.push_back(b);
    }
    TransformerBlock& block = *blocks[static_cast<size_t>(li)];
    MultiHeadAttention& attn = block.attention();

    // All alive rows share one pass through the layer's norms/projections:
    // the effective-weight materialisation and tensor allocations are paid
    // once for the batch instead of once per sequence. When every row is
    // alive (uniform exit depths — the common case) the layer operates on
    // `x` directly instead of paying a gather/scatter round trip.
    const bool all_alive = static_cast<int64_t>(alive.size()) == B;
    Tensor xa = all_alive ? std::move(x) : gather_rows(x, alive, c);
    const Tensor h = block.norm1().forward(xa);
    const Tensor q = cached_linear(attn.q_proj(), h, weights);  // [Ba, c]
    const Tensor k = cached_linear(attn.k_proj(), h, weights);  // [Ba, kvd]
    const Tensor v = cached_linear(attn.v_proj(), h, weights);

    // Per-sequence attention parallelises across the batch: every row owns
    // its own cache and its own ctx row, and each sequence's computation is
    // independent of the others, so any partition is bitwise identical to
    // the serial loop. Scratch is per-chunk (attend_one reuses it across a
    // chunk's sequences but never shares it between threads).
    const int64_t n_alive = static_cast<int64_t>(alive.size());
    Tensor ctx({n_alive, c});
    parallel::parallel_for(0, n_alive, 1, [&](int64_t lo, int64_t hi) {
      std::vector<float> row_scratch, score_scratch;
      for (int64_t j = lo; j < hi; ++j) {
        BatchedSeq& s = seqs[static_cast<size_t>(alive[static_cast<size_t>(j)])];
        s.cache->append(li, k.raw() + j * kvd, v.raw() + j * kvd);
        attend_one(cfg, *s.cache, li, s.position + 1, q.raw() + j * c, ctx.raw() + j * c,
                   row_scratch, score_scratch);
      }
    });
    const Tensor attn_out = cached_linear(attn.out_proj(), ctx, weights);
    ops::add_inplace(xa, attn_out);
    const Tensor h2 = block.norm2().forward(xa);
    ops::add_inplace(xa, cached_mlp(block.mlp(), h2, weights));
    if (all_alive) {
      x = std::move(xa);
    } else {
      scatter_rows(xa, alive, x, c);
    }

    // Exit heads owned by depth li+1: rows exiting here, plus every
    // all-exits (voting) row.
    const int64_t d = li + 1;
    const auto& exits = cfg.exit_layers;
    if (std::find(exits.begin(), exits.end(), d) == exits.end()) continue;
    const int64_t eidx = model.exit_index(d);
    std::vector<int64_t> need;
    for (int64_t b = 0; b < B; ++b) {
      const BatchedSeq& s = seqs[static_cast<size_t>(b)];
      if (!s.want_logits) continue;
      if (s.all_exits || depth[static_cast<size_t>(b)] == d) need.push_back(b);
    }
    if (need.empty()) continue;
    Tensor gathered;
    const Tensor* e = &x;
    if (static_cast<int64_t>(need.size()) != B) {
      gathered = gather_rows(x, need, c);
      e = &gathered;
    }
    const Tensor logits = cached_linear(model.exit_head(eidx), model.exit_norm(eidx).forward(*e),
                                        weights);  // [Bn, vocab]
    for (size_t j = 0; j < need.size(); ++j) {
      Tensor out({cfg.vocab});
      std::memcpy(out.raw(), logits.raw() + static_cast<int64_t>(j) * cfg.vocab,
                  static_cast<size_t>(cfg.vocab) * sizeof(float));
      seqs[static_cast<size_t>(need[j])].logits.push_back(std::move(out));
    }
  }
}

Tensor decode_step(CausalLm& model, KvCache& cache, int64_t position, int64_t token,
                   int64_t exit_layer) {
  BatchedSeq s;
  s.cache = &cache;
  s.position = position;
  s.token = token;
  s.exit_layer = exit_layer;
  batched_decode_step(model, std::span<BatchedSeq>(&s, 1));
  return std::move(s.logits.at(0));
}

std::vector<Tensor> decode_step_all_exits(CausalLm& model, KvCache& cache, int64_t position,
                                          int64_t token) {
  BatchedSeq s;
  s.cache = &cache;
  s.position = position;
  s.token = token;
  s.all_exits = true;
  batched_decode_step(model, std::span<BatchedSeq>(&s, 1));
  return std::move(s.logits);
}

SpeculativeResult speculative_decode_step(CausalLm& model, KvSequenceView& cache,
                                          int64_t position, int64_t token, int64_t draft_depth,
                                          int64_t k, const DecodeWeightCache* weights) {
  const obs::ScopedSpan span("decode/speculative");
  const ModelConfig& cfg = model.config();
  const int64_t c = cfg.d_model;
  const int64_t kvd = cfg.kv_dim();
  check_arg(!model.token_embedding().grad_enabled(),
            "speculative_decode_step: call model.set_eval() first");
  check_arg(k >= 1, "speculative_decode_step: k must be >= 1");
  (void)model.exit_index(draft_depth);  // draft head must be a registered exit
  check_arg(cache.n_layers() >= cfg.n_layers,
            "speculative_decode_step: cache has too few layers for full-depth verify");
  check_arg(cache.kv_dim() == kvd, "speculative_decode_step: cache kv_dim mismatch");
  check_arg(position + k <= cfg.max_seq,
            "speculative_decode_step: draft window exceeds the context");
  check_arg(position == cache.positions(0),
            "speculative_decode_step: position does not match cache");

  SpeculativeResult res;

  // Draft phase: k-1 greedy continuations from the shallow exit. Each draft
  // row runs layers [0, draft_depth) ONCE, through the same kernels the
  // verify pass uses, appending its shallow KV rows and keeping its hidden
  // state (the input to layer draft_depth). The verify pass reuses both —
  // recomputing them would be bit-identical, so skipping the recompute
  // preserves the equivalence contract while making a full-acceptance round
  // cost the same layer-rows as k sequential full-depth steps.
  std::vector<int64_t> fed;
  fed.reserve(static_cast<size_t>(k));
  fed.push_back(token);
  auto blocks = model.blocks();
  const Param& pos = model.positional_embedding();

  // Layers [0, draft_depth) for one token row: appends shallow KV, returns
  // the hidden row [1, c] that both the draft exit head and layer
  // draft_depth consume.
  const auto shallow_row = [&](int64_t p, int64_t tok) {
    Tensor x = model.token_embedding().forward(std::vector<int64_t>{tok});  // [1, c]
    for (int64_t d = 0; d < c; ++d) x[d] += pos.value[p * c + d];
    std::vector<float> row_scratch, score_scratch;
    for (int64_t li = 0; li < draft_depth; ++li) {
      TransformerBlock& block = *blocks[static_cast<size_t>(li)];
      MultiHeadAttention& attn = block.attention();
      const Tensor h = block.norm1().forward(x);
      const Tensor q = cached_linear(attn.q_proj(), h, weights);
      const Tensor kp = cached_linear(attn.k_proj(), h, weights);
      const Tensor vp = cached_linear(attn.v_proj(), h, weights);
      Tensor ctx({int64_t{1}, c});
      cache.append(li, kp.raw(), vp.raw());
      attend_one(cfg, cache, li, p + 1, q.raw(), ctx.raw(), row_scratch, score_scratch);
      const Tensor attn_out = cached_linear(attn.out_proj(), ctx, weights);
      ops::add_inplace(x, attn_out);
      const Tensor h2 = block.norm2().forward(x);
      ops::add_inplace(x, cached_mlp(block.mlp(), h2, weights));
    }
    return x;
  };

  std::vector<Tensor> hidden;  // per fed row, the input to layer draft_depth
  hidden.reserve(static_cast<size_t>(k));
  {
    const obs::ScopedSpan draft_span("spec/draft");
    const int64_t didx = model.exit_index(draft_depth);
    for (int64_t j = 0; j + 1 < k; ++j) {
      hidden.push_back(shallow_row(position + j, fed[static_cast<size_t>(j)]));
      const Tensor lg = cached_linear(model.exit_head(didx),
                                      model.exit_norm(didx).forward(hidden.back()), weights);
      fed.push_back(ops::argmax_lastdim(lg)[0]);
      ++res.drafted;
    }
  }

  // Verify phase: one stacked pass over all k fed rows through layers
  // [draft_depth, n_layers). The last fed row was never drafted from, so its
  // shallow layers run here first (it attends over every drafted row, in
  // sequence order). Everything except attention is row-independent (the
  // same kernels batched_decode_step uses), and attention appends then
  // attends per row in sequence order, so row j sees exactly the
  // position+j+1 cached rows a sequential decode would — the source of the
  // bitwise-identity contract.
  const obs::ScopedSpan verify_span("spec/verify");
  hidden.push_back(shallow_row(position + k - 1, fed.back()));
  Tensor x({k, c});
  for (int64_t j = 0; j < k; ++j) {
    std::memcpy(x.raw() + j * c, hidden[static_cast<size_t>(j)].raw(),
                static_cast<size_t>(c) * sizeof(float));
  }
  hidden.clear();
  for (int64_t li = draft_depth; li < cfg.n_layers; ++li) {
    TransformerBlock& block = *blocks[static_cast<size_t>(li)];
    MultiHeadAttention& attn = block.attention();
    const Tensor h = block.norm1().forward(x);
    const Tensor q = cached_linear(attn.q_proj(), h, weights);   // [k, c]
    const Tensor kp = cached_linear(attn.k_proj(), h, weights);  // [k, kvd]
    const Tensor vp = cached_linear(attn.v_proj(), h, weights);
    Tensor ctx({k, c});
    std::vector<float> row_scratch, score_scratch;
    for (int64_t j = 0; j < k; ++j) {
      cache.append(li, kp.raw() + j * kvd, vp.raw() + j * kvd);
      attend_one(cfg, cache, li, position + j + 1, q.raw() + j * c, ctx.raw() + j * c,
                 row_scratch, score_scratch);
    }
    const Tensor attn_out = cached_linear(attn.out_proj(), ctx, weights);
    ops::add_inplace(x, attn_out);
    const Tensor h2 = block.norm2().forward(x);
    ops::add_inplace(x, cached_mlp(block.mlp(), h2, weights));
  }
  const int64_t eidx = model.exit_index(cfg.n_layers);
  const Tensor logits = cached_linear(model.exit_head(eidx), model.exit_norm(eidx).forward(x),
                                      weights);  // [k, vocab]
  const std::vector<int64_t> verified = ops::argmax_lastdim(logits);

  // Accept the longest agreeing prefix. Row 0 verifies the caller's token,
  // so verified[0] is always emitted (every round advances); row j's token
  // is emitted while draft j agreed with verification row j-1. A non-finite
  // verified row stops emission there — the caller fails the sequence the
  // same way the non-speculative path does on poisoned logits.
  const auto row_finite = [&](int64_t j) {
    return std::isfinite(logits.raw()[j * cfg.vocab + verified[static_cast<size_t>(j)]]);
  };
  int64_t m = 0;
  while (m < k) {
    if (m > 0 && fed[static_cast<size_t>(m)] != verified[static_cast<size_t>(m - 1)]) break;
    if (!row_finite(m)) {
      res.nonfinite = true;
      break;
    }
    res.tokens.push_back(verified[static_cast<size_t>(m)]);
    ++m;
  }
  res.accepted_drafts = std::max<int64_t>(0, m - 1);
  cache.truncate(position + m);  // rewind rejected rows in every layer
  return res;
}

IncrementalDecoder::IncrementalDecoder(CausalLm& model, int64_t exit_layer, bool quantize_kv)
    : model_(model), exit_layer_(exit_layer > 0 ? exit_layer : model.config().n_layers) {
  (void)model_.exit_index(exit_layer_);  // validates
  cache_.configure(exit_layer_, model_.config().kv_dim(), quantize_kv);
  model_.set_eval();
}

void IncrementalDecoder::reset() {
  cache_.clear();
  position_ = 0;
  logits_ = Tensor();
}

void IncrementalDecoder::prime(const std::vector<int64_t>& prompt) {
  check_arg(!prompt.empty(), "IncrementalDecoder: empty prompt");
  reset();
  model_.set_eval();  // training may have re-enabled caching since the ctor
  for (int64_t t : prompt) {
    logits_ = decode_step(model_, cache_, position_, t, exit_layer_);
    ++position_;
  }
}

void IncrementalDecoder::step(int64_t token) {
  check_arg(position_ > 0, "IncrementalDecoder: call prime() first");
  logits_ = decode_step(model_, cache_, position_, token, exit_layer_);
  ++position_;
}

int64_t sample_token(const Tensor& logits, const GenerateConfig& cfg, Rng& rng) {
  check_arg(logits.ndim() == 1 && logits.numel() > 0, "sample_token: logits must be 1-d");
  const int64_t vocab = logits.numel();
  if (cfg.temperature <= 0.0f) {
    return ops::argmax_lastdim(logits.reshape({int64_t{1}, vocab}))[0];
  }
  Tensor scaled = ops::scale(logits, 1.0f / cfg.temperature);
  if (cfg.top_k > 0 && cfg.top_k < vocab) {
    // Mask everything below the k-th largest logit.
    std::vector<float> sorted(scaled.raw(), scaled.raw() + vocab);
    std::nth_element(sorted.begin(), sorted.begin() + (cfg.top_k - 1), sorted.end(),
                     std::greater<float>());
    const float cutoff = sorted[static_cast<size_t>(cfg.top_k - 1)];
    for (int64_t i = 0; i < vocab; ++i) {
      if (scaled[i] < cutoff) scaled[i] = -1e30f;
    }
  }
  const Tensor probs = ops::softmax_lastdim(scaled.reshape({int64_t{1}, vocab}));
  return rng.categorical(probs.data());
}

std::vector<int64_t> IncrementalDecoder::generate(const std::vector<int64_t>& prompt,
                                                  const GenerateConfig& cfg, Rng& rng) {
  validate_generate_config(cfg, model_);
  // Scoped: the prior global thread count is restored when generate()
  // returns, so a per-call config never leaks into other pool users.
  parallel::NumThreadsScope threads_scope(cfg.n_threads);
  check_arg(cfg.exit_layer == 0 || cfg.exit_layer == exit_layer_,
            "generate: config exit_layer " + std::to_string(cfg.exit_layer) +
                " does not match this decoder's exit " + std::to_string(exit_layer_));
  prime(prompt);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(cfg.max_new_tokens));
  for (int64_t i = 0; i < cfg.max_new_tokens; ++i) {
    if (position_ >= model_.config().max_seq) break;  // window exhausted
    const int64_t tok = sample_token(logits_, cfg, rng);
    out.push_back(tok);
    if (position_ < model_.config().max_seq) step(tok);
  }
  return out;
}

}  // namespace edgellm::nn
