#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace edgellm::nn {

IncrementalDecoder::IncrementalDecoder(CausalLm& model, int64_t exit_layer, bool quantize_kv)
    : model_(model),
      exit_layer_(exit_layer > 0 ? exit_layer : model.config().n_layers),
      quantize_kv_(quantize_kv) {
  (void)model_.exit_index(exit_layer_);  // validates
  const size_t n = static_cast<size_t>(exit_layer_);
  if (quantize_kv_) {
    kq_cache_.resize(n);
    vq_cache_.resize(n);
    kq_scales_.resize(n);
    vq_scales_.resize(n);
  } else {
    k_cache_.resize(n);
    v_cache_.resize(n);
  }
}

int64_t IncrementalDecoder::kv_cache_bytes() const {
  int64_t bytes = 0;
  for (const auto& k : k_cache_) bytes += static_cast<int64_t>(k.size() * sizeof(float));
  for (const auto& v : v_cache_) bytes += static_cast<int64_t>(v.size() * sizeof(float));
  for (const auto& k : kq_cache_) bytes += static_cast<int64_t>(k.size());
  for (const auto& v : vq_cache_) bytes += static_cast<int64_t>(v.size());
  for (const auto& s : kq_scales_) bytes += static_cast<int64_t>(s.size() * sizeof(float));
  for (const auto& s : vq_scales_) bytes += static_cast<int64_t>(s.size() * sizeof(float));
  return bytes;
}

void IncrementalDecoder::store_kv(int64_t layer, const Tensor& k, const Tensor& v) {
  const int64_t c = model_.config().kv_dim();
  const size_t li = static_cast<size_t>(layer);
  if (!quantize_kv_) {
    k_cache_[li].insert(k_cache_[li].end(), k.raw(), k.raw() + c);
    v_cache_[li].insert(v_cache_[li].end(), v.raw(), v.raw() + c);
    return;
  }
  auto quantize_row = [c](const Tensor& row, std::vector<int8_t>& data,
                          std::vector<float>& scales) {
    float maxabs = 0.0f;
    for (int64_t d = 0; d < c; ++d) maxabs = std::max(maxabs, std::fabs(row[d]));
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    scales.push_back(scale);
    for (int64_t d = 0; d < c; ++d) {
      data.push_back(static_cast<int8_t>(
          std::clamp(std::round(row[d] / scale), -127.0f, 127.0f)));
    }
  };
  quantize_row(k, kq_cache_[li], kq_scales_[li]);
  quantize_row(v, vq_cache_[li], vq_scales_[li]);
}

float IncrementalDecoder::k_at(int64_t layer, int64_t pos, int64_t dim) const {
  const size_t li = static_cast<size_t>(layer);
  const int64_t c = model_.config().kv_dim();
  if (!quantize_kv_) return k_cache_[li][static_cast<size_t>(pos * c + dim)];
  return static_cast<float>(kq_cache_[li][static_cast<size_t>(pos * c + dim)]) *
         kq_scales_[li][static_cast<size_t>(pos)];
}

float IncrementalDecoder::v_at(int64_t layer, int64_t pos, int64_t dim) const {
  const size_t li = static_cast<size_t>(layer);
  const int64_t c = model_.config().kv_dim();
  if (!quantize_kv_) return v_cache_[li][static_cast<size_t>(pos * c + dim)];
  return static_cast<float>(vq_cache_[li][static_cast<size_t>(pos * c + dim)]) *
         vq_scales_[li][static_cast<size_t>(pos)];
}

void IncrementalDecoder::prime(const std::vector<int64_t>& prompt) {
  check_arg(!prompt.empty(), "IncrementalDecoder: empty prompt");
  position_ = 0;
  for (auto& k : k_cache_) k.clear();
  for (auto& v : v_cache_) v.clear();
  for (auto& k : kq_cache_) k.clear();
  for (auto& v : vq_cache_) v.clear();
  for (auto& s : kq_scales_) s.clear();
  for (auto& s : vq_scales_) s.clear();
  for (int64_t t : prompt) append_token(t);
}

void IncrementalDecoder::step(int64_t token) {
  check_arg(position_ > 0, "IncrementalDecoder: call prime() first");
  append_token(token);
}

void IncrementalDecoder::append_token(int64_t token) {
  const ModelConfig& cfg = model_.config();
  check_arg(position_ < cfg.max_seq, "IncrementalDecoder: context window exhausted");
  check_arg(token >= 0 && token < cfg.vocab, "IncrementalDecoder: token out of range");

  const int64_t c = cfg.d_model;
  const int64_t n_heads = cfg.n_heads;
  const int64_t dh = c / n_heads;
  const float alpha = 1.0f / std::sqrt(static_cast<float>(dh));

  Embedding& emb = model_.token_embedding();
  emb.set_grad_enabled(false);
  Tensor x = emb.forward({token});  // [1, c]
  const Param& pos = model_.positional_embedding();
  for (int64_t d = 0; d < c; ++d) x[d] += pos.value[position_ * c + d];

  auto blocks = model_.blocks();
  for (int64_t li = 0; li < exit_layer_; ++li) {
    TransformerBlock& block = *blocks[static_cast<size_t>(li)];
    block.set_grad_enabled(false);
    MultiHeadAttention& attn = block.attention();

    const Tensor h = block.norm1().forward(x);
    const Tensor q = attn.q_proj().forward(h);
    const Tensor k = attn.k_proj().forward(h);
    const Tensor v = attn.v_proj().forward(h);

    store_kv(li, k, v);
    const int64_t t = position_ + 1;  // cached positions including this one

    Tensor ctx({int64_t{1}, c});
    std::vector<float> scores(static_cast<size_t>(t));
    const int64_t group = n_heads / cfg.kv_heads();
    for (int64_t head = 0; head < n_heads; ++head) {
      const int64_t off = head * dh;
      const int64_t kv_off = (head / group) * dh;  // shared KV head (GQA)
      // scores over all cached positions for this head
      float mx = -1e30f;
      for (int64_t p = 0; p < t; ++p) {
        float s = 0.0f;
        for (int64_t d = 0; d < dh; ++d) s += q[off + d] * k_at(li, p, kv_off + d);
        scores[static_cast<size_t>(p)] = s * alpha;
        mx = std::max(mx, scores[static_cast<size_t>(p)]);
      }
      float denom = 0.0f;
      for (int64_t p = 0; p < t; ++p) {
        scores[static_cast<size_t>(p)] = std::exp(scores[static_cast<size_t>(p)] - mx);
        denom += scores[static_cast<size_t>(p)];
      }
      const float inv = 1.0f / denom;
      for (int64_t p = 0; p < t; ++p) {
        const float w = scores[static_cast<size_t>(p)] * inv;
        for (int64_t d = 0; d < dh; ++d) ctx[off + d] += w * v_at(li, p, kv_off + d);
      }
    }
    const Tensor attn_out = attn.out_proj().forward(ctx);
    ops::add_inplace(x, attn_out);

    const Tensor h2 = block.norm2().forward(x);
    ops::add_inplace(x, block.mlp().forward(h2));
  }

  const int64_t exit_idx = model_.exit_index(exit_layer_);
  RmsNorm& norm = model_.exit_norm(exit_idx);
  Linear& head = model_.exit_head(exit_idx);
  norm.set_grad_enabled(false);
  head.set_grad_enabled(false);
  logits_ = head.forward(norm.forward(x)).reshape({cfg.vocab});
  ++position_;
}

int64_t sample_token(const Tensor& logits, const GenerateConfig& cfg, Rng& rng) {
  check_arg(logits.ndim() == 1 && logits.numel() > 0, "sample_token: logits must be 1-d");
  const int64_t vocab = logits.numel();
  if (cfg.temperature <= 0.0f) {
    return ops::argmax_lastdim(logits.reshape({int64_t{1}, vocab}))[0];
  }
  Tensor scaled = ops::scale(logits, 1.0f / cfg.temperature);
  if (cfg.top_k > 0 && cfg.top_k < vocab) {
    // Mask everything below the k-th largest logit.
    std::vector<float> sorted(scaled.raw(), scaled.raw() + vocab);
    std::nth_element(sorted.begin(), sorted.begin() + (cfg.top_k - 1), sorted.end(),
                     std::greater<float>());
    const float cutoff = sorted[static_cast<size_t>(cfg.top_k - 1)];
    for (int64_t i = 0; i < vocab; ++i) {
      if (scaled[i] < cutoff) scaled[i] = -1e30f;
    }
  }
  const Tensor probs = ops::softmax_lastdim(scaled.reshape({int64_t{1}, vocab}));
  return rng.categorical(probs.data());
}

std::vector<int64_t> IncrementalDecoder::generate(const std::vector<int64_t>& prompt,
                                                  const GenerateConfig& cfg, Rng& rng) {
  check_arg(cfg.max_new_tokens > 0, "generate: max_new_tokens must be positive");
  prime(prompt);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(cfg.max_new_tokens));
  for (int64_t i = 0; i < cfg.max_new_tokens; ++i) {
    if (position_ >= model_.config().max_seq) break;  // window exhausted
    const int64_t tok = sample_token(logits_, cfg, rng);
    out.push_back(tok);
    if (position_ < model_.config().max_seq) step(tok);
  }
  return out;
}

}  // namespace edgellm::nn
