// Causal multi-head self-attention with full explicit backward.
#pragma once

#include <memory>
#include <string>

#include "nn/linear.hpp"

namespace edgellm::nn {

/// Standard causal MHA: Q/K/V/output projections are Linear layers (and are
/// therefore individually compressible by LUC policies).
///
/// Supports grouped-query attention (GQA): with n_kv_heads < n_heads the
/// K/V projections produce fewer heads, each shared by a group of query
/// heads — smaller projections and (crucially for edge decoding) a
/// proportionally smaller KV cache.
class MultiHeadAttention final : public Module {
 public:
  /// `n_kv_heads` 0 means n_heads (standard MHA); otherwise it must divide
  /// n_heads.
  MultiHeadAttention(std::string name, int64_t d_model, int64_t n_heads, Rng& rng,
                     int64_t n_kv_heads = 0);

  /// x is [B, T, C]; returns [B, T, C].
  Tensor forward(const Tensor& x);

  /// grad_out is [B, T, C]; returns grad w.r.t. x.
  Tensor backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  Linear& q_proj() { return *q_; }
  Linear& k_proj() { return *k_; }
  Linear& v_proj() { return *v_; }
  Linear& out_proj() { return *o_; }

  int64_t d_model() const { return d_model_; }
  int64_t n_heads() const { return n_heads_; }
  int64_t n_kv_heads() const { return n_kv_heads_; }
  int64_t d_head() const { return d_head_; }
  /// Feature width of the K/V projections (n_kv_heads * d_head).
  int64_t kv_dim() const { return n_kv_heads_ * d_head_; }

 private:
  std::string name_;
  int64_t d_model_;
  int64_t n_heads_;
  int64_t n_kv_heads_;
  int64_t d_head_;
  std::unique_ptr<Linear> q_, k_, v_, o_;

  bool has_cache_ = false;
  int64_t cached_b_ = 0, cached_t_ = 0;
  Tensor q_heads_, k_heads_, v_heads_;  ///< [B*H, T, Dh] (K/V group-expanded)
  Tensor probs_;                        ///< [B*H, T, T]

  /// [B, T, n*Dh] -> [B*n, T, Dh]
  Tensor split_heads(const Tensor& x, int64_t b, int64_t t, int64_t n) const;
  /// [B*n, T, Dh] -> [B, T, n*Dh]
  Tensor merge_heads(const Tensor& x, int64_t b, int64_t t, int64_t n) const;
  /// [B*Hkv, T, Dh] -> [B*H, T, Dh] by repeating each KV head over its group.
  Tensor expand_kv(const Tensor& x, int64_t b, int64_t t) const;
  /// Adjoint of expand_kv: sums group members back into [B*Hkv, T, Dh].
  Tensor reduce_kv(const Tensor& x, int64_t b, int64_t t) const;
};

}  // namespace edgellm::nn
