#include "nn/attention.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace edgellm::nn {

namespace {
constexpr float kMaskValue = -1e30f;
}

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t d_model, int64_t n_heads,
                                       Rng& rng, int64_t n_kv_heads)
    : name_(std::move(name)),
      d_model_(d_model),
      n_heads_(n_heads),
      n_kv_heads_(n_kv_heads > 0 ? n_kv_heads : n_heads) {
  check_arg(d_model_ > 0 && n_heads_ > 0, "MHA: dims must be positive");
  check_arg(d_model_ % n_heads_ == 0, "MHA: d_model must be divisible by n_heads");
  check_arg(n_heads_ % n_kv_heads_ == 0, "MHA: n_kv_heads must divide n_heads");
  d_head_ = d_model_ / n_heads_;
  q_ = std::make_unique<Linear>(name_ + ".q", d_model_, d_model_, /*bias=*/false, rng);
  k_ = std::make_unique<Linear>(name_ + ".k", d_model_, kv_dim(), /*bias=*/false, rng);
  v_ = std::make_unique<Linear>(name_ + ".v", d_model_, kv_dim(), /*bias=*/false, rng);
  o_ = std::make_unique<Linear>(name_ + ".o", d_model_, d_model_, /*bias=*/false, rng);
}

Tensor MultiHeadAttention::split_heads(const Tensor& x, int64_t b, int64_t t, int64_t n) const {
  Tensor out({b * n, t, d_head_});
  const int64_t width = n * d_head_;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t h = 0; h < n; ++h) {
        const float* src = x.raw() + (bi * t + ti) * width + h * d_head_;
        float* dst = out.raw() + ((bi * n + h) * t + ti) * d_head_;
        for (int64_t d = 0; d < d_head_; ++d) dst[d] = src[d];
      }
    }
  }
  return out;
}

Tensor MultiHeadAttention::merge_heads(const Tensor& x, int64_t b, int64_t t, int64_t n) const {
  const int64_t width = n * d_head_;
  Tensor out({b, t, width});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t h = 0; h < n; ++h) {
        const float* src = x.raw() + ((bi * n + h) * t + ti) * d_head_;
        float* dst = out.raw() + (bi * t + ti) * width + h * d_head_;
        for (int64_t d = 0; d < d_head_; ++d) dst[d] = src[d];
      }
    }
  }
  return out;
}

Tensor MultiHeadAttention::expand_kv(const Tensor& x, int64_t b, int64_t t) const {
  if (n_kv_heads_ == n_heads_) return x;
  const int64_t group = n_heads_ / n_kv_heads_;
  Tensor out({b * n_heads_, t, d_head_});
  const int64_t slice = t * d_head_;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t h = 0; h < n_heads_; ++h) {
      const float* src = x.raw() + (bi * n_kv_heads_ + h / group) * slice;
      float* dst = out.raw() + (bi * n_heads_ + h) * slice;
      for (int64_t i = 0; i < slice; ++i) dst[i] = src[i];
    }
  }
  return out;
}

Tensor MultiHeadAttention::reduce_kv(const Tensor& x, int64_t b, int64_t t) const {
  if (n_kv_heads_ == n_heads_) return x;
  const int64_t group = n_heads_ / n_kv_heads_;
  Tensor out({b * n_kv_heads_, t, d_head_});
  const int64_t slice = t * d_head_;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t h = 0; h < n_heads_; ++h) {
      const float* src = x.raw() + (bi * n_heads_ + h) * slice;
      float* dst = out.raw() + (bi * n_kv_heads_ + h / group) * slice;
      for (int64_t i = 0; i < slice; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor MultiHeadAttention::forward(const Tensor& x) {
  check_arg(x.ndim() == 3 && x.dim(2) == d_model_, name_ + ": expects [B, T, C]");
  const int64_t b = x.dim(0), t = x.dim(1);

  // Projections share this module's grad flag so the tuner can disable
  // caching for the whole block at once.
  q_->set_grad_enabled(grad_enabled_);
  k_->set_grad_enabled(grad_enabled_);
  v_->set_grad_enabled(grad_enabled_);
  o_->set_grad_enabled(grad_enabled_);

  const Tensor q = split_heads(q_->forward(x), b, t, n_heads_);
  const Tensor k = expand_kv(split_heads(k_->forward(x), b, t, n_kv_heads_), b, t);
  const Tensor v = expand_kv(split_heads(v_->forward(x), b, t, n_kv_heads_), b, t);

  Tensor scores = ops::bmm_nt(q, k);  // [B*H, T, T]
  const float alpha = 1.0f / std::sqrt(static_cast<float>(d_head_));
  float* ps = scores.raw();
  parallel::parallel_for(0, b * n_heads_, 1, [=](int64_t lo, int64_t hi) {
    for (int64_t bh = lo; bh < hi; ++bh) {
      float* s = ps + bh * t * t;
      for (int64_t i = 0; i < t; ++i) {
        for (int64_t j = 0; j < t; ++j) {
          s[i * t + j] = j <= i ? s[i * t + j] * alpha : kMaskValue;
        }
      }
    }
  });
  Tensor probs = ops::softmax_lastdim(scores);
  const Tensor ctx = ops::bmm(probs, v);  // [B*H, T, Dh]
  const Tensor merged = merge_heads(ctx, b, t, n_heads_);

  if (grad_enabled_) {
    cached_b_ = b;
    cached_t_ = t;
    q_heads_ = q;
    k_heads_ = k;
    v_heads_ = v;
    probs_ = std::move(probs);
    has_cache_ = true;
  }
  return o_->forward(merged);
}

Tensor MultiHeadAttention::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_ && has_cache_, name_ + ": backward without cached forward");
  const int64_t b = cached_b_, t = cached_t_;
  check_arg(grad_out.ndim() == 3 && grad_out.dim(0) == b && grad_out.dim(1) == t &&
                grad_out.dim(2) == d_model_,
            name_ + ": grad shape mismatch");

  const Tensor grad_merged = o_->backward(grad_out);
  const Tensor grad_ctx = split_heads(grad_merged, b, t, n_heads_);  // [B*H, T, Dh]

  // ctx = probs @ v. The zero-skip kernel is safe here: probs rows sum to 1
  // (a whole row can never be zero), so any NaN/Inf in grad_ctx still
  // reaches grad_v through the row's nonzero weights, and a NaN in probs
  // itself is != 0 and never skipped. The causal mask zeroes ~half of
  // probs exactly (softmax of -1e30 underflows), which the skip exploits.
  const Tensor grad_probs = ops::bmm_nt(grad_ctx, v_heads_);   // [B*H, T, T]
  const Tensor grad_v = ops::bmm_tn_skipzero(probs_, grad_ctx);  // [B*H, T, Dh]

  // probs = softmax(scores); masked positions have probs == 0, so the
  // softmax backward already yields zero grad there.
  Tensor grad_scores = ops::softmax_lastdim_backward(probs_, grad_probs);
  const float alpha = 1.0f / std::sqrt(static_cast<float>(d_head_));
  for (int64_t i = 0; i < grad_scores.numel(); ++i) grad_scores[i] *= alpha;

  const Tensor grad_q = ops::bmm(grad_scores, k_heads_);     // [B*H, T, Dh]
  const Tensor grad_k = ops::bmm_tn(grad_scores, q_heads_);  // [B*H, T, Dh]

  Tensor gx = q_->backward(merge_heads(grad_q, b, t, n_heads_));
  ops::add_inplace(
      gx, k_->backward(merge_heads(reduce_kv(grad_k, b, t), b, t, n_kv_heads_)));
  ops::add_inplace(
      gx, v_->backward(merge_heads(reduce_kv(grad_v, b, t), b, t, n_kv_heads_)));
  return gx;
}

void MultiHeadAttention::collect_params(std::vector<Param*>& out) {
  q_->collect_params(out);
  k_->collect_params(out);
  v_->collect_params(out);
  o_->collect_params(out);
}

int64_t MultiHeadAttention::cached_activation_bytes() const {
  int64_t bytes = q_->cached_activation_bytes() + k_->cached_activation_bytes() +
                  v_->cached_activation_bytes() + o_->cached_activation_bytes();
  if (has_cache_) {
    bytes += tensor_bytes(q_heads_) + tensor_bytes(k_heads_) + tensor_bytes(v_heads_) +
             tensor_bytes(probs_);
  }
  return bytes;
}

void MultiHeadAttention::clear_cache() {
  has_cache_ = false;
  q_heads_ = k_heads_ = v_heads_ = probs_ = Tensor();
  q_->clear_cache();
  k_->clear_cache();
  v_->clear_cache();
  o_->clear_cache();
}

}  // namespace edgellm::nn
