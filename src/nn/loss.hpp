// Losses for language-model training.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgellm::nn {

/// Result of a cross-entropy evaluation: mean loss over non-ignored
/// positions and the gradient w.r.t. the logits.
struct CrossEntropyResult {
  float loss = 0.0f;
  Tensor grad_logits;  ///< same shape as logits
  int64_t counted = 0; ///< positions that contributed to the mean
};

/// Target index that is excluded from the loss (padding).
inline constexpr int64_t kIgnoreIndex = -1;

/// Mean token cross-entropy. `logits` is [rows, vocab]; `targets` has one
/// class index per row (kIgnoreIndex rows are skipped).
CrossEntropyResult cross_entropy(const Tensor& logits, const std::vector<int64_t>& targets);

/// Loss only (no gradient allocation) — for eval loops.
float cross_entropy_loss_only(const Tensor& logits, const std::vector<int64_t>& targets);

}  // namespace edgellm::nn
