#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace edgellm::nn {

CrossEntropyResult cross_entropy(const Tensor& logits, const std::vector<int64_t>& targets) {
  check_arg(logits.ndim() == 2, "cross_entropy: logits must be [rows, vocab]");
  const int64_t rows = logits.dim(0), vocab = logits.dim(1);
  check_arg(static_cast<int64_t>(targets.size()) == rows,
            "cross_entropy: target count must equal logit rows");

  const Tensor logp = ops::log_softmax_lastdim(logits);
  CrossEntropyResult res;
  res.grad_logits = Tensor(logits.shape());

  double total = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == kIgnoreIndex) continue;
    check_arg(t >= 0 && t < vocab, "cross_entropy: target out of vocab range");
    total += -logp[r * vocab + t];
    ++counted;
  }
  check_arg(counted > 0, "cross_entropy: all targets ignored");
  res.loss = static_cast<float>(total / counted);
  res.counted = counted;

  // dL/dlogits = (softmax - onehot) / counted on counted rows, 0 elsewhere.
  const float inv = 1.0f / static_cast<float>(counted);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == kIgnoreIndex) continue;
    for (int64_t v = 0; v < vocab; ++v) {
      res.grad_logits[r * vocab + v] = std::exp(logp[r * vocab + v]) * inv;
    }
    res.grad_logits[r * vocab + t] -= inv;
  }
  return res;
}

float cross_entropy_loss_only(const Tensor& logits, const std::vector<int64_t>& targets) {
  check_arg(logits.ndim() == 2, "cross_entropy: logits must be [rows, vocab]");
  const int64_t rows = logits.dim(0), vocab = logits.dim(1);
  check_arg(static_cast<int64_t>(targets.size()) == rows,
            "cross_entropy: target count must equal logit rows");
  const Tensor logp = ops::log_softmax_lastdim(logits);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == kIgnoreIndex) continue;
    check_arg(t >= 0 && t < vocab, "cross_entropy: target out of vocab range");
    total += -logp[r * vocab + t];
    ++counted;
  }
  check_arg(counted > 0, "cross_entropy: all targets ignored");
  return static_cast<float>(total / counted);
}

}  // namespace edgellm::nn
