#include "nn/lora.hpp"

namespace edgellm::nn {

namespace {
bool is_lora_or_exit(const Param& p) {
  return p.name.find(".lora_") != std::string::npos ||
         p.name.rfind("exit", 0) == 0 || p.name.rfind("lm_head", 0) == 0;
}
}  // namespace

void enable_lora_tuning(CausalLm& model, int64_t rank, float alpha, Rng& rng) {
  for (TransformerBlock* b : model.blocks()) {
    for (Linear* lin : b->linears()) lin->enable_lora(rank, alpha, rng);
  }
  for (Param* p : model.params()) p->trainable = is_lora_or_exit(*p);
}

void disable_lora_tuning(CausalLm& model) {
  for (TransformerBlock* b : model.blocks()) {
    for (Linear* lin : b->linears()) lin->disable_lora();
  }
  for (Param* p : model.params()) p->trainable = true;
}

std::vector<Param*> lora_trainable_params(CausalLm& model) {
  std::vector<Param*> out;
  for (Param* p : model.params()) {
    if (p->trainable && is_lora_or_exit(*p)) out.push_back(p);
  }
  return out;
}

}  // namespace edgellm::nn
