#include "nn/kv_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor.hpp"

namespace edgellm::nn {

void KvCache::configure(int64_t n_layers, int64_t kv_dim, bool quantize) {
  check_arg(n_layers > 0 && kv_dim > 0, "KvCache: n_layers and kv_dim must be positive");
  n_layers_ = n_layers;
  kv_dim_ = kv_dim;
  quantize_ = quantize;
  const size_t n = static_cast<size_t>(n_layers);
  k_.assign(quantize ? 0 : n, {});
  v_.assign(quantize ? 0 : n, {});
  kq_.assign(quantize ? n : 0, {});
  vq_.assign(quantize ? n : 0, {});
  kq_scales_.assign(quantize ? n : 0, {});
  vq_scales_.assign(quantize ? n : 0, {});
}

void KvCache::clear() {
  for (auto& x : k_) x.clear();
  for (auto& x : v_) x.clear();
  for (auto& x : kq_) x.clear();
  for (auto& x : vq_) x.clear();
  for (auto& x : kq_scales_) x.clear();
  for (auto& x : vq_scales_) x.clear();
}

int64_t KvCache::positions(int64_t layer) const {
  check_arg(layer >= 0 && layer < n_layers_, "KvCache: layer out of range");
  const size_t li = static_cast<size_t>(layer);
  if (quantize_) return static_cast<int64_t>(kq_scales_[li].size());
  return static_cast<int64_t>(k_[li].size()) / kv_dim_;
}

void KvCache::truncate(int64_t n) {
  check_arg(n >= 0, "KvCache::truncate: n must be >= 0");
  const auto clamp_resize = [n](auto& per_layer, int64_t per_pos) {
    for (auto& x : per_layer) {
      const size_t keep = static_cast<size_t>(n * per_pos);
      if (x.size() > keep) x.resize(keep);
    }
  };
  clamp_resize(k_, kv_dim_);
  clamp_resize(v_, kv_dim_);
  clamp_resize(kq_, kv_dim_);
  clamp_resize(vq_, kv_dim_);
  clamp_resize(kq_scales_, 1);
  clamp_resize(vq_scales_, 1);
}

int64_t KvCache::bytes() const {
  int64_t bytes = 0;
  for (const auto& x : k_) bytes += static_cast<int64_t>(x.size() * sizeof(float));
  for (const auto& x : v_) bytes += static_cast<int64_t>(x.size() * sizeof(float));
  for (const auto& x : kq_) bytes += static_cast<int64_t>(x.size());
  for (const auto& x : vq_) bytes += static_cast<int64_t>(x.size());
  for (const auto& x : kq_scales_) bytes += static_cast<int64_t>(x.size() * sizeof(float));
  for (const auto& x : vq_scales_) bytes += static_cast<int64_t>(x.size() * sizeof(float));
  return bytes;
}

void KvCache::append_quantized(const float* row, std::vector<int8_t>& data,
                               std::vector<float>& scales) {
  float maxabs = 0.0f;
  for (int64_t d = 0; d < kv_dim_; ++d) maxabs = std::max(maxabs, std::fabs(row[d]));
  const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  scales.push_back(scale);
  for (int64_t d = 0; d < kv_dim_; ++d) {
    data.push_back(
        static_cast<int8_t>(std::clamp(std::round(row[d] / scale), -127.0f, 127.0f)));
  }
}

void KvCache::append(int64_t layer, const float* k, const float* v) {
  check_arg(layer >= 0 && layer < n_layers_, "KvCache: layer out of range");
  const size_t li = static_cast<size_t>(layer);
  if (!quantize_) {
    k_[li].insert(k_[li].end(), k, k + kv_dim_);
    v_[li].insert(v_[li].end(), v, v + kv_dim_);
    return;
  }
  append_quantized(k, kq_[li], kq_scales_[li]);
  append_quantized(v, vq_[li], vq_scales_[li]);
}

void KvCache::load_row(const std::vector<float>* fp, const std::vector<int8_t>* q,
                       const std::vector<float>* scales, int64_t pos, float* out) const {
  if (!quantize_) {
    std::memcpy(out, fp->data() + pos * kv_dim_, static_cast<size_t>(kv_dim_) * sizeof(float));
    return;
  }
  const float scale = (*scales)[static_cast<size_t>(pos)];
  const int8_t* row = q->data() + pos * kv_dim_;
  for (int64_t d = 0; d < kv_dim_; ++d) out[d] = static_cast<float>(row[d]) * scale;
}

void KvCache::load_k(int64_t layer, int64_t pos, float* out) const {
  const size_t li = static_cast<size_t>(layer);
  load_row(quantize_ ? nullptr : &k_[li], quantize_ ? &kq_[li] : nullptr,
           quantize_ ? &kq_scales_[li] : nullptr, pos, out);
}

void KvCache::load_v(int64_t layer, int64_t pos, float* out) const {
  const size_t li = static_cast<size_t>(layer);
  load_row(quantize_ ? nullptr : &v_[li], quantize_ ? &vq_[li] : nullptr,
           quantize_ ? &vq_scales_[li] : nullptr, pos, out);
}

}  // namespace edgellm::nn
