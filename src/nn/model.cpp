#include "nn/model.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace edgellm::nn {

namespace {

std::vector<int64_t> normalize_exits(std::vector<int64_t> exits, int64_t n_layers) {
  if (std::find(exits.begin(), exits.end(), n_layers) == exits.end()) {
    exits.push_back(n_layers);
  }
  std::sort(exits.begin(), exits.end());
  exits.erase(std::unique(exits.begin(), exits.end()), exits.end());
  check_arg(exits.front() >= 1 && exits.back() <= n_layers,
            "exit layers must be within [1, n_layers]");
  return exits;
}

}  // namespace

CausalLm::CausalLm(ModelConfig cfg, Rng& rng) : cfg_(std::move(cfg)) {
  check_arg(cfg_.vocab > 0 && cfg_.d_model > 0 && cfg_.n_layers > 0 && cfg_.max_seq > 0,
            "CausalLm: config dims must be positive");
  cfg_.exit_layers = normalize_exits(cfg_.exit_layers, cfg_.n_layers);

  tok_emb_ = std::make_unique<Embedding>("tok_emb", cfg_.vocab, cfg_.d_model, rng);
  pos_emb_ = Param("pos_emb", randn({cfg_.max_seq, cfg_.d_model}, rng, 0.0f, 0.02f));

  blocks_.reserve(static_cast<size_t>(cfg_.n_layers));
  for (int64_t i = 0; i < cfg_.n_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        "block" + std::to_string(i), cfg_.d_model, cfg_.n_heads, cfg_.ff_dim(), rng,
        cfg_.kv_heads(), cfg_.swiglu ? MlpKind::kSwiGlu : MlpKind::kGelu));
  }

  const size_t n_exits = cfg_.exit_layers.size();
  for (size_t e = 0; e < n_exits; ++e) {
    const std::string tag = "exit" + std::to_string(cfg_.exit_layers[e]);
    exit_norms_.push_back(std::make_unique<RmsNorm>(tag + ".norm", cfg_.d_model));
  }
  const size_t n_heads = cfg_.tie_exit_heads ? 1 : n_exits;
  for (size_t e = 0; e < n_heads; ++e) {
    const std::string tag = cfg_.tie_exit_heads ? std::string("lm_head")
                                                : "exit" + std::to_string(cfg_.exit_layers[e]) +
                                                      ".head";
    exit_heads_.push_back(
        std::make_unique<Linear>(tag, cfg_.d_model, cfg_.vocab, /*bias=*/false, rng));
  }
}

int64_t CausalLm::exit_index(int64_t exit_layer) const {
  const auto it = std::find(cfg_.exit_layers.begin(), cfg_.exit_layers.end(), exit_layer);
  check_arg(it != cfg_.exit_layers.end(),
            "exit layer " + std::to_string(exit_layer) + " is not registered");
  return it - cfg_.exit_layers.begin();
}

Linear& CausalLm::head_for_exit(int64_t exit_idx) {
  return cfg_.tie_exit_heads ? *exit_heads_[0] : *exit_heads_[static_cast<size_t>(exit_idx)];
}

Tensor CausalLm::embed(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
                       bool cache_for_grad) {
  check_arg(batch > 0 && seq > 0, "CausalLm: batch and seq must be positive");
  check_arg(static_cast<int64_t>(tokens.size()) == batch * seq,
            "CausalLm: token count must equal batch * seq");
  check_arg(seq <= cfg_.max_seq, "CausalLm: sequence longer than max_seq");

  tok_emb_->set_grad_enabled(cache_for_grad);
  Tensor x = tok_emb_->forward(tokens).reshape({batch, seq, cfg_.d_model});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t t = 0; t < seq; ++t) {
      for (int64_t d = 0; d < cfg_.d_model; ++d) {
        x[(b * seq + t) * cfg_.d_model + d] += pos_emb_.value[t * cfg_.d_model + d];
      }
    }
  }
  return x;
}

Tensor CausalLm::forward(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
                         const ForwardPlan& plan) {
  const int64_t exit_idx = exit_index(plan.exit_layer);
  check_arg(plan.backprop_depth >= 0 && plan.backprop_depth <= plan.exit_layer,
            "backprop_depth must be in [0, exit_layer]");
  check_arg(!plan.update_embeddings || plan.backprop_depth == plan.exit_layer,
            "update_embeddings requires backprop through every executed block");
  check_arg(!plan.checkpoint || plan.backprop_depth == plan.exit_layer,
            "checkpointing requires backprop through every executed block");

  embeddings_trained_ = plan.update_embeddings && plan.backprop_depth == plan.exit_layer;
  Tensor x = embed(tokens, batch, seq, embeddings_trained_);

  checkpoint_inputs_.clear();
  peak_backward_cache_bytes_ = 0;
  const int64_t window_start = plan.exit_layer - plan.backprop_depth;
  for (int64_t i = 0; i < plan.exit_layer; ++i) {
    if (plan.checkpoint) {
      // Store only the block's input; caches are rebuilt during backward.
      checkpoint_inputs_.push_back(x);
      blocks_[static_cast<size_t>(i)]->set_grad_enabled(false);
    } else {
      blocks_[static_cast<size_t>(i)]->set_grad_enabled(i >= window_start);
    }
    x = blocks_[static_cast<size_t>(i)]->forward(x);
  }

  RmsNorm& norm = *exit_norms_[static_cast<size_t>(exit_idx)];
  Linear& head = head_for_exit(exit_idx);
  norm.set_grad_enabled(true);
  head.set_grad_enabled(true);
  Tensor logits = head.forward(norm.forward(x));

  plan_ = plan;
  cached_batch_ = batch;
  cached_seq_ = seq;
  has_plan_ = true;
  return logits.reshape({batch * seq, cfg_.vocab});
}

void CausalLm::backward(const Tensor& grad_logits) {
  check_arg(has_plan_, "CausalLm: backward without forward");
  check_arg(grad_logits.ndim() == 2 && grad_logits.dim(0) == cached_batch_ * cached_seq_ &&
                grad_logits.dim(1) == cfg_.vocab,
            "CausalLm: grad_logits shape mismatch");

  const int64_t exit_idx = exit_index(plan_.exit_layer);
  const Tensor g3 = grad_logits.reshape({cached_batch_, cached_seq_, cfg_.vocab});
  Tensor g = exit_norms_[static_cast<size_t>(exit_idx)]->backward(
      head_for_exit(exit_idx).backward(g3));

  const int64_t window_start = plan_.exit_layer - plan_.backprop_depth;
  for (int64_t i = plan_.exit_layer - 1; i >= window_start; --i) {
    TransformerBlock& block = *blocks_[static_cast<size_t>(i)];
    if (plan_.checkpoint) {
      // Rebuild this block's caches from its stashed input, then backward.
      block.set_grad_enabled(true);
      (void)block.forward(checkpoint_inputs_[static_cast<size_t>(i)]);
      peak_backward_cache_bytes_ =
          std::max(peak_backward_cache_bytes_, block.cached_activation_bytes());
      g = block.backward(g);
      block.clear_cache();
    } else {
      g = block.backward(g);
    }
  }

  if (embeddings_trained_) {
    // Positional grads: sum over the batch dimension.
    for (int64_t b = 0; b < cached_batch_; ++b) {
      for (int64_t t = 0; t < cached_seq_; ++t) {
        for (int64_t d = 0; d < cfg_.d_model; ++d) {
          pos_emb_.grad[t * cfg_.d_model + d] +=
              g[(b * cached_seq_ + t) * cfg_.d_model + d];
        }
      }
    }
    tok_emb_->backward(g.reshape({cached_batch_ * cached_seq_, cfg_.d_model}));
  }
  has_plan_ = false;
}

std::vector<Param*> CausalLm::params_for_plan(const ForwardPlan& plan) {
  const int64_t exit_idx = exit_index(plan.exit_layer);
  std::vector<Param*> out;
  if (plan.update_embeddings && plan.backprop_depth == plan.exit_layer) {
    tok_emb_->collect_params(out);
    out.push_back(&pos_emb_);
  }
  const int64_t window_start = plan.exit_layer - plan.backprop_depth;
  for (int64_t i = window_start; i < plan.exit_layer; ++i) {
    blocks_[static_cast<size_t>(i)]->collect_params(out);
  }
  exit_norms_[static_cast<size_t>(exit_idx)]->collect_params(out);
  head_for_exit(exit_idx).collect_params(out);
  return out;
}

Tensor CausalLm::forward_eval(const std::vector<int64_t>& tokens, int64_t batch, int64_t seq,
                              int64_t exit_layer) {
  const int64_t exit_idx = exit_index(exit_layer);
  Tensor x = embed(tokens, batch, seq, /*cache_for_grad=*/false);
  for (int64_t i = 0; i < exit_layer; ++i) {
    blocks_[static_cast<size_t>(i)]->set_grad_enabled(false);
    x = blocks_[static_cast<size_t>(i)]->forward(x);
  }
  RmsNorm& norm = *exit_norms_[static_cast<size_t>(exit_idx)];
  Linear& head = head_for_exit(exit_idx);
  norm.set_grad_enabled(false);
  head.set_grad_enabled(false);
  return head.forward(norm.forward(x)).reshape({batch * seq, cfg_.vocab});
}

std::vector<Tensor> CausalLm::forward_all_exits(const std::vector<int64_t>& tokens,
                                                int64_t batch, int64_t seq) {
  Tensor x = embed(tokens, batch, seq, /*cache_for_grad=*/false);
  std::vector<Tensor> out;
  out.reserve(cfg_.exit_layers.size());
  size_t next_exit = 0;
  for (int64_t i = 0; i < cfg_.n_layers && next_exit < cfg_.exit_layers.size(); ++i) {
    blocks_[static_cast<size_t>(i)]->set_grad_enabled(false);
    x = blocks_[static_cast<size_t>(i)]->forward(x);
    if (cfg_.exit_layers[next_exit] == i + 1) {
      RmsNorm& norm = *exit_norms_[next_exit];
      Linear& head = head_for_exit(static_cast<int64_t>(next_exit));
      norm.set_grad_enabled(false);
      head.set_grad_enabled(false);
      out.push_back(head.forward(norm.forward(x)).reshape({batch * seq, cfg_.vocab}));
      ++next_exit;
    }
  }
  return out;
}

void CausalLm::set_eval() {
  tok_emb_->set_grad_enabled(false);
  for (auto& b : blocks_) {
    b->set_grad_enabled(false);
    // The decode paths call child modules directly (bypassing
    // TransformerBlock::forward's flag propagation), so the children need
    // their own flags cleared too.
    b->norm1().set_grad_enabled(false);
    b->norm2().set_grad_enabled(false);
    b->attention().set_grad_enabled(false);
    b->mlp().set_grad_enabled(false);
    for (Linear* lin : b->linears()) lin->set_grad_enabled(false);
  }
  for (auto& n : exit_norms_) n->set_grad_enabled(false);
  for (auto& h : exit_heads_) h->set_grad_enabled(false);
  clear_cache();
}

void CausalLm::collect_params(std::vector<Param*>& out) {
  tok_emb_->collect_params(out);
  out.push_back(&pos_emb_);
  for (auto& b : blocks_) b->collect_params(out);
  for (auto& n : exit_norms_) n->collect_params(out);
  for (auto& h : exit_heads_) h->collect_params(out);
}

int64_t CausalLm::cached_activation_bytes() const {
  int64_t bytes = tok_emb_->cached_activation_bytes();
  for (const auto& b : blocks_) bytes += b->cached_activation_bytes();
  for (const auto& n : exit_norms_) bytes += n->cached_activation_bytes();
  for (const auto& h : exit_heads_) bytes += h->cached_activation_bytes();
  for (const Tensor& t : checkpoint_inputs_) bytes += tensor_bytes(t);
  return bytes;
}

void CausalLm::clear_cache() {
  tok_emb_->clear_cache();
  for (auto& b : blocks_) b->clear_cache();
  for (auto& n : exit_norms_) n->clear_cache();
  for (auto& h : exit_heads_) h->clear_cache();
  checkpoint_inputs_.clear();
  has_plan_ = false;
}

std::vector<TransformerBlock*> CausalLm::blocks() {
  std::vector<TransformerBlock*> out;
  out.reserve(blocks_.size());
  for (auto& b : blocks_) out.push_back(b.get());
  return out;
}

std::map<std::string, Tensor> CausalLm::state_dict() {
  std::map<std::string, Tensor> state;
  for (Param* p : params()) {
    check_arg(!state.contains(p->name), "duplicate param name: " + p->name);
    state.emplace(p->name, p->value);
  }
  return state;
}

void CausalLm::load_state_dict(const std::map<std::string, Tensor>& state) {
  for (Param* p : params()) {
    const auto it = state.find(p->name);
    check_arg(it != state.end(), "state dict missing param: " + p->name);
    check_arg(it->second.shape() == p->value.shape(),
              "state dict shape mismatch for " + p->name);
    p->value = it->second;
  }
  // Prune masks were derived from old weights; recompute them.
  for (TransformerBlock* b : blocks()) {
    for (Linear* lin : b->linears()) {
      if (lin->prune_spec()) lin->set_prune(*lin->prune_spec());
    }
  }
}

double CausalLm::weight_storage_bytes() {
  double bytes = quant::fp16_storage_bytes(tok_emb_->weight().value) +
                 quant::fp16_storage_bytes(pos_emb_.value);
  for (TransformerBlock* b : blocks()) {
    for (Linear* lin : b->linears()) bytes += lin->weight_storage_bytes();
    bytes += quant::fp16_storage_bytes(b->norm1().gain().value) +
             quant::fp16_storage_bytes(b->norm2().gain().value);
    for (Linear* lin : b->linears()) {
      if (lin->has_bias()) bytes += quant::fp16_storage_bytes(lin->bias().value);
    }
  }
  for (auto& n : exit_norms_) bytes += quant::fp16_storage_bytes(n->gain().value);
  for (auto& h : exit_heads_) bytes += quant::fp16_storage_bytes(h->weight().value);
  return bytes;
}

}  // namespace edgellm::nn
