#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace edgellm::nn {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features, bool bias, Rng& rng)
    : name_(std::move(name)), in_(in_features), out_(out_features) {
  check_arg(in_ > 0 && out_ > 0, "Linear: features must be positive");
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_));
  weight_ = Param(name_ + ".weight", rand_uniform({out_, in_}, rng, -bound, bound));
  if (bias) bias_ = Param(name_ + ".bias", rand_uniform({out_}, rng, -bound, bound));
}

Tensor Linear::effective_weight() const {
  if (!mask_ && !qspec_) return weight_.value;
  Tensor w = mask_ ? prune::apply_mask(weight_.value, *mask_) : weight_.value;
  if (qspec_) w = quant::fake_quant(w, *qspec_);
  return w;
}

bool Linear::packable() const {
  return qspec_.has_value() && qspec_->symmetric &&
         qspec_->granularity == quant::Granularity::kPerRow &&
         (qspec_->bits == 4 || qspec_->bits == 8) && !lora_enabled();
}

quant::PackedMatrix Linear::packed_weight() const {
  check_arg(packable(), name_ + ": weight is not packable under the current policy");
  const Tensor w = mask_ ? prune::apply_mask(weight_.value, *mask_) : weight_.value;
  return quant::PackedMatrix::pack(w, qspec_->bits);
}

Tensor Linear::forward(const Tensor& x) {
  check_arg(x.dim(-1) == in_, name_ + ": input feature mismatch");
  const int64_t rows = x.numel() / in_;
  const Tensor x2 = x.reshape({rows, in_});
  const Tensor w = effective_weight();
  Tensor y = ops::matmul_nt(x2, w);  // [rows, out]
  if (bias_) y = ops::add_bias(y, bias_->value);
  if (lora_a_) {
    const Tensor u = ops::matmul_nt(x2, lora_a_->value);      // [rows, rank]
    ops::axpy_inplace(y, lora_scale_, ops::matmul_nt(u, lora_b_->value));
  }

  if (grad_enabled_) {
    cached_input_ = x2;
    cached_x_shape_ = x.shape();
    has_cache_ = true;
  }

  Shape out_shape = x.shape();
  out_shape.back() = out_;
  return y.reshape(std::move(out_shape));
}

Tensor Linear::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_ && has_cache_, name_ + ": backward without cached forward");
  check_arg(grad_out.dim(-1) == out_, name_ + ": grad feature mismatch");
  const int64_t rows = grad_out.numel() / out_;
  check_arg(rows == cached_input_.dim(0), name_ + ": grad row mismatch");
  const Tensor g2 = grad_out.reshape({rows, out_});

  // dW = g^T x; STE passes the quant grad through unchanged, the prune mask
  // zeroes grads of pruned weights.
  Tensor dw = ops::matmul_tn(g2, cached_input_);  // [out, in]
  if (mask_) dw = prune::apply_mask(dw, *mask_);
  ops::add_inplace(weight_.grad, dw);

  if (bias_) {
    // Columns are disjoint and each accumulates over ascending r, so the
    // partition is bitwise identical to the serial (r, j) loop.
    float* bg = bias_->grad.raw();
    const float* pg = g2.raw();
    const int64_t out = out_;
    parallel::parallel_for(0, out, 64, [=](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        for (int64_t r = 0; r < rows; ++r) bg[j] += pg[r * out + j];
      }
    });
  }

  // dX = g * W_eff (the forward used the effective weight).
  const Tensor w = effective_weight();
  Tensor gx = ops::matmul(g2, w);  // [rows, in]

  if (lora_a_) {
    // y += s * (x A^T) B^T with A [r, in], B [out, r].
    const Tensor u = ops::matmul_nt(cached_input_, lora_a_->value);  // [rows, r]
    ops::axpy_inplace(lora_b_->grad, lora_scale_, ops::matmul_tn(g2, u));
    const Tensor du = ops::scale(ops::matmul(g2, lora_b_->value), lora_scale_);  // [rows, r]
    ops::add_inplace(lora_a_->grad, ops::matmul_tn(du, cached_input_));
    ops::add_inplace(gx, ops::matmul(du, lora_a_->value));
  }
  return gx.reshape(cached_x_shape_);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
  if (lora_a_) {
    out.push_back(&*lora_a_);
    out.push_back(&*lora_b_);
  }
}

void Linear::enable_lora(int64_t rank, float alpha, Rng& rng) {
  check_arg(rank > 0 && rank <= std::min(in_, out_), "enable_lora: invalid rank");
  check_arg(alpha > 0.0f, "enable_lora: alpha must be positive");
  lora_a_ = Param(name_ + ".lora_a", randn({rank, in_}, rng, 0.0f, 0.02f));
  lora_b_ = Param(name_ + ".lora_b", Tensor({out_, rank}));
  lora_scale_ = alpha / static_cast<float>(rank);
}

void Linear::disable_lora() {
  lora_a_.reset();
  lora_b_.reset();
  lora_scale_ = 0.0f;
}

int64_t Linear::cached_activation_bytes() const {
  return has_cache_ ? tensor_bytes(cached_input_) : 0;
}

void Linear::clear_cache() {
  has_cache_ = false;
  cached_input_ = Tensor();
}

void Linear::set_quant(std::optional<quant::QuantSpec> spec) {
  if (spec) quant::validate_spec(*spec);
  qspec_ = std::move(spec);
}

void Linear::set_prune(std::optional<prune::PruneSpec> spec) {
  if (spec) {
    prune::validate_spec(*spec);
    pspec_ = *spec;
    mask_ = prune::magnitude_mask(weight_.value, *spec);
  } else {
    pspec_.reset();
    mask_.reset();
  }
}

void Linear::set_prune_mask(Tensor mask) {
  check_arg(mask.shape() == weight_.value.shape(), "set_prune_mask: shape mismatch");
  for (int64_t i = 0; i < mask.numel(); ++i) {
    check_arg(mask[i] == 0.0f || mask[i] == 1.0f, "set_prune_mask: mask must be 0/1");
  }
  prune::PruneSpec spec;  // records the measured sparsity of the explicit mask
  spec.sparsity = prune::measured_sparsity(mask);
  pspec_ = spec;
  mask_ = std::move(mask);
}

void Linear::clear_compression() {
  qspec_.reset();
  pspec_.reset();
  mask_.reset();
}

double Linear::weight_storage_bytes() const {
  if (qspec_ && mask_) {
    return prune::sparse_storage_bytes(*mask_, qspec_->bits);
  }
  if (qspec_) return quant::storage_bytes(weight_.value, *qspec_);
  if (mask_) return prune::sparse_storage_bytes(*mask_, 16);
  return quant::fp16_storage_bytes(weight_.value);
}

}  // namespace edgellm::nn
