#include "nn/mlp.hpp"

#include "tensor/ops.hpp"

namespace edgellm::nn {

Mlp::Mlp(std::string name, int64_t d_model, int64_t d_ff, Rng& rng, MlpKind kind)
    : name_(std::move(name)), kind_(kind) {
  check_arg(d_model > 0 && d_ff > 0, "Mlp: dims must be positive");
  const bool bias = kind_ == MlpKind::kGelu;
  fc1_ = std::make_unique<Linear>(name_ + ".fc1", d_model, d_ff, bias, rng);
  fc2_ = std::make_unique<Linear>(name_ + ".fc2", d_ff, d_model, bias, rng);
  if (kind_ == MlpKind::kSwiGlu) {
    fc3_ = std::make_unique<Linear>(name_ + ".fc3", d_model, d_ff, /*bias=*/false, rng);
  }
}

Tensor Mlp::forward(const Tensor& x) {
  fc1_->set_grad_enabled(grad_enabled_);
  fc2_->set_grad_enabled(grad_enabled_);
  if (fc3_) fc3_->set_grad_enabled(grad_enabled_);

  if (kind_ == MlpKind::kGelu) {
    Tensor h = fc1_->forward(x);
    Tensor a = ops::gelu(h);
    if (grad_enabled_) {
      pre_act_ = std::move(h);
      has_cache_ = true;
    }
    return fc2_->forward(a);
  }

  // SwiGLU: down(silu(gate(x)) * up(x)), fused gate-up product.
  Tensor g = fc1_->forward(x);
  Tensor u = fc3_->forward(x);
  Tensor a = ops::swiglu(g, u);
  if (grad_enabled_) {
    pre_act_ = std::move(g);
    up_ = std::move(u);
    has_cache_ = true;
  }
  return fc2_->forward(a);
}

Tensor Mlp::backward(const Tensor& grad_out) {
  check_arg(grad_enabled_ && has_cache_, name_ + ": backward without cached forward");
  const Tensor grad_a = fc2_->backward(grad_out);

  if (kind_ == MlpKind::kGelu) {
    const Tensor grad_h = ops::gelu_grad(pre_act_, grad_a);
    return fc1_->backward(grad_h);
  }

  // a = silu(g) * u:
  //   dL/du = grad_a * silu(g)
  //   dL/dg = grad_a * u * silu'(g)
  const Tensor silu_g = ops::silu(pre_act_);
  const Tensor grad_u = ops::mul(grad_a, silu_g);
  const Tensor grad_g = ops::silu_grad(pre_act_, ops::mul(grad_a, up_));
  Tensor gx = fc1_->backward(grad_g);
  ops::add_inplace(gx, fc3_->backward(grad_u));
  return gx;
}

void Mlp::collect_params(std::vector<Param*>& out) {
  fc1_->collect_params(out);
  fc2_->collect_params(out);
  if (fc3_) fc3_->collect_params(out);
}

int64_t Mlp::cached_activation_bytes() const {
  int64_t bytes = fc1_->cached_activation_bytes() + fc2_->cached_activation_bytes();
  if (fc3_) bytes += fc3_->cached_activation_bytes();
  if (has_cache_) {
    bytes += tensor_bytes(pre_act_);
    if (kind_ == MlpKind::kSwiGlu) bytes += tensor_bytes(up_);
  }
  return bytes;
}

void Mlp::clear_cache() {
  has_cache_ = false;
  pre_act_ = Tensor();
  up_ = Tensor();
  fc1_->clear_cache();
  fc2_->clear_cache();
  if (fc3_) fc3_->clear_cache();
}

std::vector<Linear*> Mlp::linears() {
  if (fc3_) return {fc1_.get(), fc2_.get(), fc3_.get()};
  return {fc1_.get(), fc2_.get()};
}

}  // namespace edgellm::nn
