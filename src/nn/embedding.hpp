// Token embedding table.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"
#include "tensor/rng.hpp"

namespace edgellm::nn {

/// Lookup table [vocab, dim]; forward gathers rows for token ids, backward
/// scatter-adds into the weight grad.
class Embedding final : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng);

  /// tokens are ids in [0, vocab); returns [n_tokens, dim].
  Tensor forward(const std::vector<int64_t>& tokens);

  /// grad_out is [n_tokens, dim] matching the last forward.
  void backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out) override;
  int64_t cached_activation_bytes() const override;
  void clear_cache() override;

  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }
  Param& weight() { return weight_; }

 private:
  std::string name_;
  int64_t vocab_;
  int64_t dim_;
  Param weight_;
  std::vector<int64_t> cached_tokens_;
  bool has_cache_ = false;
};

}  // namespace edgellm::nn
