// Parameter and module framework for the explicit forward/backward NN stack.
//
// There is no autograd tape: each module caches what its own backward needs
// during forward, and only when grad is enabled for that module. The
// adaptive-layer tuner (src/core) exploits this by disabling grad (and thus
// activation caching) for all transformer blocks below the backprop depth —
// the memory mechanism the paper's component (2) relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgellm::nn {

/// A named trainable tensor with its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;            ///< same shape as value; accumulated by backward
  bool trainable = true;  ///< frozen params are skipped by optimizers

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
  int64_t numel() const { return value.numel(); }
};

/// Base class for layers with explicit forward/backward.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Appends pointers to all owned Params (recursively) to `out`.
  virtual void collect_params(std::vector<Param*>& out) = 0;

  /// Bytes of activations currently cached for backward.
  virtual int64_t cached_activation_bytes() const { return 0; }

  /// Drops cached activations (e.g. after a step or for eval).
  virtual void clear_cache() {}

  /// When false, forward must not cache activations and backward through
  /// this module is not allowed until re-enabled.
  void set_grad_enabled(bool enabled) { grad_enabled_ = enabled; }
  bool grad_enabled() const { return grad_enabled_; }

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }

  int64_t param_count() {
    int64_t n = 0;
    for (Param* p : params()) n += p->numel();
    return n;
  }

 protected:
  bool grad_enabled_ = true;
};

/// Bytes of a float tensor's storage (helper for activation accounting).
inline int64_t tensor_bytes(const Tensor& t) {
  return t.numel() * static_cast<int64_t>(sizeof(float));
}

}  // namespace edgellm::nn
