#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace edgellm::obs {

namespace {

// Bucket index for value v: first bound >= v, overflow bucket past the end.
size_t bucket_index(const std::vector<double>& bounds, double v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<size_t>(it - bounds.begin());
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<double> integer_bounds(int64_t n) {
  std::vector<double> b;
  for (int64_t i = 1; i <= std::max<int64_t>(1, n); ++i) b.push_back(static_cast<double>(i));
  return b;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bound");
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (!(bounds_[i] < bounds_[i + 1])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) {
  counts_[bucket_index(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const int64_t n = count();
  if (n <= 0) return 0.0;
  // 1-based target rank; nearest-rank at the extremes.
  const int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(n))));
  int64_t cum = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const int64_t c = counts_[b].load(std::memory_order_relaxed);
    if (cum + c >= rank) {
      if (b >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = bounds_[b];
      const double frac = c > 0 ? (static_cast<double>(rank - cum) - 0.5) / static_cast<double>(c)
                                : 0.5;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return bounds_.back();
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  for (size_t b = 0; b < counts_.size(); ++b) {
    counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

std::vector<double> Histogram::default_time_bounds_ms() {
  // 1 us doubling up to ~34 s: 26 bounds, 27 buckets.
  std::vector<double> b;
  double v = 1e-3;
  for (int i = 0; i < 26; ++i) {
    b.push_back(v);
    v *= 2.0;
  }
  return b;
}

// --- MetricsSnapshot --------------------------------------------------------

int64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << "\"" << counters[i].first << "\": " << counters[i].second;
  }
  os << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << "\"" << gauges[i].first << "\": " << gauges[i].second;
  }
  os << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i ? ",\n    " : "\n    ") << "\"" << h.name << "\": {\"count\": " << h.count
       << ", \"sum\": " << json_number(h.sum) << ", \"p50\": " << json_number(h.p50)
       << ", \"p95\": " << json_number(h.p95) << ", \"p99\": " << json_number(h.p99)
       << ", \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      const double bound = b < h.bounds.size() ? h.bounds[b] : -1.0;  // -1 = overflow
      os << (b ? ", " : "") << "[" << json_number(bound) << ", " << h.counts[b] << "]";
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "kind,name,value,count,sum,p50,p95,p99\n";
  for (const auto& [n, v] : counters) os << "counter," << n << "," << v << ",,,,,\n";
  for (const auto& [n, v] : gauges) os << "gauge," << n << "," << v << ",,,,,\n";
  for (const auto& h : histograms) {
    os << "histogram," << h.name << ",," << h.count << "," << json_number(h.sum) << ","
       << json_number(h.p50) << "," << json_number(h.p95) << "," << json_number(h.p99) << "\n";
  }
  return os.str();
}

// --- Registry ---------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_time_bounds_ms();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    for (size_t b = 0; b < h->n_buckets(); ++b) hs.counts.push_back(h->bucket_count(b));
    hs.count = h->count();
    hs.sum = h->sum();
    hs.p50 = h->percentile(0.50);
    hs.p95 = h->percentile(0.95);
    hs.p99 = h->percentile(0.99);
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void Registry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Registry::write_json: cannot open " + path);
  os << snapshot().to_json();
  os.flush();
  if (!os) throw std::runtime_error("Registry::write_json: write failed for " + path);
}

void Registry::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Registry::write_csv: cannot open " + path);
  os << snapshot().to_csv();
  os.flush();
  if (!os) throw std::runtime_error("Registry::write_csv: write failed for " + path);
}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

}  // namespace edgellm::obs
