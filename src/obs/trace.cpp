#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace edgellm::obs {

namespace {

int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(int64_t kernel_sample) {
  kernel_sample_.store(kernel_sample < 0 ? 0 : kernel_sample, std::memory_order_relaxed);
  if (t0_ns_.load(std::memory_order_relaxed) == 0) {
    t0_ns_.store(steady_ns(), std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& b : buffers_) {
    b->size.store(0, std::memory_order_release);
    b->dropped.store(0, std::memory_order_relaxed);
  }
  t0_ns_.store(steady_ns(), std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return static_cast<double>(steady_ns() - t0_ns_.load(std::memory_order_relaxed)) * 1e-3;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Per-thread buffer cache. The Tracer is a process singleton (private
  // constructor), so one slot per thread suffices.
  thread_local ThreadBuffer* tl_buffer = nullptr;
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(static_cast<int32_t>(buffers_.size())));
    tl_buffer = buffers_.back().get();
  }
  return *tl_buffer;
}

void Tracer::record(char ph, const char* name, int64_t value) {
  ThreadBuffer& buf = local_buffer();
  const size_t n = buf.size.load(std::memory_order_relaxed);
  if (n >= kBufferCapacity) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = buf.events[n];
  e.name = name;
  e.ts_us = now_us();
  e.value = value;
  e.tid = buf.tid;
  e.ph = ph;
  // Publish: the exporter acquires `size` and reads only slots below it.
  buf.size.store(n + 1, std::memory_order_release);
}

void Tracer::begin(const char* name) { record('B', name, 0); }

void Tracer::end(const char* name) { record('E', name, 0); }

void Tracer::counter(const char* name, int64_t value) {
  if (!enabled()) return;
  record('C', name, value);
}

bool Tracer::sample_kernel() {
  const int64_t every = kernel_sample_.load(std::memory_order_relaxed);
  if (every <= 0) return false;
  ThreadBuffer& buf = local_buffer();
  return buf.kernel_tick++ % every == 0;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& b : buffers_) {
      const size_t n = b->size.load(std::memory_order_acquire);
      out.insert(out.end(), b->events.begin(), b->events.begin() + static_cast<int64_t>(n));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  return out;
}

int64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t total = 0;
  for (const auto& b : buffers_) total += b->dropped.load(std::memory_order_relaxed);
  return total;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  for (size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    os << "  {\"name\": \"" << e.name << "\", \"ph\": \"" << e.ph
       << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": " << e.ts_us;
    if (e.ph == 'C') os << ", \"args\": {\"value\": " << e.value << "}";
    os << "}" << (i + 1 < evs.size() ? "," : "") << "\n";
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Tracer::write_chrome_trace: cannot open " + path);
  os << chrome_trace_json();
  os.flush();
  if (!os) throw std::runtime_error("Tracer::write_chrome_trace: write failed for " + path);
}

}  // namespace edgellm::obs
