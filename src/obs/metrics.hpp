// Thread-safe metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms with percentile readout.
//
// Instruments are cheap enough to update from hot paths (one relaxed
// atomic op per update, no locks) and stable: the registry hands out
// references that stay valid for the registry's lifetime, so call sites
// look an instrument up once and keep the reference. Snapshots read the
// atomics at a point in time and serialise to JSON or CSV — the
// machine-readable side of `edgellm_cli --metrics-out` (see
// docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace edgellm::obs {

/// Unit-width bounds {1, 2, ..., n} for small-integer-valued histograms
/// (exit depth, batch occupancy): every value up to n lands in its own
/// bucket, so percentiles are exact for in-range samples.
std::vector<double> integer_bounds(int64_t n);

/// Monotonically increasing event count. add() from any thread.
class Counter {
 public:
  void add(int64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// A value that goes up and down (bytes in use, queue depth).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Monotonic high-water update: set(v) only if v exceeds the current value.
  void max_of(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram over non-negative samples. `bounds` are strictly
/// increasing bucket upper limits; one overflow bucket is appended, so a
/// histogram with B bounds has B+1 buckets. observe() is lock-free (one
/// relaxed add into the owning bucket plus count/sum updates); percentile()
/// interpolates linearly inside the bucket holding the requested rank, so
/// the estimate always lies within that bucket's limits — the accuracy
/// contract the property tests pin down.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  size_t n_buckets() const { return counts_.size(); }
  int64_t bucket_count(size_t i) const { return counts_[i].load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Estimated q-quantile (q in [0, 1]) of the observed samples; 0 when
  /// empty. Overflow-bucket ranks return the last finite bound (the
  /// histogram cannot interpolate past it).
  double percentile(double q) const;

  /// Adds `other`'s buckets into this histogram. Bounds must match; merge
  /// is associative and commutative over bucket counts (property-tested).
  void merge(const Histogram& other);

  /// Exponential bounds for operation latencies in milliseconds:
  /// 1 us .. ~34 s, doubling per bucket.
  static std::vector<double> default_time_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, with precomputed percentiles.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  ///< bounds.size() + 1 entries (overflow last)
  int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a named counter/gauge, or 0 when absent.
  int64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  /// Pointer into `histograms`, or nullptr when absent.
  const HistogramSnapshot* histogram(const std::string& name) const;

  std::string to_json() const;
  /// kind,name,value,count,sum,p50,p95,p99 rows (blank cells where a kind
  /// has no such column).
  std::string to_csv() const;
};

/// Named instrument registry. Lookup takes a mutex (do it once, keep the
/// reference); the instruments themselves are lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` empty means Histogram::default_time_bounds_ms(). Re-requesting
  /// an existing histogram returns it unchanged (bounds argument ignored).
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  /// Serialised snapshots; throw std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

  /// Process-wide default registry (pipeline/tuner metrics land here unless
  /// a PipelineConfig supplies its own).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace edgellm::obs
