// Low-overhead scoped-span tracer with Chrome trace-event export.
//
// Threads record named begin/end (and counter) events into lock-free
// per-thread buffers: each buffer is single-producer (its owning thread),
// pre-allocated at registration, and published to the exporter through one
// release-store of the buffer size per event — no lock or shared cache line
// on the hot path. When tracing is disabled a span costs exactly one
// relaxed atomic load, so instrumentation can stay compiled into release
// kernels (<2% overhead, measured by bench_micro_kernels' obs sweep).
//
// Export produces Chrome trace-event JSON ("traceEvents" with B/E/C
// phases) loadable in chrome://tracing or https://ui.perfetto.dev, plus a
// programmatic events() snapshot for tests. See docs/OBSERVABILITY.md.
//
// Lifecycle contract: enable()/disable()/clear() and the export calls must
// not race with in-flight spans — toggle tracing while the traced system
// is quiescent (engines shut down, pipelines returned). Buffers are
// per-thread and permanent for the process lifetime; a full buffer drops
// further events (counted in dropped_events()) rather than reallocating.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edgellm::obs {

/// One recorded event. `name` must outlive the tracer (instrumentation
/// sites pass string literals).
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;   ///< microseconds since enable()
  int64_t value = 0;    ///< kCounter payload
  int32_t tid = 0;      ///< dense per-thread id, assigned at first event
  char ph = 'B';        ///< 'B' begin, 'E' end, 'C' counter
};

class Tracer {
 public:
  /// Events each thread can hold between clear()s; beyond it, drop+count.
  static constexpr size_t kBufferCapacity = size_t{1} << 16;

  static Tracer& global();

  /// Starts recording. `kernel_sample` gates the high-frequency
  /// kernel-family spans (KernelSpan): 0 = never record them, N >= 1 =
  /// record every Nth per thread. Structural spans (ScopedSpan) always
  /// record while enabled.
  void enable(int64_t kernel_sample = 0);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  int64_t kernel_sample() const { return kernel_sample_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and resets per-thread cursors and the
  /// timestamp origin. Only valid while no span is in flight.
  void clear();

  void begin(const char* name);
  void end(const char* name);
  /// Chrome counter event ('C'): a named time series, e.g. batch size.
  void counter(const char* name, int64_t value);

  /// True when a kernel-family span should record this call (per-thread
  /// modulo counter against kernel_sample).
  bool sample_kernel();

  /// Snapshot of all threads' events, sorted by timestamp (stable).
  std::vector<TraceEvent> events() const;
  int64_t dropped_events() const;

  std::string chrome_trace_json() const;
  /// Throws std::runtime_error on I/O failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(int32_t id) : tid(id), events(kBufferCapacity) {}
    const int32_t tid;
    std::vector<TraceEvent> events;   ///< fixed storage, slots written once
    std::atomic<size_t> size{0};      ///< release-published event count
    std::atomic<int64_t> dropped{0};
    int64_t kernel_tick = 0;          ///< owning thread only
  };

  Tracer() = default;

  ThreadBuffer& local_buffer();
  void record(char ph, const char* name, int64_t value);
  double now_us() const;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> kernel_sample_{0};
  std::atomic<int64_t> t0_ns_{0};  ///< steady_clock origin set by enable()

  mutable std::mutex mu_;  ///< guards buffers_ registration and export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: begin at construction, end at destruction. Captures the
/// enabled state once, so a span that began recording always emits its
/// matching end event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Tracer& t = Tracer::global())
      : t_(t.enabled() ? &t : nullptr), name_(name) {
    if (t_ != nullptr) t_->begin(name_);
  }
  ~ScopedSpan() {
    if (t_ != nullptr) t_->end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* t_;
  const char* name_;
};

/// Sampled span for hot kernel families: records only every Nth call per
/// thread (N = Tracer::kernel_sample(), 0 = never). Disabled cost: one
/// relaxed atomic load.
class KernelSpan {
 public:
  explicit KernelSpan(const char* name, Tracer& t = Tracer::global()) : t_(nullptr), name_(name) {
    if (t.enabled() && t.sample_kernel()) {
      t_ = &t;
      t_->begin(name_);
    }
  }
  ~KernelSpan() {
    if (t_ != nullptr) t_->end(name_);
  }
  KernelSpan(const KernelSpan&) = delete;
  KernelSpan& operator=(const KernelSpan&) = delete;

 private:
  Tracer* t_;
  const char* name_;
};

}  // namespace edgellm::obs
