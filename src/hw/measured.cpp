#include "hw/measured.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "nn/model.hpp"
#include "quant/packed.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/simd.hpp"

namespace edgellm::hw {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Key components are joined with '|'; spaces/tabs/newlines inside a
// component would corrupt the line-based file format, so strip them.
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '|' || c == '\t' || c == '\n' || c == ' ') c = '_';
  }
  return out;
}

std::string join_dims(const std::vector<int64_t>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

int order_to_int(LoopOrder o) { return static_cast<int>(o); }

std::optional<LoopOrder> order_from_int(int v) {
  if (v < 0 || v >= static_cast<int>(std::size(kAllLoopOrders))) return std::nullopt;
  return static_cast<LoopOrder>(v);
}

Tensor seeded_operand(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

// min-of-reps wall time of fn(), in ms.
template <typename F>
double time_best_ms(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, ms_since(t0));
  }
  return best;
}

}  // namespace

// --- ScheduleCache ----------------------------------------------------------

std::string ScheduleCache::sim_key(const DeviceModel& dev, const GemmWorkload& gemm,
                                   double available_sram, const SearchConfig& cfg, bool pinned) {
  std::ostringstream os;
  os << "sim|" << sanitize(dev.name) << "|sram" << static_cast<int64_t>(dev.sram_bytes) << "|"
     << sanitize(gemm.name) << "|m" << gemm.m << "n" << gemm.n << "k" << gemm.k << "c"
     << gemm.count << "|b" << gemm.weight_bits << "|sp" << gemm.sparsity
     << (gemm.structured ? "s" : "u") << "|avail" << static_cast<int64_t>(available_sram)
     << "|t" << join_dims(cfg.tile_candidates) << "|db" << (cfg.allow_double_buffer ? 1 : 0)
     << "|pin" << (pinned ? 1 : 0);
  return os.str();
}

std::string ScheduleCache::measured_key(ops::gemm::GemmKind kind, int64_t m, int64_t k, int64_t n,
                                        int bits, const std::vector<int64_t>& mc,
                                        const std::vector<int64_t>& kc,
                                        const std::vector<int64_t>& nc, int reps) {
  std::ostringstream os;
  // The active SIMD backend is part of the key: a schedule measured under
  // the scalar kernels is not evidence about the vector kernels' cache
  // behaviour (and vice versa), so each dispatch choice tunes separately.
  os << "measured|" << ops::gemm::to_string(kind) << "|m" << m << "k" << k << "n" << n << "|b"
     << bits << "|mc" << join_dims(mc) << "|kc" << join_dims(kc) << "|nc" << join_dims(nc)
     << "|r" << reps << "|isa" << simd::to_string(simd::active_isa());
  return os.str();
}

std::optional<ScheduleRecord> ScheduleCache::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ScheduleCache::put(const std::string& key, const ScheduleRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = rec;
}

bool ScheduleCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header) || header != "edgellm-schedule-cache v1") return false;

  std::map<std::string, ScheduleRecord> loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // key \t backend \t tm tn tk order db pin \t metric \t baseline
    std::vector<std::string> fields;
    size_t pos = 0;
    while (true) {
      const size_t tab = line.find('\t', pos);
      fields.push_back(line.substr(pos, tab == std::string::npos ? tab : tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    if (fields.size() != 5) return false;
    ScheduleRecord rec;
    rec.backend = fields[1];
    if (rec.backend != "sim" && rec.backend != "measured") return false;
    std::istringstream sched(fields[2]);
    int order = 0, db = 0, pin = 0;
    if (!(sched >> rec.schedule.tile_m >> rec.schedule.tile_n >> rec.schedule.tile_k >> order >>
          db >> pin)) {
      return false;
    }
    const auto o = order_from_int(order);
    if (!o || rec.schedule.tile_m <= 0 || rec.schedule.tile_n <= 0 || rec.schedule.tile_k <= 0) {
      return false;
    }
    rec.schedule.order = *o;
    rec.schedule.double_buffer = db != 0;
    rec.schedule.pin_weights = pin != 0;
    try {
      rec.metric = std::stod(fields[3]);
      rec.baseline = std::stod(fields[4]);
    } catch (const std::exception&) {
      return false;
    }
    loaded[fields[0]] = rec;
  }

  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(loaded);
  return true;
}

bool ScheduleCache::save(const std::string& path) const {
  std::map<std::string, ScheduleRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = entries_;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "edgellm-schedule-cache v1\n";
    for (const auto& [key, rec] : snapshot) {
      out << key << '\t' << rec.backend << '\t' << rec.schedule.tile_m << ' '
          << rec.schedule.tile_n << ' ' << rec.schedule.tile_k << ' '
          << order_to_int(rec.schedule.order) << ' ' << (rec.schedule.double_buffer ? 1 : 0)
          << ' ' << (rec.schedule.pin_weights ? 1 : 0) << '\t' << rec.metric << '\t'
          << rec.baseline << '\n';
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

int64_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t ScheduleCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t ScheduleCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void ScheduleCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

// --- cached analytical search -----------------------------------------------

GemmPlan search_gemm_cached(const DeviceModel& dev, const GemmWorkload& gemm,
                            double available_sram, const SearchConfig& cfg, bool pinned,
                            ScheduleCache* cache) {
  const std::string key =
      cache != nullptr ? ScheduleCache::sim_key(dev, gemm, available_sram, cfg, pinned)
                       : std::string();
  if (cache != nullptr) {
    if (const auto rec = cache->find(key)) {
      // Re-cost the stored schedule (cheap) instead of re-searching; if the
      // record no longer fits (e.g. hand-edited file), fall through.
      GemmPlan p;
      p.gemm = gemm;
      p.schedule = rec->schedule;
      p.cost = evaluate_schedule(dev, gemm, rec->schedule, available_sram);
      if (p.cost.feasible) return p;
    }
  }
  GemmPlan p = pinned ? search_gemm_pinned(dev, gemm, available_sram, cfg)
                      : search_gemm(dev, gemm, available_sram, cfg);
  if (cache != nullptr && p.cost.feasible) {
    ScheduleRecord rec;
    rec.backend = "sim";
    rec.schedule = p.schedule;
    rec.metric = p.cost.cycles;
    cache->put(key, rec);
  }
  return p;
}

// --- MeasuredBackend --------------------------------------------------------

MeasuredBackend::MeasuredBackend(MeasuredConfig cfg, ScheduleCache* cache)
    : cfg_(std::move(cfg)), cache_(cache) {
  check_arg(!cfg_.mc_candidates.empty() && !cfg_.kc_candidates.empty() &&
                !cfg_.nc_candidates.empty(),
            "MeasuredBackend: empty candidate list");
  check_arg(cfg_.reps >= 1, "MeasuredBackend: reps must be >= 1");
}

TuneResult MeasuredBackend::tune(ops::gemm::GemmKind kind, int64_t m, int64_t k, int64_t n,
                                 int bits) {
  using ops::gemm::Blocking;
  using ops::gemm::GemmKind;
  check_arg(m > 0 && k > 0 && n > 0, "MeasuredBackend::tune: shape must be positive");
  const bool packed = kind == GemmKind::kPackedNT;
  check_arg(!packed || bits == 4 || bits == 8,
            "MeasuredBackend::tune: packed tuning needs bits 4 or 8");

  const std::string key = ScheduleCache::measured_key(
      kind, m, k, n, packed ? bits : 32, cfg_.mc_candidates, cfg_.kc_candidates,
      cfg_.nc_candidates, cfg_.reps);
  if (cache_ != nullptr) {
    if (const auto rec = cache_->find(key)) {
      if (rec->backend == "measured" && rec->blocking().valid()) {
        return TuneResult{rec->blocking(), rec->metric, rec->baseline, /*from_cache=*/true};
      }
    }
  }

  // Seeded operands: tuning is reproducible up to timing noise, and by the
  // bitwise contract noise can only change speed, never results.
  const uint64_t seed = 0x5EEDull ^ (static_cast<uint64_t>(m) << 32) ^
                        (static_cast<uint64_t>(k) << 16) ^ static_cast<uint64_t>(n);
  const Tensor a = seeded_operand({m, k}, seed);
  const Tensor b = kind == GemmKind::kNN ? seeded_operand({k, n}, seed + 1)
                                         : seeded_operand({n, k}, seed + 1);
  quant::PackedMatrix pw;
  if (packed) pw = quant::PackedMatrix::pack(b, bits);

  // Candidate blockings, clamped to the shape and deduplicated so we never
  // time the same effective schedule twice.
  std::vector<Blocking> candidates;
  for (int64_t mc : cfg_.mc_candidates) {
    for (int64_t kc : cfg_.kc_candidates) {
      for (int64_t nc : cfg_.nc_candidates) {
        Blocking blk{std::max(ops::gemm::kMr, std::min(mc, ((m + ops::gemm::kMr - 1) /
                                                            ops::gemm::kMr) *
                                                               ops::gemm::kMr)),
                     std::max<int64_t>(1, std::min(kc, k)),
                     std::max(ops::gemm::kNr, std::min(nc, ((n + ops::gemm::kNr - 1) /
                                                            ops::gemm::kNr) *
                                                               ops::gemm::kNr))};
        if (std::find(candidates.begin(), candidates.end(), blk) == candidates.end()) {
          candidates.push_back(blk);
        }
      }
    }
  }

  TuneResult result;
  result.best_ms = 1e300;
  for (const Blocking& blk : candidates) {
    const double ms = time_best_ms(cfg_.reps, [&] {
      switch (kind) {
        case GemmKind::kNN: (void)ops::gemm::matmul_blocked(a, b, blk); break;
        case GemmKind::kNT: (void)ops::gemm::matmul_nt_blocked(a, b, blk); break;
        case GemmKind::kPackedNT: (void)quant::packed_matmul_nt_blocked(a, pw, blk); break;
      }
    });
    if (ms < result.best_ms) {
      result.best_ms = ms;
      result.blocking = blk;
    }
  }

  // Baseline: the path the blocked kernel replaces.
  result.baseline_ms = time_best_ms(cfg_.reps, [&] {
    switch (kind) {
      case GemmKind::kNN: (void)ops::gemm::matmul_naive(a, b); break;
      case GemmKind::kNT: (void)ops::gemm::matmul_nt_naive(a, b); break;
      case GemmKind::kPackedNT: (void)ops::matmul_nt(a, pw.dequantize()); break;
    }
  });

  if (cache_ != nullptr) {
    ScheduleRecord rec;
    rec.backend = "measured";
    rec.schedule.tile_m = result.blocking.mc;
    rec.schedule.tile_k = result.blocking.kc;
    rec.schedule.tile_n = result.blocking.nc;
    rec.metric = result.best_ms;
    rec.baseline = result.baseline_ms;
    cache_->put(key, rec);
  }
  return result;
}

TuneResult MeasuredBackend::tune_and_install(ops::gemm::GemmKind kind, int64_t m, int64_t k,
                                             int64_t n, int bits) {
  TuneResult r = tune(kind, m, k, n, bits);
  ops::gemm::set_blocking(kind, m, k, n, r.blocking);
  return r;
}

ModelTuneSummary autotune_model_gemms(MeasuredBackend& backend, nn::CausalLm& model,
                                      int64_t batch_rows) {
  using ops::gemm::GemmKind;
  check_arg(batch_rows > 0, "autotune_model_gemms: batch_rows must be positive");
  const auto t0 = Clock::now();
  ModelTuneSummary summary;

  std::set<std::tuple<int, int64_t, int64_t, int64_t, int>> seen;
  const auto tune_linear = [&](nn::Linear* lin) {
    struct Want {
      GemmKind kind;
      int bits;
    };
    std::vector<Want> wants;
    wants.push_back({GemmKind::kNT, 32});  // fp32 decode path (cached or fallback)
    if (lin->packable()) wants.push_back({GemmKind::kPackedNT, lin->quant_spec()->bits});
    for (const Want& w : wants) {
      const int64_t m = batch_rows, k = lin->in_features(), n = lin->out_features();
      // Shapes below the dispatch threshold never run blocked — skip them.
      if (!ops::gemm::use_blocked(w.kind, m, k, n)) continue;
      if (!seen.insert({static_cast<int>(w.kind), m, k, n, w.bits}).second) continue;
      const TuneResult r = backend.tune_and_install(w.kind, m, k, n, w.bits);
      ++summary.shapes_tuned;
      if (r.from_cache) ++summary.cache_hits;
    }
  };

  for (nn::TransformerBlock* b : model.blocks()) {
    for (nn::Linear* lin : b->linears()) tune_linear(lin);
  }
  const int64_t n_exits = static_cast<int64_t>(model.exit_layers().size());
  for (int64_t e = 0; e < n_exits; ++e) tune_linear(&model.exit_head(e));

  summary.tuning_ms = ms_since(t0);
  return summary;
}

}  // namespace edgellm::hw
