#include "hw/workload.hpp"

namespace edgellm::hw {

namespace {

// Weight-bearing GEMM: activations [rows, in] x W^T with W [out, in].
GemmWorkload weight_gemm(std::string name, int64_t rows, int64_t in, int64_t out,
                         const LayerCompression& comp, bool resident_eligible) {
  GemmWorkload g;
  g.name = std::move(name);
  g.m = rows;
  g.k = in;
  g.n = out;
  g.weight_bits = comp.weight_bits;
  g.sparsity = comp.sparsity;
  g.structured = comp.structured;
  g.weights_resident_eligible = resident_eligible;
  return g;
}

// Activation-activation GEMM (attention scores / context): fp16, dense.
GemmWorkload act_gemm(std::string name, int64_t m, int64_t n, int64_t k, int64_t count) {
  GemmWorkload g;
  g.name = std::move(name);
  g.m = m;
  g.n = n;
  g.k = k;
  g.count = count;
  return g;
}

}  // namespace

LayerWorkload block_forward_workload(const nn::ModelConfig& cfg, int64_t layer_idx,
                                     const LayerCompression& comp, int64_t batch, int64_t seq) {
  check_arg(batch > 0 && seq > 0, "workload: batch and seq must be positive");
  const int64_t rows = batch * seq;
  const int64_t c = cfg.d_model, f = cfg.ff_dim(), h = cfg.n_heads;
  const int64_t dh = c / h;
  const int64_t ckv = cfg.kv_dim();
  const std::string tag = "block" + std::to_string(layer_idx);

  LayerWorkload w;
  w.name = tag + ".fwd";
  w.gemms.push_back(weight_gemm(tag + ".q", rows, c, c, comp, true));
  w.gemms.push_back(weight_gemm(tag + ".k", rows, c, ckv, comp, true));
  w.gemms.push_back(weight_gemm(tag + ".v", rows, c, ckv, comp, true));
  w.gemms.push_back(weight_gemm(tag + ".o", rows, c, c, comp, true));
  w.gemms.push_back(act_gemm(tag + ".scores", seq, seq, dh, batch * h));
  w.gemms.push_back(act_gemm(tag + ".ctx", seq, dh, seq, batch * h));
  w.gemms.push_back(weight_gemm(tag + ".fc1", rows, c, f, comp, true));
  w.gemms.push_back(weight_gemm(tag + ".fc2", rows, f, c, comp, true));
  if (cfg.swiglu) {
    w.gemms.push_back(weight_gemm(tag + ".fc3", rows, c, f, comp, true));
  }

  // Norms, residuals, softmax, GELU: read+write the activation a few times.
  w.elementwise_bytes = 10.0 * static_cast<double>(rows) * c * 2.0  // fp16 activations
                        + 2.0 * static_cast<double>(batch * h) * seq * seq * 2.0;
  return w;
}

LayerWorkload block_backward_workload(const nn::ModelConfig& cfg, int64_t layer_idx,
                                      const LayerCompression& comp, int64_t batch, int64_t seq) {
  const int64_t rows = batch * seq;
  const int64_t c = cfg.d_model, f = cfg.ff_dim(), h = cfg.n_heads;
  const int64_t dh = c / h;
  const int64_t ckv = cfg.kv_dim();
  const std::string tag = "block" + std::to_string(layer_idx);

  LayerWorkload w;
  w.name = tag + ".bwd";
  // Each weight GEMM contributes dX (uses W, so low-bit helps) and dW
  // (activation x grad, fp16 dense).
  LayerCompression fp16{};
  const struct {
    const char* nm;
    int64_t in, out;
  } lins[] = {{".q", c, c}, {".k", c, ckv}, {".v", c, ckv}, {".o", c, c},
              {".fc1", c, f}, {".fc2", f, c}};
  for (const auto& l : lins) {
    w.gemms.push_back(
        weight_gemm(tag + l.nm + ".dx", rows, l.out, l.in, comp, true));
    w.gemms.push_back(weight_gemm(tag + l.nm + ".dw", l.out, rows, l.in, fp16, false));
  }
  if (cfg.swiglu) {
    w.gemms.push_back(weight_gemm(tag + ".fc3.dx", rows, f, c, comp, true));
    w.gemms.push_back(weight_gemm(tag + ".fc3.dw", f, rows, c, fp16, false));
  }
  // Attention backward: grad_probs, grad_v, grad_q, grad_k.
  w.gemms.push_back(act_gemm(tag + ".dprobs", seq, seq, dh, batch * h));
  w.gemms.push_back(act_gemm(tag + ".dv", seq, dh, seq, batch * h));
  w.gemms.push_back(act_gemm(tag + ".dq", seq, dh, seq, batch * h));
  w.gemms.push_back(act_gemm(tag + ".dk", seq, dh, seq, batch * h));

  w.elementwise_bytes = 14.0 * static_cast<double>(rows) * c * 2.0 +
                        4.0 * static_cast<double>(batch * h) * seq * seq * 2.0;
  return w;
}

LayerWorkload head_workload(const nn::ModelConfig& cfg, int64_t batch, int64_t seq,
                            bool with_backward) {
  const int64_t rows = batch * seq;
  LayerWorkload w;
  w.name = "lm_head";
  LayerCompression fp16{};
  // Named "head" (not "head.fwd") so the dX GEMM's pin group ("head.dx"
  // with the suffix stripped) shares the same resident weights.
  w.gemms.push_back(weight_gemm("head", rows, cfg.d_model, cfg.vocab, fp16, true));
  if (with_backward) {
    w.gemms.push_back(weight_gemm("head.dx", rows, cfg.vocab, cfg.d_model, fp16, true));
    w.gemms.push_back(weight_gemm("head.dw", cfg.vocab, rows, cfg.d_model, fp16, false));
    // Softmax + loss elementwise traffic.
    w.elementwise_bytes += 6.0 * static_cast<double>(rows) * cfg.vocab * 2.0;
  }
  w.elementwise_bytes += 2.0 * static_cast<double>(rows) * cfg.d_model * 2.0;
  return w;
}

std::vector<LayerWorkload> training_iteration_workloads(
    const nn::ModelConfig& cfg, const std::vector<LayerCompression>& comp,
    const IterationSpec& iter) {
  check_arg(static_cast<int64_t>(comp.size()) == cfg.n_layers,
            "training_iteration_workloads: one LayerCompression per layer required");
  const int64_t exit_layer = iter.exit_layer > 0 ? iter.exit_layer : cfg.n_layers;
  check_arg(exit_layer >= 1 && exit_layer <= cfg.n_layers, "invalid exit layer");
  const int64_t depth = iter.backprop_depth;
  check_arg(depth >= 0 && depth <= exit_layer, "invalid backprop depth");
  const int64_t rows = iter.batch * iter.seq;

  std::vector<LayerWorkload> out;

  // Embedding lookup: pure DRAM traffic.
  LayerWorkload emb;
  emb.name = "embed";
  emb.elementwise_bytes = static_cast<double>(rows) * cfg.d_model * 2.0 * 2.0;
  out.push_back(std::move(emb));

  for (int64_t i = 0; i < exit_layer; ++i) {
    out.push_back(block_forward_workload(cfg, i, comp[static_cast<size_t>(i)], iter.batch,
                                         iter.seq));
  }
  out.push_back(head_workload(cfg, iter.batch, iter.seq, /*with_backward=*/true));
  for (int64_t i = exit_layer - 1; i >= exit_layer - depth; --i) {
    if (iter.checkpoint) {
      // Recompute the block's forward to rebuild its activation caches.
      LayerWorkload refwd =
          block_forward_workload(cfg, i, comp[static_cast<size_t>(i)], iter.batch, iter.seq);
      refwd.name = "block" + std::to_string(i) + ".refwd";
      out.push_back(std::move(refwd));
    }
    out.push_back(block_backward_workload(cfg, i, comp[static_cast<size_t>(i)], iter.batch,
                                          iter.seq));
  }

  // Optimizer update traffic: read param+grad+2 moments, write param+2
  // moments (AdamW), fp32 each, for every updated parameter.
  double updated_params = 0.0;
  const double mlp_mats = cfg.swiglu ? 3.0 : 2.0;
  const double block_params =
      static_cast<double>(2 * cfg.d_model * cfg.d_model +
                          2 * cfg.d_model * cfg.kv_dim()) +
      mlp_mats * static_cast<double>(cfg.d_model) * cfg.ff_dim() +
      2.0 * static_cast<double>(cfg.d_model) +
      (cfg.swiglu ? 0.0 : static_cast<double>(cfg.ff_dim() + cfg.d_model));  // biases
  updated_params += static_cast<double>(depth) * block_params;
  updated_params += static_cast<double>(cfg.d_model) * cfg.vocab;  // head
  if (iter.update_embeddings && depth == exit_layer) {
    updated_params += static_cast<double>(cfg.vocab + cfg.max_seq) * cfg.d_model;
  }
  LayerWorkload opt;
  opt.name = "optimizer";
  opt.elementwise_bytes = updated_params * 4.0 * 7.0;
  out.push_back(std::move(opt));

  return out;
}

}  // namespace edgellm::hw
