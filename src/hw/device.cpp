#include "hw/device.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::hw {

double DeviceModel::mac_throughput_scale(int weight_bits) const {
  check_arg(weight_bits >= 2 && weight_bits <= 16, "weight_bits must be in [2, 16]");
  return 16.0 / static_cast<double>(weight_bits);
}

double DeviceModel::effective_mac_fraction(float sparsity, bool structured) const {
  check_arg(sparsity >= 0.0f && sparsity < 1.0f, "sparsity must be in [0, 1)");
  if (structured) return 1.0 - static_cast<double>(sparsity);
  // Unstructured sparsity: only half the skipped MACs convert into speedup.
  return 1.0 - 0.5 * static_cast<double>(sparsity);
}

double DeviceModel::mac_energy_pj(int weight_bits) const {
  check_arg(weight_bits >= 2 && weight_bits <= 16, "weight_bits must be in [2, 16]");
  return mac_energy_pj_fp16 * static_cast<double>(weight_bits) / 16.0;
}

double DeviceModel::cycles_to_ms(double cycles) const {
  return cycles / (freq_ghz * 1e6);
}

DeviceModel default_edge_device() { return DeviceModel{}; }

DeviceModel constrained_edge_device() {
  DeviceModel d;
  d.name = "edge-npu-small";
  d.peak_macs_per_cycle = 128.0;
  d.dram_bytes_per_cycle = 8.0;
  d.sram_bytes = 128.0 * 1024.0;
  return d;
}

}  // namespace edgellm::hw
