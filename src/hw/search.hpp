// Schedule search (paper component 3).
//
// Per-GEMM exhaustive search over the tile/loop-order/double-buffer space,
// plus an iteration-level greedy optimizer that decides which layers'
// compressed weights stay pinned in scratchpad across training iterations.
// Pinning is where LUC and scheduling become complementary: low-bit pruned
// layers are cheap to pin, which removes their weight traffic every
// iteration.
#pragma once

#include <vector>

#include "hw/schedule.hpp"

namespace edgellm::hw {

class ScheduleCache;  // hw/measured.hpp

/// One scheduled GEMM.
struct GemmPlan {
  GemmWorkload gemm;
  Schedule schedule;
  ScheduleCost cost;
};

/// A scheduled layer: its GEMM plans plus elementwise traffic cost.
struct LayerPlan {
  std::string name;
  std::vector<GemmPlan> gemms;
  ScheduleCost elementwise;

  double cycles() const;
  double energy_pj() const;
  double dram_energy_pj() const;
  double mac_energy_pj() const;
  double sram_energy_pj() const;
  double dram_bytes() const;
};

/// A fully scheduled training iteration.
struct IterationPlan {
  std::vector<LayerPlan> layers;
  double total_cycles = 0.0;
  double total_energy_pj = 0.0;
  double total_dram_bytes = 0.0;
  double pinned_bytes = 0.0;
  double gemm_utilization = 0.0;  ///< MAC busy fraction over GEMM time
};

/// Knobs of the search.
struct SearchConfig {
  std::vector<int64_t> tile_candidates = {8, 16, 32, 64, 128};
  bool allow_double_buffer = true;
  bool allow_pinning = true;
  double pin_budget_fraction = 0.75;  ///< max fraction of SRAM for pinning
};

/// Best schedule for one GEMM within `available_sram` (never pins).
GemmPlan search_gemm(const DeviceModel& dev, const GemmWorkload& gemm, double available_sram,
                     const SearchConfig& cfg);

/// Best pinned schedule for one GEMM (weights resident); available_sram
/// must already include the pinned bytes headroom.
GemmPlan search_gemm_pinned(const DeviceModel& dev, const GemmWorkload& gemm,
                            double available_sram, const SearchConfig& cfg);

/// Searched schedule for a whole iteration (greedy pinning + per-GEMM
/// exhaustive search). With a non-null `cache` (hw/measured.hpp) every
/// per-GEMM search is memoised: warm re-runs re-cost the stored schedule
/// instead of re-searching, and new results are added to the cache.
IterationPlan schedule_iteration(const DeviceModel& dev,
                                 const std::vector<LayerWorkload>& workloads,
                                 const SearchConfig& cfg, ScheduleCache* cache = nullptr);

/// The naive strawman: naive_schedule() everywhere, no pinning.
IterationPlan schedule_iteration_naive(const DeviceModel& dev,
                                       const std::vector<LayerWorkload>& workloads);

/// The competent hand-written baseline: default_schedule() per GEMM, no
/// pinning. This is the fair comparator for the schedule search.
IterationPlan schedule_iteration_default(const DeviceModel& dev,
                                         const std::vector<LayerWorkload>& workloads);

}  // namespace edgellm::hw
