// Simulated-annealing schedule search — the scalable alternative to the
// exhaustive per-GEMM enumeration in search.hpp.
//
// The exhaustive search is exact but only over a coarse tile grid; real
// schedule spaces (arbitrary tile sizes, more loop transforms) are too
// large to enumerate. This annealer explores a fine-grained space (any
// multiple-of-4 tile up to 512) with Metropolis acceptance, and the tests
// pin it to within a few percent of the exhaustive optimum on the coarse
// grid while it can also *beat* that optimum by leaving the grid.
#pragma once

#include "hw/search.hpp"
#include "tensor/rng.hpp"

namespace edgellm::hw {

struct AnnealConfig {
  int64_t iterations = 2000;
  double temp_start = 0.20;  ///< initial acceptance looseness (fraction of cost)
  double temp_end = 0.002;
  int64_t min_tile = 4;
  int64_t max_tile = 512;
  uint64_t seed = 1;
};

/// Anneals a schedule for one GEMM within `available_sram`. Never pins
/// (pinning is a global decision made by schedule_iteration).
GemmPlan anneal_gemm(const DeviceModel& dev, const GemmWorkload& gemm, double available_sram,
                     const AnnealConfig& cfg);

/// Whole-iteration scheduling with the annealer (no pinning). Each GEMM
/// gets its own seeded annealing run for determinism.
IterationPlan schedule_iteration_annealed(const DeviceModel& dev,
                                          const std::vector<LayerWorkload>& workloads,
                                          const AnnealConfig& cfg);

}  // namespace edgellm::hw
