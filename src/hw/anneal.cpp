#include "hw/anneal.hpp"

#include <algorithm>
#include <cmath>

namespace edgellm::hw {

namespace {

// A random feasible starting point: modest square tiles, output-stationary.
Schedule initial_schedule(const DeviceModel& dev, const GemmWorkload& gemm,
                          double available_sram) {
  return default_schedule(dev, gemm, available_sram);
}

int64_t clamp_tile(int64_t t, const AnnealConfig& cfg) {
  t = (t / 4) * 4;  // multiples of 4
  return std::clamp<int64_t>(t, cfg.min_tile, cfg.max_tile);
}

}  // namespace

GemmPlan anneal_gemm(const DeviceModel& dev, const GemmWorkload& gemm, double available_sram,
                     const AnnealConfig& cfg) {
  check_arg(cfg.iterations > 0, "anneal_gemm: iterations must be positive");
  check_arg(cfg.temp_start > cfg.temp_end && cfg.temp_end > 0.0,
            "anneal_gemm: temperatures must satisfy start > end > 0");
  check_arg(cfg.min_tile >= 4 && cfg.min_tile <= cfg.max_tile,
            "anneal_gemm: invalid tile bounds");

  Rng rng(cfg.seed);
  Schedule cur = initial_schedule(dev, gemm, available_sram);
  ScheduleCost cur_cost = evaluate_schedule(dev, gemm, cur, available_sram);
  check_arg(cur_cost.feasible, "anneal_gemm: no feasible starting schedule");

  Schedule best = cur;
  ScheduleCost best_cost = cur_cost;

  const double decay =
      std::pow(cfg.temp_end / cfg.temp_start, 1.0 / static_cast<double>(cfg.iterations));
  double temp = cfg.temp_start;

  for (int64_t it = 0; it < cfg.iterations; ++it, temp *= decay) {
    Schedule cand = cur;
    // One random move: scale a tile, nudge a tile, flip order or buffering.
    switch (rng.uniform_int(0, 5)) {
      case 0:
        cand.tile_m = clamp_tile(rng.bernoulli(0.5) ? cand.tile_m * 2 : cand.tile_m / 2, cfg);
        break;
      case 1:
        cand.tile_n = clamp_tile(rng.bernoulli(0.5) ? cand.tile_n * 2 : cand.tile_n / 2, cfg);
        break;
      case 2:
        cand.tile_k = clamp_tile(rng.bernoulli(0.5) ? cand.tile_k * 2 : cand.tile_k / 2, cfg);
        break;
      case 3: {
        // Fine nudge on a random tile dimension.
        const int64_t delta = rng.bernoulli(0.5) ? 4 : -4;
        switch (rng.uniform_int(0, 2)) {
          case 0: cand.tile_m = clamp_tile(cand.tile_m + delta, cfg); break;
          case 1: cand.tile_n = clamp_tile(cand.tile_n + delta, cfg); break;
          default: cand.tile_k = clamp_tile(cand.tile_k + delta, cfg); break;
        }
        break;
      }
      case 4:
        cand.order = kAllLoopOrders[rng.uniform_int(0, 5)];
        break;
      default:
        cand.double_buffer = !cand.double_buffer;
        break;
    }

    const ScheduleCost cand_cost = evaluate_schedule(dev, gemm, cand, available_sram);
    if (!cand_cost.feasible) continue;

    const double delta = (cand_cost.cycles - cur_cost.cycles) / std::max(1.0, cur_cost.cycles);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      cur = cand;
      cur_cost = cand_cost;
      if (cur_cost.cycles < best_cost.cycles) {
        best = cur;
        best_cost = cur_cost;
      }
    }
  }

  GemmPlan plan;
  plan.gemm = gemm;
  plan.schedule = best;
  plan.cost = best_cost;
  return plan;
}

IterationPlan schedule_iteration_annealed(const DeviceModel& dev,
                                          const std::vector<LayerWorkload>& workloads,
                                          const AnnealConfig& cfg) {
  check_arg(!workloads.empty(), "schedule_iteration_annealed: empty workload list");
  IterationPlan plan;
  double gemm_cycles = 0.0, gemm_compute = 0.0;
  uint64_t seed = cfg.seed;
  for (const LayerWorkload& w : workloads) {
    LayerPlan lp;
    lp.name = w.name;
    lp.elementwise = elementwise_cost(dev, w.elementwise_bytes);
    for (const GemmWorkload& g : w.gemms) {
      AnnealConfig per = cfg;
      per.seed = ++seed;
      GemmPlan gp = anneal_gemm(dev, g, dev.sram_bytes, per);
      gemm_cycles += gp.cost.cycles;
      gemm_compute += gp.cost.compute_cycles;
      lp.gemms.push_back(std::move(gp));
    }
    plan.total_cycles += lp.cycles();
    plan.total_energy_pj += lp.energy_pj();
    plan.total_dram_bytes += lp.dram_bytes();
    plan.layers.push_back(std::move(lp));
  }
  plan.gemm_utilization = gemm_cycles > 0.0 ? gemm_compute / gemm_cycles : 0.0;
  return plan;
}

}  // namespace edgellm::hw
