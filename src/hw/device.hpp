// Analytical edge-accelerator model (DESIGN.md §2: substitution for the
// paper's edge-GPU measurements).
//
// The device is a roofline-style abstraction: a MAC array whose effective
// throughput scales with weight bit-width and exploitable sparsity, a DRAM
// channel, and an on-chip scratchpad that schedules tile into. All latency
// numbers in the reproduction are cycle counts from this model.
#pragma once

#include <string>

namespace edgellm::hw {

/// Fixed hardware parameters of the modelled device.
struct DeviceModel {
  std::string name = "edge-npu";

  double peak_macs_per_cycle = 256.0;  ///< fp16 MACs per cycle
  double freq_ghz = 1.0;               ///< for reporting wall-clock time
  double dram_bytes_per_cycle = 16.0;  ///< DRAM bandwidth
  double sram_bytes = 256.0 * 1024.0;  ///< on-chip scratchpad

  double dram_energy_pj_per_byte = 80.0;
  double sram_energy_pj_per_byte = 2.0;
  double mac_energy_pj_fp16 = 1.0;

  /// Pipeline fill + drain cycles the MAC array pays per tile pass
  /// (~2x the array dimension for a systolic design). Penalises schedules
  /// with many tiny tiles.
  double tile_overhead_cycles = 32.0;

  /// Throughput multiplier for `weight_bits`-wide weights on the bit-serial
  /// MAC array: 16-bit = 1x, 8-bit = 2x, 4-bit = 4x, 2-bit = 8x. Activation
  /// operands stay fp16.
  double mac_throughput_scale(int weight_bits) const;

  /// Fraction of pruned MACs the device actually skips. Structured
  /// (row/column) sparsity is fully skippable; unstructured sparsity only
  /// partially (load-imbalance), modelled at 50% efficiency.
  double effective_mac_fraction(float sparsity, bool structured) const;

  /// Energy per MAC for a given weight bit-width (scales with bits/16).
  double mac_energy_pj(int weight_bits) const;

  /// Cycle count -> milliseconds at the device frequency.
  double cycles_to_ms(double cycles) const;
};

/// A Jetson-class default used across benches; see bench/ outputs.
DeviceModel default_edge_device();

/// A smaller, bandwidth-starved device for ablations.
DeviceModel constrained_edge_device();

}  // namespace edgellm::hw
