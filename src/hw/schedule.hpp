// Tiled-GEMM schedule representation and analytical cost model.
//
// This is the paper's component (3): a search space over per-layer
// execution schedules. A schedule picks tile sizes, the tile-loop order,
// double buffering, and whether the layer's (compressed) weights stay
// resident in the scratchpad across training iterations. DRAM traffic is
// derived from an exact tile-reuse analysis of the loop nest.
#pragma once

#include <string>

#include "hw/device.hpp"
#include "hw/workload.hpp"

namespace edgellm::hw {

/// Order of the three tile loops, outermost first.
enum class LoopOrder { kMNK, kMKN, kNMK, kNKM, kKMN, kKNM };

std::string to_string(LoopOrder o);
inline constexpr LoopOrder kAllLoopOrders[] = {LoopOrder::kMNK, LoopOrder::kMKN,
                                               LoopOrder::kNMK, LoopOrder::kNKM,
                                               LoopOrder::kKMN, LoopOrder::kKNM};

/// One point in the scheduling search space.
struct Schedule {
  int64_t tile_m = 32;
  int64_t tile_n = 32;
  int64_t tile_k = 32;
  LoopOrder order = LoopOrder::kMNK;
  bool double_buffer = true;
  bool pin_weights = false;  ///< keep the weight operand resident in SRAM

  std::string to_string() const;
};

/// Modelled execution cost of one GEMM under one schedule.
struct ScheduleCost {
  bool feasible = false;      ///< tiles (+ pinned weights) fit in SRAM
  double cycles = 0.0;        ///< end-to-end latency
  double compute_cycles = 0.0;
  double dram_cycles = 0.0;
  double dram_bytes = 0.0;
  double energy_pj = 0.0;       ///< total = dram + mac + sram components
  double dram_energy_pj = 0.0;
  double mac_energy_pj = 0.0;
  double sram_energy_pj = 0.0;
  double utilization = 0.0;   ///< MAC-array busy fraction
  double sram_bytes_used = 0.0;
};

/// Evaluates `gemm` under `sched` with `available_sram` bytes of scratchpad
/// (pinned weight bytes count against it when sched.pin_weights).
ScheduleCost evaluate_schedule(const DeviceModel& dev, const GemmWorkload& gemm,
                               const Schedule& sched, double available_sram);

/// Cost of bandwidth-bound elementwise traffic.
ScheduleCost elementwise_cost(const DeviceModel& dev, double bytes);

/// The un-searched strawman: small square tiles, partial-sum spilling loop
/// order, no double buffering, no pinning.
Schedule naive_schedule();

/// A competent hand-written default (what a decent kernel library ships):
/// 32x32x32 tiles, output-stationary loop order, double buffering, no
/// pinning. Shrinks tiles until it fits `available_sram`.
Schedule default_schedule(const DeviceModel& dev, const GemmWorkload& gemm,
                          double available_sram);

}  // namespace edgellm::hw
