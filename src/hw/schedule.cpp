#include "hw/schedule.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

namespace edgellm::hw {

std::string to_string(LoopOrder o) {
  switch (o) {
    case LoopOrder::kMNK: return "mnk";
    case LoopOrder::kMKN: return "mkn";
    case LoopOrder::kNMK: return "nmk";
    case LoopOrder::kNKM: return "nkm";
    case LoopOrder::kKMN: return "kmn";
    case LoopOrder::kKNM: return "knm";
  }
  return "?";
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << "tile(" << tile_m << "x" << tile_n << "x" << tile_k << ") order="
     << hw::to_string(order) << (double_buffer ? " db" : "")
     << (pin_weights ? " pinned" : "");
  return os.str();
}

namespace {

// Positions (0 = outermost) of the m, n, k loops for a LoopOrder.
struct LoopPos {
  int m, n, k;
};

LoopPos loop_positions(LoopOrder o) {
  switch (o) {
    case LoopOrder::kMNK: return {0, 1, 2};
    case LoopOrder::kMKN: return {0, 2, 1};
    case LoopOrder::kNMK: return {1, 0, 2};
    case LoopOrder::kNKM: return {2, 0, 1};
    case LoopOrder::kKMN: return {1, 2, 0};
    case LoopOrder::kKNM: return {2, 1, 0};
  }
  return {0, 1, 2};
}

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Product of trip counts of all loops at positions <= `through_pos`.
double trips_through(const LoopPos& pos, int through_pos, int64_t mt, int64_t nt, int64_t kt) {
  double p = 1.0;
  if (pos.m <= through_pos) p *= static_cast<double>(mt);
  if (pos.n <= through_pos) p *= static_cast<double>(nt);
  if (pos.k <= through_pos) p *= static_cast<double>(kt);
  return p;
}

constexpr double kActBytes = 2.0;   // fp16 activations
constexpr double kAccBytes = 4.0;   // fp32 partial sums
constexpr double kOutBytes = 2.0;   // fp16 outputs

}  // namespace

ScheduleCost evaluate_schedule(const DeviceModel& dev, const GemmWorkload& gemm,
                               const Schedule& sched, double available_sram) {
  check_arg(gemm.m > 0 && gemm.n > 0 && gemm.k > 0, "evaluate_schedule: empty GEMM");
  check_arg(sched.tile_m > 0 && sched.tile_n > 0 && sched.tile_k > 0,
            "evaluate_schedule: tiles must be positive");
  ScheduleCost cost;

  const int64_t tm = std::min(sched.tile_m, gemm.m);
  const int64_t tn = std::min(sched.tile_n, gemm.n);
  const int64_t tk = std::min(sched.tile_k, gemm.k);
  const int64_t mt = ceil_div(gemm.m, tm), nt = ceil_div(gemm.n, tn), kt = ceil_div(gemm.k, tk);
  const LoopPos pos = loop_positions(sched.order);

  const double wbytes_per_elem = gemm.weight_bits / 8.0;

  // --- SRAM footprint ------------------------------------------------------
  const double a_tile = static_cast<double>(tm) * tk * kActBytes;
  const double b_tile = static_cast<double>(tk) * tn * wbytes_per_elem;
  const double c_tile = static_cast<double>(tm) * tn * kAccBytes;
  const double buf_mult = sched.double_buffer ? 2.0 : 1.0;
  double sram = a_tile * buf_mult + c_tile;
  double pinned = 0.0;
  if (sched.pin_weights) {
    check_arg(gemm.weights_resident_eligible || gemm.count == 1,
              "pin_weights on a non-eligible workload");
    pinned = gemm.weight_bytes();
    sram += pinned;  // full B resident, no streaming B tile needed
  } else {
    sram += b_tile * buf_mult;
  }
  cost.sram_bytes_used = sram;
  cost.feasible = sram <= available_sram;
  if (!cost.feasible) return cost;

  // --- DRAM traffic from tile-reuse analysis ------------------------------
  // An operand is re-fetched once per iteration of every loop from the
  // outermost down to the innermost loop that indexes it.
  const int last_a = std::max(pos.m, pos.k);
  const int last_b = std::max(pos.n, pos.k);
  const int last_c = std::max(pos.m, pos.n);

  const double fetch_a = trips_through(pos, last_a, mt, nt, kt);
  const double fetch_b = trips_through(pos, last_b, mt, nt, kt);
  const double fetch_c = trips_through(pos, last_c, mt, nt, kt);

  double traffic = fetch_a * static_cast<double>(tm) * tk * kActBytes;
  if (!sched.pin_weights) {
    // Pruned weights stream in their stored (compressed) form.
    traffic += fetch_b * static_cast<double>(tk) * tn * wbytes_per_elem *
               gemm.weight_traffic_scale();
  }
  // C: if the k loop is outside any output loop, partial sums spill to DRAM
  // (read + write fp32 per visit); otherwise C stays resident during the
  // whole accumulation and is written once as fp16.
  if (pos.k < last_c) {
    traffic += 2.0 * fetch_c * static_cast<double>(tm) * tn * kAccBytes;
  } else {
    traffic += static_cast<double>(gemm.m) * gemm.n * kOutBytes;
  }
  traffic *= static_cast<double>(gemm.count);

  // Pinned weights are loaded once per adaptation session, amortised to
  // ~zero per-iteration traffic.
  cost.dram_bytes = traffic;

  // --- cycles --------------------------------------------------------------
  const double eff_frac = dev.effective_mac_fraction(gemm.sparsity, gemm.structured);
  const double macs_exec = static_cast<double>(gemm.macs()) * eff_frac;
  const double thr = dev.peak_macs_per_cycle * dev.mac_throughput_scale(gemm.weight_bits);
  const double n_tiles =
      static_cast<double>(mt) * nt * kt * static_cast<double>(gemm.count);
  cost.compute_cycles = macs_exec / thr + n_tiles * dev.tile_overhead_cycles;
  cost.dram_cycles = traffic / dev.dram_bytes_per_cycle;
  cost.cycles = sched.double_buffer ? std::max(cost.compute_cycles, cost.dram_cycles)
                                    : cost.compute_cycles + cost.dram_cycles;
  cost.utilization = cost.cycles > 0.0 ? cost.compute_cycles / cost.cycles : 0.0;

  // --- energy ---------------------------------------------------------------
  const double sram_traffic_bytes = macs_exec * (kActBytes + wbytes_per_elem);
  cost.dram_energy_pj = cost.dram_bytes * dev.dram_energy_pj_per_byte;
  cost.mac_energy_pj = macs_exec * dev.mac_energy_pj(gemm.weight_bits);
  cost.sram_energy_pj = sram_traffic_bytes * dev.sram_energy_pj_per_byte;
  cost.energy_pj = cost.dram_energy_pj + cost.mac_energy_pj + cost.sram_energy_pj;
  return cost;
}

ScheduleCost elementwise_cost(const DeviceModel& dev, double bytes) {
  check_arg(bytes >= 0.0, "elementwise_cost: negative bytes");
  ScheduleCost cost;
  cost.feasible = true;
  cost.dram_bytes = bytes;
  cost.dram_cycles = bytes / dev.dram_bytes_per_cycle;
  cost.cycles = cost.dram_cycles;
  cost.dram_energy_pj = bytes * dev.dram_energy_pj_per_byte;
  cost.energy_pj = cost.dram_energy_pj;
  return cost;
}

Schedule naive_schedule() {
  Schedule s;
  s.tile_m = 8;
  s.tile_n = 8;
  s.tile_k = 8;
  s.order = LoopOrder::kKNM;  // k outermost: partial sums spill every pass
  s.double_buffer = false;
  s.pin_weights = false;
  return s;
}

Schedule default_schedule(const DeviceModel& dev, const GemmWorkload& gemm,
                          double available_sram) {
  Schedule s;
  s.order = LoopOrder::kMNK;  // output-stationary: accumulate in SRAM
  s.double_buffer = true;
  // A competent library picks the largest square tile that fits.
  for (int64_t tile = 128; tile >= 4; tile /= 2) {
    s.tile_m = s.tile_n = s.tile_k = tile;
    if (evaluate_schedule(dev, gemm, s, available_sram).feasible) return s;
  }
  check_arg(false, "default_schedule: no feasible tile size for " + gemm.name);
  return s;
}

}  // namespace edgellm::hw
