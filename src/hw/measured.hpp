// Measured schedule backend (paper component 3, on real kernels).
//
// The analytical search in hw/search.hpp scores schedules against a device
// model; this file closes the loop on the host itself: MeasuredBackend
// autotunes the blocked GEMM kernels' cache-blocking parameters
// (ops::gemm::Blocking) by timing the real kernels per layer shape, and
// ScheduleCache persists both kinds of search result — simulated GemmPlans
// and measured Blockings — across runs in one on-disk text file
// (`edgellm_cli --schedule-cache`). Because the blocked kernels are
// bitwise identical to the naive ones regardless of schedule (see
// tensor/gemm.hpp), autotuning can never change results, only speed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hw/search.hpp"
#include "tensor/gemm.hpp"

namespace edgellm::nn {
class CausalLm;
}

namespace edgellm::hw {

/// One cached schedule-search result. The same record type serves both
/// backends: for "sim" records `schedule` is the analytical Schedule and
/// `metric` its modelled cycles; for "measured" records the schedule's
/// tile_m/tile_k/tile_n carry the kernel blocking mc/kc/nc, `metric` is
/// the best measured milliseconds and `baseline` the milliseconds of the
/// path the blocked kernel replaces (naive fp32, or dequantize-to-fp32
/// for packed weights).
struct ScheduleRecord {
  std::string backend = "sim";  ///< "sim" | "measured"
  Schedule schedule;
  double metric = 0.0;
  double baseline = 0.0;

  ops::gemm::Blocking blocking() const {
    return ops::gemm::Blocking{schedule.tile_m, schedule.tile_k, schedule.tile_n};
  }
};

/// Persistent, thread-safe map from search keys to ScheduleRecords.
///
/// On-disk format (version-checked, line-based text):
///   edgellm-schedule-cache v1
///   <key>\t<backend>\t<tm> <tn> <tk> <order> <db> <pin>\t<metric>\t<baseline>
/// Unknown versions and malformed lines are rejected (load returns false
/// and leaves the cache unchanged). Keys are built by the static helpers
/// below so both backends stay collision-free in one file.
class ScheduleCache {
 public:
  /// Key for an analytical search: device identity (name + sram), GEMM
  /// shape/compression, SRAM actually available, candidate set, pinning.
  static std::string sim_key(const DeviceModel& dev, const GemmWorkload& gemm,
                             double available_sram, const SearchConfig& cfg, bool pinned);

  /// Key for a measured kernel tuning: kernel kind, shape, weight bits,
  /// candidate tile sets and repetitions.
  static std::string measured_key(ops::gemm::GemmKind kind, int64_t m, int64_t k, int64_t n,
                                  int bits, const std::vector<int64_t>& mc,
                                  const std::vector<int64_t>& kc, const std::vector<int64_t>& nc,
                                  int reps);

  std::optional<ScheduleRecord> find(const std::string& key) const;
  void put(const std::string& key, const ScheduleRecord& rec);

  /// Replaces the cache contents with the file's records. Missing file or
  /// bad format returns false and leaves the cache unchanged.
  bool load(const std::string& path);

  /// Writes all records (atomic tmp + rename). Returns false on IO error.
  bool save(const std::string& path) const;

  int64_t size() const;
  int64_t hits() const;    ///< find() calls that returned a record
  int64_t misses() const;  ///< find() calls that returned nullopt
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, ScheduleRecord> entries_;
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
};

/// search_gemm with memoisation: on a cache hit the stored schedule is
/// re-costed (cheap) instead of re-searching the full space; on a miss the
/// result is stored. `pinned` selects search_gemm_pinned semantics.
GemmPlan search_gemm_cached(const DeviceModel& dev, const GemmWorkload& gemm,
                            double available_sram, const SearchConfig& cfg, bool pinned,
                            ScheduleCache* cache);

/// Knobs of the measured tuner: candidate cache blockings and timing reps
/// (min-of-reps is the score, robust to scheduler noise).
struct MeasuredConfig {
  std::vector<int64_t> mc_candidates = {32, 64, 128};
  std::vector<int64_t> kc_candidates = {64, 128, 256};
  std::vector<int64_t> nc_candidates = {64, 128, 256};
  int reps = 3;
};

/// Result of tuning one (kind, shape).
struct TuneResult {
  ops::gemm::Blocking blocking;
  double best_ms = 0.0;      ///< min-of-reps of the winning blocking
  double baseline_ms = 0.0;  ///< the path the blocked kernel replaces
  bool from_cache = false;
};

/// Times real kernels over the candidate blockings for a layer shape and
/// returns (optionally installing) the fastest. Baselines: the naive
/// kernel for dense kinds; dequantize-then-dense-matmul for kPackedNT.
/// Operands are seeded from the shape, so tuning is reproducible except
/// for timing noise — which, by the bitwise contract, can only ever change
/// speed, never results.
class MeasuredBackend {
 public:
  explicit MeasuredBackend(MeasuredConfig cfg = {}, ScheduleCache* cache = nullptr);

  /// Tunes one shape. `bits` is the packed weight width for kPackedNT
  /// (4 or 8), ignored for dense kinds.
  TuneResult tune(ops::gemm::GemmKind kind, int64_t m, int64_t k, int64_t n, int bits = 32);

  /// tune() + ops::gemm::set_blocking for the shape.
  TuneResult tune_and_install(ops::gemm::GemmKind kind, int64_t m, int64_t k, int64_t n,
                              int bits = 32);

  const MeasuredConfig& config() const { return cfg_; }
  ScheduleCache* cache() const { return cache_; }

 private:
  MeasuredConfig cfg_;
  ScheduleCache* cache_;
};

/// Summary of autotune_model_gemms.
struct ModelTuneSummary {
  int64_t shapes_tuned = 0;   ///< unique (kind, shape, bits) combinations
  int64_t cache_hits = 0;     ///< served from the schedule cache
  double tuning_ms = 0.0;     ///< wall time spent timing kernels
};

/// Tunes and installs blockings for every unique GEMM shape the model's
/// decode path runs at `batch_rows` activation rows: the fp32 NT kernel
/// for each distinct Linear shape, plus the packed kernel for packable
/// layers (Linear::packable). Re-invoking with a warm ScheduleCache is
/// cheap (all hits).
ModelTuneSummary autotune_model_gemms(MeasuredBackend& backend, nn::CausalLm& model,
                                      int64_t batch_rows);

}  // namespace edgellm::hw
