// GEMM workload descriptors extracted from a model's training iteration.
//
// Each transformer operation is lowered to (possibly repeated) GEMMs with
// the compression attributes that matter to the device: weight bit-width
// and exploitable sparsity. Elementwise work (norms, residuals, softmax,
// optimizer updates) is tracked as byte traffic since it is bandwidth-bound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace edgellm::hw {

/// One GEMM: C[m,n] += A[m,k] * B[k,n], executed `count` times.
struct GemmWorkload {
  std::string name;
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;
  int64_t count = 1;
  int weight_bits = 16;      ///< bit-width of the B operand (weights)
  float sparsity = 0.0f;     ///< pruned fraction of B
  bool structured = false;   ///< sparsity pattern skippable in hardware
  bool weights_resident_eligible = false;  ///< B reusable across iterations

  int64_t macs() const { return m * n * k * count; }

  /// Stored bytes of the B operand (weights). Structured (row/column)
  /// sparsity drops whole vectors with negligible metadata; unstructured
  /// sparsity uses the cheaper of dense packed and compressed-sparse
  /// (values + index byte) forms.
  double weight_bytes() const {
    const double dense = static_cast<double>(k) * n * weight_bits / 8.0;
    if (sparsity <= 0.0f) return dense;
    const double keep = 1.0 - static_cast<double>(sparsity);
    if (structured) return dense * keep;
    return std::min(dense, static_cast<double>(k) * n * keep * (weight_bits / 8.0 + 1.0));
  }

  /// Ratio of streamed weight bytes to the dense packed form (<= 1): the
  /// DRAM-traffic saving the stored format provides.
  double weight_traffic_scale() const {
    const double dense = static_cast<double>(k) * n * weight_bits / 8.0;
    return dense > 0.0 ? weight_bytes() / dense : 1.0;
  }
};

/// A layer's workload: its GEMMs plus bandwidth-bound elementwise traffic.
struct LayerWorkload {
  std::string name;
  std::vector<GemmWorkload> gemms;
  double elementwise_bytes = 0.0;

  int64_t total_macs() const {
    int64_t t = 0;
    for (const auto& g : gemms) t += g.macs();
    return t;
  }
};

/// Per-layer compression attributes (produced by a LUC policy).
struct LayerCompression {
  int weight_bits = 16;
  float sparsity = 0.0f;
  bool structured = false;
};

/// Shape of one training iteration for workload extraction.
struct IterationSpec {
  int64_t batch = 8;
  int64_t seq = 32;
  int64_t exit_layer = 0;      ///< blocks executed forward (0 = all)
  int64_t backprop_depth = 0;  ///< blocks executed backward
  bool update_embeddings = false;
  /// Gradient checkpointing: every backward block re-runs its forward.
  bool checkpoint = false;
};

/// Extracts the forward GEMMs of one transformer block.
LayerWorkload block_forward_workload(const nn::ModelConfig& cfg, int64_t layer_idx,
                                     const LayerCompression& comp, int64_t batch, int64_t seq);

/// Extracts the backward GEMMs of one transformer block (dX + dW paths).
LayerWorkload block_backward_workload(const nn::ModelConfig& cfg, int64_t layer_idx,
                                      const LayerCompression& comp, int64_t batch, int64_t seq);

/// LM-head forward (and optionally backward) workload.
LayerWorkload head_workload(const nn::ModelConfig& cfg, int64_t batch, int64_t seq,
                            bool with_backward);

/// Full iteration: embeddings + blocks up to exit (forward), blocks in the
/// backprop window (backward), head fwd+bwd, optimizer traffic for updated
/// params. `comp` must have one entry per model layer.
std::vector<LayerWorkload> training_iteration_workloads(
    const nn::ModelConfig& cfg, const std::vector<LayerCompression>& comp,
    const IterationSpec& iter);

}  // namespace edgellm::hw
