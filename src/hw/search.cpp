#include "hw/search.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>

#include "hw/measured.hpp"

namespace edgellm::hw {

double LayerPlan::cycles() const {
  double c = elementwise.cycles;
  for (const auto& g : gemms) c += g.cost.cycles;
  return c;
}

double LayerPlan::energy_pj() const {
  double e = elementwise.energy_pj;
  for (const auto& g : gemms) e += g.cost.energy_pj;
  return e;
}

double LayerPlan::dram_energy_pj() const {
  double e = elementwise.dram_energy_pj;
  for (const auto& g : gemms) e += g.cost.dram_energy_pj;
  return e;
}

double LayerPlan::mac_energy_pj() const {
  double e = 0.0;
  for (const auto& g : gemms) e += g.cost.mac_energy_pj;
  return e;
}

double LayerPlan::sram_energy_pj() const {
  double e = 0.0;
  for (const auto& g : gemms) e += g.cost.sram_energy_pj;
  return e;
}

double LayerPlan::dram_bytes() const {
  double b = elementwise.dram_bytes;
  for (const auto& g : gemms) b += g.cost.dram_bytes;
  return b;
}

namespace {

GemmPlan search_impl(const DeviceModel& dev, const GemmWorkload& gemm, double available_sram,
                     const SearchConfig& cfg, bool pin) {
  GemmPlan best;
  best.gemm = gemm;
  best.cost.feasible = false;
  double best_cycles = std::numeric_limits<double>::infinity();

  for (int64_t tm : cfg.tile_candidates) {
    if (tm > gemm.m * 2) continue;  // avoid duplicate clamped points
    for (int64_t tn : cfg.tile_candidates) {
      if (tn > gemm.n * 2) continue;
      for (int64_t tk : cfg.tile_candidates) {
        if (tk > gemm.k * 2) continue;
        for (LoopOrder order : kAllLoopOrders) {
          for (int db = 0; db <= (cfg.allow_double_buffer ? 1 : 0); ++db) {
            Schedule s;
            s.tile_m = tm;
            s.tile_n = tn;
            s.tile_k = tk;
            s.order = order;
            s.double_buffer = db != 0;
            s.pin_weights = pin;
            const ScheduleCost c = evaluate_schedule(dev, gemm, s, available_sram);
            if (!c.feasible) continue;
            // Tie-break on energy for deterministic, sensible choices.
            if (c.cycles < best_cycles ||
                (c.cycles == best_cycles && c.energy_pj < best.cost.energy_pj)) {
              best_cycles = c.cycles;
              best.schedule = s;
              best.cost = c;
            }
          }
        }
      }
    }
  }
  return best;
}

// Pinning group key: forward and dX GEMMs of the same layer share weights.
std::string pin_group_key(const std::string& gemm_name) {
  const std::string suffix = ".dx";
  if (gemm_name.size() > suffix.size() &&
      gemm_name.compare(gemm_name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return gemm_name.substr(0, gemm_name.size() - suffix.size());
  }
  return gemm_name;
}

struct GemmRef {
  size_t layer;
  size_t idx;
};

}  // namespace

GemmPlan search_gemm(const DeviceModel& dev, const GemmWorkload& gemm, double available_sram,
                     const SearchConfig& cfg) {
  check_arg(!cfg.tile_candidates.empty(), "search_gemm: no tile candidates");
  GemmPlan p = search_impl(dev, gemm, available_sram, cfg, /*pin=*/false);
  check_arg(p.cost.feasible, "search_gemm: no feasible schedule for " + gemm.name);
  return p;
}

GemmPlan search_gemm_pinned(const DeviceModel& dev, const GemmWorkload& gemm,
                            double available_sram, const SearchConfig& cfg) {
  return search_impl(dev, gemm, available_sram, cfg, /*pin=*/true);
}

IterationPlan schedule_iteration(const DeviceModel& dev,
                                 const std::vector<LayerWorkload>& workloads,
                                 const SearchConfig& cfg, ScheduleCache* cache) {
  check_arg(!workloads.empty(), "schedule_iteration: empty workload list");

  // Phase A: best unpinned schedule for every GEMM with the full SRAM.
  // search_gemm_cached falls through to the plain search when cache is null.
  std::vector<LayerPlan> layers(workloads.size());
  for (size_t li = 0; li < workloads.size(); ++li) {
    layers[li].name = workloads[li].name;
    layers[li].elementwise = elementwise_cost(dev, workloads[li].elementwise_bytes);
    for (const GemmWorkload& g : workloads[li].gemms) {
      layers[li].gemms.push_back(
          search_gemm_cached(dev, g, dev.sram_bytes, cfg, /*pinned=*/false, cache));
    }
  }

  double pinned_total = 0.0;
  if (cfg.allow_pinning) {
    // Phase B: group weight-sharing GEMMs and estimate each group's benefit.
    struct Group {
      double weight_bytes = 0.0;
      double benefit_cycles = 0.0;
      std::vector<GemmRef> members;
    };
    std::map<std::string, Group> groups;
    for (size_t li = 0; li < workloads.size(); ++li) {
      for (size_t gi = 0; gi < workloads[li].gemms.size(); ++gi) {
        const GemmWorkload& g = workloads[li].gemms[gi];
        if (!g.weights_resident_eligible) continue;
        Group& grp = groups[pin_group_key(g.name)];
        grp.weight_bytes = std::max(grp.weight_bytes, g.weight_bytes());
        grp.members.push_back({li, gi});
        const GemmPlan pinned =
            search_gemm_cached(dev, g, dev.sram_bytes, cfg, /*pinned=*/true, cache);
        if (pinned.cost.feasible) {
          grp.benefit_cycles += layers[li].gemms[gi].cost.cycles - pinned.cost.cycles;
        }
      }
    }

    // Greedy: highest cycles-saved per pinned byte first.
    std::vector<const std::pair<const std::string, Group>*> order;
    for (const auto& kv : groups) {
      if (kv.second.benefit_cycles > 0.0) order.push_back(&kv);
    }
    std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
      const double ra = a->second.benefit_cycles / a->second.weight_bytes;
      const double rb = b->second.benefit_cycles / b->second.weight_bytes;
      if (ra != rb) return ra > rb;
      return a->first < b->first;  // deterministic tie-break
    });

    const double pin_budget = cfg.pin_budget_fraction * dev.sram_bytes;
    std::vector<GemmRef> pinned_members;
    for (const auto* kv : order) {
      const Group& grp = kv->second;
      if (pinned_total + grp.weight_bytes > pin_budget) continue;
      pinned_total += grp.weight_bytes;
      pinned_members.insert(pinned_members.end(), grp.members.begin(), grp.members.end());
    }

    // Final pass: re-search everything under the reduced tile budget.
    const double tile_sram = dev.sram_bytes - pinned_total;
    std::vector<std::vector<bool>> is_pinned(workloads.size());
    for (size_t li = 0; li < workloads.size(); ++li) {
      is_pinned[li].assign(workloads[li].gemms.size(), false);
    }
    for (const GemmRef& r : pinned_members) is_pinned[r.layer][r.idx] = true;

    for (size_t li = 0; li < workloads.size(); ++li) {
      for (size_t gi = 0; gi < workloads[li].gemms.size(); ++gi) {
        const GemmWorkload& g = workloads[li].gemms[gi];
        if (is_pinned[li][gi]) {
          // evaluate_schedule charges the pinned bytes inside, so allow the
          // group's own bytes on top of the shared tile budget.
          GemmPlan p = search_gemm_cached(dev, g, tile_sram + g.weight_bytes(), cfg,
                                          /*pinned=*/true, cache);
          if (p.cost.feasible) {
            layers[li].gemms[gi] = p;
            continue;
          }
        }
        layers[li].gemms[gi] = search_gemm_cached(dev, g, tile_sram, cfg, /*pinned=*/false, cache);
      }
    }
  }

  IterationPlan plan;
  plan.layers = std::move(layers);
  plan.pinned_bytes = pinned_total;
  double gemm_cycles = 0.0, gemm_compute = 0.0;
  for (const LayerPlan& lp : plan.layers) {
    plan.total_cycles += lp.cycles();
    plan.total_energy_pj += lp.energy_pj();
    plan.total_dram_bytes += lp.dram_bytes();
    for (const GemmPlan& gp : lp.gemms) {
      gemm_cycles += gp.cost.cycles;
      gemm_compute += gp.cost.compute_cycles;
    }
  }
  plan.gemm_utilization = gemm_cycles > 0.0 ? gemm_compute / gemm_cycles : 0.0;
  return plan;
}

namespace {

IterationPlan schedule_iteration_fixed(
    const DeviceModel& dev, const std::vector<LayerWorkload>& workloads,
    const std::function<Schedule(const GemmWorkload&)>& pick) {
  check_arg(!workloads.empty(), "schedule_iteration: empty workload list");
  IterationPlan plan;
  double gemm_cycles = 0.0, gemm_compute = 0.0;
  for (const LayerWorkload& w : workloads) {
    LayerPlan lp;
    lp.name = w.name;
    lp.elementwise = elementwise_cost(dev, w.elementwise_bytes);
    for (const GemmWorkload& g : w.gemms) {
      GemmPlan gp;
      gp.gemm = g;
      gp.schedule = pick(g);
      gp.cost = evaluate_schedule(dev, g, gp.schedule, dev.sram_bytes);
      check_arg(gp.cost.feasible, "fixed schedule infeasible for " + g.name);
      gemm_cycles += gp.cost.cycles;
      gemm_compute += gp.cost.compute_cycles;
      lp.gemms.push_back(std::move(gp));
    }
    plan.total_cycles += lp.cycles();
    plan.total_energy_pj += lp.energy_pj();
    plan.total_dram_bytes += lp.dram_bytes();
    plan.layers.push_back(std::move(lp));
  }
  plan.gemm_utilization = gemm_cycles > 0.0 ? gemm_compute / gemm_cycles : 0.0;
  return plan;
}

}  // namespace

IterationPlan schedule_iteration_naive(const DeviceModel& dev,
                                       const std::vector<LayerWorkload>& workloads) {
  return schedule_iteration_fixed(dev, workloads,
                                  [](const GemmWorkload&) { return naive_schedule(); });
}

IterationPlan schedule_iteration_default(const DeviceModel& dev,
                                         const std::vector<LayerWorkload>& workloads) {
  return schedule_iteration_fixed(dev, workloads, [&dev](const GemmWorkload& g) {
    return default_schedule(dev, g, dev.sram_bytes);
  });
}

}  // namespace edgellm::hw
