#include "runtime/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace edgellm::runtime {

MethodSpec vanilla_method(const nn::ModelConfig& cfg) {
  MethodSpec m;
  m.name = "vanilla";
  m.policy.layers.assign(static_cast<size_t>(cfg.n_layers), core::LayerPolicy{});
  m.exits = {cfg.n_layers};
  m.exit_probs = {1.0};
  m.backprop_window = 0;
  m.update_embeddings = true;
  return m;
}

MethodSpec vanilla_checkpointed_method(const nn::ModelConfig& cfg) {
  MethodSpec m = vanilla_method(cfg);
  m.name = "vanilla+ckpt";
  m.checkpoint = true;
  return m;
}

double block_activation_bytes(const nn::ModelConfig& cfg, int64_t batch, int64_t seq) {
  const double rows = static_cast<double>(batch) * seq;
  const double c = static_cast<double>(cfg.d_model);
  const double f = static_cast<double>(cfg.ff_dim());
  const double probs = static_cast<double>(batch) * cfg.n_heads * seq * seq;
  // norm1 (rows*c + rows) + attn linears (4 rows*c) + q/k/v heads (3 rows*c)
  // + probs + norm2 (rows*c + rows); all fp32.
  double floats = 9.0 * rows * c + probs + 2.0 * rows;
  if (cfg.swiglu) {
    // gate in + up in (rows*c each), down in + pre-act + up out (rows*f each).
    floats += 2.0 * rows * c + 3.0 * rows * f;
  } else {
    // fc1 in (rows*c), fc2 in + pre-act (rows*f each).
    floats += rows * c + 2.0 * rows * f;
  }
  return floats * 4.0;
}

double block_param_count(const nn::ModelConfig& cfg) {
  const double c = static_cast<double>(cfg.d_model);
  const double ckv = static_cast<double>(cfg.kv_dim());
  const double f = static_cast<double>(cfg.ff_dim());
  const double mlp_mats = cfg.swiglu ? 3.0 : 2.0;
  const double biases = cfg.swiglu ? 0.0 : f + c;
  return 2.0 * c * c + 2.0 * c * ckv + mlp_mats * c * f  // weights
         + biases                                        // fc biases (GELU only)
         + 2.0 * c;                                      // two norm gains
}

namespace {

double head_activation_bytes(const nn::ModelConfig& cfg, int64_t batch, int64_t seq) {
  const double rows = static_cast<double>(batch) * seq;
  const double c = static_cast<double>(cfg.d_model);
  // exit norm caches rows*c + rows; head Linear caches its input rows*c.
  return (2.0 * rows * c + rows) * 4.0;
}

double policy_weight_bytes(const nn::ModelConfig& cfg, const core::LucPolicy& policy) {
  const double c = static_cast<double>(cfg.d_model);
  const double f = static_cast<double>(cfg.ff_dim());
  const double ckv = static_cast<double>(cfg.kv_dim());
  const double mlp_mats = cfg.swiglu ? 3.0 : 2.0;
  const double block_weights = 2.0 * c * c + 2.0 * c * ckv + mlp_mats * c * f;
  double bytes = 0.0;
  for (const core::LayerPolicy& lp : policy.layers) {
    if (lp.sparsity > 0.0f) {
      const double kept = block_weights * (1.0 - static_cast<double>(lp.sparsity));
      bytes += kept * (lp.bits / 8.0 + 1.0);  // packed values + sparse index
    } else {
      bytes += block_weights * lp.bits / 8.0;
    }
    bytes += (f + 3.0 * c) * 2.0;  // biases + norm gains in fp16
  }
  // Embeddings, positional table, exit norms and the tied head stay fp16.
  bytes += (static_cast<double>(cfg.vocab) + cfg.max_seq) * c * 2.0;
  bytes += static_cast<double>(cfg.vocab) * c * 2.0;
  bytes += 4.0 * c * 2.0;  // a few exit norm gains
  return bytes;
}

}  // namespace

MethodReport simulate_method(const nn::ModelConfig& cfg, const MethodSpec& method,
                             const SimulatorConfig& sim) {
  check_arg(method.exits.size() == method.exit_probs.size() && !method.exits.empty(),
            "simulate_method: exits/probs mismatch");
  check_arg(static_cast<int64_t>(method.policy.layers.size()) == cfg.n_layers,
            "simulate_method: policy must cover every layer");
  double prob_total = 0.0;
  for (double p : method.exit_probs) prob_total += p;
  check_arg(std::fabs(prob_total - 1.0) < 1e-6, "simulate_method: probs must sum to 1");

  const std::vector<hw::LayerCompression> comp =
      core::policy_to_compression(method.policy, method.prune_pattern);

  MethodReport rep;
  rep.name = method.name;
  double util_weighted = 0.0;

  for (size_t e = 0; e < method.exits.size(); ++e) {
    const double p = method.exit_probs[e];
    if (p <= 0.0) continue;
    const int64_t exit_layer = method.exits[e];
    const int64_t depth = method.backprop_window <= 0
                              ? exit_layer
                              : std::min(method.backprop_window, exit_layer);

    hw::IterationSpec iter;
    iter.batch = sim.batch;
    iter.seq = sim.seq;
    iter.exit_layer = exit_layer;
    iter.backprop_depth = depth;
    iter.update_embeddings = method.update_embeddings && depth == exit_layer;
    iter.checkpoint = method.checkpoint && depth == exit_layer;

    const std::vector<hw::LayerWorkload> workloads =
        hw::training_iteration_workloads(cfg, comp, iter);
    hw::IterationPlan plan;
    switch (sim.schedule_mode) {
      case ScheduleMode::kNaive:
        plan = hw::schedule_iteration_naive(sim.device, workloads);
        break;
      case ScheduleMode::kDefault:
        plan = hw::schedule_iteration_default(sim.device, workloads);
        break;
      case ScheduleMode::kSearched:
        plan = hw::schedule_iteration(sim.device, workloads, sim.search);
        break;
    }

    rep.expected_cycles += p * plan.total_cycles;
    rep.expected_energy_uj += p * plan.total_energy_pj * 1e-6;
    for (const hw::LayerPlan& lp : plan.layers) {
      rep.dram_energy_uj += p * lp.dram_energy_pj() * 1e-6;
      rep.mac_energy_uj += p * lp.mac_energy_pj() * 1e-6;
      rep.sram_energy_uj += p * lp.sram_energy_pj() * 1e-6;
    }
    rep.expected_dram_mb += p * plan.total_dram_bytes / (1024.0 * 1024.0);
    util_weighted += p * plan.gemm_utilization;
    rep.pinned_kb = std::max(rep.pinned_kb, plan.pinned_bytes / 1024.0);

    // Memory at this exit: activations for the window + head, grads and
    // optimizer moments for every updated parameter. Under checkpointing
    // only per-block inputs are stashed plus one transient block cache.
    const double rows_bytes =
        static_cast<double>(sim.batch) * sim.seq * cfg.d_model * 4.0;
    const double act =
        iter.checkpoint
            ? static_cast<double>(exit_layer) * rows_bytes +
                  block_activation_bytes(cfg, sim.batch, sim.seq) +
                  head_activation_bytes(cfg, sim.batch, sim.seq)
            : static_cast<double>(depth) * block_activation_bytes(cfg, sim.batch, sim.seq) +
                  head_activation_bytes(cfg, sim.batch, sim.seq);
    double updated = static_cast<double>(depth) * block_param_count(cfg) +
                     static_cast<double>(cfg.vocab) * cfg.d_model +  // head
                     static_cast<double>(cfg.d_model);               // exit norm
    if (iter.update_embeddings) {
      updated += (static_cast<double>(cfg.vocab) + cfg.max_seq) * cfg.d_model;
    }
    rep.peak_activation_bytes = std::max(rep.peak_activation_bytes, act);
    rep.peak_grad_bytes = std::max(rep.peak_grad_bytes, updated * 4.0);
    rep.peak_optimizer_bytes = std::max(rep.peak_optimizer_bytes, updated * 8.0);
  }

  rep.expected_ms = sim.device.cycles_to_ms(rep.expected_cycles);
  rep.utilization = util_weighted;
  rep.weight_bytes = policy_weight_bytes(cfg, method.policy);
  rep.peak_memory_bytes = rep.weight_bytes + rep.peak_activation_bytes + rep.peak_grad_bytes +
                          rep.peak_optimizer_bytes;
  return rep;
}

}  // namespace edgellm::runtime
