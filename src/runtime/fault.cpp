#include "runtime/fault.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>

namespace edgellm::runtime {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

std::function<void(int64_t)> FaultInjector::step_hook() {
  return [this](int64_t iter) {
    if (iter == plan_.power_loss_at && !fired_power_) {
      fired_power_ = true;
      ++power_losses_;
      throw PowerLossError(iter);
    }
  };
}

std::function<void(int64_t, Tensor&)> FaultInjector::grad_hook() {
  return [this](int64_t iter, Tensor& grad) {
    if (std::find(plan_.nan_grad_at.begin(), plan_.nan_grad_at.end(), iter) ==
        plan_.nan_grad_at.end()) {
      return;
    }
    if (!fired_nan_.insert(iter).second) return;  // one shot per site
    if (grad.numel() == 0) return;
    grad[rng_.uniform_int(0, grad.numel() - 1)] = std::numeric_limits<float>::quiet_NaN();
    ++nan_injections_;
  };
}

std::function<void(const std::string&)> FaultInjector::io_hook() {
  return [this](const std::string& staged_path) {
    if (save_count_++ == plan_.fail_save_index) {
      ++io_failures_;
      throw std::runtime_error("injected I/O failure while committing " + staged_path);
    }
  };
}

void FaultInjector::corrupt_file(const std::string& path, int64_t byte_offset) {
  const auto size = static_cast<int64_t>(std::filesystem::file_size(path));
  check_arg(size > 0, "FaultInjector: cannot corrupt empty file " + path);
  const int64_t off = byte_offset >= 0 ? byte_offset : rng_.uniform_int(0, size - 1);
  check_arg(off < size, "FaultInjector: corruption offset past end of " + path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw std::runtime_error("FaultInjector: cannot open " + path);
  f.seekg(off);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0xA5);
  f.seekp(off);
  f.write(&byte, 1);
  f.flush();
  if (!f) throw std::runtime_error("FaultInjector: corruption write failed for " + path);
  ++corruptions_;
}

// --- ServeFaultInjector -----------------------------------------------------

ServeFaultInjector::ServeFaultInjector(ServeFaultPlan plan)
    : plan_(plan), rng_(plan.seed) {
  const double probs[] = {plan_.worker_stall_prob, plan_.worker_death_prob,
                          plan_.kv_reject_prob, plan_.poison_logits_prob,
                          plan_.disconnect_prob};
  for (double p : probs) {
    check_arg(p >= 0.0 && p <= 1.0, "ServeFaultInjector: probabilities must be in [0, 1]");
  }
  check_arg(plan_.worker_stall_ms >= 0.0, "ServeFaultInjector: stall ms must be >= 0");
}

bool ServeFaultInjector::draw(double p, int64_t* counter) {
  if (p <= 0.0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const bool fire = rng_.bernoulli(p);
  if (fire) ++*counter;
  return fire;
}

double ServeFaultInjector::stall_worker_ms() {
  return draw(plan_.worker_stall_prob, &stalls_) ? plan_.worker_stall_ms : 0.0;
}

bool ServeFaultInjector::kill_worker() { return draw(plan_.worker_death_prob, &deaths_); }

bool ServeFaultInjector::reject_kv_acquire() {
  return draw(plan_.kv_reject_prob, &kv_rejections_);
}

bool ServeFaultInjector::poison_logits() { return draw(plan_.poison_logits_prob, &poisons_); }

bool ServeFaultInjector::disconnect_client() {
  return draw(plan_.disconnect_prob, &disconnects_);
}

int64_t ServeFaultInjector::stalls() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stalls_;
}

int64_t ServeFaultInjector::deaths() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deaths_;
}

int64_t ServeFaultInjector::kv_rejections() const {
  std::lock_guard<std::mutex> lk(mu_);
  return kv_rejections_;
}

int64_t ServeFaultInjector::poisons() const {
  std::lock_guard<std::mutex> lk(mu_);
  return poisons_;
}

int64_t ServeFaultInjector::disconnects() const {
  std::lock_guard<std::mutex> lk(mu_);
  return disconnects_;
}

}  // namespace edgellm::runtime
