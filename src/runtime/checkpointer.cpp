#include "runtime/checkpointer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace fs = std::filesystem;

namespace edgellm::runtime {

namespace {
constexpr const char* kSlotPrefix = "ckpt-";
constexpr const char* kSlotSuffix = ".ellm";
}  // namespace

Checkpointer::Checkpointer(CheckpointerConfig cfg) : cfg_(std::move(cfg)) {
  check_arg(!cfg_.dir.empty(), "Checkpointer: dir must not be empty");
  check_arg(cfg_.keep >= 1, "Checkpointer: keep must be >= 1");
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec) throw std::runtime_error("Checkpointer: cannot create " + cfg_.dir + ": " + ec.message());
}

std::string Checkpointer::slot_path(int64_t iter) const {
  std::ostringstream name;
  name << kSlotPrefix << std::setfill('0') << std::setw(8) << iter << kSlotSuffix;
  return (fs::path(cfg_.dir) / name.str()).string();
}

int64_t Checkpointer::slot_iter(const fs::path& path) {
  const std::string name = path.filename().string();
  const std::string prefix = kSlotPrefix, suffix = kSlotSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.rfind(prefix, 0) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return -1;
  const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) return -1;
  try {
    return std::stoll(digits);
  } catch (const std::exception&) {
    return -1;
  }
}

std::vector<fs::path> Checkpointer::slots() const {
  std::vector<fs::path> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    if (entry.is_regular_file() && slot_iter(entry.path()) >= 0) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end(),
            [](const fs::path& a, const fs::path& b) { return slot_iter(a) < slot_iter(b); });
  return out;
}

void Checkpointer::save(const core::Snapshot& snap) {
  // load_latest() recovers the iteration from the file contents (filenames
  // are untrusted), so the meta entry must be present and agree.
  const auto meta = snap.state.find("meta.iter");
  check_arg(meta != snap.state.end() &&
                nn::unpack_u64(meta->second) == static_cast<uint64_t>(snap.iter),
            "Checkpointer: snapshot lacks a matching meta.iter entry "
            "(build snapshots with capture_training_state)");
  const std::string final_path = slot_path(snap.iter);
  // Stage under a non-slot name: load_latest() can never see a half-written
  // slot, and a crash here only leaves a .part file to garbage-collect.
  const std::string staged = final_path + ".part";
  try {
    nn::save_state_dict(snap.state, staged);
    if (cfg_.pre_commit) cfg_.pre_commit(staged);
  } catch (...) {
    std::error_code ec;
    fs::remove(staged, ec);
    throw;
  }
  std::error_code ec;
  fs::rename(staged, final_path, ec);
  if (ec) {
    std::error_code rm_ec;
    fs::remove(staged, rm_ec);
    throw std::runtime_error("Checkpointer: cannot commit " + final_path + ": " + ec.message());
  }
  ++saves_;
  rotate();
}

void Checkpointer::rotate() {
  auto all = slots();
  while (static_cast<int64_t>(all.size()) > cfg_.keep) {
    std::error_code ec;
    fs::remove(all.front(), ec);
    all.erase(all.begin());
  }
}

std::optional<core::Snapshot> Checkpointer::load_latest() {
  auto all = slots();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      auto state = nn::load_state_dict_file(it->string());
      const auto meta = state.find("meta.iter");
      if (meta == state.end()) throw std::runtime_error("snapshot missing meta.iter");
      core::Snapshot snap;
      snap.iter = static_cast<int64_t>(nn::unpack_u64(meta->second));
      snap.state = std::move(state);
      return snap;
    } catch (const std::exception&) {
      // Corrupt or torn slot: fall back to the previous rotation slot.
      ++corrupt_skipped_;
    }
  }
  return std::nullopt;
}

}  // namespace edgellm::runtime
