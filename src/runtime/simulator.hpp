// Training-iteration simulator: composes the model architecture, a LUC
// policy, an adaptive-tuning plan and the hardware model into modelled
// per-iteration latency, energy and memory. Works purely analytically from
// the configs, so it can also project paper-scale models that would never
// fit in this process (see examples/llama_scale_projection.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/luc.hpp"
#include "hw/search.hpp"

namespace edgellm::runtime {

/// How GEMMs are scheduled during simulation.
enum class ScheduleMode {
  kNaive,    ///< strawman schedule (reference point only)
  kDefault,  ///< competent hand-written default
  kSearched, ///< full schedule search + weight pinning
};

/// Simulator knobs.
struct SimulatorConfig {
  hw::DeviceModel device = hw::default_edge_device();
  hw::SearchConfig search;
  ScheduleMode schedule_mode = ScheduleMode::kSearched;
  int64_t batch = 8;
  int64_t seq = 32;
};

/// Tuning-method description for simulation.
struct MethodSpec {
  std::string name;
  core::LucPolicy policy;               ///< one entry per layer
  prune::Pattern prune_pattern = prune::Pattern::kUnstructured;
  std::vector<int64_t> exits;           ///< registered exit depths
  std::vector<double> exit_probs;       ///< sampling distribution over exits
  int64_t backprop_window = 0;          ///< <=0 means full depth
  bool update_embeddings = false;
  bool checkpoint = false;              ///< gradient checkpointing (full depth)
};

/// Vanilla tuning with gradient checkpointing (memory baseline).
MethodSpec vanilla_checkpointed_method(const nn::ModelConfig& cfg);

/// Modelled per-iteration cost and memory of one method.
struct MethodReport {
  std::string name;

  double expected_cycles = 0.0;
  double expected_ms = 0.0;
  double expected_energy_uj = 0.0;
  double dram_energy_uj = 0.0;  ///< component of expected_energy_uj
  double mac_energy_uj = 0.0;   ///< component of expected_energy_uj
  double sram_energy_uj = 0.0;  ///< component of expected_energy_uj
  double expected_dram_mb = 0.0;
  double utilization = 0.0;       ///< exit-probability-weighted
  double pinned_kb = 0.0;

  double weight_bytes = 0.0;
  double peak_activation_bytes = 0.0;
  double peak_grad_bytes = 0.0;
  double peak_optimizer_bytes = 0.0;
  double peak_memory_bytes = 0.0;  ///< sum of the four above
};

/// Full vanilla tuning (final exit, full depth) for a model with no
/// compression — the baseline every speedup is measured against.
MethodSpec vanilla_method(const nn::ModelConfig& cfg);

/// Analytic bytes of activations cached when one block trains (must match
/// what the real modules cache; verified in tests/runtime_test.cpp).
double block_activation_bytes(const nn::ModelConfig& cfg, int64_t batch, int64_t seq);

/// Analytic per-block parameter count (weights + biases + norms).
double block_param_count(const nn::ModelConfig& cfg);

/// Runs the simulation for one method.
MethodReport simulate_method(const nn::ModelConfig& cfg, const MethodSpec& method,
                             const SimulatorConfig& sim);

}  // namespace edgellm::runtime
