// Deterministic, seeded fault injection for the adaptation loop.
//
// Edge devices brown out, flip bits and run out of disk; this harness
// simulates those faults reproducibly so the recovery paths (atomic
// checkpoints, CRC fallback, numeric guards, rollback) are tested instead
// of trusted. Each fault fires at most once per configured site, so a
// rolled-back or resumed run replays cleanly past the point of injection —
// exactly what a transient real-world fault looks like.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace edgellm::runtime {

/// Thrown by the power-loss hook: models the process dying mid-run. Nothing
/// past the last committed checkpoint survives it.
struct PowerLossError final : std::runtime_error {
  explicit PowerLossError(int64_t iter)
      : std::runtime_error("simulated power loss before iteration " + std::to_string(iter)) {}
};

/// What to break, and when. All sites are one-shot.
struct FaultPlan {
  /// Throw PowerLossError before this 0-based iteration (-1 = never).
  int64_t power_loss_at = -1;
  /// Poison one gradient entry with NaN at each of these iterations.
  std::vector<int64_t> nan_grad_at;
  /// Make the Nth checkpoint save (0-based) fail with an I/O error (-1 = never).
  int64_t fail_save_index = -1;
  /// Seeds gradient-index / corruption-offset choices.
  uint64_t seed = 0x5EEDF00Dull;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Install as PipelineConfig::before_step.
  std::function<void(int64_t iter)> step_hook();

  /// Install as TunerConfig::grad_hook.
  std::function<void(int64_t iter, Tensor& grad_logits)> grad_hook();

  /// Install as CheckpointerConfig::pre_commit.
  std::function<void(const std::string& staged_path)> io_hook();

  /// Flips one byte of `path` in place (XOR 0xA5, guaranteed to change it).
  /// `byte_offset` < 0 picks a seeded-random offset within the file.
  void corrupt_file(const std::string& path, int64_t byte_offset = -1);

  int64_t power_losses() const { return power_losses_; }
  int64_t nan_injections() const { return nan_injections_; }
  int64_t io_failures() const { return io_failures_; }
  int64_t corruptions() const { return corruptions_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  bool fired_power_ = false;
  std::set<int64_t> fired_nan_;
  int64_t save_count_ = 0;
  int64_t power_losses_ = 0;
  int64_t nan_injections_ = 0;
  int64_t io_failures_ = 0;
  int64_t corruptions_ = 0;
};

/// Thrown by an injected worker death: models a decode worker dying mid-tick
/// (OOM-killed thread, device fault). The engine converts it into clean
/// kFailed completions for the affected sub-batch instead of crashing.
struct WorkerDeathError final : std::runtime_error {
  WorkerDeathError() : std::runtime_error("injected worker death") {}
};

/// What to break on the serving path, and how often. Unlike FaultPlan's
/// one-shot sites, these are *rates*: serving faults recur for as long as
/// the engine runs, so each probe is an independent seeded Bernoulli draw.
struct ServeFaultPlan {
  double worker_stall_prob = 0.0;   ///< per decode chunk: sleep worker_stall_ms
  double worker_stall_ms = 1.0;
  double worker_death_prob = 0.0;   ///< per decode chunk: throw WorkerDeathError
  double kv_reject_prob = 0.0;      ///< per admission attempt: fail the KV acquire
  double poison_logits_prob = 0.0;  ///< per sampled sequence: NaN the logits row
  double disconnect_prob = 0.0;     ///< per active sequence per tick: client hangup
  uint64_t seed = 0xFA017ull;       ///< seeds the single decision stream
};

/// Seeded fault source for the serving runtime (src/serve). Probes are
/// called from the scheduler thread *and* decode workers, so the decision
/// stream is mutex-guarded: deterministic for a fixed seed and call order,
/// and safe from any thread. Install via serve::EngineConfig::fault.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(ServeFaultPlan plan);

  /// Milliseconds to stall the calling worker (0.0 = healthy).
  double stall_worker_ms();
  /// True: the calling worker should die (throw WorkerDeathError).
  bool kill_worker();
  /// True: fail this KV-pool admission attempt (transient — retried).
  bool reject_kv_acquire();
  /// True: overwrite this sequence's logits with NaN (numeric blowup).
  bool poison_logits();
  /// True: the client hung up on this sequence (engine cancels it).
  bool disconnect_client();

  int64_t stalls() const;
  int64_t deaths() const;
  int64_t kv_rejections() const;
  int64_t poisons() const;
  int64_t disconnects() const;

 private:
  bool draw(double p, int64_t* counter);

  ServeFaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  int64_t stalls_ = 0;
  int64_t deaths_ = 0;
  int64_t kv_rejections_ = 0;
  int64_t poisons_ = 0;
  int64_t disconnects_ = 0;
};

}  // namespace edgellm::runtime
