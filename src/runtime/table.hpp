// Minimal fixed-width table printer shared by the bench harnesses so their
// output reads like the paper's tables.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace edgellm::runtime {

/// Streams rows of fixed-width columns to stdout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void row(const std::vector<std::string>& cells) const {
    std::ostringstream os;
    for (size_t i = 0; i < cells.size(); ++i) {
      const int w = i < widths_.size() ? widths_[i] : 12;
      os << std::left << std::setw(w) << cells[i] << ' ';
    }
    std::cout << os.str() << '\n';
  }

  void rule(char c = '-') const {
    int total = 0;
    for (int w : widths_) total += w + 1;
    std::cout << std::string(static_cast<size_t>(total), c) << '\n';
  }

 private:
  std::vector<int> widths_;
};

/// Formats a double with fixed precision.
inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Formats bytes as a human-readable KiB/MiB string.
inline std::string fmt_bytes(double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= 1024.0 * 1024.0) {
    os << bytes / (1024.0 * 1024.0) << " MiB";
  } else {
    os << bytes / 1024.0 << " KiB";
  }
  return os.str();
}

}  // namespace edgellm::runtime
