#include "runtime/trace.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace edgellm::runtime {

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : os_(path, std::ios::trunc), n_columns_(columns.size()), path_(path) {
  if (!os_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns.empty()) throw std::runtime_error("CsvWriter: no columns");
  write_cells(columns);
  rows_ = 0;  // header doesn't count
}

CsvWriter::~CsvWriter() {
  if (!os_.is_open()) return;
  os_.flush();
  if (!os_) {
    // Destructors must not throw; a silently truncated trace is worse than
    // a loud one, so at least say something.
    std::cerr << "warning: CsvWriter: trace " << path_ << " may be incomplete (I/O error)\n";
  }
}

void CsvWriter::close() {
  if (!os_.is_open()) return;
  os_.flush();
  const bool ok = static_cast<bool>(os_);
  os_.close();
  if (!ok || os_.fail()) {
    throw std::runtime_error("CsvWriter: I/O error closing " + path_ + "; trace is incomplete");
  }
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
  // Flush so buffered-write failures (ENOSPC, dead mount) surface on the
  // row that hit them rather than being dropped at destruction.
  os_.flush();
  if (!os_) throw std::runtime_error("CsvWriter: write failed for " + path_);
  ++rows_;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != n_columns_) {
    throw std::runtime_error("CsvWriter: expected " + std::to_string(n_columns_) +
                             " cells, got " + std::to_string(cells.size()));
  }
  write_cells(cells);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  row(cells);
}

void write_loss_curve(const std::string& path, const std::vector<float>& losses) {
  CsvWriter w(path, {"iteration", "loss"});
  for (size_t i = 0; i < losses.size(); ++i) {
    w.row(std::vector<double>{static_cast<double>(i), static_cast<double>(losses[i])});
  }
  w.close();
}

void write_method_reports(const std::string& path, const std::vector<MethodReport>& reports) {
  CsvWriter w(path, {"method", "expected_ms", "energy_uj", "dram_mb", "utilization",
                     "weight_bytes", "peak_activation_bytes", "peak_grad_bytes",
                     "peak_optimizer_bytes", "peak_memory_bytes"});
  for (const MethodReport& r : reports) {
    std::vector<std::string> cells = {r.name};
    for (double v : {r.expected_ms, r.expected_energy_uj, r.expected_dram_mb, r.utilization,
                     r.weight_bytes, r.peak_activation_bytes, r.peak_grad_bytes,
                     r.peak_optimizer_bytes, r.peak_memory_bytes}) {
      std::ostringstream os;
      os << v;
      cells.push_back(os.str());
    }
    w.row(cells);
  }
  w.close();
}

}  // namespace edgellm::runtime
