// On-disk crash-safe snapshot store (the robustness tentpole).
//
// Slot files (ckpt-<iter>.ellm) are ELLM v2 checkpoints: CRC-32 footer,
// written to a temp name and renamed into place, so a power cut mid-save
// can never tear a committed slot. A keep-N rotation bounds disk use, and
// load_latest() walks slots newest-first, skipping any that fail CRC or
// structural validation — one flipped byte costs one rotation slot, not
// the run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/snapshot.hpp"

namespace edgellm::runtime {

struct CheckpointerConfig {
  std::string dir;   ///< slot directory; created if missing
  int64_t keep = 3;  ///< rotation depth (>= 1)
  /// Fault-injection/test hook invoked with the staged temp file just
  /// before the commit rename; throwing aborts the save (no slot appears).
  std::function<void(const std::string& staged_path)> pre_commit;
};

class Checkpointer final : public core::SnapshotStore {
 public:
  explicit Checkpointer(CheckpointerConfig cfg);

  /// Atomically persists `snap` as slot ckpt-<iter>.ellm, then prunes the
  /// oldest slots beyond `keep`. Throws std::runtime_error on I/O failure,
  /// leaving existing slots untouched.
  void save(const core::Snapshot& snap) override;

  /// Newest slot that passes CRC + structural validation; corrupt slots are
  /// skipped (counted in corrupt_slots_skipped()). nullopt when none loads.
  std::optional<core::Snapshot> load_latest() override;

  /// Existing slot paths, sorted by iteration ascending.
  std::vector<std::filesystem::path> slots() const;

  /// Iteration encoded in a slot filename, or -1 for non-slot files.
  static int64_t slot_iter(const std::filesystem::path& path);

  const std::string& dir() const { return cfg_.dir; }
  int64_t saves() const { return saves_; }
  int64_t corrupt_slots_skipped() const { return corrupt_skipped_; }

 private:
  CheckpointerConfig cfg_;
  int64_t saves_ = 0;
  int64_t corrupt_skipped_ = 0;

  std::string slot_path(int64_t iter) const;
  void rotate();
};

}  // namespace edgellm::runtime
