// Experiment artifact writing: CSV traces of loss curves and method
// reports, so bench/CLI outputs can be re-plotted outside this repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "runtime/simulator.hpp"

namespace edgellm::runtime {

/// Minimal CSV writer with header checking. Throws std::runtime_error on
/// I/O failure; fields containing commas/quotes are quoted. Every row is
/// flushed and the stream state checked, so a disk-full or yanked-mount
/// error surfaces at the row that hit it instead of vanishing with the
/// buffered tail of the trace.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  /// Flushes; an I/O failure is reported to stderr (destructors can't
  /// throw) — call close() to get an exception instead.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);
  void row(const std::vector<double>& values);

  /// Flushes and closes the file; throws std::runtime_error if any write
  /// failed, so callers that need durable traces can check explicitly.
  void close();

  int64_t rows_written() const { return rows_; }

 private:
  std::ofstream os_;
  size_t n_columns_;
  int64_t rows_ = 0;
  std::string path_;

  void write_cells(const std::vector<std::string>& cells);
};

/// iteration,loss rows.
void write_loss_curve(const std::string& path, const std::vector<float>& losses);

/// One row per simulated method (latency/energy/memory columns).
void write_method_reports(const std::string& path, const std::vector<MethodReport>& reports);

}  // namespace edgellm::runtime
