#include "serve/scheduler.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig cfg, KvPoolConfig pool_cfg)
    : cfg_(cfg), pool_(pool_cfg) {
  check_arg(cfg_.max_batch > 0, "Scheduler: max_batch must be positive");
  check_arg(cfg_.queue_capacity > 0, "Scheduler: queue_capacity must be positive");
  check_arg(cfg_.max_seq > 0 && cfg_.n_layers > 0, "Scheduler: model dims must be positive");
  check_arg(cfg_.max_admission_retries >= 0,
            "Scheduler: max_admission_retries must be >= 0 (0 = unlimited)");
  check_arg(cfg_.retry_backoff_ms >= 0.0, "Scheduler: retry_backoff_ms must be >= 0");
}

bool Scheduler::enqueue(std::unique_ptr<SeqState>& s) {
  if (static_cast<int64_t>(queue_.size()) >= cfg_.queue_capacity) return false;
  queue_.push_back(std::move(s));
  return true;
}

bool Scheduler::apply_degrade(SeqState& s, int level, const DegradeLadder& ladder) {
  const int eff = s.force_degrade ? 2 : level;
  if (eff <= 0) return false;
  const int64_t target = ladder.depth(eff);
  // No early exit registered below the final layer: nothing to trade.
  if (target <= 0) return false;
  // Never upgrade: a fixed-early request already at or below the rung's
  // depth keeps what it asked for.
  if (target >= s.exit_layer_used) return false;
  s.policy = ExitPolicy::kFixedEarly;
  s.exit_layer = target;
  s.exit_layer_used = target;
  const bool first = !s.degraded;
  s.degraded = true;
  return first;
}

Scheduler::AdmitResult Scheduler::admit(int degrade_level, const DegradeLadder& ladder,
                                        std::chrono::steady_clock::time_point now) {
  AdmitResult r;
  // Retire deadline-expired requests anywhere in the queue first: they can
  // never produce a useful completion, so they must not consume a batch
  // slot or wedge staging behind them.
  for (auto it = queue_.begin(); it != queue_.end();) {
    SeqState& s = **it;
    if (s.req.deadline_ms > 0.0 && elapsed_ms(s.submit_t, now) > s.req.deadline_ms) {
      r.expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  while (!queue_.empty() && static_cast<int64_t>(active_.size()) < cfg_.max_batch) {
    SeqState& head = *queue_.front();
    // Backoff gate: the head owes the pool a cool-down after a transient
    // rejection. Nothing behind it jumps the queue (FIFO contract).
    if (head.retry_after > now) break;
    if (apply_degrade(head, degrade_level, ladder)) ++r.degraded;
    // Worst-case cached positions: the whole prompt plus every token the
    // request may generate, clipped to the context window. Computed from
    // the *effective* exit depth, so degrading shrinks the reservation.
    const int64_t projected =
        std::min<int64_t>(static_cast<int64_t>(head.req.prompt.size()) + head.req.max_new_tokens,
                          cfg_.max_seq);
    KvAdmitReason reason = KvAdmitReason::kOk;
    int64_t slot = -1;
    const bool injected = cfg_.fault != nullptr && cfg_.fault->reject_kv_acquire();
    if (!injected) slot = pool_.acquire(projected, head.exit_layer_used, &reason);
    if (slot < 0) {
      ++head.admission_attempts;
      ++r.retries;
      const char* why = injected ? "fault: injected kv admission failure" : to_string(reason);
      if (cfg_.max_admission_retries > 0 &&
          head.admission_attempts >= cfg_.max_admission_retries) {
        head.error = "kv admission failed after " +
                     std::to_string(head.admission_attempts) + " attempts: " + why;
        r.shed.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;  // the next request may be smaller; give it the head spot
      }
      if (cfg_.retry_backoff_ms > 0.0) {
        const int64_t shift = std::min<int64_t>(head.admission_attempts - 1, 6);
        const double wait_ms = cfg_.retry_backoff_ms * static_cast<double>(int64_t{1} << shift);
        head.retry_after =
            now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(wait_ms));
      }
      break;  // budget/slots exhausted; keep FIFO order and retry later
    }
    head.slot = slot;
    head.admit_t = now;
    head.admission_attempts = 0;
    ++r.admitted;
    active_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return r;
}

std::unique_ptr<SeqState> Scheduler::evict_lower_priority(int64_t than_priority) {
  auto victim = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->req.priority <= than_priority) continue;
    // Strictly-lower importance only. Among candidates take the largest
    // priority value; >= prefers the most recently enqueued on ties (the
    // request that has waited least loses the least progress).
    if (victim == queue_.end() || (*it)->req.priority >= (*victim)->req.priority) {
      victim = it;
    }
  }
  if (victim == queue_.end()) return nullptr;
  std::unique_ptr<SeqState> s = std::move(*victim);
  queue_.erase(victim);
  return s;
}

std::unique_ptr<SeqState> Scheduler::cancel(int64_t id, bool* found) {
  *found = false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->req.id == id) {
      std::unique_ptr<SeqState> s = std::move(*it);
      queue_.erase(it);
      *found = true;
      return s;
    }
  }
  for (auto& s : active_) {
    if (s->req.id == id && !s->cancelled) {
      s->cancelled = true;
      *found = true;
      return nullptr;
    }
  }
  return nullptr;
}

std::unique_ptr<SeqState> Scheduler::finish(size_t active_index) {
  check_arg(active_index < active_.size(), "Scheduler::finish: index out of range");
  std::unique_ptr<SeqState> s = std::move(active_[active_index]);
  pool_.release(s->slot);
  s->slot = -1;
  active_.erase(active_.begin() + static_cast<int64_t>(active_index));
  return s;
}

void Scheduler::for_each_pending(const std::function<void(SeqState&)>& fn) {
  for (auto& s : queue_) fn(*s);
  for (auto& s : active_) fn(*s);
}

void Scheduler::clear_failed() {
  for (auto& s : active_) {
    if (s->slot >= 0) pool_.release(s->slot);
    s->slot = -1;
  }
  active_.clear();
  queue_.clear();
}

std::chrono::steady_clock::time_point Scheduler::next_retry_time() const {
  std::chrono::steady_clock::time_point earliest{};
  for (const auto& s : queue_) {
    if (s->retry_after == std::chrono::steady_clock::time_point{}) continue;
    if (earliest == std::chrono::steady_clock::time_point{} || s->retry_after < earliest) {
      earliest = s->retry_after;
    }
  }
  return earliest;
}

}  // namespace edgellm::serve
