#include "serve/scheduler.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

Scheduler::Scheduler(SchedulerConfig cfg, KvPoolConfig pool_cfg)
    : cfg_(cfg), pool_(pool_cfg) {
  check_arg(cfg_.max_batch > 0, "Scheduler: max_batch must be positive");
  check_arg(cfg_.queue_capacity > 0, "Scheduler: queue_capacity must be positive");
  check_arg(cfg_.max_seq > 0 && cfg_.n_layers > 0, "Scheduler: model dims must be positive");
}

bool Scheduler::enqueue(std::unique_ptr<SeqState>& s) {
  if (static_cast<int64_t>(queue_.size()) >= cfg_.queue_capacity) return false;
  queue_.push_back(std::move(s));
  return true;
}

void Scheduler::admit() {
  while (!queue_.empty() && static_cast<int64_t>(active_.size()) < cfg_.max_batch) {
    SeqState& head = *queue_.front();
    // Worst-case cached positions: the whole prompt plus every token the
    // request may generate, clipped to the context window.
    const int64_t projected =
        std::min<int64_t>(static_cast<int64_t>(head.req.prompt.size()) + head.req.max_new_tokens,
                          cfg_.max_seq);
    const int64_t slot = pool_.acquire(projected, head.exit_layer_used);
    if (slot < 0) break;  // budget/slots exhausted; keep FIFO order
    head.slot = slot;
    head.admit_t = std::chrono::steady_clock::now();
    active_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
}

std::unique_ptr<SeqState> Scheduler::cancel(int64_t id, bool* found) {
  *found = false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->req.id == id) {
      std::unique_ptr<SeqState> s = std::move(*it);
      queue_.erase(it);
      *found = true;
      return s;
    }
  }
  for (auto& s : active_) {
    if (s->req.id == id && !s->cancelled) {
      s->cancelled = true;
      *found = true;
      return nullptr;
    }
  }
  return nullptr;
}

std::unique_ptr<SeqState> Scheduler::finish(size_t active_index) {
  check_arg(active_index < active_.size(), "Scheduler::finish: index out of range");
  std::unique_ptr<SeqState> s = std::move(active_[active_index]);
  pool_.release(s->slot);
  s->slot = -1;
  active_.erase(active_.begin() + static_cast<int64_t>(active_index));
  return s;
}

}  // namespace edgellm::serve
