#include "serve/scheduler.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig cfg, KvPoolConfig pool_cfg) : cfg_(cfg) {
  check_arg(cfg_.max_batch > 0, "Scheduler: max_batch must be positive");
  check_arg(cfg_.queue_capacity > 0, "Scheduler: queue_capacity must be positive");
  check_arg(cfg_.max_seq > 0 && cfg_.n_layers > 0, "Scheduler: model dims must be positive");
  check_arg(cfg_.max_admission_retries >= 0,
            "Scheduler: max_admission_retries must be >= 0 (0 = unlimited)");
  check_arg(cfg_.retry_backoff_ms >= 0.0, "Scheduler: retry_backoff_ms must be >= 0");
  check_arg(cfg_.degrade_budget_retries >= 0,
            "Scheduler: degrade_budget_retries must be >= 0 (0 = off)");
  if (pool_cfg.paged) {
    PagedKvConfig pc;
    pc.block_tokens = pool_cfg.block_tokens;
    pc.n_layers = cfg_.n_layers;
    pc.kv_dim = pool_cfg.kv_dim;
    pc.byte_budget = pool_cfg.byte_budget;
    pc.quantize = pool_cfg.quantize;
    pc.registry = pool_cfg.registry;
    paged_pool_ = std::make_unique<PagedKvPool>(pc);
  } else {
    slot_pool_ = std::make_unique<KvCachePool>(pool_cfg);
  }
}

KvCachePool& Scheduler::pool() {
  check_arg(slot_pool_ != nullptr, "Scheduler::pool: scheduler is paged");
  return *slot_pool_;
}

const KvCachePool& Scheduler::pool() const {
  check_arg(slot_pool_ != nullptr, "Scheduler::pool: scheduler is paged");
  return *slot_pool_;
}

int64_t Scheduler::kv_committed_bytes() const {
  return paged_pool_ ? paged_pool_->committed_bytes() : slot_pool_->committed_bytes();
}

int64_t Scheduler::kv_bytes_in_use() const {
  return paged_pool_ ? paged_pool_->bytes_in_use() : slot_pool_->bytes_in_use();
}

int64_t Scheduler::kv_high_water_bytes() const {
  return paged_pool_ ? paged_pool_->high_water_bytes() : slot_pool_->high_water_bytes();
}

int64_t Scheduler::kv_byte_budget() const {
  return paged_pool_ ? paged_pool_->byte_budget() : slot_pool_->byte_budget();
}

int64_t Scheduler::kv_projected_bytes(int64_t positions, int64_t n_layers) const {
  return paged_pool_ ? paged_pool_->projected_bytes(positions, n_layers)
                     : slot_pool_->projected_bytes(positions, n_layers);
}

int64_t Scheduler::kv_sync_live_bytes() {
  return paged_pool_ ? paged_pool_->sync_live_bytes() : slot_pool_->sync_live_bytes();
}

void Scheduler::release_paged(SeqState& s, bool reuse) {
  if (s.pseq == nullptr) return;
  // The cached rows hold, in order, the tokens the sequence fed (or reused):
  // the prompt followed by generated tokens, `position` of them — the final
  // sampled token is never cached.
  std::vector<int64_t> toks;
  if (reuse) {
    toks.reserve(static_cast<size_t>(s.position));
    const size_t np = s.req.prompt.size();
    for (int64_t i = 0; i < s.position; ++i) {
      const size_t ui = static_cast<size_t>(i);
      toks.push_back(ui < np ? s.req.prompt[ui] : s.out[ui - np]);
    }
  }
  paged_pool_->release(s.pseq, toks, reuse);
  s.pseq = nullptr;
  s.kv = nullptr;
}

bool Scheduler::enqueue(std::unique_ptr<SeqState>& s) {
  if (static_cast<int64_t>(queue_.size()) >= cfg_.queue_capacity) return false;
  queue_.push_back(std::move(s));
  return true;
}

bool Scheduler::apply_degrade(SeqState& s, int level, const DegradeLadder& ladder) {
  const int eff = s.force_degrade ? 2 : level;
  if (eff <= 0) return false;
  const int64_t target = ladder.depth(eff);
  // No early exit registered below the final layer: nothing to trade.
  if (target <= 0) return false;
  // Never upgrade: a fixed-early request already at or below the rung's
  // depth keeps what it asked for.
  if (target >= s.exit_layer_used) return false;
  s.policy = ExitPolicy::kFixedEarly;
  s.exit_layer = target;
  s.exit_layer_used = target;
  const bool first = !s.degraded;
  s.degraded = true;
  return first;
}

Scheduler::AdmitResult Scheduler::admit(int degrade_level, const DegradeLadder& ladder,
                                        std::chrono::steady_clock::time_point now) {
  AdmitResult r;
  // Retire deadline-expired requests anywhere in the queue first: they can
  // never produce a useful completion, so they must not consume a batch
  // slot or wedge staging behind them.
  for (auto it = queue_.begin(); it != queue_.end();) {
    SeqState& s = **it;
    if (s.req.deadline_ms > 0.0 && elapsed_ms(s.submit_t, now) > s.req.deadline_ms) {
      r.expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  while (!queue_.empty() && static_cast<int64_t>(active_.size()) < cfg_.max_batch) {
    SeqState& head = *queue_.front();
    // Backoff gate: the head owes the pool a cool-down after a transient
    // rejection. Nothing behind it jumps the queue (FIFO contract).
    if (head.retry_after > now) break;
    if (apply_degrade(head, degrade_level, ladder)) ++r.degraded;
    // Worst-case cached positions: the whole prompt plus every token the
    // request may generate, clipped to the context window. Computed from
    // the *effective* exit depth, so degrading shrinks the reservation.
    const int64_t projected =
        std::min<int64_t>(static_cast<int64_t>(head.req.prompt.size()) + head.req.max_new_tokens,
                          cfg_.max_seq);
    KvAdmitReason reason = KvAdmitReason::kOk;
    bool ok = false;
    const bool injected = cfg_.fault != nullptr && cfg_.fault->reject_kv_acquire();
    if (!injected) {
      if (paged_pool_) {
        // Paged admission reserves only the blocks this request adds after
        // matching its prompt against the prefix cache; a hit skips the
        // matched prompt positions outright (they are already cached).
        PagedKvPool::AcquireResult ar =
            paged_pool_->acquire(head.req.prompt, projected, head.exit_layer_used);
        reason = ar.reason;
        if (ar.seq != nullptr) {
          head.pseq = ar.seq;
          head.kv = ar.seq;
          head.position = ar.prefix_tokens;
          head.prompt_fed = static_cast<size_t>(ar.prefix_tokens);
          ok = true;
        }
      } else {
        const int64_t slot = slot_pool_->acquire(projected, head.exit_layer_used, &reason);
        if (slot >= 0) {
          head.slot = slot;
          head.kv = &slot_pool_->slot(slot);
          ok = true;
        }
      }
    }
    if (!ok) {
      ++head.admission_attempts;
      ++r.retries;
      const char* why = injected ? "fault: injected kv admission failure" : to_string(reason);
      // The byte budget keeps refusing the head at its asked depth: force
      // it to the ladder floor and retry this scan with the smaller
      // reservation. This realizes the floor-depth fit check the engine
      // admitted it under — without it, a request that only fits degraded
      // would retry at full depth forever and wedge the queue. Checked
      // before shedding so a degradable head gets its cheaper attempt
      // first; if even the floor keeps bouncing, the retry budget still
      // applies.
      if (!injected && reason == KvAdmitReason::kByteBudget && !head.force_degrade &&
          cfg_.degrade_budget_retries > 0 &&
          head.admission_attempts >= cfg_.degrade_budget_retries) {
        head.force_degrade = true;
        continue;
      }
      if (cfg_.max_admission_retries > 0 &&
          head.admission_attempts >= cfg_.max_admission_retries) {
        head.error = "kv admission failed after " +
                     std::to_string(head.admission_attempts) + " attempts: " + why;
        r.shed.push_back(std::move(queue_.front()));
        queue_.pop_front();
        continue;  // the next request may be smaller; give it the head spot
      }
      if (cfg_.retry_backoff_ms > 0.0) {
        const int64_t shift = std::min<int64_t>(head.admission_attempts - 1, 6);
        const double wait_ms = cfg_.retry_backoff_ms * static_cast<double>(int64_t{1} << shift);
        head.retry_after =
            now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(wait_ms));
      }
      break;  // budget/slots exhausted; keep FIFO order and retry later
    }
    head.admit_t = now;
    head.admission_attempts = 0;
    ++r.admitted;
    active_.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return r;
}

std::unique_ptr<SeqState> Scheduler::evict_lower_priority(int64_t than_priority) {
  auto victim = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->req.priority <= than_priority) continue;
    // Strictly-lower importance only. Among candidates take the largest
    // priority value; >= prefers the most recently enqueued on ties (the
    // request that has waited least loses the least progress).
    if (victim == queue_.end() || (*it)->req.priority >= (*victim)->req.priority) {
      victim = it;
    }
  }
  if (victim == queue_.end()) return nullptr;
  std::unique_ptr<SeqState> s = std::move(*victim);
  queue_.erase(victim);
  return s;
}

std::unique_ptr<SeqState> Scheduler::cancel(int64_t id, bool* found) {
  *found = false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->req.id == id) {
      std::unique_ptr<SeqState> s = std::move(*it);
      queue_.erase(it);
      *found = true;
      return s;
    }
  }
  for (auto& s : active_) {
    if (s->req.id == id && !s->cancelled) {
      s->cancelled = true;
      *found = true;
      return nullptr;
    }
  }
  return nullptr;
}

std::unique_ptr<SeqState> Scheduler::finish(size_t active_index, bool reuse) {
  check_arg(active_index < active_.size(), "Scheduler::finish: index out of range");
  std::unique_ptr<SeqState> s = std::move(active_[active_index]);
  if (paged_pool_) {
    // Clean terminals (completions, cancels, timeouts: their cached rows
    // are valid at the barrier) donate their prefix to the cache for
    // future requests; failed decodes must pass reuse=false — their
    // appends may be torn and the rows are untrusted.
    release_paged(*s, reuse);
  } else {
    slot_pool_->release(s->slot);
    s->slot = -1;
    s->kv = nullptr;
  }
  active_.erase(active_.begin() + static_cast<int64_t>(active_index));
  return s;
}

void Scheduler::for_each_pending(const std::function<void(SeqState&)>& fn) {
  for (auto& s : queue_) fn(*s);
  for (auto& s : active_) fn(*s);
}

void Scheduler::clear_failed() {
  for (auto& s : active_) {
    if (paged_pool_) {
      // A wedged decode may have left torn rows: never donate them.
      release_paged(*s, /*reuse=*/false);
    } else if (s->slot >= 0) {
      slot_pool_->release(s->slot);
    }
    s->slot = -1;
    s->kv = nullptr;
  }
  active_.clear();
  queue_.clear();
}

std::chrono::steady_clock::time_point Scheduler::next_retry_time() const {
  std::chrono::steady_clock::time_point earliest{};
  for (const auto& s : queue_) {
    if (s->retry_after == std::chrono::steady_clock::time_point{}) continue;
    if (earliest == std::chrono::steady_clock::time_point{} || s->retry_after < earliest) {
      earliest = s->retry_after;
    }
  }
  return earliest;
}

}  // namespace edgellm::serve
