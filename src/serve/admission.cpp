#include "serve/admission.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

const char* to_string(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNew: return "reject-new";
    case ShedPolicy::kDropLowestPriority: return "drop-lowest-priority";
    case ShedPolicy::kDegradeEarlyExit: return "degrade-early-exit";
  }
  return "unknown";
}

namespace {

bool trips(double threshold, double value) { return threshold > 0.0 && value >= threshold; }

void check_ratio(double v, const char* name) {
  check_arg(v >= 0.0 && v <= 1.0, std::string("AdmissionConfig: ") + name + " must be in [0, 1]");
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {
  check_ratio(cfg_.degrade_queue_ratio, "degrade_queue_ratio");
  check_ratio(cfg_.shed_queue_ratio, "shed_queue_ratio");
  check_ratio(cfg_.degrade_kv_ratio, "degrade_kv_ratio");
  check_ratio(cfg_.shed_kv_ratio, "shed_kv_ratio");
  check_arg(cfg_.degrade_tick_ms >= 0.0 && cfg_.shed_tick_ms >= 0.0,
            "AdmissionConfig: tick thresholds must be >= 0");
  check_arg(cfg_.tick_ewma_alpha > 0.0 && cfg_.tick_ewma_alpha <= 1.0,
            "AdmissionConfig: tick_ewma_alpha must be in (0, 1]");
  check_arg(cfg_.tenant_rate >= 0.0, "AdmissionConfig: tenant_rate must be >= 0");
  check_arg(cfg_.tenant_rate <= 0.0 || cfg_.tenant_burst >= 1.0,
            "AdmissionConfig: tenant_burst must be >= 1 when quotas are on");
}

bool AdmissionController::shed_signal(const Pressure& p, std::string* why) const {
  if (trips(cfg_.shed_queue_ratio, p.queue_ratio)) {
    *why = "overload: queue depth";
    return true;
  }
  if (trips(cfg_.shed_kv_ratio, p.kv_ratio)) {
    *why = "overload: kv pressure";
    return true;
  }
  if (trips(cfg_.shed_tick_ms, p.tick_ewma_ms)) {
    *why = "overload: decode latency";
    return true;
  }
  return false;
}

AdmissionController::Decision AdmissionController::on_submit(
    const std::string& tenant, const Pressure& p, std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  if (cfg_.tenant_rate > 0.0) {
    auto [it, fresh] = buckets_.try_emplace(tenant, Bucket{cfg_.tenant_burst, now});
    Bucket& b = it->second;
    if (!fresh) {
      const double dt = std::chrono::duration<double>(now - b.last).count();
      b.tokens = std::min(cfg_.tenant_burst, b.tokens + dt * cfg_.tenant_rate);
      b.last = now;
    }
    if (b.tokens < 1.0) {
      return {Decision::kShed, "quota: tenant \"" + tenant + "\" token bucket empty"};
    }
    b.tokens -= 1.0;
  }
  std::string why;
  if (shed_signal(p, &why)) {
    if (cfg_.shed_policy == ShedPolicy::kDegradeEarlyExit) {
      return {Decision::kAdmitDegraded, why};
    }
    return {Decision::kShed, why};
  }
  return {Decision::kAdmit, {}};
}

void AdmissionController::observe_tick(double tick_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!ewma_primed_) {
    tick_ewma_ = tick_ms;
    ewma_primed_ = true;
    return;
  }
  tick_ewma_ += cfg_.tick_ewma_alpha * (tick_ms - tick_ewma_);
}

int AdmissionController::degrade_level(const Pressure& p) const {
  std::string ignored;
  if (shed_signal(p, &ignored)) return 2;
  if (trips(cfg_.degrade_queue_ratio, p.queue_ratio) ||
      trips(cfg_.degrade_kv_ratio, p.kv_ratio) ||
      trips(cfg_.degrade_tick_ms, p.tick_ewma_ms)) {
    return 1;
  }
  return 0;
}

double AdmissionController::tick_ewma_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tick_ewma_;
}

}  // namespace edgellm::serve
