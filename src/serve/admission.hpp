// Admission control in front of the Scheduler: the overload-policy brain
// of the serving engine. The Scheduler owns the queue and the batch; this
// class owns the *decisions* — per-tenant token-bucket quotas, priority-
// aware load shedding, and the graceful-degradation ladder that trades
// the paper's early-exit accuracy for survival under pressure.
//
// Pressure signals (any subset can be enabled; 0 disables a signal):
//   - queue depth as a fraction of queue_capacity,
//   - committed KV bytes as a fraction of the byte budget,
//   - an EWMA of decode-tick latency in milliseconds.
// Each signal has a *degrade* threshold (start downgrading exit policies)
// and a *shed* threshold (start refusing work per the shed policy). With
// every threshold at its 0 default the controller is inert and the engine
// behaves exactly as before this layer existed.
//
// Thread model: on_submit() is called from client threads under the
// engine's lock-free paths, observe_tick()/degrade_level() from the
// scheduler thread — all state here is guarded by one internal mutex.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace edgellm::serve {

/// What to do with new arrivals once a shed threshold trips.
enum class ShedPolicy {
  kRejectNew,           ///< shed the incoming request (classic admission control)
  kDropLowestPriority,  ///< evict a strictly-lower-priority queued request instead
  kDegradeEarlyExit,    ///< admit, but forced to the cheapest early exit
};

const char* to_string(ShedPolicy p);

struct AdmissionConfig {
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Queue-depth thresholds as fractions of queue_capacity (0 = signal off).
  double degrade_queue_ratio = 0.0;
  double shed_queue_ratio = 0.0;
  /// Committed-KV thresholds as fractions of the byte budget (0 = off;
  /// also off when the engine runs without a budget).
  double degrade_kv_ratio = 0.0;
  double shed_kv_ratio = 0.0;
  /// Decode-tick EWMA thresholds in milliseconds (0 = off).
  double degrade_tick_ms = 0.0;
  double shed_tick_ms = 0.0;
  double tick_ewma_alpha = 0.2;  ///< EWMA smoothing for observe_tick()
  /// Per-tenant token bucket: `tenant_rate` requests/second sustained,
  /// `tenant_burst` capacity. rate <= 0 disables quotas entirely.
  double tenant_rate = 0.0;
  double tenant_burst = 4.0;
};

/// Point-in-time pressure sample the engine computes under its lock.
struct Pressure {
  double queue_ratio = 0.0;   ///< queued / queue_capacity
  double kv_ratio = 0.0;      ///< committed bytes / byte budget (0 if unbudgeted)
  double tick_ewma_ms = 0.0;  ///< tick_ewma_ms() at sample time
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg);

  struct Decision {
    enum Action {
      kAdmit,          ///< enqueue as requested
      kAdmitDegraded,  ///< enqueue, forced to the degradation ladder's floor
      kShed,           ///< refuse (reason says why); drop-lowest may evict instead
    };
    Action action = kAdmit;
    std::string reason;
  };

  /// Submit-time decision: quota first, then the shed thresholds under the
  /// configured policy. `now` is passed in so tests can drive synthetic
  /// clocks through the token buckets deterministically.
  Decision on_submit(const std::string& tenant, const Pressure& p,
                     std::chrono::steady_clock::time_point now);

  /// Feeds one decode-tick duration into the latency EWMA.
  void observe_tick(double tick_ms);

  /// Degradation-ladder rung for the current pressure: 0 = serve as
  /// requested, 1 = downgrade final/voted to the deepest registered early
  /// exit, 2 = downgrade to the shallowest (the survival floor).
  int degrade_level(const Pressure& p) const;

  double tick_ewma_ms() const;
  const AdmissionConfig& config() const { return cfg_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last;
  };

  bool shed_signal(const Pressure& p, std::string* why) const;

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  double tick_ewma_ = 0.0;
  bool ewma_primed_ = false;
};

}  // namespace edgellm::serve
