// Request/response types for the serving runtime, plus the JSONL wire
// format the `edgellm_cli serve` subcommand speaks: one flat JSON object
// per line in, one completion object per line out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace edgellm::serve {

/// Which exit head(s) decode a request — the serving-time use of the
/// paper's early exits: cheap fixed-early decode, or voted decode that
/// combines every exit head's logits (core::voting) to recover accuracy.
enum class ExitPolicy {
  kFinal,       ///< final exit only
  kFixedEarly,  ///< one registered early exit (Request::exit_layer)
  kVoted,       ///< full depth; all exit heads combined per token
  /// Self-speculative: a registered early exit drafts tokens that one
  /// stacked full-depth pass verifies (Request::draft_depth/draft_k).
  /// Greedy only; output is byte-identical to kFinal.
  kSpeculative,
};

/// Priority classes for admission and load shedding. Lower value = more
/// important (kHigh outranks kNormal outranks kLow). Priorities never
/// reorder FIFO staging; they only pick load-shedding victims.
inline constexpr int64_t kPriorityHigh = 0;
inline constexpr int64_t kPriorityNormal = 1;
inline constexpr int64_t kPriorityLow = 2;

/// One generation request.
struct Request {
  int64_t id = 0;
  std::vector<int64_t> prompt;
  int64_t max_new_tokens = 32;
  float temperature = 0.0f;  ///< <= 0 means greedy decoding
  int64_t top_k = 0;         ///< 0 disables top-k filtering
  ExitPolicy exit_policy = ExitPolicy::kFinal;
  int64_t exit_layer = 0;    ///< registered exit depth for kFixedEarly
  /// kSpeculative knobs; 0 = the engine's configured default (which in turn
  /// defaults draft_depth to the deepest registered early exit).
  int64_t draft_depth = 0;   ///< registered exit the drafts decode at
  int64_t draft_k = 0;       ///< tokens verified per round (k-1 drafted)
  uint64_t seed = 0;         ///< per-request sampling stream
  double deadline_ms = 0.0;  ///< 0 means no deadline (measured from submit)
  /// Quota bucket this request draws from (empty = the anonymous tenant).
  std::string tenant;
  /// kPriorityHigh..kPriorityLow; see AdmissionConfig for how shedding
  /// policies use it.
  int64_t priority = kPriorityNormal;
};

enum class RequestStatus {
  kOk,         ///< completed normally
  kRejected,   ///< admission queue full, impossible request, or engine shut down
  kCancelled,  ///< cancel() (or client disconnect) before completion
  kTimeout,    ///< deadline exceeded mid-decode (partial tokens returned)
  kShed,       ///< load-shed: quota, overload policy, or admission retries exhausted
  kExpired,    ///< deadline exceeded while still queued (never admitted)
  kFailed,     ///< internal fault (worker death, poisoned decode, watchdog)
};

const char* to_string(RequestStatus s);
const char* to_string(ExitPolicy p);

/// Per-request serving metrics.
struct RequestMetrics {
  double queue_wait_ms = 0.0;  ///< submit -> admitted into the batch
  double ttft_ms = 0.0;        ///< submit -> first generated token
  double total_ms = 0.0;       ///< submit -> completion
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 0;
  double tokens_per_s = 0.0;   ///< output tokens / (total - queue wait)
  int64_t kv_bytes = 0;        ///< this sequence's cache bytes at completion
  /// Speculative decoding only (zero otherwise): drafts proposed by the
  /// shallow exit and how many of them the full-depth pass confirmed.
  int64_t spec_drafted = 0;
  int64_t spec_accepted = 0;
};

/// The engine's answer to one Request.
struct Completion {
  int64_t id = 0;
  RequestStatus status = RequestStatus::kOk;
  std::vector<int64_t> tokens;  ///< generated tokens (prompt excluded)
  RequestMetrics metrics;
  /// Structured reason for non-kOk terminals (e.g. "kv: byte budget
  /// exceeded" vs "kv: slots exhausted"), so clients and retry logic can
  /// tell transient failures from permanent ones. Empty on success.
  std::string error;
  /// True when overload degraded this request to a cheaper exit policy
  /// (see AdmissionConfig); exit_layer_used records the depth that decoded.
  bool degraded = false;
  int64_t exit_layer_used = 0;
};

/// Per-request streaming callbacks, the push-side alternative to waiting
/// on the submit() future — what the HTTP front door uses to flush tokens
/// to a client as the engine decodes them.
///
/// Contract: both callbacks are invoked on *engine* threads with the
/// engine's lock held. They must be fast and non-blocking (enqueue into
/// your own buffer and wake your own loop) and must never call back into
/// the engine — doing so deadlocks the scheduler. `on_token` fires once
/// per sampled token in decode order; `on_done` fires exactly once per
/// request, after the last token, with the same Completion the future
/// resolves to (including immediate rejections and sheds, which see no
/// tokens at all). Either callback may be empty.
struct StreamSink {
  std::function<void(int64_t request_id, int64_t token)> on_token;
  std::function<void(const Completion&)> on_done;
};

/// Parses one JSONL request line, e.g.
///   {"id": 3, "prompt": [1,2,3], "max_new_tokens": 16, "temperature": 0.7,
///    "top_k": 8, "exit": "voted", "seed": 9, "deadline_ms": 250}
/// "exit" is "final" (default), "voted", or an integer layer (fixed-early).
/// Unknown keys are rejected; throws std::invalid_argument with the offending
/// key/line context on malformed input.
Request parse_request_json(const std::string& line);

/// Serialises a completion as one JSON line (no trailing newline).
std::string completion_to_json(const Completion& c);

}  // namespace edgellm::serve
