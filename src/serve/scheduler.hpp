// Continuous-batching scheduler: the single-threaded policy core of the
// serving engine. Requests wait in a bounded FIFO admission queue; at every
// token boundary the scheduler admits as many as fit (batch slots AND the
// KV pool's byte budget), and finished/cancelled sequences free their slot
// immediately so the next queued request joins mid-flight — no
// stop-the-world batch boundaries.
//
// Concurrency is the engine's problem (src/serve/engine): the engine calls
// every method here under its own lock, between decode barriers.
#pragma once

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "serve/kv_pool.hpp"
#include "serve/request.hpp"
#include "tensor/rng.hpp"

namespace edgellm::serve {

/// One admitted sequence's decode state.
struct SeqState {
  Request req;
  std::promise<Completion> promise;
  int64_t slot = -1;            ///< KvCachePool slot
  int64_t exit_layer_used = 0;  ///< resolved depth (n_layers for final/voted)
  int64_t position = 0;         ///< tokens cached so far
  size_t prompt_fed = 0;        ///< prompt tokens fed so far
  int64_t last_token = 0;       ///< token to feed next once the prompt is done
  std::vector<int64_t> out;     ///< generated tokens
  Rng rng{0};
  bool cancelled = false;
  int64_t kv_bytes_at_end = 0;  ///< cache bytes sampled just before release
  std::chrono::steady_clock::time_point submit_t, admit_t, first_token_t;
  bool has_first_token = false;

  bool prompt_done() const { return prompt_fed >= req.prompt.size(); }
  /// The token this sequence feeds at the next tick.
  int64_t next_token() const {
    return prompt_done() ? last_token : req.prompt[prompt_fed];
  }
};

struct SchedulerConfig {
  int64_t max_batch = 8;        ///< max concurrently decoding sequences
  int64_t queue_capacity = 64;  ///< bounded admission queue
  int64_t max_seq = 0;          ///< model context window
  int64_t n_layers = 0;         ///< model depth
};

class Scheduler {
 public:
  Scheduler(SchedulerConfig cfg, KvPoolConfig pool_cfg);

  /// Queues a request. Moves from `s` and returns true, or returns false
  /// (queue full) leaving `s` untouched so the caller can reject it.
  bool enqueue(std::unique_ptr<SeqState>& s);

  /// Admits queued requests in FIFO order while batch slots and the KV
  /// byte budget allow. Head-of-line order is preserved: if the head does
  /// not fit, nothing behind it jumps the queue (no starvation).
  void admit();

  /// Cancels a request by id. Queued: removed and returned for immediate
  /// resolution. Active: flagged; the engine resolves it at the next
  /// barrier. Returns nullptr + sets `found` accordingly.
  std::unique_ptr<SeqState> cancel(int64_t id, bool* found);

  /// Removes an active sequence (slot released) and returns its state for
  /// completion.
  std::unique_ptr<SeqState> finish(size_t active_index);

  std::vector<std::unique_ptr<SeqState>>& active() { return active_; }
  KvCachePool& pool() { return pool_; }
  const KvCachePool& pool() const { return pool_; }
  size_t queued() const { return queue_.size(); }
  bool idle() const { return active_.empty() && queue_.empty(); }
  const SchedulerConfig& config() const { return cfg_; }

 private:
  SchedulerConfig cfg_;
  KvCachePool pool_;
  std::deque<std::unique_ptr<SeqState>> queue_;
  std::vector<std::unique_ptr<SeqState>> active_;
};

}  // namespace edgellm::serve
