// Continuous-batching scheduler: the single-threaded mechanics core of the
// serving engine. Requests wait in a bounded FIFO admission queue; at every
// token boundary the scheduler stages as many as fit (batch slots AND the
// KV pool's byte budget), and finished/cancelled sequences free their slot
// immediately so the next queued request joins mid-flight — no
// stop-the-world batch boundaries.
//
// Overload *policy* lives in AdmissionController (src/serve/admission.*);
// this class executes its decisions: deadline-expired requests are retired
// at every staging scan (they never occupy a batch slot), staging can
// downgrade a request along the degradation ladder before reserving KV
// bytes, transient KV admission failures retry with bounded exponential
// backoff, and load shedding can evict a lower-priority queued request.
//
// Concurrency is the engine's problem (src/serve/engine): the engine calls
// every method here under its own lock, between decode barriers.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "serve/kv_pool.hpp"
#include "serve/request.hpp"
#include "tensor/rng.hpp"

namespace edgellm::serve {

/// One admitted sequence's decode state.
struct SeqState {
  Request req;
  std::promise<Completion> promise;
  /// Optional push-side streaming callbacks (see request.hpp). The engine
  /// invokes on_token per sampled token and on_done when the promise
  /// resolves.
  StreamSink sink;
  /// Effective exit policy/layer. Starts as the request's and may be
  /// *downgraded* (never upgraded) by the degradation ladder at staging —
  /// the engine decodes with these, not with req's.
  ExitPolicy policy = ExitPolicy::kFinal;
  int64_t exit_layer = 0;
  bool degraded = false;       ///< ladder moved this request off its ask
  bool force_degrade = false;  ///< shed policy kDegradeEarlyExit marked it at submit
  int64_t slot = -1;            ///< KvCachePool slot (slot pool only)
  /// This sequence's cache view, set at admission: the acquired slot's
  /// KvCache, or the paged sequence. The engine decodes through this.
  nn::KvSequenceView* kv = nullptr;
  PagedKvSeq* pseq = nullptr;   ///< paged pool only (owned by the pool)
  int64_t exit_layer_used = 0;  ///< resolved depth (n_layers for final/voted)
  int64_t position = 0;         ///< tokens cached so far
  size_t prompt_fed = 0;        ///< prompt tokens fed so far
  int64_t last_token = 0;       ///< token to feed next once the prompt is done
  std::vector<int64_t> out;     ///< generated tokens
  Rng rng{0};
  bool cancelled = false;
  bool resolved = false;        ///< promise already satisfied (watchdog path)
  std::string error;            ///< structured reason for non-kOk terminals
  int64_t admission_attempts = 0;  ///< failed transient KV acquires so far
  std::chrono::steady_clock::time_point retry_after{};  ///< backoff gate
  int64_t kv_bytes_at_end = 0;  ///< cache bytes sampled just before release
  /// kSpeculative only: resolved draft exit depth and verify width, fixed at
  /// submit() (0 otherwise). Degradation switches policy to kFixedEarly, at
  /// which point these are simply ignored.
  int64_t spec_depth = 0;
  int64_t spec_k = 0;
  int64_t spec_drafted = 0;   ///< drafts proposed across all rounds
  int64_t spec_accepted = 0;  ///< drafts confirmed by full-depth verify
  std::chrono::steady_clock::time_point submit_t, admit_t, first_token_t;
  bool has_first_token = false;

  bool prompt_done() const { return prompt_fed >= req.prompt.size(); }
  /// The token this sequence feeds at the next tick.
  int64_t next_token() const {
    return prompt_done() ? last_token : req.prompt[prompt_fed];
  }
};

/// The exit depths the degradation ladder downgrades to, resolved once by
/// the engine from the model's registered exits. Level 1 = deepest early
/// exit (mild accuracy trade), level 2 = shallowest (survival floor). Both
/// 0 when the model registers no exit below its final layer — then the
/// ladder is a no-op.
struct DegradeLadder {
  int64_t deep = 0;
  int64_t shallow = 0;
  int64_t depth(int level) const {
    if (level >= 2 && shallow > 0) return shallow;
    return deep;
  }
};

struct SchedulerConfig {
  int64_t max_batch = 8;        ///< max concurrently decoding sequences
  int64_t queue_capacity = 64;  ///< bounded admission queue
  int64_t max_seq = 0;          ///< model context window
  int64_t n_layers = 0;         ///< model depth
  /// Bounded retry for *transient* KV admission failures (byte budget,
  /// injected faults): after this many failed attempts the head request is
  /// shed with a structured reason instead of wedging the queue. 0 keeps
  /// the pre-resilience behavior: retry forever, FIFO order preserved.
  int64_t max_admission_retries = 0;
  /// Backoff between admission attempts, doubling per failure (capped at
  /// 64x). 0 retries at every staging scan.
  double retry_backoff_ms = 0.0;
  /// After this many consecutive byte-budget rejections, the head request
  /// is forced down the degradation ladder to its floor and retried with
  /// the smaller reservation. This is what makes the engine's floor-depth
  /// can-this-ever-fit check at submit() sound: a request admitted because
  /// it fits *degraded* is guaranteed to eventually be degraded, instead
  /// of wedging the queue at a depth that never fits. 0 disables (then the
  /// engine must project admission at the request's full asked depth).
  int64_t degrade_budget_retries = 0;
  /// Serve-path fault injection (null = none): can fail KV acquires.
  runtime::ServeFaultInjector* fault = nullptr;
};

class Scheduler {
 public:
  /// What one staging scan did. The engine resolves the moved-out states.
  struct AdmitResult {
    std::vector<std::unique_ptr<SeqState>> expired;  ///< deadline passed while queued
    std::vector<std::unique_ptr<SeqState>> shed;     ///< retry budget exhausted (error set)
    int64_t admitted = 0;
    int64_t degraded = 0;  ///< requests downgraded at this scan
    int64_t retries = 0;   ///< failed transient admission attempts at this scan
  };

  Scheduler(SchedulerConfig cfg, KvPoolConfig pool_cfg);

  /// Queues a request. Moves from `s` and returns true, or returns false
  /// (queue full) leaving `s` untouched so the caller can reject it.
  bool enqueue(std::unique_ptr<SeqState>& s);

  /// One staging scan: retires deadline-expired queued requests, then
  /// admits in FIFO order while batch slots and the KV byte budget allow,
  /// applying `degrade_level` (and per-request force_degrade) through the
  /// ladder before reserving bytes. Head-of-line order is preserved: if the
  /// head does not fit, nothing behind it jumps the queue — but a head that
  /// exhausts its bounded retries is shed so it cannot wedge the queue
  /// forever.
  AdmitResult admit(int degrade_level, const DegradeLadder& ladder,
                    std::chrono::steady_clock::time_point now);

  /// Removes and returns the queued request with the numerically largest
  /// priority value strictly greater than `than_priority` (i.e. strictly
  /// less important), preferring the most recently enqueued among ties.
  /// Returns nullptr when no such victim exists.
  std::unique_ptr<SeqState> evict_lower_priority(int64_t than_priority);

  /// Cancels a request by id. Queued: removed and returned for immediate
  /// resolution. Active: flagged; the engine resolves it at the next
  /// barrier. Returns nullptr + sets `found` accordingly.
  std::unique_ptr<SeqState> cancel(int64_t id, bool* found);

  /// Removes an active sequence (slot released) and returns its state for
  /// completion. `reuse` donates the sequence's cached rows to the paged
  /// pool's prefix cache — pass true only for terminals whose cache
  /// contents are trusted (completed/cancelled/timed-out at a barrier),
  /// never for a sequence retired after a decode failure: its appends may
  /// be torn mid-layer and must be recycled, not shared (the slot pool
  /// drops storage either way).
  std::unique_ptr<SeqState> finish(size_t active_index, bool reuse);

  /// Earliest retry_after among queued requests still in backoff, or the
  /// epoch when none are — the engine uses it to sleep exactly until the
  /// next admission attempt is due instead of polling.
  std::chrono::steady_clock::time_point next_retry_time() const;

  /// Watchdog failure path: applies `fn` to every queued and active
  /// sequence so the engine can resolve their promises in place. Ownership
  /// and slots are untouched — a wedged decode may still be writing into
  /// active caches.
  void for_each_pending(const std::function<void(SeqState&)>& fn);

  /// Failed-stop cleanup, called once the wedged decode has returned:
  /// releases every active slot and destroys all queued/active state.
  /// Every promise must already be resolved (see for_each_pending).
  void clear_failed();

  std::vector<std::unique_ptr<SeqState>>& active() { return active_; }
  /// The slot pool — asserts when the scheduler was configured paged (use
  /// the kv_* facade below, which works for both backings).
  KvCachePool& pool();
  const KvCachePool& pool() const;
  bool paged() const { return paged_pool_ != nullptr; }
  PagedKvPool* paged_pool() { return paged_pool_.get(); }
  const PagedKvPool* paged_pool() const { return paged_pool_.get(); }

  // Pool-agnostic KV accounting facade (mutex-guarded in the pools; safe
  // from any thread).
  int64_t kv_committed_bytes() const;
  int64_t kv_bytes_in_use() const;
  int64_t kv_high_water_bytes() const;
  int64_t kv_byte_budget() const;
  int64_t kv_projected_bytes(int64_t positions, int64_t n_layers) const;
  /// Tick-barrier accounting refresh (see KvCachePool::sync_live_bytes).
  int64_t kv_sync_live_bytes();

  size_t queued() const { return queue_.size(); }
  bool idle() const { return active_.empty() && queue_.empty(); }
  const SchedulerConfig& config() const { return cfg_; }

 private:
  /// Applies the ladder to one request; returns true when this call
  /// downgraded it (first transition only).
  static bool apply_degrade(SeqState& s, int level, const DegradeLadder& ladder);

  /// Paged release: hand the cached rows back with the token ids they hold
  /// (`reuse` donates them to the prefix cache).
  void release_paged(SeqState& s, bool reuse);

  SchedulerConfig cfg_;
  std::unique_ptr<KvCachePool> slot_pool_;
  std::unique_ptr<PagedKvPool> paged_pool_;
  std::deque<std::unique_ptr<SeqState>> queue_;
  std::vector<std::unique_ptr<SeqState>> active_;
};

}  // namespace edgellm::serve
