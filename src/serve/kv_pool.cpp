#include "serve/kv_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

KvCachePool::KvCachePool(KvPoolConfig cfg) : cfg_(cfg) {
  check_arg(cfg_.n_slots > 0, "KvCachePool: n_slots must be positive");
  check_arg(cfg_.kv_dim > 0, "KvCachePool: kv_dim must be positive");
  check_arg(cfg_.byte_budget >= 0, "KvCachePool: byte_budget must be >= 0");
  slots_.resize(static_cast<size_t>(cfg_.n_slots));
  in_use_.assign(static_cast<size_t>(cfg_.n_slots), false);
  reserved_.assign(static_cast<size_t>(cfg_.n_slots), 0);
  live_bytes_.assign(static_cast<size_t>(cfg_.n_slots), 0);
  if (cfg_.registry != nullptr) {
    c_acquired_ = &cfg_.registry->counter("kv/acquired");
    c_rejected_ = &cfg_.registry->counter("kv/rejected");
    c_released_ = &cfg_.registry->counter("kv/released");
    g_bytes_ = &cfg_.registry->gauge("kv/bytes_in_use");
    g_committed_ = &cfg_.registry->gauge("kv/committed_bytes");
    g_high_water_ = &cfg_.registry->gauge("kv/high_water_bytes");
  }
}

const char* to_string(KvAdmitReason r) {
  switch (r) {
    case KvAdmitReason::kOk: return "ok";
    case KvAdmitReason::kByteBudget: return "kv: byte budget exceeded";
    case KvAdmitReason::kSlotsExhausted: return "kv: slots exhausted";
  }
  return "unknown";
}

int64_t KvCachePool::acquire(int64_t projected_positions, int64_t n_layers,
                             KvAdmitReason* reason) {
  check_arg(projected_positions > 0 && n_layers > 0,
            "KvCachePool::acquire: positions and layers must be positive");
  const int64_t projected = projected_bytes(projected_positions, n_layers);
  if (reason != nullptr) *reason = KvAdmitReason::kOk;
  std::lock_guard<std::mutex> lk(mu_);
  if (cfg_.byte_budget > 0 && committed_ + projected > cfg_.byte_budget) {
    if (c_rejected_ != nullptr) c_rejected_->add();
    if (reason != nullptr) *reason = KvAdmitReason::kByteBudget;
    return -1;
  }
  for (int64_t i = 0; i < cfg_.n_slots; ++i) {
    if (in_use_[static_cast<size_t>(i)]) continue;
    in_use_[static_cast<size_t>(i)] = true;
    reserved_[static_cast<size_t>(i)] = projected;
    committed_ += projected;
    ++in_use_count_;
    slots_[static_cast<size_t>(i)].configure(n_layers, cfg_.kv_dim, cfg_.quantize);
    if (c_acquired_ != nullptr) c_acquired_->add();
    if (g_committed_ != nullptr) g_committed_->set(committed_);
    return i;
  }
  if (c_rejected_ != nullptr) c_rejected_->add();
  if (reason != nullptr) *reason = KvAdmitReason::kSlotsExhausted;
  return -1;
}

void KvCachePool::release(int64_t slot) {
  check_arg(slot >= 0 && slot < cfg_.n_slots, "KvCachePool::release: slot out of range");
  const size_t s = static_cast<size_t>(slot);
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(in_use_[s], "KvCachePool::release: slot is not in use");
  in_use_[s] = false;
  committed_ -= reserved_[s];
  reserved_[s] = 0;
  // A slot can grow and die entirely between two sync_live_bytes() barriers,
  // leaving live_bytes_[s] stale (or zero). Settle its final footprint into
  // the totals before dropping it so bytes_in_use() never under-reports
  // between a release and the next barrier and the high-water mark sees
  // short-lived slots. Reading the slot's contents here is legal: release
  // runs on the scheduler thread at a tick barrier (see header).
  const int64_t final_bytes = slots_[s].bytes();
  live_total_ += final_bytes - live_bytes_[s];
  high_water_ = std::max(high_water_, live_total_);
  live_total_ -= final_bytes;
  live_bytes_[s] = 0;
  --in_use_count_;
  // Drop the storage now: a released slot must not count against the
  // device's memory until re-acquired.
  slots_[s] = nn::KvCache();
  if (c_released_ != nullptr) c_released_->add();
  if (g_bytes_ != nullptr) g_bytes_->set(live_total_);
  if (g_committed_ != nullptr) g_committed_->set(committed_);
  if (g_high_water_ != nullptr) g_high_water_->set(high_water_);
}

nn::KvCache& KvCachePool::slot(int64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(id >= 0 && id < cfg_.n_slots && in_use_[static_cast<size_t>(id)],
            "KvCachePool::slot: not an acquired slot");
  // The reference stays valid after unlocking: slots_ is sized once at
  // construction and an acquired slot is owned by its caller until release.
  return slots_[static_cast<size_t>(id)];
}

const nn::KvCache& KvCachePool::slot(int64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(id >= 0 && id < cfg_.n_slots && in_use_[static_cast<size_t>(id)],
            "KvCachePool::slot: not an acquired slot");
  return slots_[static_cast<size_t>(id)];
}

int64_t KvCachePool::sync_live_bytes() {
  // Reads slot contents: legal only on the owning scheduler thread at a
  // tick barrier, when no worker can be appending (see header).
  std::lock_guard<std::mutex> lk(mu_);
  int64_t total = 0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    live_bytes_[s] = in_use_[s] ? slots_[s].bytes() : 0;
    total += live_bytes_[s];
  }
  live_total_ = total;
  high_water_ = std::max(high_water_, total);
  if (g_bytes_ != nullptr) g_bytes_->set(live_total_);
  if (g_high_water_ != nullptr) g_high_water_->set(high_water_);
  return total;
}

int64_t KvCachePool::bytes_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_total_;
}

int64_t KvCachePool::committed_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return committed_;
}

int64_t KvCachePool::high_water_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_water_;
}

int64_t KvCachePool::slots_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_use_count_;
}

// --- Paged pool -------------------------------------------------------------

/// One cached prefix block-chunk. A node at depth d (d = blocks.size()
/// layers) caches block_tokens positions of K/V for the token chunk
/// `tokens`, continuing its parent's prefix. refs counts live sequences
/// reading through this node; refs == 0 leaves are LRU-evictable.
struct PagedKvPool::TrieNode {
  TrieNode* parent = nullptr;
  std::vector<int64_t> tokens;   ///< this block's token ids (key in parent->children)
  std::vector<KvBlock*> blocks;  ///< one per layer
  int64_t refs = 0;
  uint64_t last_use = 0;
  bool evictable = false;  ///< currently indexed in evictable_ at last_use
  std::map<std::vector<int64_t>, std::unique_ptr<TrieNode>> children;
};

namespace {

/// Identical arithmetic to KvCache::append_quantized — the bitwise
/// determinism contract between paged and contiguous storage depends on it.
void quantize_row(const float* row, int64_t kv_dim, int8_t* out, float* scale_out) {
  float maxabs = 0.0f;
  for (int64_t d = 0; d < kv_dim; ++d) maxabs = std::max(maxabs, std::fabs(row[d]));
  const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  *scale_out = scale;
  for (int64_t d = 0; d < kv_dim; ++d) {
    out[d] = static_cast<int8_t>(std::clamp(std::round(row[d] / scale), -127.0f, 127.0f));
  }
}

void dequantize_row(const int8_t* row, float scale, int64_t kv_dim, float* out) {
  for (int64_t d = 0; d < kv_dim; ++d) out[d] = static_cast<float>(row[d]) * scale;
}

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

// --- PagedKvSeq -------------------------------------------------------------

void PagedKvSeq::append(int64_t layer, const float* k, const float* v) {
  check_arg(layer >= 0 && layer < depth_, "PagedKvSeq::append: layer out of range");
  const size_t li = static_cast<size_t>(layer);
  const int64_t pos = len_[li];
  const int64_t bi = pos / block_tokens_;
  const int64_t off = pos % block_tokens_;
  auto& row = table_[li];
  if (bi < owned_from_[li]) {
    // Appending into a partially-consumed shared block: fork it. The shared
    // block stays read-only for its other readers; rows [0, off) are copied
    // (quantized payload and scales verbatim, so dequantisation stays
    // bitwise identical) into a private block that takes its table entry.
    KvBlock* shared = row[static_cast<size_t>(bi)];
    KvBlock* own = pool_->allocate_block(this);
    if (quantize_) {
      std::memcpy(own->kq.data(), shared->kq.data(), static_cast<size_t>(off * kv_dim_));
      std::memcpy(own->vq.data(), shared->vq.data(), static_cast<size_t>(off * kv_dim_));
      std::memcpy(own->k_scales.data(), shared->k_scales.data(),
                  static_cast<size_t>(off) * sizeof(float));
      std::memcpy(own->v_scales.data(), shared->v_scales.data(),
                  static_cast<size_t>(off) * sizeof(float));
    } else {
      std::memcpy(own->k.data(), shared->k.data(),
                  static_cast<size_t>(off * kv_dim_) * sizeof(float));
      std::memcpy(own->v.data(), shared->v.data(),
                  static_cast<size_t>(off * kv_dim_) * sizeof(float));
    }
    row[static_cast<size_t>(bi)] = own;
    owned_from_[li] = bi;
    ++cow_forks_;
    pool_->count_cow_fork();
  } else if (bi == static_cast<int64_t>(row.size())) {
    row.push_back(pool_->allocate_block(this));
  }
  KvBlock* blk = row[static_cast<size_t>(bi)];
  if (quantize_) {
    quantize_row(k, kv_dim_, blk->kq.data() + off * kv_dim_,
                 blk->k_scales.data() + off);
    quantize_row(v, kv_dim_, blk->vq.data() + off * kv_dim_,
                 blk->v_scales.data() + off);
  } else {
    std::memcpy(blk->k.data() + off * kv_dim_, k,
                static_cast<size_t>(kv_dim_) * sizeof(float));
    std::memcpy(blk->v.data() + off * kv_dim_, v,
                static_cast<size_t>(kv_dim_) * sizeof(float));
  }
  ++len_[li];
}

void PagedKvSeq::load_k(int64_t layer, int64_t pos, float* out) const {
  const size_t li = static_cast<size_t>(layer);
  const KvBlock* blk = table_[li][static_cast<size_t>(pos / block_tokens_)];
  const int64_t off = pos % block_tokens_;
  if (quantize_) {
    dequantize_row(blk->kq.data() + off * kv_dim_, blk->k_scales[static_cast<size_t>(off)],
                   kv_dim_, out);
  } else {
    std::memcpy(out, blk->k.data() + off * kv_dim_,
                static_cast<size_t>(kv_dim_) * sizeof(float));
  }
}

void PagedKvSeq::load_v(int64_t layer, int64_t pos, float* out) const {
  const size_t li = static_cast<size_t>(layer);
  const KvBlock* blk = table_[li][static_cast<size_t>(pos / block_tokens_)];
  const int64_t off = pos % block_tokens_;
  if (quantize_) {
    dequantize_row(blk->vq.data() + off * kv_dim_, blk->v_scales[static_cast<size_t>(off)],
                   kv_dim_, out);
  } else {
    std::memcpy(out, blk->v.data() + off * kv_dim_,
                static_cast<size_t>(kv_dim_) * sizeof(float));
  }
}

const float* PagedKvSeq::k_row(int64_t layer, int64_t pos) const {
  if (quantize_) return nullptr;
  const KvBlock* blk = table_[static_cast<size_t>(layer)][static_cast<size_t>(pos / block_tokens_)];
  return blk->k.data() + (pos % block_tokens_) * kv_dim_;
}

const float* PagedKvSeq::v_row(int64_t layer, int64_t pos) const {
  if (quantize_) return nullptr;
  const KvBlock* blk = table_[static_cast<size_t>(layer)][static_cast<size_t>(pos / block_tokens_)];
  return blk->v.data() + (pos % block_tokens_) * kv_dim_;
}

void PagedKvSeq::truncate(int64_t n) {
  check_arg(n >= 0, "PagedKvSeq::truncate: n must be >= 0");
  pool_->truncate_seq(this, n);
}

int64_t PagedKvSeq::positions(int64_t layer) const {
  check_arg(layer >= 0 && layer < depth_, "PagedKvSeq::positions: layer out of range");
  return len_[static_cast<size_t>(layer)];
}

int64_t PagedKvSeq::bytes() const {
  int64_t owned = 0;
  for (size_t l = 0; l < table_.size(); ++l) {
    owned += static_cast<int64_t>(table_[l].size()) - owned_from_[l];
  }
  return owned * pool_->block_bytes();
}

// --- PagedKvPool ------------------------------------------------------------

PagedKvPool::PagedKvPool(PagedKvConfig cfg) : cfg_(cfg) {
  check_arg(cfg_.block_tokens > 0, "PagedKvPool: block_tokens must be positive");
  check_arg(cfg_.n_layers > 0, "PagedKvPool: n_layers must be positive");
  check_arg(cfg_.kv_dim > 0, "PagedKvPool: kv_dim must be positive");
  check_arg(cfg_.byte_budget >= 0, "PagedKvPool: byte_budget must be >= 0");
  check_arg(cfg_.byte_budget == 0 || cfg_.byte_budget >= block_bytes(),
            "PagedKvPool: byte_budget smaller than one block");
  root_ = std::make_unique<TrieNode>();
  if (cfg_.registry != nullptr) {
    c_acquired_ = &cfg_.registry->counter("kv/acquired");
    c_rejected_ = &cfg_.registry->counter("kv/rejected");
    c_released_ = &cfg_.registry->counter("kv/released");
    c_prefix_hit_ = &cfg_.registry->counter("kv/prefix_hit");
    c_prefix_miss_ = &cfg_.registry->counter("kv/prefix_miss");
    c_prefix_hit_tokens_ = &cfg_.registry->counter("kv/prefix_hit_tokens");
    c_evicted_blocks_ = &cfg_.registry->counter("kv/evicted_blocks");
    c_cow_forks_ = &cfg_.registry->counter("kv/cow_forks");
    g_bytes_ = &cfg_.registry->gauge("kv/bytes_in_use");
    g_committed_ = &cfg_.registry->gauge("kv/committed_bytes");
    g_high_water_ = &cfg_.registry->gauge("kv/high_water_bytes");
    g_blocks_ = &cfg_.registry->gauge("kv/blocks_in_use");
    g_blocks_cached_ = &cfg_.registry->gauge("kv/blocks_cached");
  }
}

PagedKvPool::~PagedKvPool() = default;

int64_t PagedKvPool::block_bytes() const {
  return cfg_.block_tokens * nn::KvCache::bytes_per_position(1, cfg_.kv_dim, cfg_.quantize);
}

int64_t PagedKvPool::projected_bytes(int64_t positions, int64_t n_layers) const {
  return ceil_div(positions, cfg_.block_tokens) * n_layers * block_bytes();
}

void PagedKvPool::count_cow_fork() {
  if (c_cow_forks_ != nullptr) c_cow_forks_->add();
}

int64_t PagedKvPool::node_bytes_locked(const TrieNode& n) const {
  return static_cast<int64_t>(n.blocks.size()) * block_bytes();
}

void PagedKvPool::touch_locked(TrieNode* n) {
  if (n->evictable) evictable_.erase(n->last_use);
  n->last_use = ++lru_clock_;
  if (n->evictable) evictable_.emplace(n->last_use, n);
}

void PagedKvPool::sync_evictable_locked(TrieNode* n) {
  const bool want = n != root_.get() && n->children.empty() && n->refs == 0;
  if (want == n->evictable) return;
  if (want) {
    evictable_.emplace(n->last_use, n);
  } else {
    evictable_.erase(n->last_use);
  }
  n->evictable = want;
}

PagedKvPool::TrieNode* PagedKvPool::pin_locked(TrieNode* n) {
  if (n->refs++ == 0) {
    pinned_bytes_ += node_bytes_locked(*n);
    sync_evictable_locked(n);
  }
  touch_locked(n);
  return n;
}

void PagedKvPool::unpin_locked(TrieNode* n) {
  if (--n->refs == 0) {
    pinned_bytes_ -= node_bytes_locked(*n);
    sync_evictable_locked(n);
  }
}

void PagedKvPool::recycle_block_locked(KvBlock* b) {
  free_.push_back(b);
  --allocated_blocks_;
}

bool PagedKvPool::evict_one_locked() {
  // LRU leaf with no live readers — the head of the evictable index, so
  // eviction never re-walks the trie while workers wait on the pool mutex.
  // Interior nodes join the index as their last child goes, so repeated
  // calls peel a dead subtree bottom-up; a node whose descendant is pinned
  // is never a leaf and survives.
  if (evictable_.empty()) return false;
  TrieNode* best = evictable_.begin()->second;
  evictable_.erase(evictable_.begin());
  best->evictable = false;
  const int64_t d = static_cast<int64_t>(best->blocks.size());
  for (KvBlock* b : best->blocks) recycle_block_locked(b);
  cached_blocks_ -= d;
  if (c_evicted_blocks_ != nullptr) c_evicted_blocks_->add(d);
  TrieNode* parent = best->parent;
  parent->children.erase(best->tokens);  // destroys best
  sync_evictable_locked(parent);
  return true;
}

KvBlock* PagedKvPool::allocate_block_locked() {
  const int64_t bb = block_bytes();
  if (cfg_.byte_budget > 0) {
    while ((allocated_blocks_ + 1) * bb > cfg_.byte_budget && evict_one_locked()) {
    }
    // Admission reserved every live sequence's worst-case incremental blocks
    // and counted pinned shared blocks, so once the evictable cache is gone
    // the budget must fit — anything else is an accounting bug, not a
    // recoverable condition.
    check_arg((allocated_blocks_ + 1) * bb <= cfg_.byte_budget,
              "PagedKvPool: block allocation exceeded the byte budget (reservation bug)");
  }
  KvBlock* b = nullptr;
  if (!free_.empty()) {
    b = free_.back();
    free_.pop_back();
  } else {
    auto fresh = std::make_unique<KvBlock>();
    const size_t payload = static_cast<size_t>(cfg_.block_tokens * cfg_.kv_dim);
    const size_t rows = static_cast<size_t>(cfg_.block_tokens);
    if (cfg_.quantize) {
      fresh->kq.resize(payload);
      fresh->vq.resize(payload);
      fresh->k_scales.resize(rows);
      fresh->v_scales.resize(rows);
    } else {
      fresh->k.resize(payload);
      fresh->v.resize(payload);
    }
    b = fresh.get();
    blocks_.push_back(std::move(fresh));
  }
  ++allocated_blocks_;
  high_water_ = std::max(high_water_, allocated_blocks_ * bb);
  return b;
}

KvBlock* PagedKvPool::allocate_block(PagedKvSeq* seq) {
  (void)seq;  // reservation made at acquire; the seq identity is not needed
  std::lock_guard<std::mutex> lk(mu_);
  KvBlock* b = allocate_block_locked();
  update_gauges_locked();
  return b;
}

void PagedKvPool::truncate_seq(PagedKvSeq* seq, int64_t n) {
  const int64_t bt = cfg_.block_tokens;
  std::lock_guard<std::mutex> lk(mu_);
  bool changed = false;
  for (size_t li = 0; li < seq->table_.size(); ++li) {
    const int64_t new_len = std::min(seq->len_[li], n);
    seq->len_[li] = new_len;
    const int64_t keep = ceil_div(new_len, bt);
    auto& row = seq->table_[li];
    for (int64_t bi = keep; bi < static_cast<int64_t>(row.size()); ++bi) {
      // Owned blocks past the new tail go back to the free list. Shared
      // columns are the trie's, not ours (this sequence holds pins, not
      // ownership): their pointers are simply dropped from the table, and
      // the pins keep the nodes resident until release. A later append
      // into the shared region copy-on-write forks exactly like a partial
      // prefix match — clamping owned_from_ below keeps every entry
      // < owned_from_ shared, so the fork can never scribble on a trie
      // block. Note: truncating below shared_len() may let the sequence
      // re-append those positions as owned blocks beyond its incremental
      // reservation; the engine never does (it only rewinds drafted
      // positions, always past the prompt), so only budget-unlimited
      // callers may cross it.
      if (bi >= seq->owned_from_[li]) {
        recycle_block_locked(row[static_cast<size_t>(bi)]);
        changed = true;
      }
    }
    if (static_cast<int64_t>(row.size()) > keep) {
      row.resize(static_cast<size_t>(keep));
      changed = true;
    }
    seq->owned_from_[li] = std::min(seq->owned_from_[li], keep);
  }
  if (changed) update_gauges_locked();
}

PagedKvPool::AcquireResult PagedKvPool::acquire(const std::vector<int64_t>& prompt,
                                                int64_t projected_positions,
                                                int64_t n_layers) {
  check_arg(projected_positions > 0 && n_layers > 0 && n_layers <= cfg_.n_layers,
            "PagedKvPool::acquire: bad positions/layers");
  check_arg(static_cast<int64_t>(prompt.size()) <= projected_positions,
            "PagedKvPool::acquire: projection smaller than the prompt");
  AcquireResult res;
  const int64_t bt = cfg_.block_tokens;
  const int64_t bb = block_bytes();
  std::lock_guard<std::mutex> lk(mu_);

  // Prefix match. Full-block descent first, then the longest in-block
  // agreement among the next children (served up to the divergence point,
  // copy-on-write on first append). Reuse never covers the last prompt
  // token — it must decode so the request's first sampled logits exist —
  // and only nodes at least n_layers deep can serve this sequence.
  const int64_t usable = static_cast<int64_t>(prompt.size()) - 1;
  std::vector<TrieNode*> path;
  TrieNode* node = root_.get();
  int64_t matched = 0;
  while (matched + bt <= usable) {
    std::vector<int64_t> chunk(prompt.begin() + matched, prompt.begin() + matched + bt);
    auto it = node->children.find(chunk);
    if (it == node->children.end()) break;
    if (static_cast<int64_t>(it->second->blocks.size()) < n_layers) break;
    node = it->second.get();
    path.push_back(node);
    matched += bt;
  }
  TrieNode* partial = nullptr;
  int64_t partial_len = 0;
  for (auto& [key, child] : node->children) {
    if (static_cast<int64_t>(child->blocks.size()) < n_layers) continue;
    int64_t agree = 0;
    while (agree < bt && matched + agree < usable &&
           key[static_cast<size_t>(agree)] == prompt[static_cast<size_t>(matched + agree)]) {
      ++agree;
    }
    if (agree > partial_len) {
      partial_len = agree;
      partial = child.get();
    }
  }
  const int64_t prefix_tokens = matched + partial_len;

  // Admission: reserve worst-case *incremental* blocks (total projected
  // minus fully shared — a partially shared block still needs an owned
  // copy-on-write replacement), and account shared blocks this request
  // newly pins so a later admission cannot strand an allocation.
  int64_t pin_delta = 0;
  for (TrieNode* p : path) {
    if (p->refs == 0) pin_delta += node_bytes_locked(*p);
  }
  if (partial != nullptr && partial->refs == 0) pin_delta += node_bytes_locked(*partial);
  const int64_t owned_per_layer = ceil_div(projected_positions, bt) -
                                  static_cast<int64_t>(path.size());
  const int64_t reserve = owned_per_layer * n_layers * bb;
  if (cfg_.byte_budget > 0 &&
      committed_ + pinned_bytes_ + pin_delta + reserve > cfg_.byte_budget) {
    if (c_rejected_ != nullptr) c_rejected_->add();
    res.reason = KvAdmitReason::kByteBudget;
    return res;
  }

  auto seq = std::unique_ptr<PagedKvSeq>(new PagedKvSeq());
  seq->pool_ = this;
  seq->depth_ = n_layers;
  seq->kv_dim_ = cfg_.kv_dim;
  seq->block_tokens_ = bt;
  seq->quantize_ = cfg_.quantize;
  seq->shared_len_ = prefix_tokens;
  seq->reserved_bytes_ = reserve;
  const int64_t shared_entries = static_cast<int64_t>(path.size()) + (partial != nullptr ? 1 : 0);
  seq->table_.resize(static_cast<size_t>(n_layers));
  seq->owned_from_.assign(static_cast<size_t>(n_layers), shared_entries);
  seq->len_.assign(static_cast<size_t>(n_layers), prefix_tokens);
  for (int64_t l = 0; l < n_layers; ++l) {
    auto& row = seq->table_[static_cast<size_t>(l)];
    for (TrieNode* p : path) row.push_back(p->blocks[static_cast<size_t>(l)]);
    if (partial != nullptr) row.push_back(partial->blocks[static_cast<size_t>(l)]);
  }
  for (TrieNode* p : path) seq->pins_.push_back(pin_locked(p));
  if (partial != nullptr) seq->pins_.push_back(pin_locked(partial));
  committed_ += reserve;

  if (c_acquired_ != nullptr) c_acquired_->add();
  if (prefix_tokens > 0) {
    if (c_prefix_hit_ != nullptr) c_prefix_hit_->add();
    if (c_prefix_hit_tokens_ != nullptr) c_prefix_hit_tokens_->add(prefix_tokens);
  } else if (c_prefix_miss_ != nullptr) {
    c_prefix_miss_->add();
  }
  update_gauges_locked();

  res.seq = seq.get();
  res.prefix_tokens = prefix_tokens;
  live_[res.seq] = std::move(seq);
  return res;
}

void PagedKvPool::release(PagedKvSeq* seq, const std::vector<int64_t>& tokens, bool reuse) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = live_.find(seq);
  check_arg(it != live_.end(), "PagedKvPool::release: not a live sequence");
  for (void* p : seq->pins_) unpin_locked(static_cast<TrieNode*>(p));
  seq->pins_.clear();
  committed_ -= seq->reserved_bytes_;

  const int64_t bt = cfg_.block_tokens;
  const int64_t depth = seq->depth_;
  const int64_t cached_pos = seq->len_.empty() ? 0 : seq->len_[0];
  check_arg(!reuse || static_cast<int64_t>(tokens.size()) >= cached_pos,
            "PagedKvPool::release: token list shorter than cached positions");
  const int64_t n_full = reuse ? cached_pos / bt : 0;
  // Column count: the max across layers, not layer 0's. A failed decode
  // (reuse=false) may have torn mid-tick, leaving some layers a block
  // ahead of others — every owned block must still be recycled.
  int64_t cols = 0;
  for (const auto& row : seq->table_) {
    cols = std::max<int64_t>(cols, static_cast<int64_t>(row.size()));
  }

  // Walk the sequence's block columns left to right. Full columns are
  // donated to the trie (transfer ownership) or, when the trie already has
  // that prefix, recycled as duplicates; a deeper column replaces an
  // unreferenced shallower cached node so depth coverage only grows. The
  // partial tail — and everything when the decode failed (reuse=false:
  // contents untrusted) — is recycled.
  TrieNode* cursor = root_.get();
  bool inserting = reuse;
  for (int64_t bi = 0; bi < cols; ++bi) {
    bool owned_all = true;
    for (size_t l = 0; l < seq->table_.size(); ++l) {
      owned_all = owned_all && bi >= seq->owned_from_[l];
    }
    if (inserting && bi < n_full) {
      std::vector<int64_t> chunk(tokens.begin() + bi * bt, tokens.begin() + (bi + 1) * bt);
      auto cit = cursor->children.find(chunk);
      if (cit != cursor->children.end()) {
        TrieNode* child = cit->second.get();
        if (owned_all && static_cast<int64_t>(child->blocks.size()) < depth &&
            child->refs == 0) {
          cached_blocks_ -= static_cast<int64_t>(child->blocks.size());
          for (KvBlock* b : child->blocks) recycle_block_locked(b);
          child->blocks.clear();
          for (int64_t l = 0; l < depth; ++l) {
            child->blocks.push_back(seq->table_[static_cast<size_t>(l)][static_cast<size_t>(bi)]);
          }
          cached_blocks_ += depth;
        } else if (owned_all) {
          for (int64_t l = 0; l < depth; ++l) {
            recycle_block_locked(seq->table_[static_cast<size_t>(l)][static_cast<size_t>(bi)]);
          }
        }
        touch_locked(child);
        cursor = child;
      } else if (owned_all) {
        auto fresh = std::make_unique<TrieNode>();
        fresh->parent = cursor;
        fresh->tokens = chunk;
        for (int64_t l = 0; l < depth; ++l) {
          fresh->blocks.push_back(seq->table_[static_cast<size_t>(l)][static_cast<size_t>(bi)]);
        }
        fresh->last_use = ++lru_clock_;
        cached_blocks_ += depth;
        TrieNode* raw = fresh.get();
        cursor->children[chunk] = std::move(fresh);
        sync_evictable_locked(cursor);  // gained a child: no longer a leaf
        cursor = raw;
        sync_evictable_locked(raw);  // unreferenced leaf until pinned/extended
      } else {
        // A shared column absent from the trie cannot happen (shared nodes
        // stay resident while we hold them); stop donating defensively.
        inserting = false;
      }
    } else {
      for (size_t l = 0; l < seq->table_.size(); ++l) {
        if (bi >= seq->owned_from_[l] &&
            bi < static_cast<int64_t>(seq->table_[l].size())) {
          recycle_block_locked(seq->table_[l][static_cast<size_t>(bi)]);
        }
      }
      inserting = false;
    }
  }

  if (c_released_ != nullptr) c_released_->add();
  live_.erase(it);
  update_gauges_locked();
}

void PagedKvPool::update_gauges_locked() {
  if (g_bytes_ != nullptr) g_bytes_->set(allocated_blocks_ * block_bytes());
  if (g_committed_ != nullptr) g_committed_->set(committed_ + pinned_bytes_);
  if (g_high_water_ != nullptr) g_high_water_->set(high_water_);
  if (g_blocks_ != nullptr) g_blocks_->set(allocated_blocks_);
  if (g_blocks_cached_ != nullptr) g_blocks_cached_->set(cached_blocks_);
}

int64_t PagedKvPool::committed_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return committed_ + pinned_bytes_;
}

int64_t PagedKvPool::bytes_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return allocated_blocks_ * block_bytes();
}

int64_t PagedKvPool::high_water_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_water_;
}

int64_t PagedKvPool::seqs_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int64_t>(live_.size());
}

int64_t PagedKvPool::allocated_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return allocated_blocks_;
}

int64_t PagedKvPool::cached_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cached_blocks_;
}

int64_t PagedKvPool::free_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int64_t>(free_.size());
}

int64_t PagedKvPool::total_blocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int64_t>(blocks_.size());
}

int64_t PagedKvPool::sync_live_bytes() {
  std::lock_guard<std::mutex> lk(mu_);
  update_gauges_locked();
  return allocated_blocks_ * block_bytes();
}

}  // namespace edgellm::serve
