#include "serve/kv_pool.hpp"

#include <algorithm>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

KvCachePool::KvCachePool(KvPoolConfig cfg) : cfg_(cfg) {
  check_arg(cfg_.n_slots > 0, "KvCachePool: n_slots must be positive");
  check_arg(cfg_.kv_dim > 0, "KvCachePool: kv_dim must be positive");
  check_arg(cfg_.byte_budget >= 0, "KvCachePool: byte_budget must be >= 0");
  slots_.resize(static_cast<size_t>(cfg_.n_slots));
  in_use_.assign(static_cast<size_t>(cfg_.n_slots), false);
  reserved_.assign(static_cast<size_t>(cfg_.n_slots), 0);
  live_bytes_.assign(static_cast<size_t>(cfg_.n_slots), 0);
  if (cfg_.registry != nullptr) {
    c_acquired_ = &cfg_.registry->counter("kv/acquired");
    c_rejected_ = &cfg_.registry->counter("kv/rejected");
    c_released_ = &cfg_.registry->counter("kv/released");
    g_bytes_ = &cfg_.registry->gauge("kv/bytes_in_use");
    g_committed_ = &cfg_.registry->gauge("kv/committed_bytes");
    g_high_water_ = &cfg_.registry->gauge("kv/high_water_bytes");
  }
}

const char* to_string(KvAdmitReason r) {
  switch (r) {
    case KvAdmitReason::kOk: return "ok";
    case KvAdmitReason::kByteBudget: return "kv: byte budget exceeded";
    case KvAdmitReason::kSlotsExhausted: return "kv: slots exhausted";
  }
  return "unknown";
}

int64_t KvCachePool::acquire(int64_t projected_positions, int64_t n_layers,
                             KvAdmitReason* reason) {
  check_arg(projected_positions > 0 && n_layers > 0,
            "KvCachePool::acquire: positions and layers must be positive");
  const int64_t projected = projected_bytes(projected_positions, n_layers);
  if (reason != nullptr) *reason = KvAdmitReason::kOk;
  std::lock_guard<std::mutex> lk(mu_);
  if (cfg_.byte_budget > 0 && committed_ + projected > cfg_.byte_budget) {
    if (c_rejected_ != nullptr) c_rejected_->add();
    if (reason != nullptr) *reason = KvAdmitReason::kByteBudget;
    return -1;
  }
  for (int64_t i = 0; i < cfg_.n_slots; ++i) {
    if (in_use_[static_cast<size_t>(i)]) continue;
    in_use_[static_cast<size_t>(i)] = true;
    reserved_[static_cast<size_t>(i)] = projected;
    committed_ += projected;
    ++in_use_count_;
    slots_[static_cast<size_t>(i)].configure(n_layers, cfg_.kv_dim, cfg_.quantize);
    if (c_acquired_ != nullptr) c_acquired_->add();
    if (g_committed_ != nullptr) g_committed_->set(committed_);
    return i;
  }
  if (c_rejected_ != nullptr) c_rejected_->add();
  if (reason != nullptr) *reason = KvAdmitReason::kSlotsExhausted;
  return -1;
}

void KvCachePool::release(int64_t slot) {
  check_arg(slot >= 0 && slot < cfg_.n_slots, "KvCachePool::release: slot out of range");
  const size_t s = static_cast<size_t>(slot);
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(in_use_[s], "KvCachePool::release: slot is not in use");
  in_use_[s] = false;
  committed_ -= reserved_[s];
  reserved_[s] = 0;
  live_total_ -= live_bytes_[s];
  live_bytes_[s] = 0;
  --in_use_count_;
  // Drop the storage now: a released slot must not count against the
  // device's memory until re-acquired.
  slots_[s] = nn::KvCache();
  if (c_released_ != nullptr) c_released_->add();
  if (g_bytes_ != nullptr) g_bytes_->set(live_total_);
  if (g_committed_ != nullptr) g_committed_->set(committed_);
}

nn::KvCache& KvCachePool::slot(int64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(id >= 0 && id < cfg_.n_slots && in_use_[static_cast<size_t>(id)],
            "KvCachePool::slot: not an acquired slot");
  // The reference stays valid after unlocking: slots_ is sized once at
  // construction and an acquired slot is owned by its caller until release.
  return slots_[static_cast<size_t>(id)];
}

const nn::KvCache& KvCachePool::slot(int64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  check_arg(id >= 0 && id < cfg_.n_slots && in_use_[static_cast<size_t>(id)],
            "KvCachePool::slot: not an acquired slot");
  return slots_[static_cast<size_t>(id)];
}

int64_t KvCachePool::sync_live_bytes() {
  // Reads slot contents: legal only on the owning scheduler thread at a
  // tick barrier, when no worker can be appending (see header).
  std::lock_guard<std::mutex> lk(mu_);
  int64_t total = 0;
  for (size_t s = 0; s < slots_.size(); ++s) {
    live_bytes_[s] = in_use_[s] ? slots_[s].bytes() : 0;
    total += live_bytes_[s];
  }
  live_total_ = total;
  high_water_ = std::max(high_water_, total);
  if (g_bytes_ != nullptr) g_bytes_->set(live_total_);
  if (g_high_water_ != nullptr) g_high_water_->set(high_water_);
  return total;
}

int64_t KvCachePool::bytes_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_total_;
}

int64_t KvCachePool::committed_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return committed_;
}

int64_t KvCachePool::high_water_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return high_water_;
}

int64_t KvCachePool::slots_in_use() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_use_count_;
}

}  // namespace edgellm::serve
