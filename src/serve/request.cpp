#include "serve/request.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "tensor/tensor.hpp"

namespace edgellm::serve {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kCancelled: return "cancelled";
    case RequestStatus::kTimeout: return "timeout";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(ExitPolicy p) {
  switch (p) {
    case ExitPolicy::kFinal: return "final";
    case ExitPolicy::kFixedEarly: return "fixed-early";
    case ExitPolicy::kVoted: return "voted";
    case ExitPolicy::kSpeculative: return "speculative";
  }
  return "unknown";
}

namespace {

// Minimal scanner for the flat request schema: an object of string keys
// mapping to numbers, strings, or arrays of numbers. Not a general JSON
// parser — hostile nesting is rejected, which is the right failure mode for
// a request socket.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& s) : s_(s) {}

  void expect(char c) {
    skip_ws();
    check_arg(pos_ < s_.size() && s_[pos_] == c,
              std::string("request JSON: expected '") + c + "' at offset " +
                  std::to_string(pos_) + " in: " + s_);
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      check_arg(s_[pos_] != '\\', "request JSON: escapes are not supported");
      out.push_back(s_[pos_++]);
    }
    expect('"');
    return out;
  }

  double number_value() {
    skip_ws();
    size_t end = pos_;
    while (end < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                               s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
                               s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    check_arg(end > pos_, "request JSON: expected a number at offset " + std::to_string(pos_));
    const double v = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::vector<int64_t> int_array() {
    expect('[');
    std::vector<int64_t> out;
    if (try_consume(']')) return out;
    do {
      out.push_back(static_cast<int64_t>(number_value()));
    } while (try_consume(','));
    expect(']');
    return out;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Request parse_request_json(const std::string& line) {
  JsonScanner sc(line);
  Request req;
  sc.expect('{');
  if (!sc.try_consume('}')) {
    do {
      const std::string key = sc.string_value();
      sc.expect(':');
      if (key == "id") {
        req.id = static_cast<int64_t>(sc.number_value());
      } else if (key == "prompt") {
        req.prompt = sc.int_array();
      } else if (key == "max_new_tokens") {
        req.max_new_tokens = static_cast<int64_t>(sc.number_value());
      } else if (key == "temperature") {
        req.temperature = static_cast<float>(sc.number_value());
      } else if (key == "top_k") {
        req.top_k = static_cast<int64_t>(sc.number_value());
      } else if (key == "seed") {
        req.seed = static_cast<uint64_t>(sc.number_value());
      } else if (key == "deadline_ms") {
        req.deadline_ms = sc.number_value();
      } else if (key == "tenant") {
        req.tenant = sc.string_value();
      } else if (key == "priority") {
        req.priority = static_cast<int64_t>(sc.number_value());
        check_arg(req.priority >= kPriorityHigh && req.priority <= kPriorityLow,
                  "request JSON: priority must be 0 (high), 1 (normal) or 2 (low)");
      } else if (key == "draft_depth") {
        req.draft_depth = static_cast<int64_t>(sc.number_value());
        check_arg(req.draft_depth >= 0, "request JSON: draft_depth must be >= 0");
      } else if (key == "draft_k") {
        req.draft_k = static_cast<int64_t>(sc.number_value());
        check_arg(req.draft_k >= 0, "request JSON: draft_k must be >= 0");
      } else if (key == "exit") {
        if (sc.peek_is('"')) {
          const std::string v = sc.string_value();
          if (v == "final") {
            req.exit_policy = ExitPolicy::kFinal;
          } else if (v == "voted") {
            req.exit_policy = ExitPolicy::kVoted;
          } else if (v == "speculative") {
            req.exit_policy = ExitPolicy::kSpeculative;
          } else {
            check_arg(false, "request JSON: exit must be \"final\", \"voted\", "
                             "\"speculative\", or a layer number, got \"" + v + "\"");
          }
        } else {
          req.exit_policy = ExitPolicy::kFixedEarly;
          req.exit_layer = static_cast<int64_t>(sc.number_value());
        }
      } else {
        check_arg(false, "request JSON: unknown key \"" + key + "\"");
      }
    } while (sc.try_consume(','));
    sc.expect('}');
  }
  check_arg(sc.at_end(), "request JSON: trailing characters after object");
  check_arg(!req.prompt.empty(), "request JSON: prompt must be a non-empty token array");
  return req;
}

namespace {

// Error reasons embed arbitrary text (tenant names, exception messages),
// so they must be escaped on the way out or the wire line stops being JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

}  // namespace

std::string completion_to_json(const Completion& c) {
  std::ostringstream os;
  os << "{\"id\": " << c.id << ", \"status\": \"" << to_string(c.status) << "\", \"tokens\": [";
  for (size_t i = 0; i < c.tokens.size(); ++i) {
    if (i) os << ", ";
    os << c.tokens[i];
  }
  os << "], \"queue_ms\": " << c.metrics.queue_wait_ms << ", \"ttft_ms\": " << c.metrics.ttft_ms
     << ", \"total_ms\": " << c.metrics.total_ms
     << ", \"tokens_per_s\": " << c.metrics.tokens_per_s
     << ", \"kv_bytes\": " << c.metrics.kv_bytes;
  if (c.metrics.spec_drafted > 0) {
    os << ", \"spec_drafted\": " << c.metrics.spec_drafted
       << ", \"spec_accepted\": " << c.metrics.spec_accepted;
  }
  if (c.degraded) os << ", \"degraded\": true, \"exit_layer\": " << c.exit_layer_used;
  if (!c.error.empty()) os << ", \"error\": \"" << json_escape(c.error) << "\"";
  os << "}";
  return os.str();
}

}  // namespace edgellm::serve
