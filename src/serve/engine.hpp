// The serving engine: a multi-threaded, continuously-batched generation
// runtime over one CausalLm.
//
//   - submit() is thread-safe and non-blocking: the request enters a
//     bounded admission queue (or is rejected when full) and resolves a
//     std::future<Completion> when done.
//   - A scheduler thread runs the continuous-batching loop: at every token
//     boundary it admits queued requests into free batch slots (subject to
//     the KV pool's byte budget), advances all active sequences by one
//     token, samples, and retires finished/cancelled/expired sequences so
//     their slots free immediately.
//   - Decode work is sharded across worker threads; each worker advances a
//     contiguous sub-batch with nn::batched_decode_step (stacked matmuls),
//     so batching pays off even single-core and scales with cores.
//   - Exit policies per request: final exit, a fixed early exit (cheap
//     decode), or voted — every exit head's logits combined per token via
//     core::voting, the paper's accuracy-recovery mechanism at serve time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "core/voting.hpp"
#include "nn/decoder.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/scheduler.hpp"

namespace edgellm::serve {

struct EngineConfig {
  int64_t max_batch = 8;        ///< max concurrently decoding sequences
  int64_t queue_capacity = 64;  ///< bounded admission queue
  int64_t threads = 2;          ///< decode worker threads (1 = in-loop decode)
  /// Compute threads for the deterministic tensor backend inside each
  /// decode tick (tensor/parallel.hpp): parallel matmul rows and
  /// per-sequence attention. 0 leaves the process-global setting alone.
  /// Orthogonal to `threads` (which shards the batch): completions are
  /// bitwise identical at any value of either. Throughput note: the
  /// backend runs one fan-out at a time, so with `threads > 1` the
  /// workers' kernels take turns on the shared pool — prefer
  /// compute_threads = 0 when sharding the batch across workers, and
  /// raise it only when a bench_serve_throughput sweep on your hardware
  /// shows a win (see docs/PERFORMANCE.md).
  int64_t compute_threads = 0;
  /// Opt into the fast-math GEMM/dequant-dot kernels (FMA + multi-
  /// accumulator; tensor/simd.hpp) for the whole process. Faster on vector
  /// backends, but completions are no longer bitwise identical to the
  /// deterministic reference — leave off when reproducibility matters.
  /// The engine applies this to the global ops::gemm flag at construction.
  bool fast_math = false;
  int64_t kv_byte_budget = 0;   ///< global KV cache cap in bytes; 0 = unlimited
  bool quantize_kv = false;     ///< int8 pooled caches
  /// Paged KV storage (serve::PagedKvPool): block-granular admission under
  /// the same byte budget, with cross-request prefix reuse — a request
  /// whose prompt prefix matches a finished sequence's cached blocks skips
  /// prefilling those positions. Greedy completions are byte-identical to
  /// the slot pool. Off by default.
  bool kv_paged = false;
  int64_t kv_block_tokens = 16;  ///< paged only: positions per KV block
  /// Max prompt tokens a prefilling sequence advances per scheduler tick
  /// (chunked prefill). 1 = classic one-token ticks; higher values reach
  /// the first sampled token in fewer ticks by running prompt-only
  /// micro-batches ahead of the regular step — never the last prompt
  /// token, so sampling (and bitwise outputs) are unaffected.
  int64_t prefill_chunk = 1;
  /// Hold packable compressed weights (per-row symmetric int4/int8, no
  /// LoRA) as PackedMatrix in the decode weight cache and multiply against
  /// the packed integers directly (quant::packed_matmul_nt). Cuts the
  /// cache's memory to the deployed footprint and skips dequantization,
  /// but uses deployed integer-kernel numerics — completions are no longer
  /// bitwise identical to the fp32 effective-weight path, so this is
  /// opt-in. Uncompressed/LoRA layers are unaffected.
  bool pack_compressed_weights = false;
  /// Default draft exit depth for kSpeculative requests whose own
  /// draft_depth is 0. Must be a registered exit below the final layer;
  /// 0 (default) means the deepest registered early exit.
  int64_t speculative_depth = 0;
  /// Default verify width (tokens checked per stacked full-depth pass, of
  /// which k-1 are drafted) for kSpeculative requests whose draft_k is 0.
  int64_t draft_k = 4;
  /// Mode/temperature for kVoted requests (weights via set_exit_weights).
  core::VoterConfig voting;
  /// >= 0 enables the process-global obs::Tracer at construction with this
  /// kernel-span sampling interval (0 = structural spans only, N = every
  /// Nth kernel call per thread); -1 (default) leaves the tracer alone.
  /// See docs/OBSERVABILITY.md.
  int64_t trace_kernel_sample = -1;
  /// Overload policy: per-tenant quotas, shed/degrade thresholds. The
  /// defaults (all thresholds 0) are inert — see serve/admission.hpp.
  AdmissionConfig admission;
  /// Bounded retry for transient KV admission failures: the queue head is
  /// shed after this many failed acquire attempts. 0 (default) retries
  /// forever — the pre-resilience wait-in-FIFO behavior.
  int64_t max_admission_retries = 0;
  /// Exponential backoff base between admission retries, ms (0 = retry at
  /// every tick). See SchedulerConfig.
  double retry_backoff_ms = 0.0;
  /// When a degrade mechanism is configured (any degrade_* threshold or
  /// the degrade-early-exit shed policy): after this many consecutive
  /// byte-budget admission rejections the queue head is forced down the
  /// ladder to its floor and retried with the smaller KV reservation.
  /// This guarantee is what lets submit() accept requests that only fit
  /// the budget degraded (rejecting on the full-depth ask would turn them
  /// away) without risking a head that waits at full depth forever. 0
  /// disables head degradation — submit() then rejects anything that
  /// cannot fit at its full asked depth. Ignored when no degrade
  /// mechanism is configured.
  int64_t degrade_budget_retries = 2;
  /// Scheduler-stall watchdog: when the loop's heartbeat stops advancing
  /// for this long while work is pending (a wedged decode), every pending
  /// request fails cleanly with kFailed and the engine stops accepting.
  /// 0 (default) disables the watchdog. Set well above your worst-case
  /// legitimate tick time.
  int64_t watchdog_stall_ms = 0;
  /// Serve-path fault injection for resilience testing (must outlive the
  /// engine); null = no faults. See runtime::ServeFaultInjector.
  runtime::ServeFaultInjector* fault = nullptr;
};

/// Point-in-time rollup of the engine's registry counters (see
/// ServeEngine::registry() for the full instrument set, including latency
/// histograms). Kept as a plain struct so existing callers are unaffected
/// by the registry-backed internals.
struct EngineMetrics {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t timed_out = 0;
  int64_t shed = 0;       ///< refused by quota/overload policy or retry exhaustion
  int64_t expired = 0;    ///< deadline passed while still queued
  int64_t failed = 0;     ///< internal faults (worker death, poison, watchdog)
  int64_t degraded = 0;   ///< requests downgraded by the degradation ladder
  int64_t admission_retries = 0;  ///< transient KV admission failures retried
  int64_t watchdog_fired = 0;
  int64_t tokens_generated = 0;
  int64_t ticks = 0;             ///< scheduler iterations (token boundaries)
  double occupancy_sum = 0.0;    ///< sum of batch sizes over ticks
  int64_t kv_high_water_bytes = 0;
  int64_t kv_budget_bytes = 0;

  double mean_batch_occupancy() const {
    return ticks > 0 ? occupancy_sum / static_cast<double>(ticks) : 0.0;
  }
};

/// Internal fixed worker pool (exposed for the engine's decode sharding).
class WorkerPool {
 public:
  explicit WorkerPool(int64_t n_threads);
  ~WorkerPool();

  /// Runs fn(0..n_tasks-1) across the pool; returns when all are done.
  void run(int64_t n_tasks, const std::function<void(int64_t)>& fn);

 private:
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_work_, cv_done_;
  const std::function<void(int64_t)>* fn_ = nullptr;
  int64_t total_ = 0, next_ = 0, done_ = 0;
  uint64_t epoch_ = 0;
  bool quit_ = false;

  void worker();
};

class ServeEngine {
 public:
  /// Puts the model into eval mode; the model must not be trained while
  /// the engine is live.
  ServeEngine(nn::CausalLm& model, EngineConfig cfg);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Thread-safe. Throws std::invalid_argument on malformed requests; a
  /// well-formed request that cannot be served right now (queue full, or
  /// larger than the whole KV budget) resolves immediately as kRejected.
  std::future<Completion> submit(Request req) { return submit(std::move(req), StreamSink{}); }

  /// As above, with per-request streaming callbacks: sink.on_token fires
  /// as each token is sampled and sink.on_done once at resolution — the
  /// path the HTTP front door streams chunked responses through. See the
  /// StreamSink contract in request.hpp (callbacks run on engine threads
  /// under the engine lock; they must not call back into the engine).
  std::future<Completion> submit(Request req, StreamSink sink);

  /// Cancels a queued or active request by id. Returns false if unknown.
  bool cancel(int64_t id);

  /// Exit-head weights for kVoted requests (e.g. from a calibrated
  /// core::ExitVoter). Defaults to uniform weights, zero losses.
  void set_exit_weights(std::vector<float> weights, std::vector<float> calib_losses);

  /// Pauses the scheduler loop at the next tick boundary: requests keep
  /// queueing but nothing is admitted or decoded until resume(). Lets
  /// tests (and drain-style maintenance) stage a full batch deterministically
  /// instead of racing the scheduler. Returns once the loop is parked.
  void pause();
  void resume();

  /// Stops accepting, drains queued + active requests, joins all threads.
  /// Called by the destructor; safe to call twice.
  void shutdown();

  EngineMetrics metrics() const;

  /// Per-engine instrument registry: serve/* counters and latency
  /// histograms (queue_wait_ms, tick_ms, batch_size) plus the KV pool's
  /// kv/* counters and gauges. Snapshot or serialise it for dashboards;
  /// metrics() above is a rollup of the same instruments.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

 private:
  nn::CausalLm& model_;
  EngineConfig cfg_;
  /// Effective weights snapshotted once at construction — the model is
  /// frozen for the engine's lifetime, so every decode tick reuses them
  /// instead of re-materialising per projection (read-only across workers).
  nn::DecodeWeightCache weight_cache_;

  /// Declared before sched_: the scheduler's KV pool registers its
  /// instruments here during construction.
  obs::Registry registry_;
  obs::Counter& c_submitted_;
  obs::Counter& c_completed_;
  obs::Counter& c_rejected_;
  obs::Counter& c_cancelled_;
  obs::Counter& c_timed_out_;
  obs::Counter& c_shed_;
  obs::Counter& c_expired_;
  obs::Counter& c_failed_;
  obs::Counter& c_degraded_;
  obs::Counter& c_retries_;   ///< serve/admission_retries
  obs::Counter& c_watchdog_;  ///< serve/watchdog_fired
  obs::Counter& c_tokens_;
  obs::Counter& c_spec_accepted_;  ///< spec/accepted_tokens (drafts confirmed)
  obs::Counter& c_spec_rejected_;  ///< spec/rejected_tokens (drafts discarded)
  obs::Histogram& h_batch_;       ///< count = ticks, sum = occupancy_sum
  obs::Histogram& h_queue_wait_;  ///< submit -> admit, ms
  obs::Histogram& h_tick_ms_;     ///< admit + decode + retire, ms
  /// Per-priority-class queue-wait histograms (serve/queue_wait_ms_p0..p2)
  /// so dashboards can see whether shedding actually protects high-priority
  /// latency. Indexed by Request::priority.
  obs::Histogram* h_wait_class_[3] = {nullptr, nullptr, nullptr};
  obs::Histogram& h_spec_accepted_;  ///< spec/accepted_per_round (0..k-1 drafts)
  obs::Histogram& h_spec_rate_;      ///< spec/acceptance_rate per round, in [0,1]
  /// Stable storage for per-draft-depth span names ("spec/round_d<depth>"):
  /// obs::ScopedSpan keeps the char* it is given, so names must outlive the
  /// tracer flush. Built once at construction; map nodes never move.
  std::map<int64_t, std::string> spec_span_names_;

  AdmissionController admit_ctl_;
  DegradeLadder ladder_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Scheduler sched_;
  std::vector<float> exit_weights_, exit_losses_;
  bool accepting_ = true;
  bool stop_ = false;
  bool paused_ = false;   ///< pause() request flag
  bool parked_ = false;   ///< loop acknowledged the pause
  bool failed_ = false;   ///< watchdog declared the engine wedged
  bool joined_ = false;

  /// Incremented at every scheduler-loop iteration; the watchdog thread
  /// declares a stall when it stops advancing while work is pending.
  std::atomic<uint64_t> heartbeat_{0};

  std::unique_ptr<WorkerPool> workers_;
  std::thread sched_thread_;
  std::thread watchdog_thread_;

  void loop();
  void watchdog();
  Pressure pressure_locked() const;
  /// Resolves every queued and active promise kFailed (watchdog path);
  /// caller holds mu_. State stays in place for the wedged loop to reclaim.
  void fail_all_pending_locked(const char* why);
  void run_decode(std::vector<nn::BatchedSeq>& seqs, std::vector<uint8_t>& chunk_failed,
                  std::vector<std::string>& chunk_errors);
  /// One prompt-done kSpeculative sequence's draft-and-verify round for this
  /// tick. Built under mu_, executed unlocked: workers touch only the job
  /// record and its (disjoint) cache, never SeqState — the watchdog may be
  /// resolving promises concurrently.
  struct SpecJob {
    size_t index = 0;  ///< position in sched_.active() at build time
    nn::KvSequenceView* cache = nullptr;
    int64_t position = 0;
    int64_t token = 0;
    int64_t depth = 0;
    int64_t k = 1;
    const char* span_name = nullptr;  ///< from spec_span_names_
    nn::SpeculativeResult result;
    bool failed = false;
    std::string error;
  };
  /// Runs every job's speculative_decode_step, sharded across workers_ with
  /// the same fault-injection surface as run_decode (stall, worker death,
  /// poisoned logits). Failures land in the job record.
  void run_speculative(std::vector<SpecJob>& jobs);
  int64_t resolved_depth(const Request& req) const;
  void finish_seq(size_t index, RequestStatus status);
  static void resolve(SeqState& s, RequestStatus status);
};

}  // namespace edgellm::serve
