#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "tensor/parallel.hpp"

namespace edgellm::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

// --- WorkerPool -------------------------------------------------------------

WorkerPool::WorkerPool(int64_t n_threads) {
  check_arg(n_threads > 0, "WorkerPool: need at least one thread");
  threads_.reserve(static_cast<size_t>(n_threads));
  for (int64_t i = 0; i < n_threads; ++i) threads_.emplace_back([this] { worker(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(int64_t n_tasks, const std::function<void(int64_t)>& fn) {
  if (n_tasks <= 0) return;
  std::unique_lock<std::mutex> lk(m_);
  fn_ = &fn;
  total_ = n_tasks;
  next_ = 0;
  done_ = 0;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return done_ == total_; });
  fn_ = nullptr;
}

void WorkerPool::worker() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  while (true) {
    cv_work_.wait(lk, [&] { return quit_ || (epoch_ != seen && next_ < total_); });
    if (quit_) return;
    seen = epoch_;
    while (next_ < total_) {
      const int64_t i = next_++;
      lk.unlock();
      (*fn_)(i);
      lk.lock();
      ++done_;
      if (done_ == total_) cv_done_.notify_all();
    }
  }
}

// --- ServeEngine ------------------------------------------------------------

ServeEngine::ServeEngine(nn::CausalLm& model, EngineConfig cfg)
    : model_(model),
      cfg_(cfg),
      c_submitted_(registry_.counter("serve/submitted")),
      c_completed_(registry_.counter("serve/completed")),
      c_rejected_(registry_.counter("serve/rejected")),
      c_cancelled_(registry_.counter("serve/cancelled")),
      c_timed_out_(registry_.counter("serve/timed_out")),
      c_tokens_(registry_.counter("serve/tokens_generated")),
      h_batch_(registry_.histogram("serve/batch_size", obs::integer_bounds(cfg.max_batch))),
      h_queue_wait_(registry_.histogram("serve/queue_wait_ms")),
      h_tick_ms_(registry_.histogram("serve/tick_ms")),
      sched_(SchedulerConfig{cfg.max_batch, cfg.queue_capacity, model.config().max_seq,
                             model.config().n_layers},
             KvPoolConfig{cfg.max_batch, model.config().kv_dim(), cfg.kv_byte_budget,
                          cfg.quantize_kv, &registry_}) {
  check_arg(cfg_.threads >= 1, "ServeEngine: threads must be >= 1");
  check_arg(cfg_.compute_threads >= 0, "ServeEngine: compute_threads must be >= 0");
  if (cfg_.compute_threads > 0) parallel::set_num_threads(cfg_.compute_threads);
  if (cfg_.trace_kernel_sample >= 0) obs::Tracer::global().enable(cfg_.trace_kernel_sample);
  const size_t n_exits = model_.exit_layers().size();
  exit_weights_.assign(n_exits, 1.0f / static_cast<float>(n_exits));
  exit_losses_.assign(n_exits, 0.0f);
  model_.set_eval();
  // Frozen model: materialise weights once (packed storage when opted in).
  weight_cache_.build(model_, cfg_.pack_compressed_weights);
  if (cfg_.threads > 1) workers_ = std::make_unique<WorkerPool>(cfg_.threads);
  sched_thread_ = std::thread([this] { loop(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

int64_t ServeEngine::resolved_depth(const Request& req) const {
  if (req.exit_policy == ExitPolicy::kFixedEarly) {
    (void)model_.exit_index(req.exit_layer);  // throws on unregistered depth
    return req.exit_layer;
  }
  return model_.config().n_layers;
}

void ServeEngine::resolve(SeqState& s, RequestStatus status) {
  Completion c;
  c.id = s.req.id;
  c.status = status;
  c.tokens = s.out;
  const auto now = std::chrono::steady_clock::now();
  c.metrics.prompt_tokens = static_cast<int64_t>(s.req.prompt.size());
  c.metrics.output_tokens = static_cast<int64_t>(s.out.size());
  c.metrics.total_ms = ms_between(s.submit_t, now);
  if (s.slot >= 0 || s.position > 0) {
    c.metrics.queue_wait_ms = ms_between(s.submit_t, s.admit_t);
  }
  if (s.has_first_token) {
    c.metrics.ttft_ms = ms_between(s.submit_t, s.first_token_t);
    const double decode_ms = ms_between(s.admit_t, now);
    if (decode_ms > 0.0) {
      c.metrics.tokens_per_s = static_cast<double>(s.out.size()) / (decode_ms / 1e3);
    }
  }
  c.metrics.kv_bytes = s.kv_bytes_at_end;
  s.promise.set_value(std::move(c));
}

std::future<Completion> ServeEngine::submit(Request req) {
  const nn::ModelConfig& mcfg = model_.config();
  check_arg(!req.prompt.empty(), "ServeEngine::submit: empty prompt");
  check_arg(static_cast<int64_t>(req.prompt.size()) <= mcfg.max_seq,
            "ServeEngine::submit: prompt longer than the context window");
  for (int64_t t : req.prompt) {
    check_arg(t >= 0 && t < mcfg.vocab, "ServeEngine::submit: prompt token out of range");
  }
  check_arg(req.max_new_tokens > 0, "ServeEngine::submit: max_new_tokens must be positive");
  check_arg(req.top_k >= 0 && req.top_k <= mcfg.vocab,
            "ServeEngine::submit: top_k must be in [0, vocab]");
  check_arg(std::isfinite(req.temperature), "ServeEngine::submit: temperature must be finite");
  check_arg(req.deadline_ms >= 0.0, "ServeEngine::submit: negative deadline");
  const int64_t depth = resolved_depth(req);  // validates the exit layer too

  auto s = std::make_unique<SeqState>();
  s->req = std::move(req);
  s->exit_layer_used = depth;
  s->rng = Rng(s->req.seed);
  s->submit_t = std::chrono::steady_clock::now();
  std::future<Completion> fut = s->promise.get_future();

  // A request whose worst-case cache exceeds the whole budget can never be
  // admitted; reject now instead of wedging the queue head forever.
  const int64_t projected = std::min<int64_t>(
      static_cast<int64_t>(s->req.prompt.size()) + s->req.max_new_tokens, mcfg.max_seq);
  const bool impossible =
      cfg_.kv_byte_budget > 0 &&
      sched_.pool().projected_bytes(projected, depth) > cfg_.kv_byte_budget;

  std::lock_guard<std::mutex> lk(mu_);
  c_submitted_.add();
  if (!accepting_ || impossible || !sched_.enqueue(s)) {
    c_rejected_.add();
    resolve(*s, RequestStatus::kRejected);
    return fut;
  }
  cv_.notify_all();
  return fut;
}

bool ServeEngine::cancel(int64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  bool found = false;
  std::unique_ptr<SeqState> queued = sched_.cancel(id, &found);
  if (queued) {
    c_cancelled_.add();
    resolve(*queued, RequestStatus::kCancelled);
  }
  return found;
}

void ServeEngine::set_exit_weights(std::vector<float> weights, std::vector<float> calib_losses) {
  const size_t n = model_.exit_layers().size();
  check_arg(weights.size() == n && calib_losses.size() == n,
            "set_exit_weights: need one weight and loss per registered exit");
  std::lock_guard<std::mutex> lk(mu_);
  exit_weights_ = std::move(weights);
  exit_losses_ = std::move(calib_losses);
}

void ServeEngine::run_decode(std::vector<nn::BatchedSeq>& seqs) {
  const int64_t B = static_cast<int64_t>(seqs.size());
  const int64_t n_chunks = workers_ ? std::min<int64_t>(cfg_.threads, B) : 1;
  if (n_chunks <= 1) {
    nn::batched_decode_step(model_, seqs, &weight_cache_);
    return;
  }
  const int64_t chunk = (B + n_chunks - 1) / n_chunks;
  workers_->run(n_chunks, [&](int64_t c) {
    const int64_t lo = c * chunk;
    const int64_t hi = std::min<int64_t>(lo + chunk, B);
    if (lo < hi) {
      nn::batched_decode_step(
          model_, std::span<nn::BatchedSeq>(seqs.data() + lo, static_cast<size_t>(hi - lo)),
          &weight_cache_);
    }
  });
}

void ServeEngine::finish_seq(size_t index, RequestStatus status) {
  sched_.active()[index]->kv_bytes_at_end =
      sched_.pool().slot(sched_.active()[index]->slot).bytes();
  std::unique_ptr<SeqState> s = sched_.finish(index);
  switch (status) {
    case RequestStatus::kOk: c_completed_.add(); break;
    case RequestStatus::kCancelled: c_cancelled_.add(); break;
    case RequestStatus::kTimeout: c_timed_out_.add(); break;
    case RequestStatus::kRejected: break;  // never reaches finish_seq
  }
  c_tokens_.add(static_cast<int64_t>(s->out.size()));
  h_queue_wait_.observe(ms_between(s->submit_t, s->admit_t));
  resolve(*s, status);
}

void ServeEngine::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<nn::BatchedSeq> seqs;
  while (true) {
    if (paused_ && !stop_) {
      parked_ = true;
      cv_.notify_all();  // pause() waits for parked_
      cv_.wait(lk, [&] { return !paused_ || stop_; });
      parked_ = false;
    }
    sched_.admit();
    auto& active = sched_.active();
    if (active.empty()) {
      if (stop_ && sched_.idle()) return;
      cv_.wait(lk);
      continue;
    }
    const auto tick_t0 = std::chrono::steady_clock::now();
    const obs::ScopedSpan tick_span("serve/tick");

    // Build this tick's per-sequence jobs (one token each).
    const size_t B = active.size();
    seqs.assign(B, nn::BatchedSeq{});
    for (size_t i = 0; i < B; ++i) {
      SeqState& s = *active[i];
      nn::BatchedSeq& j = seqs[i];
      j.cache = &sched_.pool().slot(s.slot);
      j.position = s.position;
      j.token = s.next_token();
      // Logits are only needed when this tick's output will be sampled
      // from: the last prompt token, or any generated token.
      j.want_logits = s.prompt_done() || s.prompt_fed + 1 == s.req.prompt.size();
      j.all_exits = s.req.exit_policy == ExitPolicy::kVoted;
      j.exit_layer =
          s.req.exit_policy == ExitPolicy::kFixedEarly ? s.req.exit_layer : int64_t{0};
    }
    h_batch_.observe(static_cast<double>(B));
    obs::Tracer::global().counter("serve/batch_size", static_cast<int64_t>(B));

    lk.unlock();
    {
      const obs::ScopedSpan decode_span("serve/decode");
      run_decode(seqs);
    }
    lk.lock();

    const auto now = std::chrono::steady_clock::now();
    // Retire / advance, iterating backwards so finish_seq's erase is safe.
    for (size_t i = B; i-- > 0;) {
      SeqState& s = *active[i];
      const bool fed_prompt = !s.prompt_done();
      if (fed_prompt) ++s.prompt_fed;
      ++s.position;

      if (s.prompt_done() && seqs[i].want_logits) {
        Tensor logits;
        if (s.req.exit_policy == ExitPolicy::kVoted) {
          logits = core::combine_exit_logits(seqs[i].logits, exit_weights_, exit_losses_,
                                             cfg_.voting)
                       .reshape({model_.config().vocab});
        } else {
          logits = std::move(seqs[i].logits.at(0));
        }
        nn::GenerateConfig g;
        g.temperature = s.req.temperature;
        g.top_k = s.req.top_k;
        const int64_t tok = nn::sample_token(logits, g, s.rng);
        if (!s.has_first_token) {
          s.first_token_t = now;
          s.has_first_token = true;
        }
        s.out.push_back(tok);
        s.last_token = tok;
      }

      RequestStatus status = RequestStatus::kOk;
      bool done = false;
      if (s.cancelled) {
        status = RequestStatus::kCancelled;
        done = true;
      } else if (s.req.deadline_ms > 0.0 && ms_between(s.submit_t, now) > s.req.deadline_ms) {
        status = RequestStatus::kTimeout;
        done = true;
      } else if (static_cast<int64_t>(s.out.size()) >= s.req.max_new_tokens ||
                 s.position >= model_.config().max_seq) {
        done = true;  // finished, or context window exhausted (partial ok)
      }
      if (done) finish_seq(i, status);
    }
    // Workers are quiesced here, so the scheduler may read slot contents
    // to refresh the poll-safe byte accounting and the high-water mark.
    sched_.pool().sync_live_bytes();
    h_tick_ms_.observe(ms_between(tick_t0, std::chrono::steady_clock::now()));
  }
}

void ServeEngine::pause() {
  std::unique_lock<std::mutex> lk(mu_);
  if (paused_ || stop_) return;
  paused_ = true;
  cv_.notify_all();
  // Wait until the loop parks so callers observe a quiescent engine; a
  // decode tick already in flight finishes first.
  cv_.wait(lk, [&] { return parked_ || stop_; });
}

void ServeEngine::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = false;
    stop_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  if (sched_thread_.joinable()) sched_thread_.join();
  workers_.reset();
}

EngineMetrics ServeEngine::metrics() const {
  // Instruments are atomic and the pool guards its own state, so no engine
  // lock is needed: this is safe to poll while the scheduler runs.
  EngineMetrics m;
  m.submitted = c_submitted_.value();
  m.completed = c_completed_.value();
  m.rejected = c_rejected_.value();
  m.cancelled = c_cancelled_.value();
  m.timed_out = c_timed_out_.value();
  m.tokens_generated = c_tokens_.value();
  m.ticks = h_batch_.count();
  m.occupancy_sum = h_batch_.sum();
  m.kv_high_water_bytes = sched_.pool().high_water_bytes();
  m.kv_budget_bytes = cfg_.kv_byte_budget;
  return m;
}

}  // namespace edgellm::serve
