#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace edgellm::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// A degrade mechanism is configured: staging may move requests down the
/// exit ladder before reserving KV bytes.
bool degrade_configured(const EngineConfig& cfg) {
  return cfg.admission.shed_policy == ShedPolicy::kDegradeEarlyExit ||
         cfg.admission.degrade_queue_ratio > 0.0 || cfg.admission.degrade_kv_ratio > 0.0 ||
         cfg.admission.degrade_tick_ms > 0.0;
}

/// {0, 1, ..., 16}: exact buckets for drafts-accepted-per-round (0 is a
/// legitimate and common value, so it gets its own bucket).
std::vector<double> spec_round_bounds() {
  std::vector<double> b;
  for (int i = 0; i <= 16; ++i) b.push_back(static_cast<double>(i));
  return b;
}

/// {0.0, 0.1, ..., 1.0}: deciles for the per-round acceptance rate.
std::vector<double> spec_rate_bounds() {
  std::vector<double> b;
  for (int i = 0; i <= 10; ++i) b.push_back(static_cast<double>(i) / 10.0);
  return b;
}

}  // namespace

// --- WorkerPool -------------------------------------------------------------

WorkerPool::WorkerPool(int64_t n_threads) {
  check_arg(n_threads > 0, "WorkerPool: need at least one thread");
  threads_.reserve(static_cast<size_t>(n_threads));
  for (int64_t i = 0; i < n_threads; ++i) threads_.emplace_back([this] { worker(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::run(int64_t n_tasks, const std::function<void(int64_t)>& fn) {
  if (n_tasks <= 0) return;
  std::unique_lock<std::mutex> lk(m_);
  fn_ = &fn;
  total_ = n_tasks;
  next_ = 0;
  done_ = 0;
  ++epoch_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return done_ == total_; });
  fn_ = nullptr;
}

void WorkerPool::worker() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  while (true) {
    cv_work_.wait(lk, [&] { return quit_ || (epoch_ != seen && next_ < total_); });
    if (quit_) return;
    seen = epoch_;
    while (next_ < total_) {
      const int64_t i = next_++;
      lk.unlock();
      (*fn_)(i);
      lk.lock();
      ++done_;
      if (done_ == total_) cv_done_.notify_all();
    }
  }
}

// --- ServeEngine ------------------------------------------------------------

ServeEngine::ServeEngine(nn::CausalLm& model, EngineConfig cfg)
    : model_(model),
      cfg_(cfg),
      c_submitted_(registry_.counter("serve/submitted")),
      c_completed_(registry_.counter("serve/completed")),
      c_rejected_(registry_.counter("serve/rejected")),
      c_cancelled_(registry_.counter("serve/cancelled")),
      c_timed_out_(registry_.counter("serve/timed_out")),
      c_shed_(registry_.counter("serve/shed")),
      c_expired_(registry_.counter("serve/expired")),
      c_failed_(registry_.counter("serve/failed")),
      c_degraded_(registry_.counter("serve/degraded")),
      c_retries_(registry_.counter("serve/admission_retries")),
      c_watchdog_(registry_.counter("serve/watchdog_fired")),
      c_tokens_(registry_.counter("serve/tokens_generated")),
      c_spec_accepted_(registry_.counter("spec/accepted_tokens")),
      c_spec_rejected_(registry_.counter("spec/rejected_tokens")),
      h_batch_(registry_.histogram("serve/batch_size", obs::integer_bounds(cfg.max_batch))),
      h_queue_wait_(registry_.histogram("serve/queue_wait_ms")),
      h_tick_ms_(registry_.histogram("serve/tick_ms")),
      h_spec_accepted_(registry_.histogram("spec/accepted_per_round", spec_round_bounds())),
      h_spec_rate_(registry_.histogram("spec/acceptance_rate", spec_rate_bounds())),
      admit_ctl_(cfg.admission),
      sched_(SchedulerConfig{cfg.max_batch, cfg.queue_capacity, model.config().max_seq,
                             model.config().n_layers, cfg.max_admission_retries,
                             cfg.retry_backoff_ms,
                             degrade_configured(cfg) ? cfg.degrade_budget_retries : 0,
                             cfg.fault},
             KvPoolConfig{cfg.max_batch, model.config().kv_dim(), cfg.kv_byte_budget,
                          cfg.quantize_kv, cfg.kv_paged, cfg.kv_block_tokens,
                          model.config().n_layers, &registry_}) {
  check_arg(cfg_.threads >= 1, "ServeEngine: threads must be >= 1");
  check_arg(cfg_.compute_threads >= 0, "ServeEngine: compute_threads must be >= 0");
  check_arg(cfg_.watchdog_stall_ms >= 0, "ServeEngine: watchdog_stall_ms must be >= 0");
  check_arg(cfg_.prefill_chunk >= 1, "ServeEngine: prefill_chunk must be >= 1");
  check_arg(cfg_.degrade_budget_retries >= 0,
            "ServeEngine: degrade_budget_retries must be >= 0 (0 = off)");
  check_arg(cfg_.draft_k >= 1, "ServeEngine: draft_k must be >= 1");
  if (cfg_.speculative_depth > 0) {
    (void)model_.exit_index(cfg_.speculative_depth);  // throws on unregistered depth
    check_arg(cfg_.speculative_depth < model_.config().n_layers,
              "ServeEngine: speculative_depth must be below the final layer");
  }
  if (cfg_.compute_threads > 0) parallel::set_num_threads(cfg_.compute_threads);
  if (cfg_.trace_kernel_sample >= 0) obs::Tracer::global().enable(cfg_.trace_kernel_sample);
  ops::gemm::set_fast_math(cfg_.fast_math);
  // Expose the resolved SIMD backend on GET /metrics: gauge
  // simd/dispatch.<isa> = 1 (and simd/fast_math = 0|1) so deployments can
  // confirm what the kernels actually run on.
  registry_.gauge(std::string("simd/dispatch.") + simd::to_string(simd::active_isa())).set(1);
  registry_.gauge("simd/fast_math").set(cfg_.fast_math ? 1 : 0);
  h_wait_class_[0] = &registry_.histogram("serve/queue_wait_ms_p0");
  h_wait_class_[1] = &registry_.histogram("serve/queue_wait_ms_p1");
  h_wait_class_[2] = &registry_.histogram("serve/queue_wait_ms_p2");
  // Degradation ladder: the exits below the final layer, from the model's
  // registered set. Empty set -> ladder stays {0, 0} and degrading is a
  // no-op (nothing cheaper to trade down to).
  for (int64_t e : model_.exit_layers()) {
    if (e >= model_.config().n_layers) continue;
    ladder_.deep = std::max(ladder_.deep, e);
    ladder_.shallow = ladder_.shallow == 0 ? e : std::min(ladder_.shallow, e);
    // Per-draft-depth span names, built once: ScopedSpan keeps the char* it
    // is given, and map nodes never move, so .c_str() stays valid for the
    // engine's lifetime.
    spec_span_names_.emplace(e, "spec/round_d" + std::to_string(e));
  }
  const size_t n_exits = model_.exit_layers().size();
  exit_weights_.assign(n_exits, 1.0f / static_cast<float>(n_exits));
  exit_losses_.assign(n_exits, 0.0f);
  model_.set_eval();
  // Frozen model: materialise weights once (packed storage when opted in).
  weight_cache_.build(model_, cfg_.pack_compressed_weights);
  if (cfg_.threads > 1) workers_ = std::make_unique<WorkerPool>(cfg_.threads);
  sched_thread_ = std::thread([this] { loop(); });
  if (cfg_.watchdog_stall_ms > 0) watchdog_thread_ = std::thread([this] { watchdog(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

int64_t ServeEngine::resolved_depth(const Request& req) const {
  if (req.exit_policy == ExitPolicy::kFixedEarly) {
    (void)model_.exit_index(req.exit_layer);  // throws on unregistered depth
    return req.exit_layer;
  }
  // kFinal, kVoted and kSpeculative all cache (and are billed at) full
  // depth: speculative drafts write shallow layers of the SAME cache, so
  // they add positions, not layers.
  return model_.config().n_layers;
}

void ServeEngine::resolve(SeqState& s, RequestStatus status) {
  // Idempotent: the watchdog may have already failed this request while it
  // sat in a wedged batch; the loop's own resolution is then a no-op.
  if (s.resolved) return;
  s.resolved = true;
  Completion c;
  c.id = s.req.id;
  c.status = status;
  c.tokens = s.out;
  const auto now = std::chrono::steady_clock::now();
  c.metrics.prompt_tokens = static_cast<int64_t>(s.req.prompt.size());
  c.metrics.output_tokens = static_cast<int64_t>(s.out.size());
  c.metrics.total_ms = ms_between(s.submit_t, now);
  if (s.slot >= 0 || s.position > 0) {
    c.metrics.queue_wait_ms = ms_between(s.submit_t, s.admit_t);
  }
  if (s.has_first_token) {
    c.metrics.ttft_ms = ms_between(s.submit_t, s.first_token_t);
    const double decode_ms = ms_between(s.admit_t, now);
    if (decode_ms > 0.0) {
      c.metrics.tokens_per_s = static_cast<double>(s.out.size()) / (decode_ms / 1e3);
    }
  }
  c.metrics.kv_bytes = s.kv_bytes_at_end;
  c.metrics.spec_drafted = s.spec_drafted;
  c.metrics.spec_accepted = s.spec_accepted;
  c.error = std::move(s.error);
  c.degraded = s.degraded;
  c.exit_layer_used = s.exit_layer_used;
  // Streaming observers hear the terminal before the future resolves, so
  // a client that saw its future ready can rely on the sink being done.
  if (s.sink.on_done) s.sink.on_done(c);
  s.promise.set_value(std::move(c));
}

Pressure ServeEngine::pressure_locked() const {
  Pressure p;
  p.queue_ratio =
      static_cast<double>(sched_.queued()) / static_cast<double>(cfg_.queue_capacity);
  if (cfg_.kv_byte_budget > 0) {
    p.kv_ratio = static_cast<double>(sched_.kv_committed_bytes()) /
                 static_cast<double>(cfg_.kv_byte_budget);
  }
  p.tick_ewma_ms = admit_ctl_.tick_ewma_ms();
  return p;
}

std::future<Completion> ServeEngine::submit(Request req, StreamSink sink) {
  const nn::ModelConfig& mcfg = model_.config();
  check_arg(!req.prompt.empty(), "ServeEngine::submit: empty prompt");
  check_arg(static_cast<int64_t>(req.prompt.size()) <= mcfg.max_seq,
            "ServeEngine::submit: prompt longer than the context window");
  for (int64_t t : req.prompt) {
    check_arg(t >= 0 && t < mcfg.vocab, "ServeEngine::submit: prompt token out of range");
  }
  check_arg(req.max_new_tokens > 0, "ServeEngine::submit: max_new_tokens must be positive");
  check_arg(req.top_k >= 0 && req.top_k <= mcfg.vocab,
            "ServeEngine::submit: top_k must be in [0, vocab]");
  check_arg(std::isfinite(req.temperature), "ServeEngine::submit: temperature must be finite");
  check_arg(req.deadline_ms >= 0.0, "ServeEngine::submit: negative deadline");
  check_arg(req.priority >= kPriorityHigh && req.priority <= kPriorityLow,
            "ServeEngine::submit: priority out of range");
  const int64_t depth = resolved_depth(req);  // validates the exit layer too

  // Speculative knobs resolve at submit so a bad ask throws here, not at a
  // decode tick: draft depth falls back to the engine default, then to the
  // deepest registered early exit; draft_k to the engine default.
  int64_t spec_depth = 0;
  int64_t spec_k = 0;
  if (req.exit_policy == ExitPolicy::kSpeculative) {
    check_arg(req.temperature <= 0.0f,
              "ServeEngine::submit: speculative decoding is greedy-only (temperature <= 0)");
    check_arg(req.draft_depth >= 0, "ServeEngine::submit: draft_depth must be >= 0");
    check_arg(req.draft_k >= 0, "ServeEngine::submit: draft_k must be >= 0");
    spec_depth = req.draft_depth > 0        ? req.draft_depth
                 : cfg_.speculative_depth > 0 ? cfg_.speculative_depth
                                              : ladder_.deep;
    check_arg(spec_depth > 0,
              "ServeEngine::submit: speculative decoding needs a registered early exit "
              "below the final layer to draft from");
    check_arg(spec_depth < mcfg.n_layers,
              "ServeEngine::submit: draft_depth must be below the final layer");
    (void)model_.exit_index(spec_depth);  // throws on unregistered depth
    spec_k = req.draft_k > 0 ? req.draft_k : cfg_.draft_k;
    check_arg(spec_k >= 1, "ServeEngine::submit: draft_k must be >= 1");
  }

  auto s = std::make_unique<SeqState>();
  s->req = std::move(req);
  s->sink = std::move(sink);  // before any resolve() path so rejects stream too
  s->policy = s->req.exit_policy;
  s->exit_layer = s->req.exit_layer;
  s->exit_layer_used = depth;
  s->spec_depth = spec_depth;
  s->spec_k = spec_k;
  s->rng = Rng(s->req.seed);
  s->submit_t = std::chrono::steady_clock::now();
  std::future<Completion> fut = s->promise.get_future();

  // A request whose worst-case cache exceeds the whole budget can never be
  // admitted; reject now instead of wedging the queue head forever. The
  // projection may only assume a depth the request is *guaranteed* to
  // reach: lowering it to the degrade-ladder floor is sound only when
  // degradation is configured AND admission force-degrades a head stuck
  // on the byte budget (degrade_budget_retries > 0, wired into the
  // scheduler). A merely-configured pressure threshold is not enough — a
  // floor-only request arriving under low pressure would be admitted,
  // never degraded, and retry at full depth forever.
  //
  // Speculative requests project at this same VERIFIED-length bound — not
  // prompt + max_new + draft_k. Drafted-but-unverified rows exist only
  // inside one tick (speculative_decode_step truncates them before the
  // barrier), and the loop clamps each round's verify width k to both the
  // tokens the request may still emit and the context window, so the
  // transient peak position + k never exceeds this projection. Reserving
  // at prompt + max_new + k would turn away requests that provably fit.
  const int64_t projected = std::min<int64_t>(
      static_cast<int64_t>(s->req.prompt.size()) + s->req.max_new_tokens, mcfg.max_seq);
  const bool can_degrade = degrade_configured(cfg_) && cfg_.degrade_budget_retries > 0;
  const int64_t rung_floor = ladder_.shallow > 0 ? ladder_.shallow : ladder_.deep;
  const int64_t floor_depth =
      can_degrade && rung_floor > 0 ? std::min(depth, rung_floor) : depth;
  const bool impossible =
      cfg_.kv_byte_budget > 0 &&
      sched_.kv_projected_bytes(projected, floor_depth) > cfg_.kv_byte_budget;

  std::lock_guard<std::mutex> lk(mu_);
  c_submitted_.add();
  if (!accepting_ || impossible) {
    c_rejected_.add();
    s->error = accepting_ ? "request cannot fit the kv byte budget"
                          : "engine is not accepting requests";
    resolve(*s, RequestStatus::kRejected);
    return fut;
  }

  // Overload policy: quota first, then pressure thresholds.
  AdmissionController::Decision d =
      admit_ctl_.on_submit(s->req.tenant, pressure_locked(), std::chrono::steady_clock::now());
  if (d.action == AdmissionController::Decision::kShed) {
    // Drop-lowest-priority sheds a strictly less important *queued* request
    // to make room instead of refusing the newcomer — but never for quota
    // sheds (a tenant over its own budget must not displace others).
    bool made_room = false;
    if (cfg_.admission.shed_policy == ShedPolicy::kDropLowestPriority &&
        d.reason.rfind("quota:", 0) != 0) {
      if (std::unique_ptr<SeqState> victim = sched_.evict_lower_priority(s->req.priority)) {
        c_shed_.add();
        victim->error = "shed: evicted by higher-priority arrival";
        resolve(*victim, RequestStatus::kShed);
        made_room = true;
      }
    }
    if (!made_room) {
      c_shed_.add();
      s->error = d.reason;
      resolve(*s, RequestStatus::kShed);
      return fut;
    }
  } else if (d.action == AdmissionController::Decision::kAdmitDegraded) {
    s->force_degrade = true;
  }

  if (!sched_.enqueue(s)) {
    // Queue full. Drop-lowest can still make room by evicting a strictly
    // less important queued request; otherwise classic rejection.
    std::unique_ptr<SeqState> victim;
    if (cfg_.admission.shed_policy == ShedPolicy::kDropLowestPriority) {
      victim = sched_.evict_lower_priority(s->req.priority);
    }
    if (victim == nullptr) {
      c_rejected_.add();
      s->error = "admission queue full";
      resolve(*s, RequestStatus::kRejected);
      return fut;
    }
    c_shed_.add();
    victim->error = "shed: evicted by higher-priority arrival";
    resolve(*victim, RequestStatus::kShed);
    const bool requeued = sched_.enqueue(s);
    check_arg(requeued, "ServeEngine::submit: enqueue after eviction failed");
  }
  cv_.notify_all();
  return fut;
}

bool ServeEngine::cancel(int64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  bool found = false;
  std::unique_ptr<SeqState> queued = sched_.cancel(id, &found);
  if (queued) {
    c_cancelled_.add();
    resolve(*queued, RequestStatus::kCancelled);
  }
  return found;
}

void ServeEngine::set_exit_weights(std::vector<float> weights, std::vector<float> calib_losses) {
  const size_t n = model_.exit_layers().size();
  check_arg(weights.size() == n && calib_losses.size() == n,
            "set_exit_weights: need one weight and loss per registered exit");
  std::lock_guard<std::mutex> lk(mu_);
  exit_weights_ = std::move(weights);
  exit_losses_ = std::move(calib_losses);
}

void ServeEngine::run_decode(std::vector<nn::BatchedSeq>& seqs,
                             std::vector<uint8_t>& chunk_failed,
                             std::vector<std::string>& chunk_errors) {
  const int64_t B = static_cast<int64_t>(seqs.size());
  // One chunk = one worker's contiguous sub-batch. Any exception (injected
  // worker death, or a genuine decode failure) fails the whole chunk: its
  // caches may be mid-append, so no sequence in it can be trusted to
  // continue. Exceptions must not escape into the WorkerPool (that would
  // std::terminate the process).
  auto decode_chunk = [&](int64_t lo, int64_t hi) {
    if (lo >= hi) return;
    try {
      if (cfg_.fault != nullptr) {
        const double stall = cfg_.fault->stall_worker_ms();
        if (stall > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall));
        }
        if (cfg_.fault->kill_worker()) throw runtime::WorkerDeathError();
      }
      nn::batched_decode_step(
          model_, std::span<nn::BatchedSeq>(seqs.data() + lo, static_cast<size_t>(hi - lo)),
          &weight_cache_);
      if (cfg_.fault != nullptr) {
        for (int64_t i = lo; i < hi; ++i) {
          if (seqs[static_cast<size_t>(i)].logits.empty()) continue;
          if (!cfg_.fault->poison_logits()) continue;
          for (Tensor& t : seqs[static_cast<size_t>(i)].logits) {
            std::fill(t.raw(), t.raw() + t.numel(), std::numeric_limits<float>::quiet_NaN());
          }
        }
      }
    } catch (const std::exception& e) {
      for (int64_t i = lo; i < hi; ++i) {
        chunk_failed[static_cast<size_t>(i)] = 1;
        chunk_errors[static_cast<size_t>(i)] = std::string("decode failed: ") + e.what();
      }
    }
  };
  const int64_t n_chunks = workers_ ? std::min<int64_t>(cfg_.threads, B) : 1;
  if (n_chunks <= 1) {
    decode_chunk(0, B);
    return;
  }
  const int64_t chunk = (B + n_chunks - 1) / n_chunks;
  workers_->run(n_chunks, [&](int64_t c) {
    decode_chunk(c * chunk, std::min<int64_t>(c * chunk + chunk, B));
  });
}

void ServeEngine::run_speculative(std::vector<SpecJob>& jobs) {
  if (jobs.empty()) return;
  // One job = one sequence's draft-and-verify round; caches are disjoint,
  // so jobs shard 1:1 across workers. Same failure contract as run_decode:
  // exceptions (injected death or genuine decode failure) land in the job
  // record — never in the WorkerPool — and a failed job's cache is
  // untrusted, so its sequence retires kFailed at the barrier.
  auto run_one = [&](int64_t ji) {
    SpecJob& job = jobs[static_cast<size_t>(ji)];
    try {
      if (cfg_.fault != nullptr) {
        const double stall = cfg_.fault->stall_worker_ms();
        if (stall > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall));
        }
        if (cfg_.fault->kill_worker()) throw runtime::WorkerDeathError();
      }
      const obs::ScopedSpan span(job.span_name);
      job.result = nn::speculative_decode_step(model_, *job.cache, job.position, job.token,
                                               job.depth, job.k, &weight_cache_);
      // Poisoned logits fail the round just as the regular path's poisoned
      // sample does: this tick's output is discarded and the sequence
      // retires kFailed.
      if (cfg_.fault != nullptr && cfg_.fault->poison_logits()) {
        job.failed = true;
        job.error = "decode produced non-finite logits";
      }
    } catch (const std::exception& e) {
      job.failed = true;
      job.error = std::string("decode failed: ") + e.what();
    }
  };
  const int64_t n = static_cast<int64_t>(jobs.size());
  if (workers_ && n > 1) {
    workers_->run(n, run_one);
  } else {
    for (int64_t i = 0; i < n; ++i) run_one(i);
  }
}

void ServeEngine::finish_seq(size_t index, RequestStatus status) {
  sched_.active()[index]->kv_bytes_at_end = sched_.active()[index]->kv->bytes();
  // Failed decodes must not donate their rows to the prefix cache: the
  // failing chunk's appends may be torn mid-layer and the contents are
  // untrusted. Every other terminal retires at a tick barrier with a
  // consistent cache.
  std::unique_ptr<SeqState> s = sched_.finish(index, /*reuse=*/status != RequestStatus::kFailed);
  switch (status) {
    case RequestStatus::kOk: c_completed_.add(); break;
    case RequestStatus::kCancelled: c_cancelled_.add(); break;
    case RequestStatus::kTimeout: c_timed_out_.add(); break;
    case RequestStatus::kFailed: c_failed_.add(); break;
    default: break;  // kRejected/kShed/kExpired never reach finish_seq
  }
  c_tokens_.add(static_cast<int64_t>(s->out.size()));
  const double wait_ms = ms_between(s->submit_t, s->admit_t);
  h_queue_wait_.observe(wait_ms);
  h_wait_class_[std::clamp<int64_t>(s->req.priority, 0, 2)]->observe(wait_ms);
  resolve(*s, status);
}

void ServeEngine::fail_all_pending_locked(const char* why) {
  sched_.for_each_pending([&](SeqState& s) {
    if (s.resolved) return;
    c_failed_.add();
    s.error = why;
    resolve(s, RequestStatus::kFailed);
  });
}

void ServeEngine::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<nn::BatchedSeq> seqs;
  std::vector<uint8_t> chunk_failed;
  std::vector<std::string> chunk_errors;
  while (true) {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    if (failed_) {
      // The watchdog already resolved every pending promise; reclaim the
      // slots now that no decode is in flight and stop.
      sched_.clear_failed();
      return;
    }
    if (paused_ && !stop_) {
      parked_ = true;
      cv_.notify_all();  // pause() waits for parked_
      cv_.wait(lk, [&] { return !paused_ || stop_; });
      parked_ = false;
    }
    const auto admit_now = std::chrono::steady_clock::now();
    Scheduler::AdmitResult ar =
        sched_.admit(admit_ctl_.degrade_level(pressure_locked()), ladder_, admit_now);
    // Counters before promises: a client that observes a resolved future
    // must already see the matching counts in metrics().
    if (!ar.expired.empty()) c_expired_.add(static_cast<int64_t>(ar.expired.size()));
    if (!ar.shed.empty()) c_shed_.add(static_cast<int64_t>(ar.shed.size()));
    if (ar.degraded > 0) c_degraded_.add(ar.degraded);
    if (ar.retries > 0) c_retries_.add(ar.retries);
    for (auto& e : ar.expired) {
      e->error = "deadline expired while queued";
      resolve(*e, RequestStatus::kExpired);
    }
    for (auto& e : ar.shed) {
      resolve(*e, RequestStatus::kShed);  // error set by the scheduler
    }

    auto& active = sched_.active();
    if (active.empty()) {
      if (stop_ && sched_.idle()) return;
      if (sched_.queued() > 0) {
        // The head is cooling down after a transient KV rejection (or an
        // injected admission fault): sleep until its retry is due, then
        // rescan. Without faults or backoff this branch is unreachable —
        // an empty batch always admits the head.
        const auto retry_at = sched_.next_retry_time();
        if (retry_at != std::chrono::steady_clock::time_point{}) {
          cv_.wait_until(lk, retry_at);
        } else {
          cv_.wait_for(lk, std::chrono::microseconds(500));
        }
      } else {
        cv_.wait(lk);
      }
      continue;
    }
    const auto tick_t0 = std::chrono::steady_clock::now();
    const obs::ScopedSpan tick_span("serve/tick");

    // Chunked prefill: sequences still feeding their prompt advance up to
    // prefill_chunk positions this tick via prompt-only micro-batches ahead
    // of the regular step — never the last prompt token (it must produce
    // logits in the main batch below), so sampling and bitwise outputs are
    // unaffected; prefill just reaches the first sampled token in fewer
    // ticks. Decoding sequences keep their one token per tick.
    for (int64_t step = 1; step < cfg_.prefill_chunk && !failed_; ++step) {
      std::vector<size_t> pre;
      for (size_t i = 0; i < active.size(); ++i) {
        if (active[i]->prompt_fed + 1 < active[i]->req.prompt.size()) pre.push_back(i);
      }
      if (pre.empty()) break;
      seqs.assign(pre.size(), nn::BatchedSeq{});
      chunk_failed.assign(pre.size(), 0);
      chunk_errors.assign(pre.size(), std::string());
      for (size_t p = 0; p < pre.size(); ++p) {
        SeqState& s = *active[pre[p]];
        nn::BatchedSeq& j = seqs[p];
        j.cache = s.kv;
        j.position = s.position;
        j.token = s.next_token();
        j.want_logits = false;
        j.all_exits = false;
        j.exit_layer = s.policy == ExitPolicy::kFixedEarly ? s.exit_layer : int64_t{0};
      }
      lk.unlock();
      run_decode(seqs, chunk_failed, chunk_errors);
      lk.lock();
      if (failed_) break;
      // Advance survivors; retire failures in descending active order so
      // finish_seq's erase keeps the remaining indices valid.
      for (size_t p = pre.size(); p-- > 0;) {
        SeqState& s = *active[pre[p]];
        if (chunk_failed[p] != 0) {
          s.error = chunk_errors[p];
          finish_seq(pre[p], RequestStatus::kFailed);
          continue;
        }
        ++s.prompt_fed;
        ++s.position;
      }
    }
    if (failed_) {
      sched_.clear_failed();
      return;
    }
    if (active.empty()) continue;

    // Build this tick's per-sequence jobs from the *effective* policy (the
    // ladder may have degraded it at admission). Prompt-done speculative
    // sequences run a draft-and-verify round instead of a one-token step;
    // everything else — including speculative sequences still feeding their
    // prompt, whose last prompt token must sample in the main batch exactly
    // like kFinal's — takes the regular step.
    const size_t B = active.size();
    std::vector<SpecJob> spec_jobs;
    std::vector<size_t> slot_of(B, 0);  ///< index into seqs or spec_jobs
    std::vector<uint8_t> is_spec(B, 0);
    std::vector<size_t> normal_ix;
    for (size_t i = 0; i < B; ++i) {
      SeqState& s = *active[i];
      if (s.policy == ExitPolicy::kSpeculative && s.prompt_done()) {
        SpecJob job;
        job.index = i;
        job.cache = s.kv;
        job.position = s.position;
        job.token = s.next_token();
        job.depth = s.spec_depth;
        // Clamp the verify width to the tokens this request may still emit
        // and to the context window. Both bounds keep the round's transient
        // peak (position + k cached rows) within the verified-length
        // projection min(prompt + max_new, max_seq) that admission
        // reserved, so speculation needs no extra KV headroom. Both are
        // >= 1 here: a sequence at either limit retired last barrier.
        const int64_t remaining = s.req.max_new_tokens - static_cast<int64_t>(s.out.size());
        job.k = std::min({s.spec_k, remaining, model_.config().max_seq - s.position});
        job.span_name = spec_span_names_.at(s.spec_depth).c_str();
        slot_of[i] = spec_jobs.size();
        is_spec[i] = 1;
        spec_jobs.push_back(std::move(job));
      } else {
        slot_of[i] = normal_ix.size();
        normal_ix.push_back(i);
      }
    }
    seqs.assign(normal_ix.size(), nn::BatchedSeq{});
    chunk_failed.assign(normal_ix.size(), 0);
    chunk_errors.assign(normal_ix.size(), std::string());
    for (size_t p = 0; p < normal_ix.size(); ++p) {
      SeqState& s = *active[normal_ix[p]];
      nn::BatchedSeq& j = seqs[p];
      j.cache = s.kv;
      j.position = s.position;
      j.token = s.next_token();
      // Logits are only needed when this tick's output will be sampled
      // from: the last prompt token, or any generated token.
      j.want_logits = s.prompt_done() || s.prompt_fed + 1 == s.req.prompt.size();
      j.all_exits = s.policy == ExitPolicy::kVoted;
      j.exit_layer = s.policy == ExitPolicy::kFixedEarly ? s.exit_layer : int64_t{0};
    }
    h_batch_.observe(static_cast<double>(B));
    obs::Tracer::global().counter("serve/batch_size", static_cast<int64_t>(B));

    lk.unlock();
    {
      const obs::ScopedSpan decode_span("serve/decode");
      run_decode(seqs, chunk_failed, chunk_errors);
      run_speculative(spec_jobs);
    }
    lk.lock();
    if (failed_) {
      sched_.clear_failed();
      return;
    }

    const auto now = std::chrono::steady_clock::now();
    // Retire / advance, iterating backwards so finish_seq's erase is safe.
    for (size_t i = B; i-- > 0;) {
      SeqState& s = *active[i];
      if (is_spec[i] != 0) {
        SpecJob& job = spec_jobs[slot_of[i]];
        if (job.failed) {
          // Position is not advanced: the cache state is unknown, and the
          // slot is being released anyway (reuse=false — see finish_seq).
          s.error = job.error;
          finish_seq(i, RequestStatus::kFailed);
          continue;
        }
        const nn::SpeculativeResult& r = job.result;
        s.spec_drafted += r.drafted;
        s.spec_accepted += r.accepted_drafts;
        c_spec_accepted_.add(r.accepted_drafts);
        c_spec_rejected_.add(r.drafted - r.accepted_drafts);
        if (r.drafted > 0) {
          h_spec_accepted_.observe(static_cast<double>(r.accepted_drafts));
          h_spec_rate_.observe(static_cast<double>(r.accepted_drafts) /
                               static_cast<double>(r.drafted));
        }
        if (r.tokens.empty()) {
          // Non-finite logits on the very first verified row: nothing
          // emitted; the step rewound the cache to `position`.
          s.error = "decode produced non-finite logits";
          finish_seq(i, RequestStatus::kFailed);
          continue;
        }
        if (!s.has_first_token) {
          s.first_token_t = now;
          s.has_first_token = true;
        }
        for (int64_t tok : r.tokens) {
          s.out.push_back(tok);
          if (s.sink.on_token) s.sink.on_token(s.req.id, tok);
        }
        s.last_token = r.tokens.back();
        s.position += static_cast<int64_t>(r.tokens.size());
        if (r.nonfinite) {
          // A later verified row went non-finite: the good prefix already
          // streamed, but the sequence cannot continue.
          s.error = "decode produced non-finite logits";
          finish_seq(i, RequestStatus::kFailed);
          continue;
        }
      } else {
        const size_t p = slot_of[i];
        if (chunk_failed[p] != 0) {
          // Position is not advanced: the cache state for this chunk is
          // unknown, and the slot is being released anyway.
          s.error = chunk_errors[p];
          finish_seq(i, RequestStatus::kFailed);
          continue;
        }
        const bool fed_prompt = !s.prompt_done();
        if (fed_prompt) ++s.prompt_fed;
        ++s.position;

        if (s.prompt_done() && seqs[p].want_logits) {
          Tensor logits;
          if (s.policy == ExitPolicy::kVoted) {
            logits = core::combine_exit_logits(seqs[p].logits, exit_weights_, exit_losses_,
                                               cfg_.voting)
                         .reshape({model_.config().vocab});
          } else {
            logits = std::move(seqs[p].logits.at(0));
          }
          nn::GenerateConfig g;
          g.temperature = s.req.temperature;
          g.top_k = s.req.top_k;
          const int64_t tok = nn::sample_token(logits, g, s.rng);
          if (!std::isfinite(logits[tok])) {
            s.error = "decode produced non-finite logits";
            finish_seq(i, RequestStatus::kFailed);
            continue;
          }
          if (!s.has_first_token) {
            s.first_token_t = now;
            s.has_first_token = true;
          }
          s.out.push_back(tok);
          s.last_token = tok;
          if (s.sink.on_token) s.sink.on_token(s.req.id, tok);
        }
      }

      if (!s.cancelled && cfg_.fault != nullptr && cfg_.fault->disconnect_client()) {
        s.cancelled = true;
        s.error = "fault: client disconnected";
      }

      RequestStatus status = RequestStatus::kOk;
      bool done = false;
      if (s.cancelled) {
        status = RequestStatus::kCancelled;
        done = true;
      } else if (s.req.deadline_ms > 0.0 && ms_between(s.submit_t, now) > s.req.deadline_ms) {
        status = RequestStatus::kTimeout;
        s.error = "deadline exceeded mid-decode";
        done = true;
      } else if (static_cast<int64_t>(s.out.size()) >= s.req.max_new_tokens ||
                 s.position >= model_.config().max_seq) {
        done = true;  // finished, or context window exhausted (partial ok)
      }
      if (done) finish_seq(i, status);
    }
    // Workers are quiesced here, so the scheduler may read slot contents
    // to refresh the poll-safe byte accounting and the high-water mark.
    sched_.kv_sync_live_bytes();
    const double tick_ms = ms_between(tick_t0, std::chrono::steady_clock::now());
    h_tick_ms_.observe(tick_ms);
    admit_ctl_.observe_tick(tick_ms);
  }
}

void ServeEngine::watchdog() {
  std::unique_lock<std::mutex> lk(mu_);
  const auto interval =
      std::chrono::milliseconds(std::max<int64_t>(cfg_.watchdog_stall_ms / 4, 1));
  uint64_t last_hb = heartbeat_.load();
  auto last_progress = std::chrono::steady_clock::now();
  while (!stop_) {
    cv_.wait_for(lk, interval);
    if (stop_ || failed_) return;
    const auto now = std::chrono::steady_clock::now();
    const uint64_t hb = heartbeat_.load();
    // A static heartbeat only matters when the loop has work it should be
    // advancing: paused/parked and fully-idle engines are quiescent by
    // design, not wedged.
    if (hb != last_hb || paused_ || parked_ || sched_.idle()) {
      last_hb = hb;
      last_progress = now;
      continue;
    }
    if (ms_between(last_progress, now) < static_cast<double>(cfg_.watchdog_stall_ms)) continue;
    // The loop is wedged (stalled decode): fail every pending request so
    // clients get a clean kFailed instead of a future that never resolves,
    // and stop admitting. Slots are reclaimed when (if) the decode returns.
    c_watchdog_.add();
    failed_ = true;
    accepting_ = false;
    fail_all_pending_locked("watchdog: scheduler stalled");
    cv_.notify_all();
    return;
  }
}

void ServeEngine::pause() {
  std::unique_lock<std::mutex> lk(mu_);
  if (paused_ || stop_) return;
  paused_ = true;
  cv_.notify_all();
  // Wait until the loop parks so callers observe a quiescent engine; a
  // decode tick already in flight finishes first.
  cv_.wait(lk, [&] { return parked_ || stop_ || failed_; });
}

void ServeEngine::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = false;
    stop_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  if (sched_thread_.joinable()) sched_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  workers_.reset();
}

EngineMetrics ServeEngine::metrics() const {
  // Instruments are atomic and the pool guards its own state, so no engine
  // lock is needed: this is safe to poll while the scheduler runs.
  EngineMetrics m;
  m.submitted = c_submitted_.value();
  m.completed = c_completed_.value();
  m.rejected = c_rejected_.value();
  m.cancelled = c_cancelled_.value();
  m.timed_out = c_timed_out_.value();
  m.shed = c_shed_.value();
  m.expired = c_expired_.value();
  m.failed = c_failed_.value();
  m.degraded = c_degraded_.value();
  m.admission_retries = c_retries_.value();
  m.watchdog_fired = c_watchdog_.value();
  m.tokens_generated = c_tokens_.value();
  m.ticks = h_batch_.count();
  m.occupancy_sum = h_batch_.sum();
  m.kv_high_water_bytes = sched_.kv_high_water_bytes();
  m.kv_budget_bytes = cfg_.kv_byte_budget;
  return m;
}

}  // namespace edgellm::serve
