// Slot-addressed pool of per-sequence KV caches under one global byte
// budget — the serving-side refactor of IncrementalDecoder's private
// caches. Admission control reserves a slot against the *projected* peak
// bytes of a sequence (prompt + max_new_tokens positions), so a request
// that would blow the budget waits in the queue instead of OOM-ing the
// device mid-decode.
//
// Thread model: pool *state* (slot occupancy, byte accounting, high-water
// mark) is guarded by an internal mutex, so the metrics accessors are
// const and safe to poll from any thread while the scheduler thread
// acquires/releases. Slot *contents* are not locked: the engine's
// scheduler thread hands each acquired slot to exactly one worker between
// barriers, and workers append only to their own (disjoint) slots.
// Because slot contents are unlocked, the metrics accessors never read
// them — live-byte accounting is a cached counter the owning scheduler
// refreshes via sync_live_bytes() at tick barriers (when no worker is
// appending).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "nn/kv_cache.hpp"
#include "obs/metrics.hpp"

namespace edgellm::serve {

struct KvPoolConfig {
  int64_t n_slots = 8;        ///< max concurrently cached sequences
  int64_t kv_dim = 0;         ///< model.config().kv_dim()
  int64_t byte_budget = 0;    ///< global cap on projected cache bytes; 0 = unlimited
  bool quantize = false;      ///< int8 slots (4x cheaper admission too)
  /// Non-owning metrics sink (must outlive the pool). The pool keeps
  /// kv/acquired, kv/rejected and kv/released counters plus kv/bytes_in_use,
  /// kv/committed_bytes and kv/high_water_bytes gauges up to date in it;
  /// null records nothing.
  obs::Registry* registry = nullptr;
};

/// Why an acquire() failed — the structured reason retry logic needs:
/// budget exhaustion is transient (live sequences release bytes as they
/// finish) while a projection larger than the whole budget is permanent
/// (callers pre-check that with projected_bytes()).
enum class KvAdmitReason {
  kOk,
  kByteBudget,      ///< projection would push committed bytes over the budget
  kSlotsExhausted,  ///< every slot is occupied
};

const char* to_string(KvAdmitReason r);

class KvCachePool {
 public:
  explicit KvCachePool(KvPoolConfig cfg);

  /// Reserves a slot for a sequence that will use `n_layers` layers and
  /// grow to at most `projected_positions` cached positions. Returns the
  /// slot id, or -1 when no slot is free or the projection would exceed
  /// the byte budget (the caller queues the request and retries later).
  /// `reason`, when non-null, reports why a -1 happened (kOk on success).
  int64_t acquire(int64_t projected_positions, int64_t n_layers,
                  KvAdmitReason* reason = nullptr);

  /// Returns a slot to the pool (its storage is dropped).
  void release(int64_t slot);

  nn::KvCache& slot(int64_t id);
  const nn::KvCache& slot(int64_t id) const;

  /// Re-samples every live slot's actual bytes into the pool's cached
  /// accounting and advances the high-water mark; returns the new total.
  /// Reads slot *contents*, so only the owning scheduler thread may call
  /// it, and only at a tick barrier (no worker appending). The engine
  /// calls it once per tick.
  int64_t sync_live_bytes();

  /// Bytes held by live slots as of the last sync_live_bytes() refresh
  /// (release() removes a slot's contribution immediately). A cached,
  /// mutex-guarded counter: safe to poll concurrently from any thread.
  int64_t bytes_in_use() const;

  /// Sum of live slots' projected peak bytes (what admission checks).
  int64_t committed_bytes() const;

  /// Largest bytes_in_use() ever observed.
  int64_t high_water_bytes() const;

  int64_t slots_in_use() const;
  int64_t capacity() const { return cfg_.n_slots; }
  int64_t byte_budget() const { return cfg_.byte_budget; }

  /// Projected peak bytes for a sequence (admission arithmetic, exposed
  /// for callers sizing budgets).
  int64_t projected_bytes(int64_t positions, int64_t n_layers) const {
    return positions * nn::KvCache::bytes_per_position(n_layers, cfg_.kv_dim, cfg_.quantize);
  }

 private:
  KvPoolConfig cfg_;

  // Instruments resolved once at construction (cfg_.registry may be null,
  // then all stay null and recording is skipped).
  obs::Counter* c_acquired_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_released_ = nullptr;
  obs::Gauge* g_bytes_ = nullptr;
  obs::Gauge* g_committed_ = nullptr;
  obs::Gauge* g_high_water_ = nullptr;

  /// Guards occupancy/accounting state below. Mutable so the read-only
  /// metrics accessors stay const for callers.
  mutable std::mutex mu_;
  std::vector<nn::KvCache> slots_;
  std::vector<bool> in_use_;
  std::vector<int64_t> reserved_;    ///< per-slot projected bytes
  std::vector<int64_t> live_bytes_;  ///< per-slot bytes at the last sync
  int64_t committed_ = 0;
  int64_t live_total_ = 0;   ///< sum of live_bytes_, what bytes_in_use() reports
  int64_t high_water_ = 0;   ///< advanced by sync_live_bytes()
  int64_t in_use_count_ = 0;
};

}  // namespace edgellm::serve
