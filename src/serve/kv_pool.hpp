// Serving-side KV cache pools under one global byte budget.
//
// Two implementations share the admission vocabulary (KvAdmitReason):
//
//   - KvCachePool: the original slot-addressed pool — one contiguous
//     nn::KvCache per admitted sequence, whole-sequence projected-peak
//     reservation. Simple, zero sharing.
//   - PagedKvPool: vLLM-style paged storage. A sequence's rows live in
//     fixed-size blocks (block_tokens positions × one layer each) chained
//     by a per-layer block table, so admission reserves only the
//     *incremental* blocks a request needs after matching its prompt
//     against a prefix trie of finished sequences. Shared prefix blocks
//     are reference-counted and copy-on-write: a request that diverges
//     mid-block gets a private copy at the divergence point, never
//     mutating the cached prefix. Unreferenced cached prefixes are
//     LRU-evicted when the budget needs the blocks back.
//
// Thread model (both pools): accounting state is guarded by an internal
// mutex, so the metrics accessors are safe to poll from any thread while
// the scheduler acquires/releases. Sequence *contents* are not locked:
// the engine hands each sequence to exactly one worker between barriers,
// workers append only to blocks their own sequence owns, and shared
// prefix blocks are read-only while referenced. Paged block allocation
// (which may run inside a worker's append) takes the pool mutex; row
// reads and writes never do.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nn/kv_cache.hpp"
#include "obs/metrics.hpp"

namespace edgellm::serve {

struct KvPoolConfig {
  int64_t n_slots = 8;        ///< max concurrently cached sequences
  int64_t kv_dim = 0;         ///< model.config().kv_dim()
  int64_t byte_budget = 0;    ///< global cap on projected cache bytes; 0 = unlimited
  bool quantize = false;      ///< int8 slots (4x cheaper admission too)
  /// Use the paged pool (PagedKvPool: block-granular admission with
  /// cross-request prefix reuse) instead of slot-addressed contiguous
  /// caches. Greedy outputs are byte-identical either way.
  bool paged = false;
  int64_t block_tokens = 16;  ///< paged only: positions per KV block
  int64_t n_layers = 0;       ///< paged only: model depth (set by the scheduler)
  /// Non-owning metrics sink (must outlive the pool). The pool keeps
  /// kv/acquired, kv/rejected and kv/released counters plus kv/bytes_in_use,
  /// kv/committed_bytes and kv/high_water_bytes gauges up to date in it;
  /// null records nothing.
  obs::Registry* registry = nullptr;
};

/// Why an acquire() failed — the structured reason retry logic needs:
/// budget exhaustion is transient (live sequences release bytes as they
/// finish) while a projection larger than the whole budget is permanent
/// (callers pre-check that with projected_bytes()).
enum class KvAdmitReason {
  kOk,
  kByteBudget,      ///< projection would push committed bytes over the budget
  kSlotsExhausted,  ///< every slot is occupied
};

const char* to_string(KvAdmitReason r);

class KvCachePool {
 public:
  explicit KvCachePool(KvPoolConfig cfg);

  /// Reserves a slot for a sequence that will use `n_layers` layers and
  /// grow to at most `projected_positions` cached positions. `n_layers` is
  /// the sequence's *effective* decode depth — for a request the admission
  /// ladder degraded to an early exit, the post-degrade exit layer, so a
  /// degraded request is only ever charged for the layers it touches.
  /// Returns the slot id, or -1 when no slot is free or the projection
  /// would exceed the byte budget (the caller queues the request and
  /// retries later). `reason`, when non-null, reports why a -1 happened
  /// (kOk on success).
  int64_t acquire(int64_t projected_positions, int64_t n_layers,
                  KvAdmitReason* reason = nullptr);

  /// Returns a slot to the pool (its storage is dropped). Reads the slot's
  /// contents to settle the live-byte accounting immediately — call it only
  /// from the owning scheduler thread at a tick barrier (the same contract
  /// as handing the slot to a worker), never while a worker may be
  /// appending to this slot.
  void release(int64_t slot);

  nn::KvCache& slot(int64_t id);
  const nn::KvCache& slot(int64_t id) const;

  /// Re-samples every live slot's actual bytes into the pool's cached
  /// accounting and advances the high-water mark; returns the new total.
  /// Reads slot *contents*, so only the owning scheduler thread may call
  /// it, and only at a tick barrier (no worker appending). The engine
  /// calls it once per tick.
  int64_t sync_live_bytes();

  /// Bytes held by live slots as of the last sync_live_bytes() refresh
  /// (release() removes a slot's contribution immediately). A cached,
  /// mutex-guarded counter: safe to poll concurrently from any thread.
  int64_t bytes_in_use() const;

  /// Sum of live slots' projected peak bytes (what admission checks).
  int64_t committed_bytes() const;

  /// Largest bytes_in_use() ever observed (release() settles a dying
  /// slot's final bytes into the mark even when no sync ran after its
  /// last append, so short-lived slots cannot slip under it).
  int64_t high_water_bytes() const;

  int64_t slots_in_use() const;
  int64_t capacity() const { return cfg_.n_slots; }
  int64_t byte_budget() const { return cfg_.byte_budget; }

  /// Projected peak bytes for a sequence (admission arithmetic, exposed
  /// for callers sizing budgets).
  int64_t projected_bytes(int64_t positions, int64_t n_layers) const {
    return positions * nn::KvCache::bytes_per_position(n_layers, cfg_.kv_dim, cfg_.quantize);
  }

 private:
  KvPoolConfig cfg_;

  // Instruments resolved once at construction (cfg_.registry may be null,
  // then all stay null and recording is skipped).
  obs::Counter* c_acquired_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_released_ = nullptr;
  obs::Gauge* g_bytes_ = nullptr;
  obs::Gauge* g_committed_ = nullptr;
  obs::Gauge* g_high_water_ = nullptr;

  /// Guards occupancy/accounting state below. Mutable so the read-only
  /// metrics accessors stay const for callers.
  mutable std::mutex mu_;
  std::vector<nn::KvCache> slots_;
  std::vector<bool> in_use_;
  std::vector<int64_t> reserved_;    ///< per-slot projected bytes
  std::vector<int64_t> live_bytes_;  ///< per-slot bytes at the last sync
  int64_t committed_ = 0;
  int64_t live_total_ = 0;   ///< sum of live_bytes_, what bytes_in_use() reports
  int64_t high_water_ = 0;   ///< advanced by sync_live_bytes() and release()
  int64_t in_use_count_ = 0;
};

// --- Paged pool -------------------------------------------------------------

struct PagedKvConfig {
  int64_t block_tokens = 16;  ///< positions per KV block (power of two not required)
  int64_t n_layers = 0;       ///< model depth: max layers any sequence may use
  int64_t kv_dim = 0;         ///< model.config().kv_dim()
  int64_t byte_budget = 0;    ///< cap on allocated block bytes; 0 = unlimited
  bool quantize = false;      ///< int8 blocks (one fp32 scale per row)
  /// Non-owning metrics sink (must outlive the pool): kv/acquired,
  /// kv/released, kv/rejected, kv/prefix_hit, kv/prefix_miss,
  /// kv/prefix_hit_tokens, kv/evicted_blocks, kv/cow_forks counters and
  /// kv/bytes_in_use, kv/committed_bytes, kv/high_water_bytes,
  /// kv/blocks_in_use, kv/blocks_cached gauges; null records nothing.
  obs::Registry* registry = nullptr;
};

/// One fixed-capacity KV block: `block_tokens` positions of K and V rows
/// for a single layer. Exactly one representation is populated depending
/// on the pool's quantize flag. Blocks are recycled through a free list —
/// storage is sized once and row writes overwrite in place.
struct KvBlock {
  std::vector<float> k, v;            ///< fp32: block_tokens * kv_dim each
  std::vector<int8_t> kq, vq;         ///< int8 payload
  std::vector<float> k_scales, v_scales;  ///< one fp32 scale per row
};

class PagedKvPool;

/// One admitted sequence's view of the paged pool: a per-layer table of
/// block pointers. The first `shared_len()` positions may live in blocks
/// shared with the prefix cache (read-only); appends go to owned blocks,
/// copy-on-write-forking a partially-consumed shared block at the
/// divergence point. Implements the row-addressed decode interface, so
/// attention reads through the block table and stays bitwise identical to
/// contiguous storage.
class PagedKvSeq final : public nn::KvSequenceView {
 public:
  void append(int64_t layer, const float* k, const float* v) override;
  void load_k(int64_t layer, int64_t pos, float* out) const override;
  void load_v(int64_t layer, int64_t pos, float* out) const override;
  const float* k_row(int64_t layer, int64_t pos) const override;
  const float* v_row(int64_t layer, int64_t pos) const override;
  int64_t n_layers() const override { return depth_; }
  int64_t kv_dim() const override { return kv_dim_; }
  bool quantized() const override { return quantize_; }
  int64_t positions(int64_t layer) const override;
  /// Speculative-decode rewind: drops cached positions >= n in every
  /// layer. Owned blocks past the new tail are recycled to the pool's free
  /// list; shared prefix blocks are never touched (they belong to the trie
  /// and stay pinned for this sequence), so truncating into the shared
  /// region only rolls `positions()` back — a later append copy-on-write
  /// forks exactly as a partial prefix match would. Takes the pool mutex.
  void truncate(int64_t n) override;
  /// Bytes of blocks this sequence *owns* (shared prefix blocks are the
  /// cache's, not this request's marginal cost).
  int64_t bytes() const override;

  /// Positions served from the prefix cache at admission (the tokens this
  /// request never had to prefill).
  int64_t shared_len() const { return shared_len_; }
  /// Copy-on-write block copies this sequence performed (one per layer at
  /// the divergence point).
  int64_t cow_forks() const { return cow_forks_; }

 private:
  friend class PagedKvPool;
  PagedKvSeq() = default;

  PagedKvPool* pool_ = nullptr;
  int64_t depth_ = 0;
  int64_t kv_dim_ = 0;
  int64_t block_tokens_ = 0;
  bool quantize_ = false;
  int64_t shared_len_ = 0;
  int64_t cow_forks_ = 0;
  int64_t reserved_bytes_ = 0;  ///< committed at acquire, returned at release
  std::vector<std::vector<KvBlock*>> table_;  ///< [layer][block index]
  /// Per layer: table entries below this index are shared (read-only).
  /// Appending into the last shared entry (a partial prefix match) forks it.
  std::vector<int64_t> owned_from_;
  std::vector<int64_t> len_;            ///< cached positions per layer
  std::vector<void*> pins_;             ///< trie nodes ref'd for this seq (internal)
};

/// Paged KV pool with cross-request prefix reuse. See file header for the
/// storage model; the admission contract mirrors KvCachePool's: a request
/// is reserved its worst-case *incremental* block bytes up front, so block
/// allocation mid-decode can never fail for an admitted sequence (cached,
/// unreferenced prefixes are evicted on demand to honor the reservation).
class PagedKvPool {
 public:
  explicit PagedKvPool(PagedKvConfig cfg);
  ~PagedKvPool();

  PagedKvPool(const PagedKvPool&) = delete;
  PagedKvPool& operator=(const PagedKvPool&) = delete;

  struct AcquireResult {
    PagedKvSeq* seq = nullptr;   ///< null when rejected
    int64_t prefix_tokens = 0;   ///< positions pre-filled from the prefix cache
    KvAdmitReason reason = KvAdmitReason::kOk;
  };

  /// Admits a sequence that will decode `n_layers` layers (the
  /// post-degrade effective depth) and grow to at most
  /// `projected_positions` cached positions. The prompt is matched
  /// against the prefix trie: full-block hits are referenced in place,
  /// and a divergence inside a cached block is referenced up to the
  /// divergence point (copy-on-write on first append). At most
  /// prompt.size()-1 positions are reused — the last prompt token always
  /// decodes so the request's first sampled logits exist. Reservation =
  /// (total projected blocks - fully shared blocks) * n_layers.
  AcquireResult acquire(const std::vector<int64_t>& prompt, int64_t projected_positions,
                        int64_t n_layers);

  /// Returns a sequence. `tokens` must be the ids whose rows the cache
  /// holds, in order (the first seq->positions(0) of prompt + generated
  /// tokens). With `reuse`, every full owned block is donated to the
  /// prefix trie for future requests (LRU-evictable once unreferenced);
  /// without it (failed decodes — contents untrusted) everything owned is
  /// recycled immediately, `tokens` is ignored, and torn state is
  /// tolerated: a decode that died mid-tick may have appended to some
  /// layers but not others, so per-layer block counts may disagree.
  /// Call at a tick barrier, like KvCachePool::release.
  void release(PagedKvSeq* seq, const std::vector<int64_t>& tokens, bool reuse);

  /// Worst-case (no prefix hit) projected bytes — block-granular, so it is
  /// the paged analogue of KvCachePool::projected_bytes for budget sizing
  /// and the engine's can-this-ever-fit check.
  int64_t projected_bytes(int64_t positions, int64_t n_layers) const;

  int64_t block_bytes() const;
  int64_t block_tokens() const { return cfg_.block_tokens; }
  int64_t byte_budget() const { return cfg_.byte_budget; }

  /// Reserved incremental bytes of live sequences plus bytes of shared
  /// prefix blocks they pin — everything admission must treat as spoken
  /// for. The paged analogue of KvCachePool::committed_bytes().
  int64_t committed_bytes() const;
  /// Bytes of all allocated blocks (live-owned + prefix-cached).
  int64_t bytes_in_use() const;
  int64_t high_water_bytes() const;
  int64_t seqs_in_use() const;
  int64_t allocated_blocks() const;  ///< live-owned + cached
  int64_t cached_blocks() const;     ///< held by the prefix trie
  int64_t free_blocks() const;       ///< recycled, awaiting reuse
  int64_t total_blocks() const;      ///< ever constructed (== allocated + free)

  /// Refreshes the exported gauges; returns bytes_in_use(). Cheap (the
  /// paged pool's accounting is incremental, not re-sampled), kept for
  /// call-site symmetry with KvCachePool.
  int64_t sync_live_bytes();

 private:
  friend class PagedKvSeq;
  struct TrieNode;

  KvBlock* allocate_block_locked();
  void recycle_block_locked(KvBlock* b);
  /// Evicts the least-recently-used unreferenced leaf (the head of
  /// `evictable_`, O(log n)); false when nothing is evictable.
  bool evict_one_locked();
  void unpin_locked(TrieNode* n);
  TrieNode* pin_locked(TrieNode* n);
  int64_t node_bytes_locked(const TrieNode& n) const;
  void touch_locked(TrieNode* n);
  /// Re-derives whether `n` belongs in `evictable_` (unreferenced leaf)
  /// and inserts/removes it. Call after any change to refs or children.
  void sync_evictable_locked(TrieNode* n);
  void update_gauges_locked();

  /// Called by PagedKvSeq::append when it needs a fresh block (tail full,
  /// or a copy-on-write fork). Never fails for an admitted sequence: the
  /// reservation covers it and cached blocks are evicted on demand.
  KvBlock* allocate_block(PagedKvSeq* seq);
  /// Called by PagedKvSeq::truncate: recycles the sequence's owned blocks
  /// past position `n` under the pool mutex. The reservation made at
  /// acquire is untouched — the freed blocks may be re-allocated by the
  /// same sequence on its next append, still within the reservation.
  void truncate_seq(PagedKvSeq* seq, int64_t n);
  /// Counter bump from PagedKvSeq::append (atomic, lock-free).
  void count_cow_fork();

  PagedKvConfig cfg_;

  obs::Counter* c_acquired_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_released_ = nullptr;
  obs::Counter* c_prefix_hit_ = nullptr;
  obs::Counter* c_prefix_miss_ = nullptr;
  obs::Counter* c_prefix_hit_tokens_ = nullptr;
  obs::Counter* c_evicted_blocks_ = nullptr;
  obs::Counter* c_cow_forks_ = nullptr;
  obs::Gauge* g_bytes_ = nullptr;
  obs::Gauge* g_committed_ = nullptr;
  obs::Gauge* g_high_water_ = nullptr;
  obs::Gauge* g_blocks_ = nullptr;
  obs::Gauge* g_blocks_cached_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<KvBlock>> blocks_;  ///< every block ever constructed
  std::vector<KvBlock*> free_;                    ///< recycled blocks
  std::unique_ptr<TrieNode> root_;
  /// Eviction candidates — every unreferenced leaf, keyed by its last_use
  /// stamp (unique: the clock advances per touch). begin() is the LRU
  /// victim, so eviction never re-walks the trie under the pool mutex.
  std::map<uint64_t, TrieNode*> evictable_;
  std::unordered_map<PagedKvSeq*, std::unique_ptr<PagedKvSeq>> live_;
  uint64_t lru_clock_ = 0;
  int64_t allocated_blocks_ = 0;  ///< live-owned + cached (never free-listed)
  int64_t cached_blocks_ = 0;     ///< owned by trie nodes
  int64_t committed_ = 0;         ///< live reservations (incremental bytes)
  int64_t pinned_bytes_ = 0;      ///< shared blocks referenced by live seqs
  int64_t high_water_ = 0;        ///< max allocated bytes ever
};

}  // namespace edgellm::serve
