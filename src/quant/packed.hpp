// Packed integer weight storage and integer-weight GEMM — the *deployed*
// form of a LUC-compressed layer. Where fake_quant models the numerics
// during tuning, PackedMatrix actually stores the integers (two 4-bit
// values per byte, or one 8-bit value) and computes against them, so the
// storage saving is real, and tests can assert bit-exact agreement with
// the fake-quant reference.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant.hpp"

namespace edgellm::quant {

/// A [rows, cols] weight matrix stored as packed symmetric integers with
/// one fp32 scale per row.
class PackedMatrix {
 public:
  /// Quantizes `w` ([rows, cols]) symmetrically per row at `bits` (4 or 8)
  /// and packs it.
  static PackedMatrix pack(const Tensor& w, int bits);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int bits() const { return bits_; }

  /// Actual bytes held (payload + scales) — the deployment footprint.
  int64_t storage_bytes() const;

  /// Reconstructs the float matrix (must equal fake_quant of the source).
  Tensor dequantize() const;

  /// Signed integer value at (r, c).
  int32_t value_at(int64_t r, int64_t c) const;

  float row_scale(int64_t r) const { return scales_[static_cast<size_t>(r)]; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int bits_ = 8;
  std::vector<uint8_t> payload_;  ///< packed two-per-byte when bits == 4
  std::vector<float> scales_;    ///< one per row
};

/// y[m, rows] = x[m, cols] * W^T where W is packed. The inner product is
/// accumulated in int32 against the integer weights, then scaled — the
/// arithmetic a deployed int kernel performs.
Tensor packed_matmul_nt(const Tensor& x, const PackedMatrix& w);

}  // namespace edgellm::quant
