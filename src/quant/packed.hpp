// Packed integer weight storage and integer-weight GEMM — the *deployed*
// form of a LUC-compressed layer. Where fake_quant models the numerics
// during tuning, PackedMatrix actually stores the integers (two 4-bit
// values per byte, or one 8-bit value) and computes against them, so the
// storage saving is real, and tests can assert bit-exact agreement with
// the fake-quant reference.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant.hpp"
#include "tensor/gemm.hpp"

namespace edgellm::quant {

/// A [rows, cols] weight matrix stored as packed symmetric integers with
/// one fp32 scale per row.
class PackedMatrix {
 public:
  /// Quantizes `w` ([rows, cols]) symmetrically per row at `bits` (4 or 8)
  /// and packs it.
  static PackedMatrix pack(const Tensor& w, int bits);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int bits() const { return bits_; }

  /// Actual bytes held (payload + scales) — the deployment footprint.
  int64_t storage_bytes() const;

  /// Reconstructs the float matrix (must equal fake_quant of the source).
  Tensor dequantize() const;

  /// Signed integer value at (r, c).
  int32_t value_at(int64_t r, int64_t c) const;

  /// Decodes row `r` to floats in one pass (nibble pairs per byte for
  /// int4), applying the row scale: out[c] = q(r, c) * row_scale(r).
  /// `out` must hold cols() floats.
  void decode_row(int64_t r, float* out) const;

  /// Decodes raw integer values q(r, c) for c in [c0, c1) into `out`
  /// (c1 - c0 entries), handling odd nibble alignment at c0. One pass per
  /// row range, no per-element bounds check.
  void decode_row_range_q(int64_t r, int64_t c0, int64_t c1, int8_t* out) const;

  /// Decodes *unscaled* float(q(r, c)) for c in [c0, c1) straight into a
  /// strided destination: out[(c - c0) * stride]. This is the panel-decode
  /// primitive of the blocked kernel — it scatters a weight row into the
  /// micro-kernel panel layout in one pass, with no integer temporary.
  /// int -> fp32 is exact for the |q| <= 127 range these hold.
  void decode_row_range_unscaled(int64_t r, int64_t c0, int64_t c1, float* out,
                                 int64_t stride) const;

  float row_scale(int64_t r) const { return scales_[static_cast<size_t>(r)]; }

  /// Packed bytes per row: cols for int8, ceil(cols / 2) for int4.
  int64_t row_bytes() const { return bits_ == 4 ? (cols_ + 1) / 2 : cols_; }

  /// Raw packed payload of row `r` (row_bytes() bytes). The fused
  /// dequant-dot kernel (tensor/simd.hpp) reads integer strips straight
  /// from here — no fp32 panel temporary.
  const uint8_t* row_payload(int64_t r) const {
    return payload_.data() + static_cast<size_t>(r * row_bytes());
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int bits_ = 8;
  std::vector<uint8_t> payload_;  ///< packed two-per-byte when bits == 4
  std::vector<float> scales_;    ///< one per row
};

/// y[m, rows] = x[m, cols] * W^T where W is packed: fp32 activations
/// against integer weights, each output scaled once by its weight-row
/// scale — the arithmetic a deployed weight-only-quantized kernel
/// performs. Dispatches to the blocked kernel when the shape clears
/// ops::gemm::use_blocked(kPackedNT, ...); output is bitwise identical
/// either way.
Tensor packed_matmul_nt(const Tensor& x, const PackedMatrix& w);

/// The scalar reference kernel (per-element value_at loop, ascending c,
/// one scale multiply per output). The blocked kernel is bit-exact with
/// this by construction: it decodes row panels in bulk but accumulates
/// each output element over ascending c with partial sums round-tripping
/// through y, scaling once at the end.
Tensor packed_matmul_nt_ref(const Tensor& x, const PackedMatrix& w);

/// Blocked kernel with an explicit schedule (the autotuner times
/// candidates through this). Runs the dispatched fused dequant-dot core:
/// weight strips decode from packed integer storage straight into the
/// accumulation (vector registers on SIMD backends) with no fp32 panel
/// temporary. Bitwise equal to packed_matmul_nt_ref unless `fast_math`
/// (defaults to the global flag) opts this call into the FMA
/// multi-accumulator kernels.
Tensor packed_matmul_nt_blocked(const Tensor& x, const PackedMatrix& w,
                                const ops::gemm::Blocking& blk,
                                bool fast_math = ops::gemm::fast_math_enabled());

}  // namespace edgellm::quant
