#include "quant/packed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace edgellm::quant {

PackedMatrix PackedMatrix::pack(const Tensor& w, int bits) {
  check_arg(bits == 4 || bits == 8, "PackedMatrix: bits must be 4 or 8");
  check_arg(w.ndim() == 2 && w.numel() > 0, "PackedMatrix: needs a non-empty 2-d tensor");

  PackedMatrix p;
  p.rows_ = w.dim(0);
  p.cols_ = w.dim(1);
  p.bits_ = bits;
  p.scales_.resize(static_cast<size_t>(p.rows_));

  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const int64_t vals_per_byte = bits == 4 ? 2 : 1;
  const int64_t row_bytes = (p.cols_ + vals_per_byte - 1) / vals_per_byte;
  p.payload_.assign(static_cast<size_t>(p.rows_ * row_bytes), 0);

  for (int64_t r = 0; r < p.rows_; ++r) {
    float maxabs = 0.0f;
    for (int64_t c = 0; c < p.cols_; ++c) maxabs = std::max(maxabs, std::fabs(w[r * p.cols_ + c]));
    const float scale = maxabs > 0.0f ? maxabs / qmax : 1.0f;
    p.scales_[static_cast<size_t>(r)] = scale;
    for (int64_t c = 0; c < p.cols_; ++c) {
      const float qf = std::clamp(std::round(w[r * p.cols_ + c] / scale), -qmax, qmax);
      const int32_t q = static_cast<int32_t>(qf);
      if (bits == 8) {
        p.payload_[static_cast<size_t>(r * row_bytes + c)] = static_cast<uint8_t>(q & 0xFF);
      } else {
        // Two nibbles per byte, low nibble first, stored offset-by-8.
        const uint8_t nib = static_cast<uint8_t>((q + 8) & 0x0F);
        uint8_t& slot = p.payload_[static_cast<size_t>(r * row_bytes + c / 2)];
        if (c % 2 == 0) {
          slot = static_cast<uint8_t>((slot & 0xF0) | nib);
        } else {
          slot = static_cast<uint8_t>((slot & 0x0F) | (nib << 4));
        }
      }
    }
  }
  return p;
}

int64_t PackedMatrix::storage_bytes() const {
  return static_cast<int64_t>(payload_.size()) +
         static_cast<int64_t>(scales_.size() * sizeof(float));
}

int32_t PackedMatrix::value_at(int64_t r, int64_t c) const {
  check_arg(r >= 0 && r < rows_ && c >= 0 && c < cols_, "PackedMatrix: index out of range");
  if (bits_ == 8) {
    const int64_t row_bytes = cols_;
    return static_cast<int8_t>(payload_[static_cast<size_t>(r * row_bytes + c)]);
  }
  const int64_t row_bytes = (cols_ + 1) / 2;
  const uint8_t byte = payload_[static_cast<size_t>(r * row_bytes + c / 2)];
  const uint8_t nib = c % 2 == 0 ? (byte & 0x0F) : (byte >> 4);
  return static_cast<int32_t>(nib) - 8;
}

void PackedMatrix::decode_row_range_q(int64_t r, int64_t c0, int64_t c1, int8_t* out) const {
  check_arg(r >= 0 && r < rows_ && c0 >= 0 && c0 <= c1 && c1 <= cols_,
            "PackedMatrix::decode_row_range_q: range out of bounds");
  if (bits_ == 8) {
    const uint8_t* src = payload_.data() + static_cast<size_t>(r * cols_ + c0);
    std::memcpy(out, src, static_cast<size_t>(c1 - c0));
    return;
  }
  const int64_t row_bytes = (cols_ + 1) / 2;
  const uint8_t* row = payload_.data() + static_cast<size_t>(r * row_bytes);
  int64_t c = c0;
  if (c < c1 && (c & 1)) {
    *out++ = static_cast<int8_t>(static_cast<int32_t>(row[c >> 1] >> 4) - 8);
    ++c;
  }
  for (; c + 1 < c1; c += 2) {
    const uint8_t byte = row[c >> 1];
    *out++ = static_cast<int8_t>(static_cast<int32_t>(byte & 0x0F) - 8);
    *out++ = static_cast<int8_t>(static_cast<int32_t>(byte >> 4) - 8);
  }
  if (c < c1) {
    *out = static_cast<int8_t>(static_cast<int32_t>(row[c >> 1] & 0x0F) - 8);
  }
}

void PackedMatrix::decode_row_range_unscaled(int64_t r, int64_t c0, int64_t c1, float* out,
                                             int64_t stride) const {
  check_arg(r >= 0 && r < rows_ && c0 >= 0 && c0 <= c1 && c1 <= cols_ && stride >= 1,
            "PackedMatrix::decode_row_range_unscaled: range out of bounds");
  if (bits_ == 8) {
    const int8_t* src =
        reinterpret_cast<const int8_t*>(payload_.data()) + static_cast<size_t>(r * cols_ + c0);
    for (int64_t i = 0; i < c1 - c0; ++i) out[i * stride] = static_cast<float>(src[i]);
    return;
  }
  const int64_t row_bytes = (cols_ + 1) / 2;
  const uint8_t* row = payload_.data() + static_cast<size_t>(r * row_bytes);
  int64_t c = c0;
  if (c < c1 && (c & 1)) {
    *out = static_cast<float>(static_cast<int32_t>(row[c >> 1] >> 4) - 8);
    out += stride;
    ++c;
  }
  for (; c + 1 < c1; c += 2) {
    const uint8_t byte = row[c >> 1];
    out[0] = static_cast<float>(static_cast<int32_t>(byte & 0x0F) - 8);
    out[stride] = static_cast<float>(static_cast<int32_t>(byte >> 4) - 8);
    out += 2 * stride;
  }
  if (c < c1) {
    *out = static_cast<float>(static_cast<int32_t>(row[c >> 1] & 0x0F) - 8);
  }
}

void PackedMatrix::decode_row(int64_t r, float* out) const {
  check_arg(r >= 0 && r < rows_, "PackedMatrix::decode_row: row out of range");
  const float s = scales_[static_cast<size_t>(r)];
  if (bits_ == 8) {
    const int8_t* src =
        reinterpret_cast<const int8_t*>(payload_.data()) + static_cast<size_t>(r * cols_);
    for (int64_t c = 0; c < cols_; ++c) out[c] = static_cast<float>(src[c]) * s;
    return;
  }
  const int64_t row_bytes = (cols_ + 1) / 2;
  const uint8_t* row = payload_.data() + static_cast<size_t>(r * row_bytes);
  int64_t c = 0;
  for (; c + 1 < cols_; c += 2) {
    const uint8_t byte = row[c >> 1];
    out[c] = static_cast<float>(static_cast<int32_t>(byte & 0x0F) - 8) * s;
    out[c + 1] = static_cast<float>(static_cast<int32_t>(byte >> 4) - 8) * s;
  }
  if (c < cols_) {
    out[c] = static_cast<float>(static_cast<int32_t>(row[c >> 1] & 0x0F) - 8) * s;
  }
}

Tensor PackedMatrix::dequantize() const {
  Tensor out({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) decode_row(r, out.raw() + r * cols_);
  return out;
}

Tensor packed_matmul_nt_ref(const Tensor& x, const PackedMatrix& w) {
  check_arg(x.ndim() == 2, "packed_matmul_nt: x must be 2-d");
  check_arg(x.dim(1) == w.cols(), "packed_matmul_nt: inner dimensions differ");
  const int64_t m = x.dim(0), k = x.dim(1), n = w.rows();
  Tensor y({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* xr = x.raw() + i * k;
    for (int64_t j = 0; j < n; ++j) {
      // fp32 activation x int weight, scaled once per output: the standard
      // weight-only-quantized kernel structure.
      float acc = 0.0f;
      for (int64_t c = 0; c < k; ++c) {
        acc += xr[c] * static_cast<float>(w.value_at(j, c));
      }
      y[i * n + j] = acc * w.row_scale(j);
    }
  }
  return y;
}

namespace {

constexpr int64_t kMr = ops::gemm::kMr;
constexpr int64_t kNr = ops::gemm::kNr;

}  // namespace

Tensor packed_matmul_nt_blocked(const Tensor& x, const PackedMatrix& w,
                                const ops::gemm::Blocking& blk, bool fast_math) {
  check_arg(x.ndim() == 2, "packed_matmul_nt_blocked: x must be 2-d");
  check_arg(x.dim(1) == w.cols(), "packed_matmul_nt_blocked: inner dimensions differ");
  check_arg(blk.valid(), "packed_matmul_nt_blocked: invalid blocking");
  const int64_t m = x.dim(0), k = x.dim(1), n = w.rows();
  Tensor y({m, n});
  const float* px = x.raw();
  float* py = y.raw();
  const int64_t kc = std::max<int64_t>(1, std::min(blk.kc, k));
  const int64_t nc = std::max(kNr, std::min(blk.nc, ((n + kNr - 1) / kNr) * kNr));
  const int64_t strips_m = (m + kMr - 1) / kMr;
  const int64_t strip_grain = std::max<int64_t>(1, blk.mc / kMr);

  const simd::KernelTable& kt = simd::kernels();
  const auto dot = fast_math ? kt.dequant_dot_fast : kt.dequant_dot;
  const int bits = w.bits();

  // Same loop nest and determinism argument as the dense blocked driver
  // (tensor/gemm.cpp): j-blocks outer, k-blocks ascending inside, one
  // fan-out over kMr row strips of disjoint output rows per (j, k) block.
  // The fused dequant-dot kernel decodes each kNr weight-row strip from
  // packed integer storage straight into the accumulation — there is no
  // fp32 panel (or any other) weight temporary at all now. int -> fp32 is
  // exact for |q| <= 127 and the kernel accumulates each element over
  // ascending c with partial sums round-tripping through y between
  // k-blocks, so outputs stay bitwise equal to the scalar reference at any
  // thread count and dispatch choice.
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t jc = std::min(nc, n - j0);
    const int64_t jstrips = (jc + kNr - 1) / kNr;
    // Row-payload pointers for this j-block, kNr-padded with nullptr so
    // strip js can pass &rowp[js * kNr] straight to the kernel.
    std::vector<const uint8_t*> rowp(static_cast<size_t>(jstrips * kNr), nullptr);
    for (int64_t jr = 0; jr < jc; ++jr) rowp[static_cast<size_t>(jr)] = w.row_payload(j0 + jr);
    const uint8_t* const* rows = rowp.data();
    for (int64_t p0 = 0; p0 < k; p0 += kc) {
      const int64_t pc = std::min(kc, k - p0);
      parallel::parallel_for(0, strips_m, strip_grain, [=](int64_t lo, int64_t hi) {
        for (int64_t is = lo; is < hi; ++is) {
          const int64_t i0 = is * kMr;
          const int64_t mr = std::min(kMr, m - i0);
          for (int64_t js = 0; js < jstrips; ++js) {
            const int64_t j = j0 + js * kNr;
            const int64_t nr = std::min(kNr, j0 + jc - j);
            dot(px + i0 * k + p0, k, mr, rows + js * kNr, bits, p0, pc, py + i0 * n + j, n, nr);
          }
        }
      });
    }
  }
  // One scale multiply per output element, exactly like the reference.
  for (int64_t i = 0; i < m; ++i) {
    float* yrow = py + i * n;
    for (int64_t j = 0; j < n; ++j) yrow[j] *= w.row_scale(j);
  }
  return y;
}

Tensor packed_matmul_nt(const Tensor& x, const PackedMatrix& w) {
  if (x.ndim() == 2 && x.dim(1) == w.cols() &&
      ops::gemm::use_blocked(ops::gemm::GemmKind::kPackedNT, x.dim(0), x.dim(1), w.rows())) {
    return packed_matmul_nt_blocked(
        x, w,
        ops::gemm::blocking_for(ops::gemm::GemmKind::kPackedNT, x.dim(0), x.dim(1), w.rows()));
  }
  return packed_matmul_nt_ref(x, w);
}

}  // namespace edgellm::quant
