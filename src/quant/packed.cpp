#include "quant/packed.hpp"

#include <algorithm>
#include <cmath>

namespace edgellm::quant {

PackedMatrix PackedMatrix::pack(const Tensor& w, int bits) {
  check_arg(bits == 4 || bits == 8, "PackedMatrix: bits must be 4 or 8");
  check_arg(w.ndim() == 2 && w.numel() > 0, "PackedMatrix: needs a non-empty 2-d tensor");

  PackedMatrix p;
  p.rows_ = w.dim(0);
  p.cols_ = w.dim(1);
  p.bits_ = bits;
  p.scales_.resize(static_cast<size_t>(p.rows_));

  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const int64_t vals_per_byte = bits == 4 ? 2 : 1;
  const int64_t row_bytes = (p.cols_ + vals_per_byte - 1) / vals_per_byte;
  p.payload_.assign(static_cast<size_t>(p.rows_ * row_bytes), 0);

  for (int64_t r = 0; r < p.rows_; ++r) {
    float maxabs = 0.0f;
    for (int64_t c = 0; c < p.cols_; ++c) maxabs = std::max(maxabs, std::fabs(w[r * p.cols_ + c]));
    const float scale = maxabs > 0.0f ? maxabs / qmax : 1.0f;
    p.scales_[static_cast<size_t>(r)] = scale;
    for (int64_t c = 0; c < p.cols_; ++c) {
      const float qf = std::clamp(std::round(w[r * p.cols_ + c] / scale), -qmax, qmax);
      const int32_t q = static_cast<int32_t>(qf);
      if (bits == 8) {
        p.payload_[static_cast<size_t>(r * row_bytes + c)] = static_cast<uint8_t>(q & 0xFF);
      } else {
        // Two nibbles per byte, low nibble first, stored offset-by-8.
        const uint8_t nib = static_cast<uint8_t>((q + 8) & 0x0F);
        uint8_t& slot = p.payload_[static_cast<size_t>(r * row_bytes + c / 2)];
        if (c % 2 == 0) {
          slot = static_cast<uint8_t>((slot & 0xF0) | nib);
        } else {
          slot = static_cast<uint8_t>((slot & 0x0F) | (nib << 4));
        }
      }
    }
  }
  return p;
}

int64_t PackedMatrix::storage_bytes() const {
  return static_cast<int64_t>(payload_.size()) +
         static_cast<int64_t>(scales_.size() * sizeof(float));
}

int32_t PackedMatrix::value_at(int64_t r, int64_t c) const {
  check_arg(r >= 0 && r < rows_ && c >= 0 && c < cols_, "PackedMatrix: index out of range");
  if (bits_ == 8) {
    const int64_t row_bytes = cols_;
    return static_cast<int8_t>(payload_[static_cast<size_t>(r * row_bytes + c)]);
  }
  const int64_t row_bytes = (cols_ + 1) / 2;
  const uint8_t byte = payload_[static_cast<size_t>(r * row_bytes + c / 2)];
  const uint8_t nib = c % 2 == 0 ? (byte & 0x0F) : (byte >> 4);
  return static_cast<int32_t>(nib) - 8;
}

Tensor PackedMatrix::dequantize() const {
  Tensor out({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    const float s = scales_[static_cast<size_t>(r)];
    for (int64_t c = 0; c < cols_; ++c) {
      out[r * cols_ + c] = static_cast<float>(value_at(r, c)) * s;
    }
  }
  return out;
}

Tensor packed_matmul_nt(const Tensor& x, const PackedMatrix& w) {
  check_arg(x.ndim() == 2, "packed_matmul_nt: x must be 2-d");
  check_arg(x.dim(1) == w.cols(), "packed_matmul_nt: inner dimensions differ");
  const int64_t m = x.dim(0), k = x.dim(1), n = w.rows();
  Tensor y({m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* xr = x.raw() + i * k;
    for (int64_t j = 0; j < n; ++j) {
      // fp32 activation x int weight, scaled once per output: the standard
      // weight-only-quantized kernel structure.
      float acc = 0.0f;
      for (int64_t c = 0; c < k; ++c) {
        acc += xr[c] * static_cast<float>(w.value_at(j, c));
      }
      y[i * n + j] = acc * w.row_scale(j);
    }
  }
  return y;
}

}  // namespace edgellm::quant
