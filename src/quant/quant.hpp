// Weight quantization substrate.
//
// The reproduction follows the paper's LUC component: weights are
// quantized to low bit-widths (2..8) with per-layer policies. Numerics are
// modelled by fake quantization (quantize -> dequantize in float), which is
// exactly what quantization-aware tuning sees through the straight-through
// estimator; the *cost* benefit of low-bit storage and compute is carried
// separately by the byte-accounting here plus the hardware model in src/hw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgellm::quant {

/// How scales are shared across a 2-d weight matrix.
enum class Granularity {
  kPerTensor,  ///< one scale for the whole tensor
  kPerRow,     ///< one scale per output row (per-channel)
  kGrouped,    ///< one scale per contiguous group of `group_size` in a row
};

std::string to_string(Granularity g);

/// Quantization policy for one tensor.
struct QuantSpec {
  int bits = 8;                                   ///< 2..16
  bool symmetric = true;                          ///< symmetric vs affine
  Granularity granularity = Granularity::kPerRow; ///< scale sharing
  int64_t group_size = 64;                        ///< for kGrouped

  /// Number of integer levels this spec can represent.
  int64_t levels() const { return int64_t{1} << bits; }
};

/// Output of quantize_dequantize: the float reconstruction plus the
/// stored-form metadata needed for byte accounting.
struct QuantResult {
  Tensor dequantized;              ///< same shape as input
  std::vector<float> scales;       ///< one per scale-group
  std::vector<float> zero_points;  ///< empty when symmetric
  int64_t payload_bits = 0;        ///< numel * bits
};

/// Validates a spec; throws std::invalid_argument when out of range.
void validate_spec(const QuantSpec& spec);

/// Quantizes `w` (1-d or 2-d; higher-d tensors are treated as 2-d with the
/// last dim as the row axis) to `spec` and reconstructs it in float.
QuantResult quantize_dequantize(const Tensor& w, const QuantSpec& spec);

/// Convenience: only the dequantized tensor.
Tensor fake_quant(const Tensor& w, const QuantSpec& spec);

/// Bytes the stored form occupies: packed int payload + fp16 scales
/// (+ fp16 zero points when asymmetric).
double storage_bytes(const Tensor& w, const QuantSpec& spec);

/// Bytes for uncompressed fp16 storage of the same tensor (the baseline
/// edge-deployment format).
double fp16_storage_bytes(const Tensor& w);

/// Mean squared reconstruction error of quantizing `w` under `spec`.
float quant_mse(const Tensor& w, const QuantSpec& spec);

/// Signal-to-quantization-noise ratio in dB (higher is better).
float quant_sqnr_db(const Tensor& w, const QuantSpec& spec);

}  // namespace edgellm::quant
