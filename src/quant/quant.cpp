#include "quant/quant.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace edgellm::quant {

std::string to_string(Granularity g) {
  switch (g) {
    case Granularity::kPerTensor: return "per-tensor";
    case Granularity::kPerRow: return "per-row";
    case Granularity::kGrouped: return "grouped";
  }
  return "?";
}

void validate_spec(const QuantSpec& spec) {
  check_arg(spec.bits >= 2 && spec.bits <= 16, "QuantSpec.bits must be in [2, 16]");
  if (spec.granularity == Granularity::kGrouped) {
    check_arg(spec.group_size > 0, "QuantSpec.group_size must be positive");
  }
}

namespace {

struct GroupView {
  int64_t offset;  // linear offset of first element
  int64_t count;   // number of elements
};

// Splits the tensor into scale groups according to the spec. Tensors with
// ndim >= 2 are viewed as [rows, cols] with cols = last extent.
std::vector<GroupView> make_groups(const Tensor& w, const QuantSpec& spec) {
  const int64_t numel = w.numel();
  check_arg(numel > 0, "quantize: empty tensor");
  const int64_t cols = w.ndim() >= 2 ? w.dim(-1) : numel;
  const int64_t rows = numel / cols;

  std::vector<GroupView> groups;
  switch (spec.granularity) {
    case Granularity::kPerTensor:
      groups.push_back({0, numel});
      break;
    case Granularity::kPerRow:
      groups.reserve(static_cast<size_t>(rows));
      for (int64_t r = 0; r < rows; ++r) groups.push_back({r * cols, cols});
      break;
    case Granularity::kGrouped: {
      const int64_t gs = std::min(spec.group_size, cols);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; c += gs) {
          groups.push_back({r * cols + c, std::min(gs, cols - c)});
        }
      }
      break;
    }
  }
  return groups;
}

}  // namespace

QuantResult quantize_dequantize(const Tensor& w, const QuantSpec& spec) {
  validate_spec(spec);
  const auto groups = make_groups(w, spec);

  QuantResult res;
  res.dequantized = Tensor(w.shape());
  res.payload_bits = w.numel() * spec.bits;
  res.scales.reserve(groups.size());
  if (!spec.symmetric) res.zero_points.reserve(groups.size());

  const float* src = w.raw();
  float* dst = res.dequantized.raw();

  for (const GroupView& g : groups) {
    if (spec.symmetric) {
      // Symmetric: levels in [-2^(b-1)+1, 2^(b-1)-1] around zero.
      const float qmax = static_cast<float>((int64_t{1} << (spec.bits - 1)) - 1);
      float maxabs = 0.0f;
      for (int64_t i = 0; i < g.count; ++i) maxabs = std::max(maxabs, std::fabs(src[g.offset + i]));
      const float scale = maxabs > 0.0f ? maxabs / qmax : 1.0f;
      res.scales.push_back(scale);
      for (int64_t i = 0; i < g.count; ++i) {
        float q = std::round(src[g.offset + i] / scale);
        q = std::clamp(q, -qmax, qmax);
        dst[g.offset + i] = q * scale;
      }
    } else {
      // Affine: levels in [0, 2^b - 1] spanning [min, max].
      const float qmax = static_cast<float>((int64_t{1} << spec.bits) - 1);
      float lo = src[g.offset], hi = src[g.offset];
      for (int64_t i = 1; i < g.count; ++i) {
        lo = std::min(lo, src[g.offset + i]);
        hi = std::max(hi, src[g.offset + i]);
      }
      // Ensure zero is representable (standard affine-quant convention).
      lo = std::min(lo, 0.0f);
      hi = std::max(hi, 0.0f);
      const float scale = hi > lo ? (hi - lo) / qmax : 1.0f;
      const float zp = std::round(-lo / scale);
      res.scales.push_back(scale);
      res.zero_points.push_back(zp);
      for (int64_t i = 0; i < g.count; ++i) {
        float q = std::round(src[g.offset + i] / scale + zp);
        q = std::clamp(q, 0.0f, qmax);
        dst[g.offset + i] = (q - zp) * scale;
      }
    }
  }
  return res;
}

Tensor fake_quant(const Tensor& w, const QuantSpec& spec) {
  return quantize_dequantize(w, spec).dequantized;
}

double storage_bytes(const Tensor& w, const QuantSpec& spec) {
  validate_spec(spec);
  const auto groups = make_groups(w, spec);
  const double payload = static_cast<double>(w.numel()) * spec.bits / 8.0;
  const double per_group_meta = spec.symmetric ? 2.0 : 4.0;  // fp16 scale (+ fp16 zp)
  return payload + per_group_meta * static_cast<double>(groups.size());
}

double fp16_storage_bytes(const Tensor& w) { return 2.0 * static_cast<double>(w.numel()); }

float quant_mse(const Tensor& w, const QuantSpec& spec) {
  return ops::mse(w, fake_quant(w, spec));
}

float quant_sqnr_db(const Tensor& w, const QuantSpec& spec) {
  const Tensor deq = fake_quant(w, spec);
  double sig = 0.0, noise = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    sig += static_cast<double>(w[i]) * w[i];
    const double d = static_cast<double>(w[i]) - deq[i];
    noise += d * d;
  }
  if (noise <= 0.0) return 120.0f;  // effectively lossless
  if (sig <= 0.0) return 0.0f;
  return static_cast<float>(10.0 * std::log10(sig / noise));
}

}  // namespace edgellm::quant
