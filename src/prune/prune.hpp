// Weight pruning substrate.
//
// LUC assigns each layer a pruning ratio; this module provides the mask
// machinery: magnitude-based unstructured, row/column structured, and N:M
// semi-structured patterns, plus sparsity accounting consumed by the
// hardware cost model (pruned MACs are skippable on the modelled device).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace edgellm::prune {

/// Sparsity pattern of a pruning mask.
enum class Pattern {
  kUnstructured,  ///< global magnitude threshold per tensor
  kRow,           ///< remove whole output rows (lowest L2 norm first)
  kColumn,        ///< remove whole input columns
  kNM,            ///< keep the n largest of every m consecutive weights
};

std::string to_string(Pattern p);

/// Pruning policy for one tensor.
struct PruneSpec {
  float sparsity = 0.0f;                     ///< fraction zeroed, in [0, 1)
  Pattern pattern = Pattern::kUnstructured;  ///< mask structure
  int n = 2;                                 ///< for kNM
  int m = 4;                                 ///< for kNM

  /// The sparsity this spec actually produces (kNM overrides `sparsity`).
  float effective_sparsity() const;
};

/// Validates a spec; throws std::invalid_argument when out of range.
void validate_spec(const PruneSpec& spec);

/// Builds a 0/1 mask of the same shape as `w` selecting the weights to KEEP.
/// 2-d semantics use the last dim as columns; 1-d tensors only support
/// kUnstructured and kNM.
Tensor magnitude_mask(const Tensor& w, const PruneSpec& spec);

/// Elementwise w * mask.
Tensor apply_mask(const Tensor& w, const Tensor& mask);

/// Fraction of zeros in a mask (or any tensor).
float measured_sparsity(const Tensor& mask);

/// Bytes for storing the pruned tensor in compressed-sparse form
/// (values at `bits` each + one index byte per kept value for unstructured,
/// negligible metadata for structured patterns).
double sparse_storage_bytes(const Tensor& mask, int value_bits);

}  // namespace edgellm::prune
