#include "prune/prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace edgellm::prune {

std::string to_string(Pattern p) {
  switch (p) {
    case Pattern::kUnstructured: return "unstructured";
    case Pattern::kRow: return "row";
    case Pattern::kColumn: return "column";
    case Pattern::kNM: return "n:m";
  }
  return "?";
}

float PruneSpec::effective_sparsity() const {
  if (pattern == Pattern::kNM) return 1.0f - static_cast<float>(n) / static_cast<float>(m);
  return sparsity;
}

void validate_spec(const PruneSpec& spec) {
  check_arg(spec.sparsity >= 0.0f && spec.sparsity < 1.0f, "PruneSpec.sparsity must be in [0, 1)");
  if (spec.pattern == Pattern::kNM) {
    check_arg(spec.m > 0 && spec.n > 0 && spec.n <= spec.m, "PruneSpec requires 0 < n <= m");
  }
}

namespace {

// Keeps the `keep` largest-|w| elements among indices [0, n).
Tensor unstructured_mask(const Tensor& w, float sparsity) {
  const int64_t n = w.numel();
  const int64_t drop = static_cast<int64_t>(std::floor(static_cast<double>(sparsity) * n));
  Tensor mask(w.shape(), 1.0f);
  if (drop <= 0) return mask;
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::nth_element(idx.begin(), idx.begin() + drop, idx.end(), [&](int64_t a, int64_t b) {
    return std::fabs(w[a]) < std::fabs(w[b]);
  });
  for (int64_t i = 0; i < drop; ++i) mask[idx[static_cast<size_t>(i)]] = 0.0f;
  return mask;
}

Tensor row_or_col_mask(const Tensor& w, float sparsity, bool rows) {
  check_arg(w.ndim() >= 2, "row/column pruning requires a 2-d tensor");
  const int64_t cols = w.dim(-1);
  const int64_t nrows = w.numel() / cols;
  const int64_t units = rows ? nrows : cols;
  const int64_t drop = static_cast<int64_t>(std::floor(static_cast<double>(sparsity) * units));
  Tensor mask(w.shape(), 1.0f);
  if (drop <= 0) return mask;

  std::vector<double> norms(static_cast<size_t>(units), 0.0);
  for (int64_t r = 0; r < nrows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const double v = w[r * cols + c];
      norms[static_cast<size_t>(rows ? r : c)] += v * v;
    }
  }
  std::vector<int64_t> idx(static_cast<size_t>(units));
  std::iota(idx.begin(), idx.end(), 0);
  std::nth_element(idx.begin(), idx.begin() + drop, idx.end(), [&](int64_t a, int64_t b) {
    return norms[static_cast<size_t>(a)] < norms[static_cast<size_t>(b)];
  });
  for (int64_t i = 0; i < drop; ++i) {
    const int64_t u = idx[static_cast<size_t>(i)];
    if (rows) {
      for (int64_t c = 0; c < cols; ++c) mask[u * cols + c] = 0.0f;
    } else {
      for (int64_t r = 0; r < nrows; ++r) mask[r * cols + u] = 0.0f;
    }
  }
  return mask;
}

Tensor nm_mask(const Tensor& w, int n, int m) {
  Tensor mask(w.shape(), 0.0f);
  const int64_t total = w.numel();
  std::vector<int64_t> idx;
  for (int64_t start = 0; start < total; start += m) {
    const int64_t count = std::min<int64_t>(m, total - start);
    idx.resize(static_cast<size_t>(count));
    std::iota(idx.begin(), idx.end(), start);
    const int64_t keep = std::min<int64_t>(n, count);
    std::partial_sort(idx.begin(), idx.begin() + keep, idx.end(), [&](int64_t a, int64_t b) {
      return std::fabs(w[a]) > std::fabs(w[b]);
    });
    for (int64_t i = 0; i < keep; ++i) mask[idx[static_cast<size_t>(i)]] = 1.0f;
  }
  return mask;
}

}  // namespace

Tensor magnitude_mask(const Tensor& w, const PruneSpec& spec) {
  validate_spec(spec);
  check_arg(w.numel() > 0, "magnitude_mask: empty tensor");
  switch (spec.pattern) {
    case Pattern::kUnstructured: return unstructured_mask(w, spec.sparsity);
    case Pattern::kRow: return row_or_col_mask(w, spec.sparsity, /*rows=*/true);
    case Pattern::kColumn: return row_or_col_mask(w, spec.sparsity, /*rows=*/false);
    case Pattern::kNM: return nm_mask(w, spec.n, spec.m);
  }
  throw std::invalid_argument("unknown prune pattern");
}

Tensor apply_mask(const Tensor& w, const Tensor& mask) {
  check_arg(w.shape() == mask.shape(), "apply_mask: shape mismatch");
  Tensor out(w.shape());
  for (int64_t i = 0; i < w.numel(); ++i) out[i] = w[i] * mask[i];
  return out;
}

float measured_sparsity(const Tensor& mask) {
  check_arg(mask.numel() > 0, "measured_sparsity: empty tensor");
  int64_t zeros = 0;
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] == 0.0f) ++zeros;
  }
  return static_cast<float>(zeros) / static_cast<float>(mask.numel());
}

double sparse_storage_bytes(const Tensor& mask, int value_bits) {
  check_arg(value_bits >= 2 && value_bits <= 32, "value_bits must be in [2, 32]");
  int64_t kept = 0;
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] != 0.0f) ++kept;
  }
  // values + 8-bit relative index per kept value (CSR-style bound).
  return static_cast<double>(kept) * (value_bits / 8.0 + 1.0);
}

}  // namespace edgellm::prune
