#include "prune/sparse.hpp"

namespace edgellm::prune {

CsrMatrix CsrMatrix::from_dense(const Tensor& w) {
  check_arg(w.ndim() == 2 && w.numel() > 0, "CsrMatrix: needs a non-empty 2-d tensor");
  CsrMatrix m;
  m.rows_ = w.dim(0);
  m.cols_ = w.dim(1);
  check_arg(m.cols_ <= INT32_MAX, "CsrMatrix: too many columns for int32 indices");
  m.row_ptr_.reserve(static_cast<size_t>(m.rows_) + 1);
  m.row_ptr_.push_back(0);
  for (int64_t r = 0; r < m.rows_; ++r) {
    for (int64_t c = 0; c < m.cols_; ++c) {
      const float v = w[r * m.cols_ + c];
      if (v != 0.0f) {
        m.values_.push_back(v);
        m.col_idx_.push_back(static_cast<int32_t>(c));
      }
    }
    m.row_ptr_.push_back(static_cast<int64_t>(m.values_.size()));
  }
  return m;
}

float CsrMatrix::density() const {
  return static_cast<float>(nnz()) / static_cast<float>(rows_ * cols_);
}

int64_t CsrMatrix::storage_bytes() const {
  return static_cast<int64_t>(values_.size() * sizeof(float) +
                              col_idx_.size() * sizeof(int32_t) +
                              row_ptr_.size() * sizeof(int64_t));
}

Tensor CsrMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t i = row_ptr_[static_cast<size_t>(r)]; i < row_ptr_[static_cast<size_t>(r) + 1];
         ++i) {
      out[r * cols_ + col_idx_[static_cast<size_t>(i)]] = values_[static_cast<size_t>(i)];
    }
  }
  return out;
}

Tensor CsrMatrix::matmul_nt(const Tensor& x) const {
  check_arg(x.ndim() == 2, "CsrMatrix::matmul_nt: x must be 2-d");
  check_arg(x.dim(1) == cols_, "CsrMatrix::matmul_nt: inner dimensions differ");
  const int64_t m = x.dim(0);
  Tensor y({m, rows_});
  for (int64_t i = 0; i < m; ++i) {
    const float* xr = x.raw() + i * cols_;
    for (int64_t r = 0; r < rows_; ++r) {
      float acc = 0.0f;
      for (int64_t p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        acc += xr[col_idx_[static_cast<size_t>(p)]] * values_[static_cast<size_t>(p)];
      }
      y[i * rows_ + r] = acc;
    }
  }
  return y;
}

}  // namespace edgellm::prune
