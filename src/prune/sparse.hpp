// Compressed-sparse-row storage and SpMM — the deployed form of a pruned
// weight matrix, complementing quant::PackedMatrix. Where apply_mask models
// pruning numerically on dense storage, CsrMatrix actually stores only the
// kept values, so its storage_bytes are real and its matmul only touches
// surviving weights.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace edgellm::prune {

/// CSR matrix built from a dense [rows, cols] tensor (zeros dropped).
class CsrMatrix {
 public:
  /// Compresses `w`, treating exact zeros as pruned entries.
  static CsrMatrix from_dense(const Tensor& w);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  float density() const;

  /// Actual bytes held: fp32 values + int32 column indices + row pointers.
  int64_t storage_bytes() const;

  /// Reconstructs the dense matrix.
  Tensor to_dense() const;

  /// y[m, rows] = x[m, cols] * W^T touching only stored entries.
  Tensor matmul_nt(const Tensor& x) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> values_;
  std::vector<int32_t> col_idx_;
  std::vector<int64_t> row_ptr_;  ///< rows + 1 entries
};

}  // namespace edgellm::prune
