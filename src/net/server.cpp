#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/signals.hpp"

namespace edgellm::net {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// HTTP status for a terminal the stream never started for. Once a 200
/// chunked stream is under way, terminals ride in the final completion
/// object instead (HTTP has no status-rewind).
int status_for(serve::RequestStatus s) {
  switch (s) {
    case serve::RequestStatus::kOk: return 200;
    case serve::RequestStatus::kShed: return 429;
    case serve::RequestStatus::kRejected: return 503;
    case serve::RequestStatus::kExpired: return 504;
    case serve::RequestStatus::kTimeout: return 504;
    case serve::RequestStatus::kCancelled: return 499;
    case serve::RequestStatus::kFailed: return 500;
  }
  return 500;
}

std::string token_line(int64_t id, int64_t token) {
  return "{\"id\": " + std::to_string(id) + ", \"token\": " + std::to_string(token) + "}\n";
}

}  // namespace

HttpServer::HttpServer(serve::ServeEngine& engine, ServerConfig cfg)
    : engine_(engine),
      cfg_(cfg),
      reg_(cfg.registry != nullptr ? *cfg.registry : engine.registry()),
      listener_(cfg.host, cfg.port),
      c_accepted_(reg_.counter("net/accepted")),
      c_over_capacity_(reg_.counter("net/over_capacity_503")),
      c_requests_(reg_.counter("net/requests")),
      c_resp_2xx_(reg_.counter("net/responses_2xx")),
      c_resp_4xx_(reg_.counter("net/responses_4xx")),
      c_resp_5xx_(reg_.counter("net/responses_5xx")),
      c_shed_429_(reg_.counter("net/shed_429")),
      c_unavailable_503_(reg_.counter("net/unavailable_503")),
      c_disconnects_(reg_.counter("net/client_disconnects")),
      c_injected_disconnects_(reg_.counter("net/injected_disconnects")),
      c_timeouts_(reg_.counter("net/timeouts")),
      c_bytes_in_(reg_.counter("net/bytes_in")),
      c_bytes_out_(reg_.counter("net/bytes_out")),
      c_tokens_streamed_(reg_.counter("net/tokens_streamed")),
      g_connections_(reg_.gauge("net/connections")),
      g_streams_(reg_.gauge("net/active_streams")),
      h_request_ms_(reg_.histogram("net/request_ms")),
      h_conn_life_ms_(reg_.histogram("net/connection_lifetime_ms")) {
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
}

HttpServer::~HttpServer() {
  for (auto& c : conns_) {
    if (c && c->fd >= 0) ::close(c->fd);
  }
  // Engine callbacks only reference StreamStates (shared_ptr, safe) and the
  // wake pipe; run() waited out every in-flight future before returning, so
  // closing the pipe here cannot race a sink wake unless run() was never
  // called — in which case no sinks were ever created either.
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void HttpServer::wake() {
  const char b = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);  // full pipe == already awake
}

void HttpServer::begin_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  wake();
}

void HttpServer::queue_error(Connection& c, int status, const std::string& message,
                             bool keep_alive) {
  c.queue_out(http_response(status, "application/json", json_error_body(message), keep_alive));
  if (status >= 500) c_resp_5xx_.add();
  else if (status >= 400) c_resp_4xx_.add();
  if (status == 503) c_unavailable_503_.add();
  if (status == 429) c_shed_429_.add();
}

void HttpServer::accept_new(Clock::time_point now) {
  int fd;
  while ((fd = listener_.accept_client()) >= 0) {
    if (draining_) {
      ::close(fd);
      continue;
    }
    if (static_cast<int64_t>(conns_.size()) >= cfg_.max_connections) {
      // Connection cap: an explicit, immediate 503 beats an unbounded
      // accept backlog the client interprets as a hung server.
      c_over_capacity_.add();
      c_unavailable_503_.add();
      const std::string r = http_response(503, "application/json",
                                          json_error_body("connection limit reached"), false);
      [[maybe_unused]] const ssize_t n = ::send(fd, r.data(), r.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    c_accepted_.add();
    g_connections_.add(1);
    n_open_.fetch_add(1, std::memory_order_relaxed);
    conns_.push_back(std::make_unique<Connection>(fd, next_conn_id_++, cfg_.limits,
                                                  cfg_.write_buffer_bytes, now));
  }
}

void HttpServer::destroy(std::unique_ptr<Connection> c, Clock::time_point now) {
  if (c->fd >= 0) ::close(c->fd);
  c->fd = -1;
  g_connections_.add(-1);
  n_open_.fetch_sub(1, std::memory_order_relaxed);
  h_conn_life_ms_.observe(ms_between(c->opened, now));
}

void HttpServer::abandon_stream(Connection& c) {
  if (c.phase != Connection::Phase::kStreaming) return;
  engine_.cancel(c.req_id);
  if (c.fut.valid()) zombies_.push_back(std::move(c.fut));
  c.stream.reset();
  g_streams_.add(-1);
  c.phase = Connection::Phase::kRequest;
}

bool HttpServer::handle_readable(Connection& c, Clock::time_point now) {
  if (c.close_after_flush) return true;  // response is final; ignore further input
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c_bytes_in_.add(n);
      c.last_activity = now;
      c.inbuf.append(buf, static_cast<size_t>(n));
      // A client that pipelines faster than we respond is bounded here:
      // one full request plus headroom, then the connection goes away.
      const int64_t cap = cfg_.limits.max_body_bytes + cfg_.limits.max_header_bytes +
                          cfg_.limits.max_request_line + 4096;
      if (static_cast<int64_t>(c.in_pending().size()) > cap) {
        queue_error(c, 400, "pipelined input exceeds buffer cap", false);
        c.close_after_flush = true;
        return true;
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // orderly EOF: the client is gone
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // ECONNRESET and friends
  }
  if (c.phase == Connection::Phase::kRequest) dispatch_completions(c, now);
  return true;
}

/// Feeds buffered bytes through the parser and dispatches complete
/// requests. Named for its main product; also produces the control
/// endpoints' responses.
void HttpServer::dispatch_completions(Connection& c, Clock::time_point now) {
  while (c.phase == Connection::Phase::kRequest && !c.in_pending().empty() &&
         !c.close_after_flush) {
    if (!c.request_in_progress) {
      c.request_in_progress = true;
      c.request_started = now;
    }
    const std::string_view pending = c.in_pending();
    const size_t used = c.parser.feed(pending.data(), pending.size());
    c.consume_in(used);
    if (c.parser.failed()) {
      // Parse failures close the connection: framing is gone, so the next
      // bytes cannot be trusted to start a request.
      queue_error(c, c.parser.error_status(), c.parser.error_reason(), false);
      c.close_after_flush = true;
      c.request_in_progress = false;
      return;
    }
    if (c.parser.expect_continue() && !c.sent_continue && !c.parser.complete()) {
      c.queue_out("HTTP/1.1 100 Continue\r\n\r\n");
      c.sent_continue = true;
    }
    if (!c.parser.complete()) return;  // need more bytes
    c.request_in_progress = false;
    c.sent_continue = false;
    if (!dispatch_request(c, now)) return;
  }
}

bool HttpServer::dispatch_request(Connection& c, Clock::time_point now) {
  c_requests_.add();
  const std::string method = c.parser.method();
  const std::string path = c.parser.path();
  const std::string query = c.parser.query();
  const std::string body = c.parser.body();
  const bool keep_alive = c.parser.keep_alive() && !draining_;
  c.parser.reset();

  if (path == "/healthz") {
    if (method != "GET") {
      queue_error(c, 405, "healthz supports GET only", keep_alive);
    } else if (draining_) {
      c.queue_out(http_response(503, "application/json", "{\"status\": \"draining\"}\n", false));
      c_unavailable_503_.add();
      c_resp_5xx_.add();
    } else {
      c.queue_out(http_response(200, "application/json", "{\"status\": \"ok\"}\n", keep_alive));
      c_resp_2xx_.add();
    }
  } else if (path == "/metrics") {
    if (method != "GET") {
      queue_error(c, 405, "metrics supports GET only", keep_alive);
    } else {
      const obs::MetricsSnapshot snap = reg_.snapshot();
      const bool csv = query.find("format=csv") != std::string::npos;
      c.queue_out(http_response(200, csv ? "text/csv" : "application/json",
                                csv ? snap.to_csv() : snap.to_json(), keep_alive));
      c_resp_2xx_.add();
    }
  } else if (path == "/v1/completions") {
    if (method != "POST") {
      queue_error(c, 405, "completions supports POST only", keep_alive);
    } else if (draining_) {
      queue_error(c, 503, "server is draining", false);
      c.close_after_flush = true;
    } else {
      serve::Request req;
      try {
        // The same hardened parser/validation as the JSONL file front:
        // both paths reject bad input identically.
        req = serve::parse_request_json(body);
      } catch (const std::exception& e) {
        queue_error(c, 400, e.what(), keep_alive);
        if (!keep_alive) c.close_after_flush = true;
        return true;
      }
      if (req.id == 0) req.id = ++next_auto_req_id_;
      auto st = std::make_shared<StreamState>();
      serve::StreamSink sink;
      HttpServer* self = this;
      sink.on_token = [st, self](int64_t, int64_t tok) {
        {
          std::lock_guard<std::mutex> lk(st->mu);
          st->tokens.push_back(tok);
        }
        self->wake();
      };
      sink.on_done = [st, self](const serve::Completion& comp) {
        {
          std::lock_guard<std::mutex> lk(st->mu);
          st->done = true;
          st->completion = comp;
        }
        self->wake();
      };
      const int64_t req_id = req.id;
      std::future<serve::Completion> fut;
      try {
        fut = engine_.submit(std::move(req), std::move(sink));
      } catch (const std::exception& e) {
        queue_error(c, 400, e.what(), keep_alive);
        if (!keep_alive) c.close_after_flush = true;
        return true;
      }
      c.stream = std::move(st);
      c.fut = std::move(fut);
      c.req_id = req_id;
      c.request_keep_alive = keep_alive;
      c.req_dispatch_t = now;
      c.response_started = false;
      c.tokens_streamed = 0;
      c.phase = Connection::Phase::kStreaming;
      g_streams_.add(1);
      return true;
    }
  } else {
    queue_error(c, 404, "unknown path \"" + path + "\"", keep_alive);
  }
  if (!keep_alive) c.close_after_flush = true;
  return true;
}

void HttpServer::finish_response(Connection& c, int status, Clock::time_point now) {
  h_request_ms_.observe(ms_between(c.req_dispatch_t, now));
  if (status >= 200 && status < 300) c_resp_2xx_.add();
  c.stream.reset();
  if (c.fut.valid()) zombies_.push_back(std::move(c.fut));
  g_streams_.add(-1);
  c.phase = Connection::Phase::kRequest;
  c.response_started = false;
  c.req_id = 0;
  if (!c.request_keep_alive || draining_) c.close_after_flush = true;
}

bool HttpServer::advance_stream(Connection& c, Clock::time_point now) {
  if (c.phase != Connection::Phase::kStreaming || !c.stream) return true;
  StreamState& st = *c.stream;
  std::unique_lock<std::mutex> lk(st.mu);

  if (!c.response_started) {
    if (st.tokens.empty() && !st.done) return true;  // nothing decoded yet
    if (st.done && st.tokens.empty() && c.tokens_streamed == 0 &&
        st.completion.status != serve::RequestStatus::kOk) {
      // Terminal before any token: a plain, structured status response —
      // 429 for sheds, 503 for rejects — with the completion object (its
      // `error` field carries the admission reason) as the body.
      const int status = status_for(st.completion.status);
      const serve::Completion comp = st.completion;
      lk.unlock();
      const bool ka = c.request_keep_alive && !draining_;
      c.queue_out(http_response(status, "application/json",
                                serve::completion_to_json(comp) + "\n", ka));
      if (status >= 500) c_resp_5xx_.add();
      else if (status >= 400) c_resp_4xx_.add();
      if (status == 429) c_shed_429_.add();
      if (status == 503) c_unavailable_503_.add();
      finish_response(c, status, now);
      if (!ka) c.close_after_flush = true;
      return true;
    }
    c.queue_out(streaming_response_head(200, "application/x-ndjson",
                                        c.request_keep_alive && !draining_));
    c.response_started = true;
  }

  // Flush decoded tokens while the bounded write buffer has room; the rest
  // stay queued in StreamState — that pause is this client's backpressure.
  while (!st.tokens.empty() && c.out_pending() < c.write_cap) {
    const int64_t tok = st.tokens.front();
    st.tokens.pop_front();
    c.queue_out(chunk_frame(token_line(c.req_id, tok)));
    ++c.tokens_streamed;
    c_tokens_streamed_.add();
    if (cfg_.fault != nullptr && cfg_.fault->disconnect_client()) {
      // Injected client hangup through the real socket path: hard-close
      // below; the caller runs the same cancel path a vanished peer does.
      c_injected_disconnects_.add();
      return false;
    }
  }

  if (st.done && st.tokens.empty()) {
    const serve::Completion comp = st.completion;
    lk.unlock();
    c.queue_out(chunk_frame(serve::completion_to_json(comp) + "\n"));
    c.queue_out(kChunkTerminator);
    finish_response(c, 200, now);
  }
  return true;
}

bool HttpServer::handle_writable(Connection& c, Clock::time_point now) {
  while (c.want_write()) {
    const ssize_t n =
        ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<size_t>(n);
      c_bytes_out_.add(n);
      c.last_activity = now;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: client vanished
  }
  return true;
}

bool HttpServer::check_deadlines(Connection& c, Clock::time_point now) {
  if (cfg_.idle_timeout_ms <= 0.0) return true;
  const double limit = cfg_.idle_timeout_ms;
  if (c.phase == Connection::Phase::kRequest && !c.close_after_flush) {
    if (c.request_in_progress && ms_between(c.request_started, now) > limit) {
      // Slowloris guard: the deadline runs from the request's first byte,
      // so byte-at-a-time trickle cannot hold a connection open.
      c_timeouts_.add();
      queue_error(c, 408, "request did not complete in time", false);
      c.close_after_flush = true;
      c.request_in_progress = false;
      return true;
    }
    if (!c.request_in_progress && !c.want_write() &&
        ms_between(c.last_activity, now) > limit) {
      c_timeouts_.add();
      return false;  // silent close of an idle keep-alive session
    }
  } else if (c.phase == Connection::Phase::kStreaming && c.want_write() &&
             ms_between(c.last_activity, now) > limit) {
    // A streaming client that stopped draining: disconnect it so its KV
    // slot frees; its tokens were only ever queued, never blocking decode.
    c_timeouts_.add();
    return false;
  }
  return true;
}

double HttpServer::next_deadline_ms(Clock::time_point now) const {
  double t = 250.0;  // safety cap even with nothing scheduled
  if (cfg_.idle_timeout_ms > 0.0) {
    for (const auto& c : conns_) {
      double due = -1.0;
      if (c->phase == Connection::Phase::kRequest && c->request_in_progress) {
        due = cfg_.idle_timeout_ms - ms_between(c->request_started, now);
      } else if (c->phase == Connection::Phase::kRequest && !c->want_write()) {
        due = cfg_.idle_timeout_ms - ms_between(c->last_activity, now);
      } else if (c->phase == Connection::Phase::kStreaming && c->want_write()) {
        due = cfg_.idle_timeout_ms - ms_between(c->last_activity, now);
      }
      if (due >= 0.0) t = std::min(t, due);
    }
  }
  return std::max(t, 0.0);
}

void HttpServer::run() {
  std::vector<pollfd> fds;
  std::vector<size_t> conn_of_fd;  // fds[i] -> conns_ index (SIZE_MAX = not a conn)

  while (true) {
    const auto now = Clock::now();

    // Reap resolved futures of requests whose connection died first.
    zombies_.erase(std::remove_if(zombies_.begin(), zombies_.end(),
                                  [](std::future<serve::Completion>& f) {
                                    if (!f.valid()) return true;
                                    if (f.wait_for(std::chrono::seconds(0)) ==
                                        std::future_status::ready) {
                                      f.get();
                                      return true;
                                    }
                                    return false;
                                  }),
                   zombies_.end());

    // Advance streams, process any pipelined bytes, enforce deadlines.
    for (size_t i = 0; i < conns_.size(); ++i) {
      Connection& c = *conns_[i];
      bool alive = advance_stream(c, now);
      if (alive && c.phase == Connection::Phase::kRequest && !c.in_pending().empty()) {
        dispatch_completions(c, now);
        alive = advance_stream(c, now);  // a pipelined request may already have events
      }
      if (alive) alive = check_deadlines(c, now);
      if (!alive || (c.close_after_flush && !c.want_write())) {
        if (c.phase == Connection::Phase::kStreaming) {
          c_disconnects_.add();
          abandon_stream(c);
        }
        destroy(std::move(conns_[i]), now);
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
        --i;
      }
    }

    if (draining_ && listener_.closed() && conns_.empty()) {
      if (zombies_.empty()) break;
      // Cancelled strays: their promises resolve at the engine's next tick
      // barrier; wait them out so no sink callback outlives this server.
      for (auto& z : zombies_) {
        if (z.valid()) z.get();
      }
      zombies_.clear();
      break;
    }

    fds.clear();
    conn_of_fd.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    conn_of_fd.push_back(SIZE_MAX);
    if (!listener_.closed()) {
      fds.push_back({listener_.fd(), POLLIN, 0});
      conn_of_fd.push_back(SIZE_MAX);
    }
    const size_t first_conn_slot = fds.size();
    for (size_t i = 0; i < conns_.size(); ++i) {
      short ev = POLLIN;
      if (conns_[i]->want_write()) ev |= POLLOUT;
      fds.push_back({conns_[i]->fd, ev, 0});
      conn_of_fd.push_back(i);
    }

    const int timeout = static_cast<int>(std::min(next_deadline_ms(now), 250.0)) + 1;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    const auto after = Clock::now();

    if (fds[0].revents != 0) {
      char buf[256];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if ((drain_requested_.load(std::memory_order_relaxed) || drain_signal() != 0) &&
        !draining_) {
      draining_ = true;
      listener_.close_listener();
      for (auto& c : conns_) {
        if (c->phase == Connection::Phase::kRequest && c->request_in_progress) {
          queue_error(*c, 503, "server is draining", false);
          c->request_in_progress = false;
        }
        c->close_after_flush = c->phase != Connection::Phase::kStreaming;
      }
      continue;  // re-evaluate with the drain flags set
    }

    if (!listener_.closed() && first_conn_slot >= 2 && fds[1].revents != 0) {
      accept_new(after);
    }

    for (size_t slot = first_conn_slot; slot < fds.size(); ++slot) {
      const size_t ci = conn_of_fd[slot];
      if (ci >= conns_.size() || conns_[ci] == nullptr) continue;
      Connection& c = *conns_[ci];
      if (fds[slot].revents == 0) continue;
      bool alive = true;
      if ((fds[slot].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = handle_readable(c, after);
      }
      if (alive && (fds[slot].revents & POLLOUT) != 0) {
        alive = handle_writable(c, after);
      }
      if (!alive) {
        if (c.phase == Connection::Phase::kStreaming) {
          c_disconnects_.add();
          abandon_stream(c);
        }
        destroy(std::move(conns_[ci]), after);
        conns_[ci] = nullptr;
      }
    }
    conns_.erase(std::remove(conns_.begin(), conns_.end(), nullptr), conns_.end());
  }
}

}  // namespace edgellm::net
