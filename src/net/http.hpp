// Minimal, dependency-free HTTP/1.1 message layer for the network front
// door: an *incremental* request parser hardened against hostile input,
// and the response/chunk writers the server streams tokens through.
//
// The parser is deliberately not a general HTTP implementation. It accepts
// exactly what the serving API needs — a request line, a bounded header
// block, and an optional Content-Length or chunked body — and fails
// *closed* on everything else with the HTTP status the server should
// answer before hanging up: oversized request lines (414), oversized or
// too-many headers (431), bodies past the byte cap (413), ambiguous
// framing like Transfer-Encoding alongside Content-Length (400), and
// transfer codings it does not implement (501). Bytes are consumed
// incrementally, so slowloris-style one-byte-at-a-time sends, split TCP
// segments and pipelined requests all parse identically to a single
// contiguous buffer — the property the `ctest -L net` adversarial suite
// pins down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace edgellm::net {

/// Hard caps on request size. Defaults are generous for the serving API
/// (prompts are token arrays, not documents) while keeping a hostile
/// client from ballooning per-connection memory.
struct HttpLimits {
  int64_t max_request_line = 4096;  ///< method + target + version, bytes
  int64_t max_header_bytes = 8192;  ///< whole header block (and trailers)
  int64_t max_headers = 64;         ///< header count
  int64_t max_body_bytes = 1 << 20; ///< decoded body bytes (either framing)
};

/// Incremental HTTP/1.1 request parser. Feed it bytes as they arrive;
/// after every feed() check complete() / failed(). On failure,
/// error_status() is the HTTP status to answer (400/413/414/431/501/505)
/// and error_reason() the human-readable why. reset() re-arms the parser
/// for the next request on a keep-alive connection.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {});

  /// Consumes up to `n` bytes and returns how many were consumed. Stops
  /// early at the end of a complete request (pipelined bytes stay with the
  /// caller) or at the first framing error.
  size_t feed(const char* data, size_t n);

  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  /// True once any byte of the current request has been consumed — the
  /// signal the server's request-deadline (slowloris) timer keys off.
  bool started() const { return started_; }

  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  const std::string& method() const { return method_; }
  /// Request target split at '?': path() and query() (query may be empty).
  const std::string& path() const { return path_; }
  const std::string& query() const { return query_; }
  const std::string& body() const { return body_; }
  /// Header value by lower-cased name; empty string when absent.
  std::string header(const std::string& lower_name) const;
  /// Connection persistence: HTTP/1.1 defaults to keep-alive, 1.0 to
  /// close, both overridable by a Connection header.
  bool keep_alive() const { return keep_alive_; }
  /// Client sent `Expect: 100-continue` (server should interject the
  /// interim response once headers are in).
  bool expect_continue() const { return expect_continue_; }

  void reset();

 private:
  enum class State {
    kRequestLine,
    kHeaders,
    kBody,       ///< Content-Length framing
    kChunkSize,  ///< chunked framing: size line
    kChunkData,
    kChunkDataEnd,  ///< CRLF after a chunk's data
    kTrailers,
    kComplete,
    kError,
  };

  void fail(int status, std::string reason);
  void on_line();  ///< a full (LF-terminated) line is in line_
  void on_request_line();
  void on_header_line();
  void on_headers_done();
  void on_chunk_size_line();

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  bool started_ = false;
  std::string line_;
  int64_t header_bytes_ = 0;
  int64_t n_headers_ = 0;

  std::string method_, path_, query_;
  std::map<std::string, std::string> headers_;  ///< lower-cased names
  bool http11_ = true;
  bool keep_alive_ = true;
  bool expect_continue_ = false;
  bool chunked_ = false;
  bool have_content_length_ = false;
  int64_t content_length_ = 0;
  int64_t chunk_remaining_ = 0;
  std::string body_;

  int error_status_ = 0;
  std::string error_reason_;
};

/// Canonical reason phrase for the status codes this server emits.
const char* status_reason(int status);

/// One complete (non-streaming) response with a Content-Length body.
std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive);

/// Response head for a chunked streaming body (tokens follow as chunks).
std::string streaming_response_head(int status, std::string_view content_type, bool keep_alive);

/// One chunk frame: hex length line, payload, CRLF.
std::string chunk_frame(std::string_view payload);

/// Terminal zero-chunk that ends a chunked body.
inline constexpr std::string_view kChunkTerminator = "0\r\n\r\n";

/// {"error": "<escaped message>"} — the JSON error body shape every
/// non-2xx response uses.
std::string json_error_body(std::string_view message);

}  // namespace edgellm::net
