// The network front door: a single-threaded, poll-based HTTP/1.1 server in
// front of a serve::ServeEngine.
//
//   POST /v1/completions   JSON request body (the same schema as the JSONL
//                          wire format, validated by the same parser) ->
//                          chunked streaming response: one JSON line per
//                          token as the engine decodes it, then the final
//                          completion object. Sheds and rejects come back
//                          as structured 429/503 before any stream starts.
//   GET  /metrics          obs registry snapshot, JSON (default) or
//                          ?format=csv.
//   GET  /healthz          200 {"status":"ok"}, 503 {"status":"draining"}
//                          once drain has begun.
//
// Backpressure is end-to-end by construction:
//   - inbound: the engine's bounded queue + AdmissionController decide at
//     submit(); the server never buffers requests it cannot hand over —
//     the shed/reject reason goes straight back as a 429/503 body.
//   - outbound: each connection has a bounded write buffer. A slow client
//     pauses *its own* stream (tokens wait in a per-request deque of
//     int64s, capped by max_new_tokens); the decode batch never stalls.
//   - disconnects cancel: a mid-stream hangup cancels the request through
//     the engine's PR-6 cancel path, freeing its KV slot at the next tick.
//   - overload at the socket: past max_connections new peers get an
//     immediate 503 and close, never an unbounded accept backlog.
//
// Graceful drain (SIGTERM / begin_drain()): stop accepting, finish every
// in-flight stream, answer anything else 503, then run() returns so the
// caller can engine.shutdown() and flush metrics. Abuse resistance:
// idle/slowloris request deadlines, hardened parsing (see http.hpp), and
// per-connection caps. All activity lands in the obs registry as net/*
// counters, gauges and latency histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/connection.hpp"
#include "net/listener.hpp"
#include "serve/engine.hpp"

namespace edgellm::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is HttpServer::port()
  int64_t max_connections = 64;
  HttpLimits limits;
  /// One deadline, three guards: keep-alive idle limit, max time for a
  /// request to finish arriving (slowloris), and max time a streaming
  /// client may stall with output pending before it is disconnected.
  double idle_timeout_ms = 30000.0;
  /// Per-connection write buffer cap; token chunks queue in StreamState
  /// beyond it.
  int64_t write_buffer_bytes = 64 * 1024;
  /// Metrics sink for net/* instruments and GET /metrics; null uses the
  /// engine's registry (the usual choice — one scrape sees both layers).
  obs::Registry* registry = nullptr;
  /// Optional fault injection (must outlive the server): disconnect_client
  /// draws fire through the *real* socket path — the server hard-closes
  /// the connection mid-stream exactly as a vanished client would.
  runtime::ServeFaultInjector* fault = nullptr;
};

class HttpServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// serving starts when run() is called.
  HttpServer(serve::ServeEngine& engine, ServerConfig cfg);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  int port() const { return listener_.port(); }

  /// Runs the event loop on the calling thread. Returns after a drain
  /// completes: every accepted stream finished (or its client vanished and
  /// the request was cancelled *and observed resolving*), every socket
  /// closed. The engine is left running — callers shut it down after.
  void run();

  /// Thread-safe drain request (tests, embedders). Signal handlers should
  /// instead be routed via install_drain_signals(wake_fd()).
  void begin_drain();

  /// Write end of the self-pipe that wakes the poll loop; safe to write a
  /// byte to from a signal handler or any thread.
  int wake_fd() const { return wake_pipe_[1]; }

  /// Connections currently open (event-loop owned; approximate from other
  /// threads).
  int64_t open_connections() const { return n_open_.load(std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  void wake();
  void accept_new(Clock::time_point now);
  /// Returns false when the connection died and must be destroyed.
  bool handle_readable(Connection& c, Clock::time_point now);
  bool handle_writable(Connection& c, Clock::time_point now);
  bool dispatch_request(Connection& c, Clock::time_point now);
  void dispatch_completions(Connection& c, Clock::time_point now);
  /// Moves decoded tokens / the terminal into the write buffer. Returns
  /// false when the connection must close (injected disconnect).
  bool advance_stream(Connection& c, Clock::time_point now);
  void finish_response(Connection& c, int status, Clock::time_point now);
  void queue_error(Connection& c, int status, const std::string& message, bool keep_alive);
  bool check_deadlines(Connection& c, Clock::time_point now);
  /// Cancels any in-flight request and parks its future for reaping.
  void abandon_stream(Connection& c);
  void destroy(std::unique_ptr<Connection> c, Clock::time_point now);
  double next_deadline_ms(Clock::time_point now) const;

  serve::ServeEngine& engine_;
  ServerConfig cfg_;
  obs::Registry& reg_;
  Listener listener_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::atomic<int64_t> n_open_{0};
  int64_t next_conn_id_ = 1;
  int64_t next_auto_req_id_ = 0;
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Futures of requests whose connection died first; drained before run()
  /// returns so no engine callback can outlive the server.
  std::vector<std::future<serve::Completion>> zombies_;

  // net/* instruments (all in reg_).
  obs::Counter& c_accepted_;
  obs::Counter& c_over_capacity_;
  obs::Counter& c_requests_;
  obs::Counter& c_resp_2xx_;
  obs::Counter& c_resp_4xx_;
  obs::Counter& c_resp_5xx_;
  obs::Counter& c_shed_429_;
  obs::Counter& c_unavailable_503_;
  obs::Counter& c_disconnects_;
  obs::Counter& c_injected_disconnects_;
  obs::Counter& c_timeouts_;
  obs::Counter& c_bytes_in_;
  obs::Counter& c_bytes_out_;
  obs::Counter& c_tokens_streamed_;
  obs::Gauge& g_connections_;
  obs::Gauge& g_streams_;
  obs::Histogram& h_request_ms_;    ///< request parsed -> response flushed
  obs::Histogram& h_conn_life_ms_;  ///< accept -> close
};

}  // namespace edgellm::net
