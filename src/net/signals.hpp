// Async-signal-safe drain triggers for `edgellm_cli serve`. SIGINT/SIGTERM
// record the signal number in a sig_atomic_t and (optionally) write one
// byte to a wake fd, so the HTTP server's poll loop — or the JSONL mode's
// future-drain loop — notices promptly and runs the *graceful* drain path
// instead of dying mid-write with half a metrics file on disk.
#pragma once

namespace edgellm::net {

/// Installs SIGINT and SIGTERM handlers. `wake_fd` >= 0 additionally gets
/// one byte written per signal (self-pipe pattern; pass the HTTP server's
/// wake_fd()). Calling again replaces the wake fd.
void install_drain_signals(int wake_fd = -1);

/// Signal number of the first drain signal received, or 0 when none.
int drain_signal();

/// Restores default dispositions and clears the recorded signal (tests).
void reset_drain_signals();

}  // namespace edgellm::net
