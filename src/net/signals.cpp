#include "net/signals.hpp"

#include <csignal>
#include <unistd.h>

namespace edgellm::net {

namespace {

volatile std::sig_atomic_t g_signal = 0;
volatile std::sig_atomic_t g_wake_fd = -1;

extern "C" void drain_signal_handler(int signo) {
  if (g_signal == 0) g_signal = signo;
  const int fd = g_wake_fd;
  if (fd >= 0) {
    const char b = 's';
    // Best-effort: a full pipe just means the loop is already waking.
    [[maybe_unused]] const ssize_t n = ::write(fd, &b, 1);
  }
}

}  // namespace

void install_drain_signals(int wake_fd) {
  g_wake_fd = wake_fd;
  struct sigaction sa;
  sa.sa_handler = drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking reads must come back with EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int drain_signal() { return static_cast<int>(g_signal); }

void reset_drain_signals() {
  g_signal = 0;
  g_wake_fd = -1;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

}  // namespace edgellm::net
