// Non-blocking POSIX TCP listener plus the few socket helpers the server
// needs. No third-party dependencies: plain socket/bind/listen/accept with
// O_NONBLOCK everywhere, so the single-threaded poll loop in server.cpp
// can never be wedged by one peer.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace edgellm::net {

/// Puts `fd` into non-blocking mode; throws std::runtime_error on failure.
void set_nonblocking(int fd);

/// Splits "host:port" (e.g. "127.0.0.1:8080", ":0"). An empty host means
/// 0.0.0.0; port 0 asks the kernel for an ephemeral port. Throws
/// std::invalid_argument on malformed input.
std::pair<std::string, int> split_host_port(const std::string& addr);

/// A bound, listening, non-blocking IPv4 socket. Construction resolves an
/// ephemeral port immediately, so `port()` is always the real one.
class Listener {
 public:
  /// Throws std::runtime_error when the address cannot be bound.
  Listener(const std::string& host, int port, int backlog = 128);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  int port() const { return port_; }
  bool closed() const { return fd_ < 0; }

  /// Accepts one pending connection, already non-blocking with
  /// TCP_NODELAY set (token chunks must not sit in Nagle buffers).
  /// Returns -1 when none are pending (EAGAIN) or the listener is closed.
  int accept_client();

  /// Stops accepting: closes the listening socket (drain path). Idempotent.
  void close_listener();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace edgellm::net
